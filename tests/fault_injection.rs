//! Fault-injection suite: the panic-free contract, verified.
//!
//! Every public `fit`/`generate`/`load` entry point is fed untrusted and
//! degenerate input — non-finite labels, empty workloads, zero-volume
//! ranges, zeroed configs, truncated and bit-flipped model files — and
//! must return a typed [`SelearnError`]/[`PersistError`] or a finite
//! answer. A panic anywhere fails the suite (proptest and the test
//! harness both convert panics into failures). See DESIGN.md's "Error
//! handling" section for the policy this enforces.

use proptest::prelude::*;
use selearn::core::{
    load_ptshist, load_quadhist, save_ptshist, save_quadhist, PersistError,
};
use selearn::prelude::*;

fn rect_query(x: f64, y: f64, w: f64, h: f64, s: f64) -> TrainingQuery {
    TrainingQuery::new(
        Rect::new(
            vec![x.clamp(0.0, 1.0), y.clamp(0.0, 1.0)],
            vec![(x + w).clamp(0.0, 1.0), (y + h).clamp(0.0, 1.0)],
        ),
        s,
    )
}

/// Labels drawn from the full hostile range: valid, out-of-band, and
/// non-finite.
fn hostile_label() -> impl Strategy<Value = f64> {
    (0u32..10, 0.0f64..1.0).prop_map(|(pick, v)| match pick {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -3.5,
        4 => 7.0,
        _ => v,
    })
}

/// Boxes including duplicates and zero-volume degenerate slabs.
fn hostile_workload() -> impl Strategy<Value = Vec<TrainingQuery>> {
    proptest::collection::vec(
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.6, 0.0f64..0.6, hostile_label()),
        0..10,
    )
    .prop_map(|specs| {
        let mut qs: Vec<TrainingQuery> = specs
            .iter()
            .map(|&(x, y, w, h, s)| rect_query(x, y, w, h, s))
            .collect();
        // duplicate the first query to exercise redundant-row paths
        if let Some(first) = qs.first().cloned() {
            qs.push(first);
        }
        qs
    })
}

/// Every estimate from a successfully trained model must be finite and
/// inside [0, 1]; a rejected workload must be a typed error, not a panic.
fn assert_fit_contract<M: SelectivityEstimator>(
    fit: Result<M, SelearnError>,
    probes: &[Range],
) -> Result<(), TestCaseError> {
    if let Ok(model) = fit {
        for p in probes {
            let e = model.estimate(p);
            prop_assert!(e.is_finite() && (0.0..=1.0).contains(&e), "estimate {e}");
        }
    }
    Ok(())
}

fn probes() -> Vec<Range> {
    vec![
        Rect::new(vec![0.0, 0.0], vec![0.4, 0.9]).into(),
        Rect::new(vec![0.3, 0.3], vec![0.3, 0.3]).into(), // zero volume
        Rect::unit(2).into(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn quadhist_never_panics(train in hostile_workload()) {
        let r = QuadHist::fit(Rect::unit(2), &train, &QuadHistConfig::with_tau(0.05));
        assert_fit_contract(r, &probes())?;
    }

    #[test]
    fn ptshist_never_panics(train in hostile_workload()) {
        let r = PtsHist::fit(Rect::unit(2), &train, &PtsHistConfig::with_model_size(32));
        assert_fit_contract(r, &probes())?;
    }

    #[test]
    fn gausshist_never_panics(train in hostile_workload()) {
        let r = GaussHist::fit(Rect::unit(2), &train, &GaussHistConfig::with_model_size(32));
        assert_fit_contract(r, &probes())?;
    }

    #[test]
    fn quicksel_never_panics(train in hostile_workload()) {
        let r = QuickSel::fit(Rect::unit(2), &train, &QuickSelConfig::default());
        assert_fit_contract(r, &probes())?;
    }

    #[test]
    fn isomer_never_panics(train in hostile_workload()) {
        let r = Isomer::fit(Rect::unit(2), &train, &IsomerConfig::default());
        assert_fit_contract(r, &probes())?;
    }

    /// Loading a prefix of a valid model file must fail cleanly (or, for
    /// a prefix that happens to end on a record boundary, never panic).
    #[test]
    fn quadhist_load_truncated_never_panics(cut_frac in 0.0f64..1.0) {
        let train = vec![
            rect_query(0.1, 0.1, 0.5, 0.5, 0.6),
            rect_query(0.4, 0.4, 0.4, 0.4, 0.3),
        ];
        let qh = QuadHist::fit(Rect::unit(2), &train, &QuadHistConfig::with_tau(0.05)).unwrap();
        let mut buf = Vec::new();
        save_quadhist(&qh, &mut buf).unwrap();
        let cut = (buf.len() as f64 * cut_frac) as usize;
        let r = load_quadhist(&buf[..cut.min(buf.len())]);
        if cut < buf.len() {
            prop_assert!(matches!(r, Err(PersistError::Format(_) | PersistError::Io(_))));
        }
    }

    /// Single-bit corruption anywhere in the file must never panic: a
    /// typed error, or (when the flip lands in a weight's mantissa and
    /// keeps the invariants) a loadable model with finite estimates.
    #[test]
    fn ptshist_load_bitflipped_never_panics(byte_frac in 0.0f64..1.0, bit in 0u32..8) {
        let train = vec![
            rect_query(0.1, 0.1, 0.5, 0.5, 0.6),
            rect_query(0.4, 0.4, 0.4, 0.4, 0.3),
        ];
        let ph = PtsHist::fit(Rect::unit(2), &train, &PtsHistConfig::with_model_size(16)).unwrap();
        let mut buf = Vec::new();
        save_ptshist(&ph, &mut buf).unwrap();
        let idx = ((buf.len() as f64 * byte_frac) as usize).min(buf.len() - 1);
        buf[idx] ^= 1u8 << bit;
        if let Ok(model) = load_ptshist(&buf[..]) {
            for p in probes() {
                let e = model.estimate(&p);
                prop_assert!(e.is_finite(), "estimate {e} after bit flip");
            }
        }
    }

    /// Round trip: save → load reproduces the model bit-for-bit.
    #[test]
    fn persistence_round_trip_property(train in proptest::collection::vec(
        (0.0f64..0.8, 0.0f64..0.8, 0.05f64..0.4, 0.05f64..0.4, 0.0f64..1.0),
        1..6,
    )) {
        let qs: Vec<TrainingQuery> = train
            .iter()
            .map(|&(x, y, w, h, s)| rect_query(x, y, w, h, s))
            .collect();
        let qh = QuadHist::fit(Rect::unit(2), &qs, &QuadHistConfig::with_tau(0.05)).unwrap();
        let mut buf = Vec::new();
        save_quadhist(&qh, &mut buf).unwrap();
        let back = load_quadhist(&buf[..]).unwrap();
        for p in probes() {
            prop_assert_eq!(back.estimate(&p).to_bits(), qh.estimate(&p).to_bits());
        }

        let ph = PtsHist::fit(Rect::unit(2), &qs, &PtsHistConfig::with_model_size(16)).unwrap();
        let mut buf = Vec::new();
        save_ptshist(&ph, &mut buf).unwrap();
        let back = load_ptshist(&buf[..]).unwrap();
        for p in probes() {
            prop_assert_eq!(back.estimate(&p).to_bits(), ph.estimate(&p).to_bits());
        }
    }
}

#[test]
fn non_finite_labels_are_typed_errors() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let train = vec![rect_query(0.1, 0.1, 0.5, 0.5, bad)];
        for (name, err) in [
            (
                "quadhist",
                QuadHist::fit(Rect::unit(2), &train, &QuadHistConfig::default()).err(),
            ),
            (
                "ptshist",
                PtsHist::fit(Rect::unit(2), &train, &PtsHistConfig::with_model_size(8)).err(),
            ),
            (
                "quicksel",
                QuickSel::fit(Rect::unit(2), &train, &QuickSelConfig::default()).err(),
            ),
            (
                "isomer",
                Isomer::fit(Rect::unit(2), &train, &IsomerConfig::default()).err(),
            ),
        ] {
            assert!(
                matches!(err, Some(SelearnError::InvalidLabel { query: 0, .. })),
                "{name} accepted label {bad}: {err:?}"
            );
        }
    }
}

#[test]
fn empty_workload_is_not_an_error() {
    // The documented contract: no feedback means the uniform fallback,
    // not a failure.
    let qh = QuadHist::fit(Rect::unit(2), &[], &QuadHistConfig::default()).unwrap();
    let r: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 1.0]).into();
    assert!((qh.estimate(&r) - 0.5).abs() < 1e-9);
}

#[test]
fn zeroed_configs_are_typed_errors() {
    let train = vec![rect_query(0.1, 0.1, 0.5, 0.5, 0.4)];
    let tau0 = QuadHist::fit(Rect::unit(2), &train, &QuadHistConfig::with_tau(0.0));
    assert!(matches!(tau0, Err(SelearnError::InvalidConfig { .. })), "{tau0:?}");
    let k0 = PtsHist::fit(Rect::unit(2), &train, &PtsHistConfig::with_model_size(0));
    assert!(matches!(k0, Err(SelearnError::InvalidConfig { .. })), "{k0:?}");
    let g0 = GaussHist::fit(Rect::unit(2), &train, &GaussHistConfig::with_model_size(0));
    assert!(matches!(g0, Err(SelearnError::InvalidConfig { .. })), "{g0:?}");
}

#[test]
fn workload_generation_rejects_degenerate_inputs() {
    use rand::rngs::StdRng;
    let empty = Dataset::new("empty", 2, vec![]);
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::Random);
    let mut rng = StdRng::seed_from_u64(1);
    let err = Workload::generate(&empty, &spec, 10, &mut rng).unwrap_err();
    assert!(matches!(err, SelearnError::Dataset { .. }), "{err}");

    let data = power_like(500, 3).project(&[0, 1]);
    let bad_spec = WorkloadSpec::new(
        QueryType::Rect,
        CenterDistribution::Gaussian {
            mean: f64::NAN,
            std: 0.1,
        },
    );
    let err = Workload::generate(&data, &bad_spec, 10, &mut rng).unwrap_err();
    assert!(matches!(err, SelearnError::InvalidConfig { .. }), "{err}");
}

#[test]
fn wrong_magic_is_a_typed_error() {
    for junk in [
        "",
        "garbage",
        "selearn-model v2\nquadhist 2\n",
        "selearn-model v1\nwrongkind 2\n",
        "selearn-model v1\nquadhist not-a-number\n",
    ] {
        assert!(
            matches!(load_quadhist(junk.as_bytes()), Err(PersistError::Format(_))),
            "accepted {junk:?}"
        );
        assert!(
            matches!(load_ptshist(junk.as_bytes()), Err(PersistError::Format(_))),
            "accepted {junk:?}"
        );
    }
}
