//! End-to-end integration tests: full train/evaluate pipelines spanning
//! all crates, one per estimator and query class.

use selearn::prelude::*;

fn pipeline(
    data: &Dataset,
    qt: QueryType,
    n_train: usize,
    n_test: usize,
    seed: u64,
) -> (Vec<TrainingQuery>, Workload) {
    let spec = WorkloadSpec::new(qt, CenterDistribution::DataDriven);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let w = Workload::generate(data, &spec, n_train + n_test, &mut rng).unwrap();
    let (train, test) = w.split(n_train);
    (to_training(&train), test)
}

#[test]
fn quadhist_beats_uniform_on_skewed_data() {
    let data = power_like(20_000, 1).project(&[0, 2]);
    let (train, test) = pipeline(&data, QueryType::Rect, 200, 100, 2);
    let quad = QuadHist::fit_with_bucket_target(
        Rect::unit(2),
        &train,
        800,
        &QuadHistConfig::default(),
    )
    .unwrap();
    let uni = UniformBaseline::new(Rect::unit(2));
    let rq = evaluate(&quad, &test);
    let ru = evaluate(&uni, &test);
    assert!(
        rq.rms < ru.rms / 5.0,
        "QuadHist {} should beat Uniform {} by a wide margin",
        rq.rms,
        ru.rms
    );
}

#[test]
fn ptshist_high_dimensional_pipeline() {
    let data = forest_like(20_000, 3).project(&[0, 1, 2, 3, 4, 5]);
    let (train, test) = pipeline(&data, QueryType::Rect, 400, 100, 4);
    let pts = PtsHist::fit(
        Rect::unit(6),
        &train,
        &PtsHistConfig::with_model_size(1600),
    )
    .unwrap();
    let r = evaluate(&pts, &test);
    assert!(r.rms < 0.08, "6-D PtsHist rms = {}", r.rms);
}

#[test]
fn quicksel_competitive_in_2d() {
    let data = power_like(20_000, 5).project(&[0, 2]);
    let (train, test) = pipeline(&data, QueryType::Rect, 200, 100, 6);
    let qs = QuickSel::fit(Rect::unit(2), &train, &QuickSelConfig::default()).unwrap();
    let r = evaluate(&qs, &test);
    assert!(r.rms < 0.05, "QuickSel rms = {}", r.rms);
}

#[test]
fn isomer_accurate_on_small_workloads() {
    let data = power_like(10_000, 7).project(&[0, 2]);
    let (train, test) = pipeline(&data, QueryType::Rect, 50, 80, 8);
    let iso = Isomer::fit(Rect::unit(2), &train, &IsomerConfig::default()).unwrap();
    let r = evaluate(&iso, &test);
    assert!(r.rms < 0.06, "Isomer rms = {}", r.rms);
    // and it uses far more buckets than 4n — the paper's 48–160× pattern
    assert!(
        iso.num_buckets() > 4 * train.len(),
        "Isomer bucket count {} suspiciously small",
        iso.num_buckets()
    );
}

#[test]
fn halfspace_queries_learnable_end_to_end() {
    let data = forest_like(20_000, 9).project(&[0, 1, 2]);
    let (train, test) = pipeline(&data, QueryType::Halfspace, 300, 100, 10);
    let pts = PtsHist::fit(
        Rect::unit(3),
        &train,
        &PtsHistConfig::with_model_size(1200),
    )
    .unwrap();
    let r = evaluate(&pts, &test);
    assert!(r.rms < 0.06, "halfspace rms = {}", r.rms);
}

#[test]
fn ball_queries_learnable_end_to_end() {
    let data = forest_like(20_000, 11).project(&[0, 1, 2]);
    let (train, test) = pipeline(&data, QueryType::Ball, 300, 100, 12);
    let pts = PtsHist::fit(
        Rect::unit(3),
        &train,
        &PtsHistConfig::with_model_size(1200),
    )
    .unwrap();
    let r = evaluate(&pts, &test);
    assert!(r.rms < 0.06, "ball rms = {}", r.rms);
}

#[test]
fn error_decreases_with_training_size() {
    // The learnability claim, empirically: ε shrinks as n grows.
    let data = power_like(20_000, 13).project(&[0, 2]);
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
    let mut rng = rand::rngs::StdRng::seed_from_u64(14);
    let w = Workload::generate(&data, &spec, 900, &mut rng).unwrap();
    let (pool, test) = w.split(800);

    let mut last = f64::INFINITY;
    let mut improved = 0;
    for n in [25usize, 100, 400] {
        let (train_w, _) = pool.split(n);
        let model = QuadHist::fit_with_bucket_target(
            Rect::unit(2),
            &to_training(&train_w),
            4 * n,
            &QuadHistConfig::default(),
        )
        .unwrap();
        let r = evaluate(&model, &test);
        if r.rms < last {
            improved += 1;
        }
        last = r.rms;
    }
    assert!(improved >= 2, "error should shrink along the sweep");
}

#[test]
fn categorical_census_pipeline() {
    let data = census_like(20_000, 15).project(&[0, 8, 12]);
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven)
        .with_categorical(vec![0]);
    let mut rng = rand::rngs::StdRng::seed_from_u64(16);
    let w = Workload::generate(&data, &spec, 400, &mut rng).unwrap();
    let (train, test) = w.split(300);
    let pts = PtsHist::fit(
        Rect::unit(3),
        &to_training(&train),
        &PtsHistConfig::with_model_size(1200),
    )
    .unwrap();
    let r = evaluate(&pts, &test);
    assert!(r.rms < 0.1, "census rms = {}", r.rms);
}

#[test]
fn training_labels_can_be_noisy_agnostic_setting() {
    // The agnostic model (Section 2.1 Remark): labels need not come from
    // any true distribution. Training still minimizes empirical loss and
    // generalizes to the same noisy label distribution.
    let data = power_like(10_000, 17).project(&[0, 2]);
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
    let mut rng = rand::rngs::StdRng::seed_from_u64(18);
    let w = Workload::generate(&data, &spec, 300, &mut rng).unwrap();
    use rand::Rng;
    let noisy: Vec<TrainingQuery> = w
        .queries()
        .iter()
        .map(|q| TrainingQuery {
            range: q.range.clone(),
            selectivity: (q.selectivity + rng.gen_range(-0.02..0.02)).clamp(0.0, 1.0),
        })
        .collect();
    let (train, test) = (&noisy[..200], &noisy[200..]);
    let model = QuadHist::fit_with_bucket_target(
        Rect::unit(2),
        train,
        800,
        &QuadHistConfig::default(),
    )
    .unwrap();
    let est: Vec<f64> = test.iter().map(|q| model.estimate(&q.range)).collect();
    let truth: Vec<f64> = test.iter().map(|q| q.selectivity).collect();
    let rms = selearn::data::rms_error(&est, &truth);
    // can't beat the noise floor (~0.012 RMS), but must stay near it
    assert!(rms < 0.05, "noisy-label rms = {rms}");
}

#[test]
fn all_estimators_stay_in_unit_interval() {
    let data = power_like(5_000, 19).project(&[0, 2]);
    let (train, test) = pipeline(&data, QueryType::Rect, 100, 100, 20);
    let root = Rect::unit(2);
    let models: Vec<Box<dyn SelectivityEstimator + Send + Sync>> = vec![
        Box::new(QuadHist::fit(root.clone(), &train, &QuadHistConfig::default()).unwrap()),
        Box::new(PtsHist::fit(root.clone(), &train, &PtsHistConfig::with_model_size(200)).unwrap()),
        Box::new(QuickSel::fit(root.clone(), &train, &QuickSelConfig::default()).unwrap()),
        Box::new(Isomer::fit(root.clone(), &train, &IsomerConfig::default()).unwrap()),
        Box::new(UniformBaseline::new(root)),
    ];
    for m in &models {
        for q in test.queries() {
            let e = m.estimate(&q.range);
            assert!((0.0..=1.0).contains(&e), "{} emitted {e}", m.name());
        }
    }
}
