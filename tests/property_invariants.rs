//! Property-based integration tests (proptest) on cross-crate invariants.

use proptest::prelude::*;
use selearn::prelude::*;

/// Random training workloads of axis-aligned boxes with plausible labels.
fn training_strategy(max_q: usize) -> impl Strategy<Value = Vec<TrainingQuery>> {
    proptest::collection::vec(
        (
            0.0f64..0.8,
            0.0f64..0.8,
            0.05f64..0.5,
            0.05f64..0.5,
            0.0f64..1.0,
        ),
        1..max_q,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(x, y, w, h, s)| {
                TrainingQuery::new(
                    Rect::new(vec![x, y], vec![(x + w).min(1.0), (y + h).min(1.0)]),
                    s,
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// QuadHist always produces a probability distribution over buckets
    /// and estimates inside [0, 1], whatever the workload.
    #[test]
    fn quadhist_always_valid_distribution(train in training_strategy(12)) {
        let qh = QuadHist::fit(
            Rect::unit(2),
            &train,
            &QuadHistConfig::with_tau(0.05),
        )
        .unwrap();
        let total: f64 = qh.buckets().iter().map(|(_, w)| w).sum();
        prop_assert!((total - 1.0).abs() < 1e-5, "mass = {total}");
        for q in &train {
            let e = qh.estimate(&q.range);
            prop_assert!((0.0..=1.0).contains(&e));
        }
        // whole-space estimate is exactly the total mass
        let all: Range = Rect::unit(2).into();
        prop_assert!((qh.estimate(&all) - 1.0).abs() < 1e-5);
    }

    /// PtsHist: same invariants, plus the advertised model size.
    #[test]
    fn ptshist_always_valid_distribution(train in training_strategy(12)) {
        let ph = PtsHist::fit(
            Rect::unit(2),
            &train,
            &PtsHistConfig::with_model_size(64),
        )
        .unwrap();
        prop_assert_eq!(ph.num_buckets(), 64);
        let total: f64 = ph.support().map(|(_, w)| w).sum();
        prop_assert!((total - 1.0).abs() < 1e-5);
        let all: Range = Rect::unit(2).into();
        prop_assert!((ph.estimate(&all) - 1.0).abs() < 1e-5);
    }

    /// Additivity: for QuadHist, disjoint boxes tiling the space receive
    /// estimates summing to (about) 1.
    #[test]
    fn quadhist_estimates_are_additive(
        train in training_strategy(8),
        cut_x in 0.1f64..0.9,
        cut_y in 0.1f64..0.9,
    ) {
        let qh = QuadHist::fit(
            Rect::unit(2),
            &train,
            &QuadHistConfig::with_tau(0.05),
        )
        .unwrap();
        let quads: Vec<Range> = vec![
            Rect::new(vec![0.0, 0.0], vec![cut_x, cut_y]).into(),
            Rect::new(vec![cut_x, 0.0], vec![1.0, cut_y]).into(),
            Rect::new(vec![0.0, cut_y], vec![cut_x, 1.0]).into(),
            Rect::new(vec![cut_x, cut_y], vec![1.0, 1.0]).into(),
        ];
        let total: f64 = quads.iter().map(|r| qh.estimate(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-4, "tiles sum to {total}");
    }

    /// Monotonicity under query growth, for arbitrary workloads.
    #[test]
    fn quadhist_monotone(
        train in training_strategy(8),
        x in 0.0f64..0.5, y in 0.0f64..0.5,
        w in 0.1f64..0.4, h in 0.1f64..0.4,
        grow in 0.01f64..0.3,
    ) {
        let qh = QuadHist::fit(
            Rect::unit(2),
            &train,
            &QuadHistConfig::with_tau(0.05),
        )
        .unwrap();
        let inner: Range = Rect::new(vec![x, y], vec![x + w, y + h]).into();
        let outer: Range = Rect::new(
            vec![(x - grow).max(0.0), (y - grow).max(0.0)],
            vec![(x + w + grow).min(1.0), (y + h + grow).min(1.0)],
        ).into();
        prop_assert!(qh.estimate(&inner) <= qh.estimate(&outer) + 1e-9);
    }

    /// The exact selectivity oracle agrees with a brute-force recount for
    /// arbitrary boxes.
    #[test]
    fn oracle_matches_brute_force(
        x in 0.0f64..0.9, y in 0.0f64..0.9,
        w in 0.0f64..0.5, h in 0.0f64..0.5,
    ) {
        let data = power_like(2_000, 99).project(&[0, 2]);
        let r = Rect::new(vec![x, y], vec![(x + w).min(1.0), (y + h).min(1.0)]);
        let range: Range = r.clone().into();
        let oracle = data.selectivity(&range);
        let brute = data
            .rows()
            .filter(|row| {
                row[0] >= r.lo()[0] && row[0] <= r.hi()[0]
                    && row[1] >= r.lo()[1] && row[1] <= r.hi()[1]
            })
            .count() as f64 / data.len() as f64;
        prop_assert!((oracle - brute).abs() < 1e-12);
    }

    /// Halfspace exact volume is consistent with containment counting on
    /// a lattice (coarse agreement; the lattice is the approximation).
    #[test]
    fn halfspace_volume_vs_lattice(
        a in -1.0f64..1.0, b in -1.0f64..1.0, off in -0.5f64..1.5,
    ) {
        prop_assume!(a.abs() > 0.05 || b.abs() > 0.05);
        let h = Halfspace::new(vec![a, b], off);
        let exact = h.intersection_volume(&Rect::unit(2));
        let n = 60;
        let mut hits = 0usize;
        for i in 0..n {
            for j in 0..n {
                let p = Point::new(vec![
                    (i as f64 + 0.5) / n as f64,
                    (j as f64 + 0.5) / n as f64,
                ]);
                if h.contains(&p) {
                    hits += 1;
                }
            }
        }
        let lattice = hits as f64 / (n * n) as f64;
        prop_assert!((exact - lattice).abs() < 0.03, "exact {exact} vs lattice {lattice}");
    }
}
