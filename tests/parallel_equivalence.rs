//! Serial-vs-parallel equivalence suite.
//!
//! Only meaningful with the `parallel` feature: it trains and evaluates
//! the estimators under a forced 4-thread policy and under a forced
//! 1-thread (fully serial) policy — `rayon::ThreadPool::install` scopes
//! the thread count — and demands the results agree to 1e-12 or better.
//! The parallel kernels are designed to be *bitwise* deterministic
//! (order-preserving chunking, serial reduction order), so these tests
//! should never be anywhere near the tolerance.

#![cfg(feature = "parallel")]

use rand::rngs::StdRng;
use rand::SeedableRng;
use selearn::prelude::*;
use selearn_data::Dataset;

const TOL: f64 = 1e-12;

/// Runs `f` under a scoped rayon thread-count policy, so both the
/// parallel (4 threads) and the serial (1 thread) paths are exercised
/// deterministically regardless of the host's core count.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("pool")
        .install(f)
}

fn fixture() -> (Dataset, Vec<TrainingQuery>, Vec<Range>) {
    let data = power_like(20_000, 11).project(&[0, 1]);
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
    let mut rng = StdRng::seed_from_u64(42);
    let w = Workload::generate(&data, &spec, 1_400, &mut rng).unwrap();
    let (train_w, test_w) = w.split(400);
    let train = selearn::to_training(&train_w);
    let test: Vec<Range> = test_w.queries().iter().map(|q| q.range.clone()).collect();
    assert_eq!(test.len(), 1_000);
    (data, train, test)
}

#[test]
fn quadhist_weights_and_estimates_match_serial() {
    let (_, train, test) = fixture();
    let cfg = QuadHistConfig::with_tau(0.01);
    let par = with_threads(4, || QuadHist::fit(Rect::unit(2), &train, &cfg).unwrap());
    let ser = with_threads(1, || QuadHist::fit(Rect::unit(2), &train, &cfg).unwrap());

    let pb = par.buckets();
    let sb = ser.buckets();
    assert_eq!(pb.len(), sb.len(), "partition differs");
    for ((pr, pw), (sr, sw)) in pb.iter().zip(&sb) {
        assert_eq!(pr.lo(), sr.lo());
        assert_eq!(pr.hi(), sr.hi());
        assert!((pw - sw).abs() <= TOL, "weight drift: {pw} vs {sw}");
    }

    let pe = with_threads(4, || par.par_estimate_all(&test));
    let se = with_threads(1, || ser.estimate_all(&test));
    for (a, b) in pe.iter().zip(&se) {
        assert!((a - b).abs() <= TOL, "estimate drift: {a} vs {b}");
    }
}

#[test]
fn ptshist_weights_and_estimates_match_serial() {
    let (_, train, test) = fixture();
    let cfg = PtsHistConfig::with_model_size(256);
    let par = with_threads(4, || PtsHist::fit(Rect::unit(2), &train, &cfg).unwrap());
    let ser = with_threads(1, || PtsHist::fit(Rect::unit(2), &train, &cfg).unwrap());

    let ps: Vec<_> = par.support().collect();
    let ss: Vec<_> = ser.support().collect();
    assert_eq!(ps.len(), ss.len());
    for ((pp, pw), (sp, sw)) in ps.iter().zip(&ss) {
        // the support is sampled by the (serial) RNG phase — identical points
        assert_eq!(pp.coords(), sp.coords(), "support point differs");
        assert!((pw - sw).abs() <= TOL, "weight drift: {pw} vs {sw}");
    }

    let pe = with_threads(4, || par.par_estimate_all(&test));
    let se = with_threads(1, || ser.estimate_all(&test));
    for (a, b) in pe.iter().zip(&se) {
        assert!((a - b).abs() <= TOL, "estimate drift: {a} vs {b}");
    }
}

#[test]
fn par_estimate_all_matches_per_query_loop() {
    let (_, train, test) = fixture();
    let model = QuadHist::fit(Rect::unit(2), &train, &QuadHistConfig::with_tau(0.02)).unwrap();
    // batch is ≥ the dispatch threshold, so with 4 threads this takes the
    // parallel path; serial `estimate_all` and the per-query loop agree
    // with it bitwise by the order-preserving chunking contract
    let batch = with_threads(4, || model.par_estimate_all(&test));
    let serial = model.estimate_all(&test);
    let single: Vec<f64> = test.iter().map(|r| model.estimate(r)).collect();
    assert_eq!(batch.len(), single.len());
    for ((a, b), c) in batch.iter().zip(&single).zip(&serial) {
        assert_eq!(a.to_bits(), b.to_bits(), "batch vs single drift: {a} vs {b}");
        assert_eq!(a.to_bits(), c.to_bits(), "batch vs serial drift: {a} vs {c}");
    }
}

#[test]
fn workload_generation_matches_serial() {
    let data = power_like(20_000, 13).project(&[0, 1]);
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::Random);
    let par = with_threads(4, || {
        Workload::generate(&data, &spec, 400, &mut StdRng::seed_from_u64(7)).unwrap()
    });
    let ser = with_threads(1, || {
        Workload::generate(&data, &spec, 400, &mut StdRng::seed_from_u64(7)).unwrap()
    });
    for (a, b) in par.queries().iter().zip(ser.queries()) {
        assert_eq!(a.selectivity.to_bits(), b.selectivity.to_bits());
    }
}

/// Wall-clock comparison of serial vs parallel QuadHist training on a
/// ~10k-query workload. Ignored by default (it is a measurement, not an
/// assertion — speedup depends on the host's core count); run with
///
/// ```sh
/// cargo test --release --features parallel speedup -- --ignored --nocapture
/// ```
#[test]
#[ignore = "timing measurement; run explicitly with --ignored --nocapture"]
fn speedup_measurement_quadhist_10k() {
    use std::time::Instant;

    let data = power_like(50_000, 11).project(&[0, 1]);
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
    let mut rng = StdRng::seed_from_u64(42);
    let w = Workload::generate(&data, &spec, 10_000, &mut rng).unwrap();
    let train = selearn::to_training(&w);
    let test: Vec<Range> = w.queries().iter().map(|q| q.range.clone()).collect();
    let cfg = QuadHistConfig::with_tau(0.005);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut timings = Vec::new();
    for threads in [1usize, cores.max(4)] {
        let t0 = Instant::now();
        let model = with_threads(threads, || QuadHist::fit(Rect::unit(2), &train, &cfg).unwrap());
        let fit_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let est = with_threads(threads, || model.par_estimate_all(&test));
        let predict_ms = t1.elapsed().as_secs_f64() * 1e3;
        println!(
            "threads={threads:>2}  fit {fit_ms:>9.1} ms   par_estimate_all({}) {predict_ms:>8.1} ms",
            est.len()
        );
        timings.push((threads, fit_ms, predict_ms));
    }
    let (_, sf, sp) = timings[0];
    let (pt, pf, pp) = timings[1];
    println!(
        "host cores={cores}  fit speedup {:.2}x, predict speedup {:.2}x at {pt} threads",
        sf / pf,
        sp / pp
    );
}

#[test]
fn frozen_matches_tree_under_parallel_batching() {
    let (_, train, test) = fixture();
    let model = QuadHist::fit(Rect::unit(2), &train, &QuadHistConfig::with_tau(0.02)).unwrap();
    let frozen = model.freeze();
    // The frozen artifact must agree with the pointer tree bitwise on the
    // parallel chunked path too, not just per query.
    let ft = with_threads(4, || frozen.par_estimate_all(&test));
    let tt = with_threads(4, || model.par_estimate_all(&test));
    let fs = frozen.estimate_all(&test);
    for ((a, b), c) in ft.iter().zip(&tt).zip(&fs) {
        assert_eq!(a.to_bits(), b.to_bits(), "frozen vs tree drift: {a} vs {b}");
        assert_eq!(a.to_bits(), c.to_bits(), "parallel vs serial drift: {a} vs {c}");
    }
}

#[test]
fn quadhist_linf_and_nnls_solvers_match_serial() {
    let (_, train, test) = fixture();
    for cfg in [
        QuadHistConfig::with_tau(0.02).objective(Objective::LInfSmoothed),
        QuadHistConfig::with_tau(0.02).solver(WeightSolver::NnlsPenalty),
    ] {
        let par = with_threads(4, || QuadHist::fit(Rect::unit(2), &train, &cfg).unwrap());
        let ser = with_threads(1, || QuadHist::fit(Rect::unit(2), &train, &cfg).unwrap());
        let pe = with_threads(4, || par.par_estimate_all(&test));
        let se = with_threads(1, || ser.estimate_all(&test));
        for (a, b) in pe.iter().zip(&se) {
            assert!((a - b).abs() <= TOL, "estimate drift: {a} vs {b}");
        }
    }
}
