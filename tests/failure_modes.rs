//! Failure-injection and edge-case integration tests: the estimators must
//! stay well-defined under degenerate workloads, extreme labels, and
//! adversarial query shapes.

use selearn::prelude::*;

fn all_models(train: &[TrainingQuery], dim: usize) -> Vec<Box<dyn SelectivityEstimator + Send + Sync>> {
    let root = Rect::unit(dim);
    vec![
        Box::new(QuadHist::fit(root.clone(), train, &QuadHistConfig::default()).unwrap()),
        Box::new(PtsHist::fit(root.clone(), train, &PtsHistConfig::with_model_size(100)).unwrap()),
        Box::new(QuickSel::fit(root.clone(), train, &QuickSelConfig::default()).unwrap()),
        Box::new(Isomer::fit(root, train, &IsomerConfig::default()).unwrap()),
    ]
}

#[test]
fn empty_workload_everywhere() {
    for m in all_models(&[], 2) {
        let r: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]).into();
        let e = m.estimate(&r);
        assert!(e.is_finite(), "{} emitted {e}", m.name());
        assert!((0.0..=1.0).contains(&e));
    }
}

#[test]
fn single_query_workloads() {
    for s in [0.0, 0.5, 1.0] {
        let train = vec![TrainingQuery::new(
            Rect::new(vec![0.25, 0.25], vec![0.75, 0.75]),
            s,
        )];
        for m in all_models(&train, 2) {
            let e = m.estimate(&train[0].range);
            // A selectivity-0 query never triggers QuadHist refinement
            // (p = 0 in Algorithm 2), so its single uniform bucket can do
            // no better than the query's volume fraction (0.25); QuickSel
            // has the mirror-image limit (every kernel overlaps the query,
            // so mass cannot be placed strictly outside). Every other case
            // must fit tightly.
            let tol = if s == 0.0 && matches!(m.name(), "QuadHist" | "QuickSel") {
                0.26
            } else {
                0.15
            };
            assert!(
                (e - s).abs() < tol,
                "{} fit {e} for a single query labeled {s}",
                m.name()
            );
        }
    }
}

#[test]
fn contradictory_duplicate_queries() {
    // Same range labeled 0.2 and 0.8: no model can satisfy both; all must
    // stay finite and land between the contradictions.
    let r = Rect::new(vec![0.2, 0.2], vec![0.8, 0.8]);
    let train = vec![
        TrainingQuery::new(r.clone(), 0.2),
        TrainingQuery::new(r.clone(), 0.8),
    ];
    for m in all_models(&train, 2) {
        let e = m.estimate(&Range::Rect(r.clone()));
        assert!(e.is_finite(), "{}", m.name());
        assert!(
            (0.1..=0.9).contains(&e),
            "{} fit {e}, expected a compromise near 0.5",
            m.name()
        );
    }
}

#[test]
fn degenerate_zero_volume_queries_everywhere() {
    // A workload made ONLY of zero-volume (equality-predicate) ranges.
    let train: Vec<TrainingQuery> = (0..5)
        .map(|i| {
            let x = 0.1 + 0.2 * i as f64;
            TrainingQuery::new(Rect::new(vec![x, 0.0], vec![x, 1.0]), 0.1)
        })
        .collect();
    for m in all_models(&train, 2) {
        let probe: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]).into();
        let e = m.estimate(&probe);
        assert!(e.is_finite() && (0.0..=1.0).contains(&e), "{}", m.name());
    }
}

#[test]
fn whole_space_and_empty_queries() {
    let train = vec![
        TrainingQuery::new(Rect::unit(2), 1.0),
        TrainingQuery::new(Rect::new(vec![0.9, 0.9], vec![0.90001, 0.90001]), 0.0),
    ];
    for m in all_models(&train, 2) {
        let all: Range = Rect::unit(2).into();
        assert!(
            (m.estimate(&all) - 1.0).abs() < 0.05,
            "{} whole-space estimate {}",
            m.name(),
            m.estimate(&all)
        );
    }
}

#[test]
fn labels_at_extremes_dont_break_solvers() {
    // All-zero labels and all-one labels, including under the NNLS and
    // L∞ pathways.
    let ranges: Vec<Rect> = (0..6)
        .map(|i| {
            let t = i as f64 / 8.0;
            Rect::new(vec![t, t], vec![t + 0.25, t + 0.25])
        })
        .collect();
    for label in [0.0f64, 1.0] {
        let train: Vec<TrainingQuery> = ranges
            .iter()
            .map(|r| TrainingQuery::new(r.clone(), label))
            .collect();
        for (name, cfg) in [
            ("fista", QuadHistConfig::default()),
            (
                "nnls",
                QuadHistConfig::default().solver(WeightSolver::NnlsPenalty),
            ),
            (
                "linf",
                QuadHistConfig::default().objective(Objective::LInfExact),
            ),
        ] {
            let qh = QuadHist::fit(Rect::unit(2), &train, &cfg).unwrap();
            let total: f64 = qh.buckets().iter().map(|(_, w)| w).sum();
            assert!(
                (total - 1.0).abs() < 1e-5,
                "{name}: mass {total} at label {label}"
            );
        }
    }
}

#[test]
fn thin_sliver_queries() {
    // Extremely anisotropic boxes stress the volume code paths.
    let train = vec![
        TrainingQuery::new(Rect::new(vec![0.0, 0.499], vec![1.0, 0.501]), 0.3),
        TrainingQuery::new(Rect::new(vec![0.499, 0.0], vec![0.501, 1.0]), 0.4),
    ];
    for m in all_models(&train, 2) {
        for q in &train {
            let e = m.estimate(&q.range);
            assert!(e.is_finite() && (0.0..=1.0).contains(&e), "{}", m.name());
        }
    }
}

#[test]
fn queries_partially_outside_domain() {
    // Ball and halfspace queries that extend beyond [0,1]^2.
    let train = vec![
        TrainingQuery::new(Ball::new(Point::new(vec![0.0, 0.0]), 0.5), 0.3),
        TrainingQuery::new(Ball::new(Point::new(vec![1.2, 0.5]), 0.4), 0.05),
        TrainingQuery::new(Halfspace::new(vec![1.0, 1.0], 1.7), 0.02),
    ];
    let root = Rect::unit(2);
    let qh = QuadHist::fit(root.clone(), &train, &QuadHistConfig::with_tau(0.02)).unwrap();
    let ph = PtsHist::fit(root, &train, &PtsHistConfig::with_model_size(200)).unwrap();
    for q in &train {
        for (name, e) in [("quad", qh.estimate(&q.range)), ("pts", ph.estimate(&q.range))] {
            assert!(
                (e - q.selectivity).abs() < 0.12,
                "{name}: est {e} vs true {}",
                q.selectivity
            );
        }
    }
}

#[test]
fn one_dimensional_dataset_pipeline() {
    // d = 1 exercises every degenerate-dimension branch (fanout 2, 1-D
    // ball = interval, halfspace = ray).
    let data = power_like(5_000, 51).project(&[0]);
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
    let mut rng = rand::rngs::StdRng::seed_from_u64(52);
    let w = Workload::generate(&data, &spec, 150, &mut rng).unwrap();
    let (train, test) = w.split(100);
    let qh = QuadHist::fit(
        Rect::unit(1),
        &to_training(&train),
        &QuadHistConfig::with_tau(0.01),
    )
    .unwrap();
    let r = evaluate(&qh, &test);
    assert!(r.rms < 0.05, "1-D rms = {}", r.rms);
}

#[test]
fn large_bucket_targets_cap_gracefully() {
    // Asking for more buckets than the workload can drive must not spin.
    let train = vec![TrainingQuery::new(
        Rect::new(vec![0.4, 0.4], vec![0.6, 0.6]),
        0.5,
    )];
    let qh = QuadHist::fit_with_bucket_target(
        Rect::unit(2),
        &train,
        100_000,
        &QuadHistConfig::default(),
    )
    .unwrap();
    assert!(qh.num_buckets() >= 4);
    assert!(qh.num_buckets() <= 100_000);
}
