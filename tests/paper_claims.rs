//! The paper's specific claims, encoded as executable assertions.
//! Each test names the section/lemma/figure it validates.

use selearn::prelude::*;
use selearn::theory;

/// Lemma A.4: QuadHist's partition is order-independent — at realistic
/// workload scale, not just toy inputs.
#[test]
fn lemma_a4_order_independence_at_scale() {
    let data = power_like(10_000, 31).project(&[0, 2]);
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
    let mut rng = rand::rngs::StdRng::seed_from_u64(32);
    let w = Workload::generate(&data, &spec, 120, &mut rng).unwrap();
    let mut train = to_training(&w);

    let cfg = QuadHistConfig::with_tau(0.01);
    let a = QuadHist::design_buckets(&Rect::unit(2), &train, &cfg).unwrap();
    train.reverse();
    let b = QuadHist::design_buckets(&Rect::unit(2), &train, &cfg).unwrap();
    // same partition ⇒ same number of leaves and identical sorted boxes
    assert_eq!(a.num_leaves(), b.num_leaves());
    let dump = |t: &selearn::core::QuadTree| {
        let mut v: Vec<String> = t
            .leaves()
            .iter()
            .map(|&l| format!("{:?}", t.rect(l)))
            .collect();
        v.sort();
        v
    };
    assert_eq!(dump(&a), dump(&b));
}

/// Lemma 3.1: the arrangement-based model minimizes training loss over
/// all histograms; every bounded-complexity model can only do worse.
#[test]
fn lemma_3_1_arrangement_optimality() {
    let data = power_like(5_000, 33).project(&[0, 2]);
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
    let mut rng = rand::rngs::StdRng::seed_from_u64(34);
    let w = Workload::generate(&data, &spec, 12, &mut rng).unwrap();
    let train = to_training(&w);

    let arr = ArrangementHist::fit(Rect::unit(2), &train, &ArrangementHistConfig::default()).unwrap();
    let arr_loss = arr.training_loss(&train);

    for target in [16usize, 64, 256] {
        let qh = QuadHist::fit_with_bucket_target(
            Rect::unit(2),
            &train,
            target,
            &QuadHistConfig::default(),
        )
        .unwrap();
        let qh_loss: f64 = train
            .iter()
            .map(|q| (qh.estimate(&q.range) - q.selectivity).powi(2))
            .sum();
        assert!(
            arr_loss <= qh_loss + 1e-7,
            "arrangement loss {arr_loss} vs QuadHist({target}) {qh_loss}"
        );
    }
    // consistent labels ⇒ the optimum is (near) zero
    assert!(arr_loss < 1e-6, "arrangement loss {arr_loss}");
}

/// Section 2.2 / Figure 2: VC-dimension facts for the three query classes.
#[test]
fn section_2_2_vc_dimensions() {
    assert_eq!(RangeClass::Rect.vc_dim(2), 4);
    assert_eq!(RangeClass::Rect.vc_dim(3), 6);
    assert_eq!(RangeClass::Halfspace.vc_dim(4), 5);
    assert_eq!(RangeClass::Ball.vc_dim(4), 6);
    // Theorem 2.1 exponents quoted in Section 2.2
    assert_eq!(RangeClass::Rect.sample_exponent(2), 7); // 2d+3
    assert_eq!(RangeClass::Halfspace.sample_exponent(2), 6); // d+4
    assert_eq!(RangeClass::Ball.sample_exponent(2), 7); // d+5
}

/// Lemma 2.7 / Figure 5: infinite VC-dim (convex polygons) gives infinite
/// fat-shattering dimension via delta distributions.
#[test]
fn lemma_2_7_polygons_not_learnable() {
    for k in 1..=3 {
        let (ranges, sigma, candidates) = theory::delta_distribution_fat_construction(k);
        assert!(
            theory::is_gamma_shattered(&ranges, &sigma, 0.49, &candidates),
            "construction must γ-shatter k = {k} polygon ranges"
        );
        // but NOT for γ > 1/2: selectivities live in [0,1] and σ = 1/2
        assert!(
            !theory::is_gamma_shattered(&ranges, &sigma, 0.51, &candidates),
            "γ > 1/2 must be impossible"
        );
    }
}

/// Section 4.2: learning works even when the query distribution is
/// independent of the (skewed) data distribution.
#[test]
fn section_4_2_random_workload_still_learnable() {
    let data = power_like(20_000, 35).project(&[0, 2]);
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::Random);
    let mut rng = rand::rngs::StdRng::seed_from_u64(36);
    let w = Workload::generate(&data, &spec, 500, &mut rng).unwrap();
    let (train, test) = w.split(400);
    let model = QuadHist::fit_with_bucket_target(
        Rect::unit(2),
        &to_training(&train),
        1600,
        &QuadHistConfig::default(),
    )
    .unwrap();
    let r = evaluate(&model, &test);
    assert!(r.rms < 0.05, "random-workload rms = {}", r.rms);
}

/// Section 4.2 (Figure 7 discussion): the weight-assignment step pushes
/// mass back toward the true data region even when buckets "bleed" into
/// sparse areas — total learned mass in the data's dense half must
/// dominate.
#[test]
fn figure_7_weight_assignment_recovers_density() {
    let data = power_like(20_000, 37).project(&[0, 2]);
    // true mass in the low-x half
    let low_half: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 1.0]).into();
    let true_low = data.selectivity(&low_half);
    assert!(true_low > 0.6, "Power-like data should skew low on attr 0");

    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::Random);
    let mut rng = rand::rngs::StdRng::seed_from_u64(38);
    let w = Workload::generate(&data, &spec, 500, &mut rng).unwrap();
    let model = QuadHist::fit_with_bucket_target(
        Rect::unit(2),
        &to_training(&w),
        2000,
        &QuadHistConfig::default(),
    )
    .unwrap();
    let learned_low = model.estimate(&low_half);
    assert!(
        (learned_low - true_low).abs() < 0.05,
        "learned low-half mass {learned_low} vs true {true_low}"
    );
}

/// Section 4.5: the same generic estimator handles halfspaces and balls —
/// classes with no traditional histogram methods.
#[test]
fn section_4_5_other_query_types_match_rect_quality() {
    let data = forest_like(20_000, 39).project(&[0, 1]);
    let mut results = Vec::new();
    for qt in [QueryType::Rect, QueryType::Halfspace, QueryType::Ball] {
        let spec = WorkloadSpec::new(qt, CenterDistribution::DataDriven);
        let mut rng = rand::rngs::StdRng::seed_from_u64(40);
        let w = Workload::generate(&data, &spec, 400, &mut rng).unwrap();
        let (train, test) = w.split(300);
        let model = PtsHist::fit(
            Rect::unit(2),
            &to_training(&train),
            &PtsHistConfig::with_model_size(1200),
        )
        .unwrap();
        results.push((qt, evaluate(&model, &test).rms));
    }
    for (qt, rms) in &results {
        assert!(*rms < 0.06, "{qt:?} rms = {rms}");
    }
}

/// Section 4.6: the L2-trained model also controls L∞ test error, while
/// the L∞-trained model does not reliably control L2 — at minimum, L2
/// training must not be worse on its own metric.
#[test]
fn section_4_6_objective_comparison() {
    let data = power_like(20_000, 41).project(&[0, 2]);
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let w = Workload::generate(&data, &spec, 400, &mut rng).unwrap();
    let (train_w, test) = w.split(300);
    let train = to_training(&train_w);

    let l2 = QuadHist::fit_with_bucket_target(
        Rect::unit(2),
        &train,
        800,
        &QuadHistConfig::default().objective(Objective::L2),
    )
    .unwrap();
    let linf = QuadHist::fit_with_bucket_target(
        Rect::unit(2),
        &train,
        800,
        &QuadHistConfig::default().objective(Objective::LInfSmoothed),
    )
    .unwrap();
    let r2 = evaluate(&l2, &test);
    let ri = evaluate(&linf, &test);
    assert!(
        r2.rms <= ri.rms * 1.5 + 0.01,
        "L2-trained should win on RMS: {} vs {}",
        r2.rms,
        ri.rms
    );
    // both remain usable models
    assert!(ri.rms < 0.1, "L∞-trained rms = {}", ri.rms);
}

/// Section 4.1 (Figure 9): with fixed training size, error flattens (or
/// degrades) as model complexity grows — no free lunch from more buckets.
#[test]
fn figure_9_complexity_saturation() {
    let data = power_like(20_000, 43).project(&[0, 2]);
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
    let mut rng = rand::rngs::StdRng::seed_from_u64(44);
    let w = Workload::generate(&data, &spec, 160, &mut rng).unwrap();
    let (train_w, test) = w.split(60);
    let train = to_training(&train_w);

    let coarse = QuadHist::fit(Rect::unit(2), &train, &QuadHistConfig::with_tau(0.1)).unwrap();
    let medium = QuadHist::fit(Rect::unit(2), &train, &QuadHistConfig::with_tau(0.01)).unwrap();
    let rc = evaluate(&coarse, &test).rms;
    let rm = evaluate(&medium, &test).rms;
    // medium complexity beats very coarse
    assert!(rm < rc, "more buckets should help early: {rm} vs {rc}");
}

/// The deep-learning pathology the paper excludes by construction
/// (Section 4, "Methods Compared"): our models are monotone — a larger
/// query never gets a smaller estimate.
#[test]
fn estimates_are_monotone_under_query_containment() {
    let data = power_like(10_000, 45).project(&[0, 2]);
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
    let mut rng = rand::rngs::StdRng::seed_from_u64(46);
    let w = Workload::generate(&data, &spec, 200, &mut rng).unwrap();
    let train = to_training(&w);
    let root = Rect::unit(2);
    let models: Vec<Box<dyn SelectivityEstimator + Send + Sync>> = vec![
        Box::new(QuadHist::fit(root.clone(), &train, &QuadHistConfig::default()).unwrap()),
        Box::new(PtsHist::fit(root.clone(), &train, &PtsHistConfig::with_model_size(400)).unwrap()),
        Box::new(QuickSel::fit(root.clone(), &train, &QuickSelConfig::default()).unwrap()),
        Box::new(Isomer::fit(root.clone(), &train, &IsomerConfig::default()).unwrap()),
    ];
    use rand::Rng;
    for _ in 0..50 {
        let lo = [rng.gen::<f64>() * 0.5, rng.gen::<f64>() * 0.5];
        let hi = [lo[0] + rng.gen::<f64>() * 0.3, lo[1] + rng.gen::<f64>() * 0.3];
        let inner: Range = Rect::new(lo.to_vec(), hi.to_vec()).into();
        let outer: Range = Rect::new(
            [lo[0] - 0.1, lo[1] - 0.1].iter().map(|v| v.max(0.0)).collect(),
            [hi[0] + 0.1, hi[1] + 0.1].iter().map(|v| v.min(1.0)).collect(),
        )
        .into();
        for m in &models {
            let ei = m.estimate(&inner);
            let eo = m.estimate(&outer);
            assert!(
                ei <= eo + 1e-9,
                "{} violates monotonicity: inner {ei} > outer {eo}",
                m.name()
            );
        }
    }
}
