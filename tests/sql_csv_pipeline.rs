//! End-to-end "adoption path" test: load a relation from CSV, train a
//! model from SQL-style predicate feedback, estimate ad-hoc predicates.

use selearn::data::{load_csv, parse_csv};
use selearn::predicate::parse_predicate;
use selearn::prelude::*;

/// A small synthetic CSV relation with one categorical column.
fn make_csv() -> String {
    let mut s = String::from("price,region,qty\n");
    let mut seed = 7u64;
    let mut next = move || {
        // xorshift for a dependency-free deterministic stream
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed % 10_000) as f64 / 10_000.0
    };
    for _ in 0..3_000 {
        let u = next();
        // skewed price, correlated qty, 3-way region
        let price = (u * u * 100.0).round() / 100.0;
        let region = match (next() * 10.0) as u32 {
            0..=5 => "east",
            6..=8 => "west",
            _ => "north",
        };
        let qty = ((0.5 * u + 0.5 * next()) * 50.0).round();
        s.push_str(&format!("{price},{region},{qty}\n"));
    }
    s
}

#[test]
fn csv_to_sql_estimation_pipeline() {
    let (data, schema) = parse_csv(&make_csv(), true, "orders".into()).unwrap();
    assert_eq!(data.dim(), 3);
    assert_eq!(schema.categorical_dims(), vec![1]); // region

    // train from a data-driven workload with equality predicates on region
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven)
        .with_categorical(schema.categorical_dims());
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let workload = Workload::generate(&data, &spec, 400, &mut rng).unwrap();
    let (train, test) = workload.split(300);
    let model = PtsHist::fit(
        Rect::unit(3),
        &to_training(&train),
        &PtsHistConfig::with_model_size(1200),
    )
    .unwrap();
    let report = evaluate(&model, &test);
    assert!(report.rms < 0.1, "rms = {}", report.rms);

    // ad-hoc SQL predicates against the loaded schema
    let names: Vec<&str> = schema.names.iter().map(String::as_str).collect();
    for sql in [
        "price <= 0.25",
        "price BETWEEN 0.1 AND 0.6 AND qty <= 0.5",
        "price + qty <= 0.8",
    ] {
        let range = parse_predicate(sql, &names).unwrap();
        let truth = data.selectivity(&range);
        let est = model.estimate(&range);
        assert!(
            (est - truth).abs() < 0.12,
            "{sql}: est {est} vs truth {truth}"
        );
    }
}

#[test]
fn csv_loader_and_workloads_respect_categorical_codes() {
    let (data, schema) = parse_csv(&make_csv(), true, "orders".into()).unwrap();
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven)
        .with_categorical(schema.categorical_dims());
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    let w = Workload::generate(&data, &spec, 60, &mut rng).unwrap();
    // region has 3 codes {0, 0.5, 1}; each equality slab must select
    // exactly one, so selectivity equals that region's frequency
    for q in w.queries() {
        let r = q.range.as_rect().unwrap();
        let (lo, hi) = (r.lo()[1], r.hi()[1]);
        let codes: std::collections::BTreeSet<u64> = data
            .rows()
            .filter(|row| lo <= row[1] && row[1] <= hi)
            .map(|row| (row[1] * 100.0).round() as u64)
            .collect();
        assert_eq!(codes.len(), 1, "slab [{lo}, {hi}] spans {codes:?}");
    }
}

#[test]
fn file_roundtrip_pipeline() {
    let dir = std::env::temp_dir().join("selearn_sqlcsv_it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("orders.csv");
    std::fs::write(&path, make_csv()).unwrap();
    let (data, schema) = load_csv(&path, true).unwrap();
    assert_eq!(data.len(), 3_000);
    assert_eq!(schema.names, vec!["price", "region", "qty"]);
    std::fs::remove_dir_all(&dir).ok();
}
