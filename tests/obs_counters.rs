//! Observability under concurrency: counter atomicity and aggregate
//! determinism with the forced-thread-count policy of
//! `parallel_equivalence.rs`, plus the NullSink overhead measurement.
//!
//! These tests live in their own integration binary because they toggle
//! the process-global obs state (`enable_stats`, registries); a file-local
//! lock serializes them against each other.

use selearn::prelude::*;
use std::sync::Mutex;

/// Obs state is process-global; tests in this file must not interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(feature = "parallel")]
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("pool")
        .install(f)
}

fn fixture_train() -> Vec<TrainingQuery> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let data = selearn_data::power_like(20_000, 11).project(&[0, 1]);
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
    let mut rng = StdRng::seed_from_u64(42);
    let w = Workload::generate(&data, &spec, 400, &mut rng).unwrap();
    selearn::to_training(&w)
}

/// Raw atomicity: concurrent bumps from a forced 4-thread pool must never
/// lose an increment, and histogram recording must never lose a sample.
#[cfg(feature = "parallel")]
#[test]
fn counter_bumps_are_atomic_under_forced_parallelism() {
    use rayon::prelude::*;
    let _g = TEST_LOCK.lock().unwrap();
    selearn_obs::reset();
    selearn_obs::enable_stats(true);

    const N: usize = 50_000;
    with_threads(4, || {
        (0..N).into_par_iter().for_each(|i| {
            selearn_obs::counter_add("obs_test.atomic", 3);
            selearn_obs::histogram_record("obs_test.lat", (i % 7) as f64 + 0.5);
        });
    });

    assert_eq!(selearn_obs::counter_get("obs_test.atomic"), 3 * N as u64);
    let h = selearn_obs::metrics::histogram_get("obs_test.lat").expect("histogram exists");
    assert_eq!(h.count, N as u64);
    assert!(h.min >= 0.5 && h.max <= 6.5, "min {} max {}", h.min, h.max);

    selearn_obs::enable_stats(false);
    selearn_obs::reset();
}

/// Pipeline-level determinism: a 4-thread QuadHist fit must record exactly
/// the counter values and histogram sample counts of the serial fit — the
/// bump *set* is identical, only the interleaving differs.
#[cfg(feature = "parallel")]
#[test]
fn pipeline_counters_match_serial_under_forced_parallelism() {
    let _g = TEST_LOCK.lock().unwrap();
    let train = fixture_train();
    let cfg = QuadHistConfig::with_tau(0.01);

    let snapshot = |threads: usize| -> (u64, u64, u64, u64) {
        selearn_obs::reset();
        selearn_obs::enable_stats(true);
        let _model = with_threads(threads, || QuadHist::fit(Rect::unit(2), &train, &cfg));
        let out = (
            selearn_obs::counter_get("quadtree_splits"),
            selearn_obs::counter_get("design_matrix_entries"),
            selearn_obs::counter_get("mc_samples_drawn"),
            selearn_obs::metrics::histogram_get("fista.residual").map_or(0, |h| h.count),
        );
        selearn_obs::enable_stats(false);
        selearn_obs::reset();
        out
    };

    let ser = snapshot(1);
    let par = snapshot(4);
    assert!(ser.0 > 0, "fixture fit must split the quadtree");
    assert!(ser.3 > 0, "fixture fit must run FISTA iterations");
    assert_eq!(ser, par, "aggregates diverged between 1 and 4 threads");
}

/// NullSink overhead measurement on the `speedup_measurement_quadhist_10k`
/// fixture: with no sink installed, stats-on training must stay within the
/// 5% budget of stats-off training (DESIGN.md "Overhead budget"). Ignored
/// by default — it is a wall-clock measurement; CI runs it with
///
/// ```sh
/// cargo test --release --features parallel,obs-jsonl nullsink_overhead -- --ignored --nocapture
/// ```
#[test]
#[ignore = "timing measurement; run explicitly with --ignored --nocapture"]
fn nullsink_overhead_within_budget() {
    use std::time::Instant;
    let _g = TEST_LOCK.lock().unwrap();
    let train = fixture_train();
    let cfg = QuadHistConfig::with_tau(0.005);

    // Best-of-N wall time: the minimum over repeats is the stable
    // estimator of intrinsic cost on a shared/noisy host.
    let best_ms = |stats_on: bool| -> f64 {
        selearn_obs::reset();
        selearn_obs::enable_stats(stats_on);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            let model = QuadHist::fit(Rect::unit(2), &train, &cfg).unwrap();
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            assert!(model.num_buckets() > 0);
        }
        selearn_obs::enable_stats(false);
        selearn_obs::reset();
        best
    };

    let off = best_ms(false);
    let on = best_ms(true);
    let ratio = on / off;
    println!("stats off {off:.1} ms, stats on {on:.1} ms, ratio {ratio:.3}");
    assert!(
        ratio < 1.05,
        "NullSink overhead {:.1}% exceeds the 5% budget ({off:.1} ms -> {on:.1} ms)",
        (ratio - 1.0) * 100.0
    );
}
