//! Drives the `selearn-repl` binary end-to-end through a piped script.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_script(script: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_selearn-repl"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repl");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("repl exits");
    assert!(out.status.success(), "repl crashed: {out:?}");
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn full_session_train_estimate_persist() {
    let dir = std::env::temp_dir().join("selearn_repl_it");
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("m.selearn");
    let script = format!
        ("synth power 4000 1\nproject 0 2\ntrain quadhist 150 3\nestimate a0 <= 0.3\nsave {p}\nopen {p}\nestimate a0 <= 0.3\ninfo\nquit\n",
        p = model_path.display()
    );
    let out = run_script(&script);
    assert!(out.contains("generated Power"), "{out}");
    assert!(out.contains("trained QuadHist"), "{out}");
    assert!(out.contains("estimated ="), "{out}");
    assert!(out.contains("saved model"), "{out}");
    assert!(out.contains("opened QuadHist"), "{out}");
    // the re-opened model must answer identically: the same line appears
    // twice in the transcript
    let estimates: Vec<&str> = out
        .lines()
        .filter(|l| l.contains("estimated ="))
        .collect();
    assert_eq!(estimates.len(), 2);
    assert_eq!(estimates[0], estimates[1], "reload changed the estimate");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_are_reported_not_fatal() {
    let out = run_script(
        "estimate a0 <= 0.5\nsynth nosuch\ntrain quadhist\nproject 99\nbogus\nquit\n",
    );
    assert!(out.contains("error: load a dataset first"), "{out}");
    assert!(out.contains("error: unknown synthetic dataset"), "{out}");
    assert!(out.contains("error: unknown command"), "{out}");
    assert!(out.contains("bye"), "session must survive errors: {out}");
}

#[test]
fn ptshist_pipeline_with_categorical_schema() {
    let out = run_script(
        "synth census 4000 2\nproject 0 8\ntrain ptshist 150 5\nestimate a8 BETWEEN 0.2 AND 0.6\nquit\n",
    );
    assert!(out.contains("trained PtsHist"), "{out}");
    assert!(out.contains("q-error"), "{out}");
}
