//! Using a learned estimator inside a toy cost-based query optimizer.
//!
//! ```text
//! cargo run --release --example optimizer_integration
//! ```
//!
//! Selectivity estimation exists to serve plan selection: the optimizer
//! compares candidate predicate orders by their estimated intermediate
//! result sizes. This example builds a tiny conjunctive-filter optimizer
//! on top of the `SelectivityEstimator` trait and shows that plans picked
//! with QuadHist estimates track the plans picked with true selectivities
//! far better than the uniformity assumption — the end-to-end payoff the
//! paper's introduction motivates.

use selearn::prelude::*;

/// Cost of evaluating a conjunction of filters in a given order: each
/// filter scans the survivors of the previous one. (The classic
/// independent-predicate cost model; costs are in expected tuple visits.)
fn plan_cost(selectivities: &[f64], order: &[usize]) -> f64 {
    let mut live = 1.0;
    let mut cost = 0.0;
    for &i in order {
        cost += live;
        live *= selectivities[i];
    }
    cost
}

/// Pick the cheapest left-deep order by exhaustive search (3 filters).
fn best_order(sel: &[f64]) -> Vec<usize> {
    let mut best: Option<(f64, Vec<usize>)> = None;
    let idx: Vec<usize> = (0..sel.len()).collect();
    permute(&idx, &mut Vec::new(), &mut |perm| {
        let c = plan_cost(sel, perm);
        if best.as_ref().is_none_or(|(bc, _)| c < *bc) {
            best = Some((c, perm.to_vec()));
        }
    });
    best.expect("nonempty").1
}

fn permute(rest: &[usize], cur: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
    if rest.is_empty() {
        f(cur);
        return;
    }
    for (k, &v) in rest.iter().enumerate() {
        let mut next: Vec<usize> = rest.to_vec();
        next.remove(k);
        cur.push(v);
        permute(&next, cur, f);
        cur.pop();
    }
}

fn main() -> Result<(), SelearnError> {
    let data = power_like(50_000, 42).project(&[0, 1, 2]);

    // Train a model from a data-driven workload of 3-D range queries.
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let workload = Workload::generate(&data, &spec, 600, &mut rng)?;
    let model = PtsHist::fit(
        Rect::unit(3),
        &to_training(&workload),
        &PtsHistConfig::with_model_size(2400),
    )?;
    let uniform = UniformBaseline::new(Rect::unit(3));

    // 200 random "queries" = conjunctions of three single-attribute
    // filters; the optimizer must order them.
    use rand::Rng;
    let mut learned_regret = 0.0;
    let mut uniform_regret = 0.0;
    let mut trials = 0;
    for _ in 0..200 {
        // one range filter per attribute
        let filters: Vec<Range> = (0..3)
            .map(|dim| {
                let lo: f64 = rng.gen::<f64>() * 0.8;
                let hi = lo + rng.gen::<f64>() * (1.0 - lo);
                let mut l = vec![0.0; 3];
                let mut h = vec![1.0; 3];
                l[dim] = lo;
                h[dim] = hi;
                Rect::new(l, h).into()
            })
            .collect();
        let truth: Vec<f64> = filters.iter().map(|f| data.selectivity(f)).collect();
        let learned: Vec<f64> = filters.iter().map(|f| model.estimate(f)).collect();
        let assumed: Vec<f64> = filters.iter().map(|f| uniform.estimate(f)).collect();

        let oracle_cost = plan_cost(&truth, &best_order(&truth));
        let learned_cost = plan_cost(&truth, &best_order(&learned));
        let uniform_cost = plan_cost(&truth, &best_order(&assumed));
        learned_regret += learned_cost - oracle_cost;
        uniform_regret += uniform_cost - oracle_cost;
        trials += 1;
    }

    println!("predicate-ordering regret vs oracle over {trials} conjunctive queries:");
    println!("  learned (PtsHist): {:.4} expected extra tuple-visits/query", learned_regret / trials as f64);
    println!("  uniform assumption: {:.4} expected extra tuple-visits/query", uniform_regret / trials as f64);
    assert!(
        learned_regret <= uniform_regret,
        "learned estimates should order predicates at least as well"
    );
    Ok(())
}
