//! Streaming query feedback and the Gaussian-mixture extension.
//!
//! ```text
//! cargo run --release --example online_feedback
//! ```
//!
//! Two features beyond the paper's batch experiments:
//!
//! 1. **Online learning** — production optimizers receive selectivity
//!    feedback one executed query at a time. `OnlineQuadHist` refines its
//!    partition per observation (Algorithm 2 is naturally incremental;
//!    Lemma A.4 makes arrival order irrelevant) and refits weights
//!    periodically. We track test error as the stream progresses.
//! 2. **GaussHist** — the paper's conclusion poses Gaussian-mixture
//!    learning as an open problem; `GaussHist` solves its convex relative
//!    (kernels fixed, weights learned by Equation 8) and is compared
//!    against QuadHist/PtsHist on the same workload. SQL-style predicates
//!    from the `predicate` module drive the final comparison.

use selearn::prelude::*;

fn main() -> Result<(), SelearnError> {
    let data = power_like(40_000, 42).project(&[0, 2]);
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let stream = Workload::generate(&data, &spec, 500, &mut rng)?;
    let test = Workload::generate(&data, &spec, 200, &mut rng)?;

    // --- online learning curve ---
    println!("online QuadHist: test RMS along the feedback stream");
    let mut online = OnlineQuadHist::new(
        Rect::unit(2),
        selearn::core::QuadHistConfig::with_tau(0.005),
        50, // refit every 50 observations
    )?;
    let mut prev_rms = f64::INFINITY;
    let mut improvements = 0;
    for (i, q) in stream.queries().iter().enumerate() {
        online.observe(TrainingQuery {
            range: q.range.clone(),
            selectivity: q.selectivity,
        })?;
        if (i + 1) % 100 == 0 {
            let r = evaluate(&online, &test);
            println!(
                "  after {:>4} queries: rms = {:.5} ({} buckets)",
                i + 1,
                r.rms,
                online.num_buckets()
            );
            if r.rms < prev_rms {
                improvements += 1;
            }
            prev_rms = r.rms;
        }
    }
    assert!(improvements >= 3, "the learning curve should mostly descend");

    // --- batch comparison including the Gaussian-mixture extension ---
    let train = to_training(&stream);
    let quad = QuadHist::fit_with_bucket_target(
        Rect::unit(2),
        &train,
        2000,
        &QuadHistConfig::default(),
    )?;
    let pts = PtsHist::fit(
        Rect::unit(2),
        &train,
        &PtsHistConfig::with_model_size(2000),
    )?;
    let gauss = GaussHist::fit(
        Rect::unit(2),
        &train,
        &GaussHistConfig::with_model_size(2000).bandwidth(0.03),
    )?;
    println!("\nbatch models on the same 500-query workload:");
    for m in [
        &quad as &dyn SelectivityEstimator,
        &pts,
        &gauss,
    ] {
        let r = evaluate(m, &test);
        println!(
            "  {:<10} rms = {:.5}  l_inf = {:.5}  q99 = {:.3}",
            m.name(),
            r.rms,
            r.l_inf,
            r.q_error.p99
        );
    }

    // --- SQL-style ad-hoc estimation ---
    println!("\nad-hoc SQL predicates (schema: power, intensity):");
    for sql in [
        "power <= 0.2 AND intensity BETWEEN 0.0 AND 0.3",
        "0.5*power + 0.5*intensity <= 0.25",
        "dist(power, intensity; 0.1, 0.1) <= 0.15",
    ] {
        let range = selearn::predicate::parse_predicate(sql, &["power", "intensity"])
            .expect("valid predicate");
        println!(
            "  {:<48} true = {:.4}  GaussHist = {:.4}  QuadHist = {:.4}",
            sql,
            data.selectivity(&range),
            gauss.estimate(&range),
            quad.estimate(&range),
        );
    }
    Ok(())
}
