//! Beyond orthogonal ranges: halfspace, ball, and semi-algebraic queries.
//!
//! ```text
//! cargo run --release --example query_types
//! ```
//!
//! Section 2.2 of the paper proves selectivity functions are learnable for
//! *any* range class with finite VC-dimension. This example trains the
//! same generic estimator on three different query classes over the
//! Forest-like dataset — including the linear-inequality and
//! distance-based queries that purpose-built histogram methods do not
//! handle — and also demonstrates the disc-intersection semi-algebraic
//! lifting of Figure 3.

use selearn::prelude::*;

fn run_class(data: &Dataset, qt: QueryType, label: &str) -> Result<(), SelearnError> {
    let spec = WorkloadSpec::new(qt, CenterDistribution::DataDriven);
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let workload = Workload::generate(data, &spec, 500, &mut rng)?;
    let (train_w, test) = workload.split(400);
    let train = to_training(&train_w);

    let model = PtsHist::fit(
        Rect::unit(data.dim()),
        &train,
        &PtsHistConfig::with_model_size(4 * train.len()),
    )?;
    let r = evaluate(&model, &test);
    println!(
        "{label:<22} dim={} rms={:.5}  q-error(p95)={:.3}  (Theorem 2.1 exponent: {})",
        data.dim(),
        r.rms,
        r.q_error.p95,
        match qt {
            QueryType::Rect => RangeClass::Rect.sample_exponent(data.dim()),
            QueryType::Halfspace => RangeClass::Halfspace.sample_exponent(data.dim()),
            QueryType::Ball => RangeClass::Ball.sample_exponent(data.dim()),
            // Mixed streams have no single sample-complexity class; bound
            // by the hardest member (balls).
            QueryType::Mixed => RangeClass::Ball.sample_exponent(data.dim()),
        }
    );
    Ok(())
}

fn main() -> Result<(), SelearnError> {
    let data4 = forest_like(30_000, 5).project(&[0, 1, 2, 3]);

    println!("PtsHist on three learnable query classes (Forest-like, 4-D):\n");
    run_class(&data4, QueryType::Rect, "orthogonal range")?;
    run_class(&data4, QueryType::Halfspace, "linear inequality")?;
    run_class(&data4, QueryType::Ball, "distance-based (ball)")?;

    // --- Semi-algebraic ranges: the disc-intersection query of Figure 3.
    // Objects are discs (x, y, radius) mapped to points in R^3; the query
    // "which discs intersect disc B?" becomes a semi-algebraic range.
    println!("\nDisc-intersection queries via the semi-algebraic lifting (Figure 3):");
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    use rand::Rng;
    // a synthetic "table of discs": centers clustered, radii small
    let discs: Vec<Vec<f64>> = (0..20_000)
        .map(|_| {
            vec![
                (0.3 + 0.15 * rng.gen::<f64>()).min(1.0),
                (0.5 + 0.3 * rng.gen::<f64>()).min(1.0),
                0.05 * rng.gen::<f64>(),
            ]
        })
        .collect();
    let disc_data = Dataset::new("discs", 3, discs.into_iter().flatten().collect());

    // generate labeled disc-intersection queries
    let make_query = |rng: &mut rand::rngs::StdRng| -> TrainingQuery {
        let (cx, cy, r) = (rng.gen::<f64>(), rng.gen::<f64>(), 0.3 * rng.gen::<f64>());
        let range = Range::SemiAlgebraic {
            set: SemiAlgebraicSet::disc_intersection_query(cx, cy, r),
            dim: 3,
        };
        let selectivity = disc_data.selectivity(&range);
        TrainingQuery { range, selectivity }
    };
    let train: Vec<TrainingQuery> = (0..300).map(|_| make_query(&mut rng)).collect();
    let test: Vec<TrainingQuery> = (0..100).map(|_| make_query(&mut rng)).collect();

    let model = PtsHist::fit(
        Rect::unit(3),
        &train,
        &PtsHistConfig::with_model_size(1200),
    )?;
    let est: Vec<f64> = test.iter().map(|q| model.estimate(&q.range)).collect();
    let truth: Vec<f64> = test.iter().map(|q| q.selectivity).collect();
    let rms = selearn::data::rms_error(&est, &truth);
    println!("  300 training queries -> test RMS = {rms:.5}");
    assert!(rms < 0.2, "semi-algebraic learning should work");
    Ok(())
}
