//! Quickstart: learn a selectivity estimator from query feedback alone.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the full pipeline of the paper on a 2-D projection of the
//! Power-like dataset: generate a labeled workload, train QuadHist and
//! PtsHist, and compare them against the uniformity assumption.

use selearn::prelude::*;

fn main() -> Result<(), SelearnError> {
    // 1. The hidden data distribution. In a real DBMS this is the table;
    //    the estimator never reads it — it only sees query feedback.
    let data = power_like(50_000, 42).project(&[0, 2]);
    println!(
        "dataset: {} ({} rows, {} attrs, domain normalized to [0,1]^d)",
        data.name(),
        data.len(),
        data.dim()
    );

    // 2. A workload of orthogonal range queries whose centers follow the
    //    data (the paper's Data-driven workload), labeled with their true
    //    selectivities by the query-execution feedback loop.
    let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let workload = Workload::generate(&data, &spec, 700, &mut rng)?;
    let (train_w, test) = workload.split(500);
    let train = to_training(&train_w);
    println!("workload: {} training + {} test queries", train.len(), test.len());

    // 3. Train the paper's two generic estimators.
    let quad = QuadHist::fit_with_bucket_target(
        Rect::unit(2),
        &train,
        4 * train.len(),
        &QuadHistConfig::default(),
    )?;
    let pts = PtsHist::fit(
        Rect::unit(2),
        &train,
        &PtsHistConfig::with_model_size(4 * train.len()),
    )?;
    let uniform = UniformBaseline::new(Rect::unit(2));

    // 4. Evaluate on held-out queries from the same distribution.
    println!("\n{:<10} {:>8} {:>10} {:>10} {:>24}", "model", "buckets", "rms", "l_inf", "q-error 50/95/99/max");
    for model in [
        &quad as &dyn SelectivityEstimator,
        &pts,
        &uniform,
    ] {
        let r = evaluate(model, &test);
        println!(
            "{:<10} {:>8} {:>10.5} {:>10.5}   {}",
            model.name(),
            model.num_buckets(),
            r.rms,
            r.l_inf,
            r.q_error
        );
    }

    // 5. Estimate a single ad-hoc query.
    let q: Range = Rect::new(vec![0.0, 0.0], vec![0.3, 0.6]).into();
    println!(
        "\nad-hoc query [0,0.3]x[0,0.6]: true = {:.4}, QuadHist = {:.4}, PtsHist = {:.4}",
        data.selectivity(&q),
        quad.estimate(&q),
        pts.estimate(&q)
    );

    // 6. How many samples does the theory ask for? (Theorem 2.1 with unit
    //    constants — the exponent is what matters.)
    println!(
        "\nTheorem 2.1 sample bound for rects in 2D at eps=0.1: ~1e{:.0} (exponent lambda+3 = {})",
        training_set_size(RangeClass::Rect, 2, 0.1, 0.05).log10(),
        RangeClass::Rect.sample_exponent(2),
    );
    Ok(())
}
