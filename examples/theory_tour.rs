//! A tour of the paper's theory (Section 2), executable.
//!
//! ```text
//! cargo run --release --example theory_tour
//! ```
//!
//! * Figure 2: rectangles shatter 4 points in the plane, never 5;
//! * VC-dimensions of halfspaces and discs via exact LP oracles;
//! * Figure 5 / Lemma 2.7: convex polygons γ-shatter arbitrarily many
//!   ranges using delta distributions — selectivity is NOT learnable;
//! * Lemma 2.4: low-crossing orderings of query sets;
//! * Theorem 2.1: the sample-complexity calculator.

use rand::SeedableRng;
use selearn::prelude::*;
use selearn::theory;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    // --- VC dimensions (Figure 2 and Section 2.2) ---
    println!("empirical VC-dimension lower bounds (random search + exact oracles):");
    let rect2 = theory::empirical_vc_lower_bound(2, 6, 400, theory::rects_can_realize, &mut rng);
    let half2 =
        theory::empirical_vc_lower_bound(2, 5, 400, theory::halfspaces_can_realize, &mut rng);
    let ball2 = theory::empirical_vc_lower_bound(2, 5, 400, theory::balls_can_realize, &mut rng);
    println!("  rectangles in R^2: {rect2} (known: 2d = 4, Figure 2)");
    println!("  halfspaces in R^2: {half2} (known: d+1 = 3)");
    println!("  discs      in R^2: {ball2} (known exact: 3; paper's bound: <= d+2 = 4)");
    assert_eq!((rect2, half2, ball2), (4, 3, 3));

    // The diamond of Figure 2(i) is shattered; no 5 points ever are.
    let diamond = vec![
        Point::new(vec![0.5, 0.0]),
        Point::new(vec![1.0, 0.5]),
        Point::new(vec![0.5, 1.0]),
        Point::new(vec![0.0, 0.5]),
    ];
    assert!(theory::is_shattered_by(&diamond, theory::rects_can_realize));
    println!("  the Figure-2 diamond is shattered by rectangles ✓");

    // --- Non-learnability: convex polygons (Lemma 2.7 / Figure 5) ---
    println!("\nconvex polygons have VC-dim = ∞ ⇒ fat-shattering dim = ∞:");
    for k in 1..=3 {
        let (ranges, sigma, candidates) = theory::delta_distribution_fat_construction(k);
        let ok = theory::is_gamma_shattered(&ranges, &sigma, 0.49, &candidates);
        println!("  {k} polygon ranges γ-shattered at γ=0.49 with delta distributions: {ok}");
        assert!(ok);
    }
    println!("  (arbitrary k works: selectivity of polygon ranges is NOT learnable)");

    // --- Low-crossing orderings (Lemma 2.4) ---
    println!("\nlow-crossing orderings (greedy vs identity, random rect sets):");
    use rand::Rng;
    for k in [16usize, 64] {
        let ranges: Vec<Range> = (0..k)
            .map(|_| {
                let cx: f64 = rng.gen();
                let cy: f64 = rng.gen();
                let w: f64 = rng.gen::<f64>() * 0.4;
                Rect::new(
                    vec![(cx - w).max(0.0), (cy - w).max(0.0)],
                    vec![(cx + w).min(1.0), (cy + w).min(1.0)],
                )
                .into()
            })
            .collect();
        let pts: Vec<Point> = (0..1500)
            .map(|_| Point::new(vec![rng.gen(), rng.gen()]))
            .collect();
        let identity: Vec<usize> = (0..k).collect();
        let greedy = theory::greedy_low_crossing_ordering(&ranges, &pts);
        println!(
            "  k = {k:>3}: identity max-crossings = {:>3}, greedy = {:>3}",
            theory::max_point_crossings(&ranges, &identity, &pts),
            theory::max_point_crossings(&ranges, &greedy, &pts),
        );
    }

    // --- Sample complexity (Theorem 2.1) ---
    println!("\nTheorem 2.1 training-set sizes (unit constants, shape exact):");
    for (class, name) in [
        (RangeClass::Halfspace, "halfspace (λ = d+1)"),
        (RangeClass::Ball, "ball      (λ ≤ d+2)"),
        (RangeClass::Rect, "rect      (λ = 2d) "),
    ] {
        print!("  {name}:");
        for d in [2usize, 4] {
            print!("  d={d}: 1e{:>5.1}", training_set_size(class, d, 0.1, 0.05).log10());
        }
        println!();
    }
    println!("\n(exponential growth in d — the curse Section 4.4 measures empirically)");
}
