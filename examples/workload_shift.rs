//! Train/test distribution shift (Section 4.3).
//!
//! ```text
//! cargo run --release --example workload_shift
//! ```
//!
//! The learning guarantee of Theorem 2.1 assumes training and test queries
//! come from the same distribution. This example measures what happens
//! when they do not: train QuadHist on a Gaussian workload centered at
//! `μ_train` and test on workloads whose centers shift away — the error
//! grows smoothly with the shift, but stays far below the uniform
//! baseline as long as the coverages overlap (the paper's Figure 16).

use selearn::prelude::*;

fn main() -> Result<(), SelearnError> {
    let data = power_like(50_000, 42).project(&[0, 2]);
    let sigma = 0.182; // paper: covariance 0.033
    let means = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
    let n_train = 400;
    let n_test = 200;

    // pre-generate one workload per center mean
    let workloads: Vec<Workload> = means
        .iter()
        .map(|&mu| {
            let spec = WorkloadSpec::new(
                QueryType::Rect,
                CenterDistribution::Gaussian { mean: mu, std: sigma },
            );
            let mut rng = rand::rngs::StdRng::seed_from_u64(100 + (mu * 10.0) as u64);
            Workload::generate(&data, &spec, n_train + n_test, &mut rng)
        })
        .collect::<Result<_, _>>()?;

    println!("RMS error heat map (rows = train mean, cols = test mean):\n");
    print!("{:>8}", "");
    for mu in means {
        print!("{mu:>9.1}");
    }
    println!();

    let mut diag_sum = 0.0;
    let mut off_sum = 0.0;
    let mut off_n = 0;
    for (i, &mu_tr) in means.iter().enumerate() {
        let (train_w, _) = workloads[i].split(n_train);
        let model = QuadHist::fit_with_bucket_target(
            Rect::unit(2),
            &to_training(&train_w),
            4 * n_train,
            &QuadHistConfig::default(),
        )?;
        print!("{mu_tr:>8.1}");
        for (j, _) in means.iter().enumerate() {
            let (_, test) = workloads[j].split(n_train);
            let r = evaluate(&model, &test);
            print!("{:>9.4}", r.rms);
            if i == j {
                diag_sum += r.rms;
            } else {
                off_sum += r.rms;
                off_n += 1;
            }
        }
        println!();
    }

    let diag = diag_sum / means.len() as f64;
    let off = off_sum / off_n as f64;
    println!(
        "\nmatched train/test mean error: {diag:.4}   shifted mean error: {off:.4}"
    );
    println!("(matched < shifted, but even shifted beats the uniform assumption)");
    assert!(diag <= off, "matched workloads should be easiest");
    Ok(())
}
