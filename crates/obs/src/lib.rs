//! `selearn-obs` — zero-dependency structured observability for the
//! selectivity-learning pipeline.
//!
//! Every other `selearn-*` crate links against this one, so it is built
//! from scratch on `std` alone (the workspace is offline-vendored; no
//! registry crates). It provides four instruments:
//!
//! * **Spans** — RAII timing guards ([`span`] / the [`span!`] macro) that
//!   nest through a thread-local stack into a hierarchical timing tree
//!   (`fit.quadhist/assemble`, …);
//! * **Counters & gauges** — monotonic [`counter_add`] / latest-value
//!   [`gauge_set`] registries backed by `AtomicU64`, safe to bump from
//!   rayon worker threads;
//! * **Histograms** — lock-free log₂-bucketed distributions
//!   ([`histogram_record`]) for per-query predict latency and
//!   per-iteration residual norms;
//! * **Events** — structured [`Event`]s pushed to a pluggable [`ObsSink`]
//!   (solver iterations, solve reports, metrics summaries, logs).
//!
//! # Overhead contract
//!
//! Everything is **off by default**: with no sink installed and stats
//! disabled, every instrumentation call is a single relaxed atomic load
//! and a predictable branch — the "NullSink" configuration budgeted at
//! < 5 % end-to-end overhead in DESIGN.md (in practice unmeasurable).
//! Aggregation (counters/spans/histograms) is enabled by
//! [`enable_stats`]; event emission is enabled by installing a sink with
//! [`set_sink`]. Installing a sink implies stats.
//!
//! # Determinism contract
//!
//! Under the workspace's `parallel` feature, raw event *order* across
//! threads is scheduler-dependent, but every **aggregate** is not:
//! counters are atomic sums of the same bump set, histograms are atomic
//! bucket counts, and the timing tree is keyed by span *path*, so its
//! shape (node set, nesting, per-node call counts) is identical to the
//! serial build — only wall-clock durations vary. Sinks receive
//! per-thread events as they close; [`flush_aggregates`] then emits the
//! merged registries in deterministic (sorted) order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The panic-free gate: unwrap/expect are banned outside test code
// (clippy.toml exempts #[cfg(test)]); CI runs clippy with -D warnings.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod event;
pub mod expo;
pub mod json;
pub mod log;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod span;

pub use event::Event;
pub use log::{set_level, Level};
pub use metrics::{
    counter_add, counter_get, gauge_set, histogram_record, HistogramExport, HistogramSummary,
};
#[cfg(feature = "jsonl")]
pub use sink::JsonlSink;
pub use sink::{MemorySink, NullSink, ObsSink};
pub use span::{span, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Fast gate for the aggregation instruments (spans, counters,
/// histograms). Relaxed is sufficient: a stale read only delays the first
/// few bumps after enabling, never corrupts state.
static STATS: AtomicBool = AtomicBool::new(false);
/// Fast gate for event emission, mirrored from the sink slot so the hot
/// path never takes the `RwLock`.
static SINK_INSTALLED: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static RwLock<Option<Arc<dyn ObsSink>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn ObsSink>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// `true` when the aggregation instruments are live (stats enabled or a
/// sink installed). Instrumented hot paths early-return on `false`.
#[inline]
pub fn enabled() -> bool {
    STATS.load(Ordering::Relaxed) || SINK_INSTALLED.load(Ordering::Relaxed)
}

/// `true` when a sink is installed (events will be recorded).
#[inline]
pub fn sink_installed() -> bool {
    SINK_INSTALLED.load(Ordering::Relaxed)
}

/// Turns the aggregation instruments on or off without touching the sink.
/// The experiments binary enables stats so the end-of-run text report has
/// data even when no trace is being written.
pub fn enable_stats(on: bool) {
    STATS.store(on, Ordering::Relaxed);
}

/// Installs the global event sink, replacing any previous one.
pub fn set_sink(sink: Arc<dyn ObsSink>) {
    *sink_slot().write().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(sink);
    SINK_INSTALLED.store(true, Ordering::Relaxed);
}

/// Removes the global event sink (reverting to the implicit null sink).
pub fn clear_sink() {
    SINK_INSTALLED.store(false, Ordering::Relaxed);
    *sink_slot().write().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// Records one event into the installed sink, if any.
pub fn emit(event: &Event) {
    if !sink_installed() {
        return;
    }
    if let Some(sink) = sink_slot().read().unwrap_or_else(std::sync::PoisonError::into_inner).as_ref() {
        sink.record(event);
    }
}

/// Flushes the installed sink (no-op without one).
pub fn flush_sink() {
    if !sink_installed() {
        return;
    }
    if let Some(sink) = sink_slot().read().unwrap_or_else(std::sync::PoisonError::into_inner).as_ref() {
        sink.flush();
    }
}

/// Emits one per-iteration convergence event for an iterative solver and
/// folds the residual into the `<solver>.residual` histogram.
pub fn solver_iteration(solver: &'static str, iter: usize, residual: f64, step: f64) {
    if !enabled() {
        return;
    }
    metrics::histogram_record_str(format!("{solver}.residual"), residual);
    emit(&Event::SolverIteration {
        solver,
        iter,
        residual,
        step,
    });
}

/// Emits every counter, gauge and histogram in the registries as events
/// (in sorted-name order) and resets nothing — call at the end of an
/// experiment so traces contain the final aggregate values.
pub fn flush_aggregates() {
    if !sink_installed() {
        return;
    }
    for (name, value) in metrics::counter_snapshot() {
        emit(&Event::Counter { name, value });
    }
    for (name, value) in metrics::gauge_snapshot() {
        emit(&Event::Gauge { name, value });
    }
    for (name, h) in metrics::histogram_snapshot() {
        emit(&Event::Histogram {
            name,
            count: h.count,
            min: h.min,
            max: h.max,
            mean: h.mean,
            p50: h.p50,
            p90: h.p90,
            p95: h.p95,
            p99: h.p99,
        });
    }
}

/// Emits one [`Event::Trace`] stage for a sampled request, folding the
/// stage latency into the shared aggregation gate. No-op without a sink:
/// tracing is a debugging instrument, so there is nothing to aggregate
/// when nobody is listening.
pub fn trace_stage(trace_id: u64, stage: &str, us: f64, note: &str) {
    if !sink_installed() {
        return;
    }
    emit(&Event::Trace {
        trace_id,
        stage: stage.to_string(),
        us,
        note: note.to_string(),
    });
}

/// Clears every aggregate registry (counters, gauges, histograms, timing
/// tree). Used between experiments and by tests.
pub fn reset() {
    metrics::reset();
    span::reset_timings();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Global-state tests must not interleave.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_by_default_and_gates_work() {
        let _g = TEST_LOCK.lock().unwrap();
        clear_sink();
        enable_stats(false);
        assert!(!enabled());
        counter_add("never", 3);
        assert_eq!(counter_get("never"), 0);

        enable_stats(true);
        assert!(enabled());
        counter_add("now", 2);
        assert_eq!(counter_get("now"), 2);
        enable_stats(false);
        reset();
    }

    #[test]
    fn sink_receives_events_and_implies_enabled() {
        let _g = TEST_LOCK.lock().unwrap();
        clear_sink();
        enable_stats(false);
        let mem = Arc::new(MemorySink::new());
        set_sink(mem.clone());
        assert!(enabled() && sink_installed());
        emit(&Event::Counter {
            name: "x".into(),
            value: 7,
        });
        let events = mem.events();
        assert_eq!(events.len(), 1);
        clear_sink();
        emit(&Event::Counter {
            name: "y".into(),
            value: 1,
        });
        assert_eq!(mem.events().len(), 1, "no recording after clear_sink");
        reset();
    }

    #[test]
    fn flush_aggregates_emits_sorted_registry_events() {
        let _g = TEST_LOCK.lock().unwrap();
        clear_sink();
        reset();
        let mem = Arc::new(MemorySink::new());
        set_sink(mem.clone());
        counter_add("b_counter", 2);
        counter_add("a_counter", 1);
        gauge_set("g", 0.5);
        histogram_record("h", 1.0);
        flush_aggregates();
        let kinds: Vec<&'static str> = mem.events().iter().map(Event::kind).collect();
        assert_eq!(kinds, vec!["counter", "counter", "gauge", "histogram"]);
        match &mem.events()[0] {
            Event::Counter { name, value } => {
                assert_eq!(name, "a_counter");
                assert_eq!(*value, 1);
            }
            other => panic!("unexpected event {other:?}"),
        }
        clear_sink();
        reset();
    }
}
