//! Hierarchical timing spans.
//!
//! [`span`] returns an RAII guard; while it lives, its name sits on a
//! thread-local stack, so nested guards form '/'-joined paths
//! (`fit.quadhist/assemble`). On drop, the guard (a) folds the duration
//! into a global path-keyed timing registry — a `BTreeMap`, so the
//! rendered tree is deterministically ordered — and (b) emits a
//! [`Event::Span`] if a sink is installed.
//!
//! Under the `parallel` feature each rayon worker has its own stack, so
//! spans opened inside parallel closures nest under whatever the worker
//! has open (usually nothing) rather than corrupting the caller's stack.
//! Hot parallel loops therefore keep spans *outside* the parallel region
//! and use counters/histograms inside it.

use crate::event::Event;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Aggregate for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of times this exact path was entered.
    pub count: u64,
    /// Total wall time across entries, in nanoseconds.
    pub total_ns: u64,
}

fn registry() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static REG: OnceLock<Mutex<BTreeMap<String, SpanStat>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// RAII guard for one timed span; created by [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    start: Option<Instant>,
}

/// Opens a span named `name` on the current thread. When observability is
/// disabled ([`crate::enabled`] is false) this is a single branch and the
/// returned guard is inert.
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { start: None };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    SpanGuard {
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        let (path, depth) = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            (path, stack.len())
        });
        {
            let mut reg = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let stat = reg.entry(path.clone()).or_default();
            stat.count += 1;
            stat.total_ns += elapsed.as_nanos() as u64;
        }
        crate::emit(&Event::Span {
            path,
            depth,
            wall_us: elapsed.as_micros() as u64,
        });
    }
}

/// Opens a span; identical to calling [`span`], provided as a macro so
/// call sites read as annotations: `let _s = selearn_obs::span!("fit.quadhist");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Snapshot of the timing registry, sorted by path.
pub fn timing_snapshot() -> Vec<(String, SpanStat)> {
    registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Clears the timing registry (the thread-local stacks empty themselves
/// as guards drop).
pub fn reset_timings() {
    registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    #[test]
    fn nested_spans_build_joined_paths() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::clear_sink();
        crate::reset();
        crate::enable_stats(true);
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            {
                let _inner = span("inner");
            }
        }
        crate::enable_stats(false);
        let snap = timing_snapshot();
        let paths: Vec<(&str, u64)> = snap.iter().map(|(p, s)| (p.as_str(), s.count)).collect();
        assert_eq!(paths, vec![("outer", 1), ("outer/inner", 2)]);
        crate::reset();
    }

    #[test]
    fn disabled_spans_touch_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::clear_sink();
        crate::enable_stats(false);
        crate::reset();
        {
            let _s = span("ghost");
        }
        assert!(timing_snapshot().is_empty());
    }
}
