//! End-of-experiment text report: indented timing tree, counter dump,
//! gauge dump, and histogram summaries — rendered from the aggregate
//! registries, so it is available even when no sink was installed.

use crate::metrics;
use crate::span;

fn fmt_ms(ns: u64) -> String {
    format!("{:.2} ms", ns as f64 / 1e6)
}

/// Renders the current aggregate state as a human-readable report.
/// Returns an empty string when nothing was recorded (so callers can
/// skip printing a header for silent runs).
pub fn render() -> String {
    let timings = span::timing_snapshot();
    let counters = metrics::counter_snapshot();
    let gauges = metrics::gauge_snapshot();
    let hists = metrics::histogram_snapshot();
    if timings.is_empty() && counters.is_empty() && gauges.is_empty() && hists.is_empty() {
        return String::new();
    }

    let mut out = String::new();
    if !timings.is_empty() {
        out.push_str("timing tree (count, total wall):\n");
        // BTreeMap ordering puts each parent path immediately before its
        // children, so indenting by depth renders the tree directly.
        for (path, stat) in &timings {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            out.push_str(&format!(
                "  {:indent$}{name:<32} {:>6}x  {:>12}\n",
                "",
                stat.count,
                fmt_ms(stat.total_ns),
                indent = depth * 2,
            ));
        }
    }
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &counters {
            out.push_str(&format!("  {name:<34} {value:>14}\n"));
        }
    }
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in &gauges {
            out.push_str(&format!("  {name:<34} {value:>14.6}\n"));
        }
    }
    if !hists.is_empty() {
        out.push_str("histograms (count / min / p50 / p99 / max):\n");
        for (name, h) in &hists {
            out.push_str(&format!(
                "  {name:<34} {:>8}  {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e}\n",
                h.count, h.min, h.p50, h.p99, h.max
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::tests::TEST_LOCK;

    #[test]
    fn report_renders_tree_counters_and_histograms() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::clear_sink();
        crate::reset();
        crate::enable_stats(true);
        {
            let _a = crate::span("fit");
            let _b = crate::span("solve");
        }
        crate::counter_add("quadtree_splits", 12);
        crate::histogram_record("predict.latency_us", 3.0);
        crate::enable_stats(false);
        let r = super::render();
        assert!(r.contains("timing tree"));
        assert!(r.contains("fit"));
        assert!(r.contains("solve"));
        assert!(r.contains("quadtree_splits"));
        assert!(r.contains("predict.latency_us"));
        // child "solve" is indented deeper than root "fit"
        let fit_line = r.lines().find(|l| l.trim_start().starts_with("fit")).unwrap();
        let solve_line = r
            .lines()
            .find(|l| l.trim_start().starts_with("solve"))
            .unwrap();
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(solve_line) > indent(fit_line));
        crate::reset();
    }

    #[test]
    fn empty_state_renders_empty() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::clear_sink();
        crate::reset();
        assert!(super::render().is_empty());
    }
}
