//! Prometheus text exposition (version 0.0.4) for the metric registries.
//!
//! [`render`] walks the counter, gauge and histogram registries and
//! produces the `text/plain` body served by the admin plane's `/metrics`
//! endpoint. The registries keep their internal dotted names
//! (`serve.latency_us`); exposition rewrites them to the Prometheus
//! grammar (`serve_latency_us`) without touching the registries, so
//! existing JSONL traces and text reports are unchanged.
//!
//! # Label convention
//!
//! A registry name may carry a literal label suffix, e.g.
//! `serve.qerror_p95{model="default"}`. Only the part before the first
//! `{` is sanitised; the suffix is passed through verbatim, which lets
//! per-model series share one metric family:
//!
//! ```text
//! # TYPE serve_qerror_p95 gauge
//! serve_qerror_p95{model="default"} 1.3
//! serve_qerror_p95{model="canary"} 2.7
//! ```
//!
//! Histograms follow the cumulative-bucket convention: `_bucket` lines
//! with `le` upper bounds (the registry's sub-bucket edges), a closing
//! `le="+Inf"` equal to `_count`, and an exact `_sum`.

use crate::metrics::{counter_snapshot, gauge_snapshot, histogram_export_snapshot};
use std::sync::OnceLock;
use std::time::Instant;

static START: OnceLock<Instant> = OnceLock::new();

/// Marks the process start time for `process_uptime_seconds`. Idempotent;
/// the first call wins. Called by the admin plane on startup, but safe to
/// call from anywhere (tests, other bins).
pub fn mark_start() {
    let _ = START.get_or_init(Instant::now);
}

/// Seconds since [`mark_start`] was first called, or `0.0` if it never was.
pub fn uptime_seconds() -> f64 {
    START.get().map_or(0.0, |s| s.elapsed().as_secs_f64())
}

/// Splits a registry name into a sanitised Prometheus metric name and a
/// verbatim `{label="value"}` suffix (empty when the name carries none).
///
/// Sanitisation maps `.` (and any other character outside
/// `[a-zA-Z0-9_:]`) to `_`, and prefixes `_` when the name would start
/// with a digit, matching the Prometheus metric-name grammar.
pub fn sanitize(name: &str) -> (String, &str) {
    let (raw, labels) = match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    };
    let mut out = String::with_capacity(raw.len() + 1);
    for (i, c) in raw.chars().enumerate() {
        let keep = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if keep {
            out.push(c);
        } else if c.is_ascii_digit() {
            // leading digit: prefix rather than drop, to stay unambiguous
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    (out, labels)
}

/// Formats a sample value the way the exposition format expects:
/// `NaN`, `+Inf`, `-Inf`, or the shortest round-trip decimal.
fn fmt_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "+Inf" } else { "-Inf" });
    } else {
        // Rust's `{}` for f64 is the shortest round-trip decimal.
        let _ = std::fmt::Write::write_fmt(out, format_args!("{v}"));
    }
}

/// Emits one `# TYPE` header the first time a metric family appears.
/// Snapshots are name-sorted, so same-family series (differing only in
/// labels) are adjacent and share a single header.
fn type_header(out: &mut String, last: &mut String, family: &str, kind: &str) {
    if family != last.as_str() {
        out.push_str("# TYPE ");
        out.push_str(family);
        out.push(' ');
        out.push_str(kind);
        out.push('\n');
        last.clear();
        last.push_str(family);
    }
}

/// Renders the full exposition body: every counter (as `counter`), every
/// gauge (as `gauge`), every histogram (as `histogram` with cumulative
/// `le` buckets, `_sum` and `_count`), plus `process_uptime_seconds`.
/// Deterministic: registries snapshot in sorted-name order.
pub fn render() -> String {
    let mut out = String::with_capacity(4096);
    let mut last_family = String::new();

    for (name, value) in counter_snapshot() {
        let (family, labels) = sanitize(&name);
        type_header(&mut out, &mut last_family, &family, "counter");
        out.push_str(&family);
        out.push_str(labels);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }

    last_family.clear();
    for (name, value) in gauge_snapshot() {
        let (family, labels) = sanitize(&name);
        type_header(&mut out, &mut last_family, &family, "gauge");
        out.push_str(&family);
        out.push_str(labels);
        out.push(' ');
        fmt_value(&mut out, value);
        out.push('\n');
    }

    last_family.clear();
    for (name, export) in histogram_export_snapshot() {
        let (family, labels) = sanitize(&name);
        type_header(&mut out, &mut last_family, &family, "histogram");
        // `{model="x"}` + `le` must merge into one label set.
        let label_body = labels
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .unwrap_or("");
        for (upper, cumulative) in &export.cumulative {
            out.push_str(&family);
            out.push_str("_bucket{");
            if !label_body.is_empty() {
                out.push_str(label_body);
                out.push(',');
            }
            out.push_str("le=\"");
            fmt_value(&mut out, *upper);
            out.push_str("\"} ");
            out.push_str(&cumulative.to_string());
            out.push('\n');
        }
        out.push_str(&family);
        out.push_str("_bucket{");
        if !label_body.is_empty() {
            out.push_str(label_body);
            out.push(',');
        }
        out.push_str("le=\"+Inf\"} ");
        out.push_str(&export.count.to_string());
        out.push('\n');
        out.push_str(&family);
        out.push_str("_sum");
        out.push_str(labels);
        out.push(' ');
        fmt_value(&mut out, export.sum);
        out.push('\n');
        out.push_str(&family);
        out.push_str("_count");
        out.push_str(labels);
        out.push(' ');
        out.push_str(&export.count.to_string());
        out.push('\n');
    }

    out.push_str("# TYPE process_uptime_seconds gauge\nprocess_uptime_seconds ");
    fmt_value(&mut out, uptime_seconds());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;
    use crate::{counter_add, enable_stats, gauge_set, histogram_record, reset};

    #[test]
    fn sanitize_rewrites_dots_and_preserves_labels() {
        assert_eq!(sanitize("serve.latency_us"), ("serve_latency_us".into(), ""));
        assert_eq!(
            sanitize("serve.qerror_p95{model=\"default\"}"),
            ("serve_qerror_p95".into(), "{model=\"default\"}")
        );
        assert_eq!(sanitize("1weird-name"), ("_1weird_name".into(), ""));
        assert_eq!(sanitize("solver:residual"), ("solver:residual".into(), ""));
    }

    #[test]
    fn render_produces_valid_exposition() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        enable_stats(true);
        mark_start();
        counter_add("serve.requests", 3);
        counter_add("store.appended_records", 2);
        gauge_set("serve.qerror_p95{model=\"default\"}", 1.5);
        gauge_set("serve.qerror_p95{model=\"canary\"}", 2.25);
        histogram_record("serve.latency_us", 100.0);
        histogram_record("serve.latency_us", 200.0);
        let body = render();
        enable_stats(false);
        reset();

        assert!(body.contains("# TYPE serve_requests counter\nserve_requests 3\n"));
        assert!(body.contains("store_appended_records 2\n"));
        // Two per-model series under ONE family header.
        assert_eq!(body.matches("# TYPE serve_qerror_p95 gauge").count(), 1);
        assert!(body.contains("serve_qerror_p95{model=\"canary\"} 2.25\n"));
        assert!(body.contains("serve_qerror_p95{model=\"default\"} 1.5\n"));
        // Histogram family with cumulative buckets, +Inf == count.
        assert!(body.contains("# TYPE serve_latency_us histogram"));
        assert!(body.contains("serve_latency_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(body.contains("serve_latency_us_sum 300\n"));
        assert!(body.contains("serve_latency_us_count 2\n"));
        assert!(body.contains("# TYPE process_uptime_seconds gauge"));

        // Structural pass: every non-comment line is `name{labels}? value`.
        let mut bucket_cums = Vec::new();
        for line in body.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').unwrap();
            assert!(!series.is_empty() && !value.is_empty(), "line {line:?}");
            let name_end = series.find('{').unwrap_or(series.len());
            let name = &series[..name_end];
            assert!(
                name.chars().enumerate().all(|(i, c)| c.is_ascii_alphabetic()
                    || c == '_'
                    || c == ':'
                    || (i > 0 && c.is_ascii_digit())),
                "bad metric name in {line:?}"
            );
            if name == "serve_latency_us_bucket" {
                bucket_cums.push(value.parse::<u64>().unwrap());
            }
        }
        // Cumulative buckets must be monotone nondecreasing up to +Inf.
        assert!(bucket_cums.windows(2).all(|w| w[0] <= w[1]), "{bucket_cums:?}");
        assert_eq!(*bucket_cums.last().unwrap(), 2);
    }

    #[test]
    fn non_finite_gauges_render_prometheus_style() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        enable_stats(true);
        gauge_set("weird.inf", f64::INFINITY);
        gauge_set("weird.nan", f64::NAN);
        let body = render();
        enable_stats(false);
        reset();
        assert!(body.contains("weird_inf +Inf\n"));
        assert!(body.contains("weird_nan NaN\n"));
    }
}
