//! Leveled logging (`SELEARN_LOG=off|warn|info|debug`).
//!
//! Replaces the bench harness's ad-hoc `eprintln!` lines: messages at or
//! below the active level go to stderr prefixed `[selearn]`, and are
//! mirrored as [`Event::Log`] into the installed sink so traces capture
//! the narrative alongside the numbers.

use crate::event::Event;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log verbosity, ordered `Off < Warn < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// No log output.
    Off = 0,
    /// Actionable anomalies (drift alarms, degraded serving).
    Warn = 1,
    /// Progress messages (the default).
    Info = 2,
    /// Per-phase diagnostics (solver exits, bisection probes, …).
    Debug = 3,
}

/// 0..=3 mirror `Level`; 4 = "uninitialised, read SELEARN_LOG on first use".
const UNINIT: u8 = 4;
static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

fn level_from_env() -> Level {
    match std::env::var("SELEARN_LOG").as_deref() {
        Ok("off") | Ok("0") => Level::Off,
        Ok("warn") | Ok("1") => Level::Warn,
        Ok("debug") | Ok("3") => Level::Debug,
        // default and explicit "info"/"2" and any unrecognised value
        _ => Level::Info,
    }
}

/// The active level, lazily initialised from `SELEARN_LOG`.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Warn,
        2 => Level::Info,
        3 => Level::Debug,
        _ => {
            let l = level_from_env();
            LEVEL.store(l as u8, Ordering::Relaxed);
            l
        }
    }
}

/// Overrides the level programmatically (e.g. a future `--verbose` flag);
/// wins over `SELEARN_LOG`.
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// `true` when messages at `l` would be printed.
#[inline]
pub fn log_enabled(l: Level) -> bool {
    l <= level()
}

/// Logs `message` at level `l`: stderr line plus a `log` event if a sink
/// is installed. Prefer the [`crate::warn!`]/[`crate::info!`]/
/// [`crate::debug!`] macros, which skip formatting entirely when the
/// level is off.
pub fn log(l: Level, message: &str) {
    if !log_enabled(l) {
        return;
    }
    let tag = match l {
        Level::Warn => "warn",
        Level::Debug => "debug",
        _ => "info",
    };
    if l == Level::Warn {
        eprintln!("[selearn] warn: {message}");
    } else {
        eprintln!("[selearn] {message}");
    }
    if crate::sink_installed() {
        crate::emit(&Event::Log {
            level: tag,
            message: message.to_string(),
        });
    }
}

/// Logs at [`Level::Warn`]; arguments are only formatted when warn
/// logging is active.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log::log_enabled($crate::Level::Warn) {
            $crate::log::log($crate::Level::Warn, &format!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`]; arguments are only formatted when info
/// logging is active.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log::log_enabled($crate::Level::Info) {
            $crate::log::log($crate::Level::Info, &format!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`]; arguments are only formatted when debug
/// logging is active.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log::log_enabled($crate::Level::Debug) {
            $crate::log::log($crate::Level::Debug, &format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_override() {
        // set_level wins regardless of env
        set_level(Level::Off);
        assert!(!log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        set_level(Level::Warn);
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        set_level(Level::Info);
        assert!(log_enabled(Level::Warn));
        assert!(log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(log_enabled(Level::Debug));
        set_level(Level::Info);
    }
}
