//! Minimal hand-rolled JSON helpers: string escaping, float formatting,
//! and a small validator used by the golden-file tests.
//!
//! The workspace is offline-vendored with no serde, so the event layer
//! writes JSON by hand; keeping the escaping/formatting rules in one
//! module makes the wire format auditable.

/// Appends `s` as a JSON string literal (with surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for `v`; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn fmt_f64_into(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` round-trips f64 exactly and always includes a decimal
        // point or exponent, so the token is unambiguously a number.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Structural check that `line` is exactly one JSON object: balanced
/// braces/brackets outside strings, valid string escapes, and valid
/// number/keyword tokens. Not a full parser, but strict enough for the
/// golden-file test to catch any escaping or formatting bug in
/// [`crate::Event::to_json`].
pub fn validate_json_object(line: &str) -> bool {
    let s = line.trim();
    let bytes = s.as_bytes();
    if bytes.first() != Some(&b'{') || bytes.last() != Some(&b'}') {
        return false;
    }
    let mut depth_obj = 0i32;
    let mut depth_arr = 0i32;
    let mut in_str = false;
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => match chars.next() {
                    Some('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') => {}
                    Some('u') => {
                        for _ in 0..4 {
                            match chars.next() {
                                Some(h) if h.is_ascii_hexdigit() => {}
                                _ => return false,
                            }
                        }
                    }
                    _ => return false,
                },
                '"' => in_str = false,
                c if (c as u32) < 0x20 => return false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth_obj += 1,
            '}' => {
                depth_obj -= 1;
                if depth_obj < 0 {
                    return false;
                }
            }
            '[' => depth_arr += 1,
            ']' => {
                depth_arr -= 1;
                if depth_arr < 0 {
                    return false;
                }
            }
            ':' | ',' | ' ' => {}
            c if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' => {
            }
            // keyword letters for true/false/null
            't' | 'r' | 'u' | 'f' | 'a' | 'l' | 's' | 'n' => {}
            _ => return false,
        }
    }
    !in_str && depth_obj == 0 && depth_arr == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_control_chars() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn float_formatting() {
        let mut s = String::new();
        fmt_f64_into(&mut s, 1.5);
        assert_eq!(s, "1.5");
        s.clear();
        fmt_f64_into(&mut s, f64::NEG_INFINITY);
        assert_eq!(s, "null");
        s.clear();
        fmt_f64_into(&mut s, 1e-300);
        assert!(s.parse::<f64>().unwrap() == 1e-300);
    }

    #[test]
    fn validator_accepts_objects_and_rejects_junk() {
        assert!(validate_json_object(r#"{"a":1,"b":[1,2],"c":{"d":"e"}}"#));
        assert!(validate_json_object(r#"{"k":"with \"quotes\" and é"}"#));
        assert!(!validate_json_object(r#"{"a":1"#));
        assert!(!validate_json_object(r#"["not","an","object"]"#));
        assert!(!validate_json_object("{\"a\":\"\u{1}\"}"));
        assert!(!validate_json_object(r#"{"a": }x"#));
    }
}
