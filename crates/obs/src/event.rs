//! Structured event taxonomy.
//!
//! Every observable fact in the pipeline is one of these variants; the
//! `kind` string is the stable wire identifier used in JSONL output and
//! asserted by the acceptance criteria (≥ 6 distinct kinds in a trace).

use crate::json::{escape_into, fmt_f64_into};

/// One structured observability event.
///
/// Names use `String` (not `&'static str`) so dynamically composed names
/// (`"fista.residual"`, per-method spans) work; hot paths that only bump
/// aggregates never allocate — events are built at flush/report time.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A closed span: full '/'-joined path, nesting depth and duration.
    Span {
        /// '/'-joined path from the root span, e.g. `fit.quadhist/solve`.
        path: String,
        /// Nesting depth (root span = 0).
        depth: usize,
        /// Wall-clock duration in microseconds.
        wall_us: u64,
    },
    /// Final value of a monotonic counter.
    Counter {
        /// Registry name, e.g. `mc_samples_drawn`.
        name: String,
        /// Accumulated value.
        value: u64,
    },
    /// Latest value of a gauge.
    Gauge {
        /// Registry name.
        name: String,
        /// Last value set.
        value: f64,
    },
    /// Summary of a recorded distribution.
    Histogram {
        /// Registry name, e.g. `predict.latency_us`.
        name: String,
        /// Number of samples recorded.
        count: u64,
        /// Minimum sample.
        min: f64,
        /// Maximum sample.
        max: f64,
        /// Arithmetic mean.
        mean: f64,
        /// Approximate median (sub-bucket midpoint).
        p50: f64,
        /// Approximate 90th percentile.
        p90: f64,
        /// Approximate 95th percentile.
        p95: f64,
        /// Approximate 99th percentile.
        p99: f64,
    },
    /// One iteration of an iterative solver.
    SolverIteration {
        /// Solver identifier (`nnls`, `fista`, `ipf`, `linf-smoothed`).
        solver: &'static str,
        /// Iteration index (0-based).
        iter: usize,
        /// Residual / objective value at this iteration.
        residual: f64,
        /// Step size (or pass-specific scalar; 0.0 when not applicable).
        step: f64,
    },
    /// Terminal summary of one solve call.
    SolverReport {
        /// Solver identifier.
        solver: &'static str,
        /// Iterations actually performed.
        iters: usize,
        /// Iteration budget.
        max_iters: usize,
        /// Whether the convergence criterion was met (vs budget exhausted).
        converged: bool,
        /// Residual at exit.
        final_residual: f64,
    },
    /// Quantile summary of an error metric (q-error over a test workload).
    MetricsSummary {
        /// Metric name, e.g. `q_error`.
        name: String,
        /// Number of observations summarised.
        count: usize,
        /// 50th percentile.
        p50: f64,
        /// 90th percentile.
        p90: f64,
        /// 95th percentile.
        p95: f64,
        /// 99th percentile.
        p99: f64,
        /// Maximum.
        max: f64,
    },
    /// A leveled log line.
    Log {
        /// `warn`, `info` or `debug`.
        level: &'static str,
        /// Message text.
        message: String,
    },
    /// One stage of a sampled request trace: every event sharing a
    /// `trace_id` belongs to the same end-to-end request, so one slow
    /// request can be reconstructed across layers from the JSONL.
    Trace {
        /// Request-scoped id minted at the connection reader.
        trace_id: u64,
        /// Pipeline stage (`recv`, `dequeue`, `cache_hit`, `estimate`,
        /// `wal_append`, `respond`, …).
        stage: String,
        /// Microseconds since the request was received.
        us: f64,
        /// Stage-specific detail (model name, degrade reason, LSN, …).
        note: String,
    },
}

impl Event {
    /// Stable wire identifier of this event's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Span { .. } => "span",
            Event::Counter { .. } => "counter",
            Event::Gauge { .. } => "gauge",
            Event::Histogram { .. } => "histogram",
            Event::SolverIteration { .. } => "solver-iteration",
            Event::SolverReport { .. } => "solver-report",
            Event::MetricsSummary { .. } => "metrics-summary",
            Event::Log { .. } => "log",
            Event::Trace { .. } => "trace",
        }
    }

    /// Renders the event as one compact JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"kind\":\"");
        s.push_str(self.kind());
        s.push('"');
        match self {
            Event::Span {
                path,
                depth,
                wall_us,
            } => {
                s.push_str(",\"path\":");
                escape_into(&mut s, path);
                s.push_str(",\"depth\":");
                s.push_str(&depth.to_string());
                s.push_str(",\"wall_us\":");
                s.push_str(&wall_us.to_string());
            }
            Event::Counter { name, value } => {
                s.push_str(",\"name\":");
                escape_into(&mut s, name);
                s.push_str(",\"value\":");
                s.push_str(&value.to_string());
            }
            Event::Gauge { name, value } => {
                s.push_str(",\"name\":");
                escape_into(&mut s, name);
                s.push_str(",\"value\":");
                fmt_f64_into(&mut s, *value);
            }
            Event::Histogram {
                name,
                count,
                min,
                max,
                mean,
                p50,
                p90,
                p95,
                p99,
            } => {
                s.push_str(",\"name\":");
                escape_into(&mut s, name);
                s.push_str(",\"count\":");
                s.push_str(&count.to_string());
                for (key, v) in [
                    ("min", min),
                    ("max", max),
                    ("mean", mean),
                    ("p50", p50),
                    ("p90", p90),
                    ("p95", p95),
                    ("p99", p99),
                ] {
                    s.push_str(",\"");
                    s.push_str(key);
                    s.push_str("\":");
                    fmt_f64_into(&mut s, *v);
                }
            }
            Event::SolverIteration {
                solver,
                iter,
                residual,
                step,
            } => {
                s.push_str(",\"solver\":");
                escape_into(&mut s, solver);
                s.push_str(",\"iter\":");
                s.push_str(&iter.to_string());
                s.push_str(",\"residual\":");
                fmt_f64_into(&mut s, *residual);
                s.push_str(",\"step\":");
                fmt_f64_into(&mut s, *step);
            }
            Event::SolverReport {
                solver,
                iters,
                max_iters,
                converged,
                final_residual,
            } => {
                s.push_str(",\"solver\":");
                escape_into(&mut s, solver);
                s.push_str(",\"iters\":");
                s.push_str(&iters.to_string());
                s.push_str(",\"max_iters\":");
                s.push_str(&max_iters.to_string());
                s.push_str(",\"converged\":");
                s.push_str(if *converged { "true" } else { "false" });
                s.push_str(",\"final_residual\":");
                fmt_f64_into(&mut s, *final_residual);
            }
            Event::MetricsSummary {
                name,
                count,
                p50,
                p90,
                p95,
                p99,
                max,
            } => {
                s.push_str(",\"name\":");
                escape_into(&mut s, name);
                s.push_str(",\"count\":");
                s.push_str(&count.to_string());
                for (key, v) in [
                    ("p50", p50),
                    ("p90", p90),
                    ("p95", p95),
                    ("p99", p99),
                    ("max", max),
                ] {
                    s.push_str(",\"");
                    s.push_str(key);
                    s.push_str("\":");
                    fmt_f64_into(&mut s, *v);
                }
            }
            Event::Log { level, message } => {
                s.push_str(",\"level\":");
                escape_into(&mut s, level);
                s.push_str(",\"message\":");
                escape_into(&mut s, message);
            }
            Event::Trace {
                trace_id,
                stage,
                us,
                note,
            } => {
                s.push_str(",\"trace_id\":");
                s.push_str(&trace_id.to_string());
                s.push_str(",\"stage\":");
                escape_into(&mut s, stage);
                s.push_str(",\"us\":");
                fmt_f64_into(&mut s, *us);
                s.push_str(",\"note\":");
                escape_into(&mut s, note);
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json_object;

    #[test]
    fn every_kind_serialises_to_valid_json() {
        let events = [
            Event::Span {
                path: "fit.quadhist/solve".into(),
                depth: 1,
                wall_us: 1234,
            },
            Event::Counter {
                name: "mc_samples_drawn".into(),
                value: 42,
            },
            Event::Gauge {
                name: "tau".into(),
                value: 0.015,
            },
            Event::Histogram {
                name: "predict.latency_us".into(),
                count: 10,
                min: 0.5,
                max: 9.0,
                mean: 3.2,
                p50: 3.0,
                p90: 8.0,
                p95: 8.5,
                p99: 9.0,
            },
            Event::SolverIteration {
                solver: "fista",
                iter: 3,
                residual: 1e-6,
                step: 0.01,
            },
            Event::SolverReport {
                solver: "nnls",
                iters: 17,
                max_iters: 600,
                converged: true,
                final_residual: 2.5e-9,
            },
            Event::MetricsSummary {
                name: "q_error".into(),
                count: 1000,
                p50: 1.1,
                p90: 1.9,
                p95: 2.4,
                p99: 4.0,
                max: 11.0,
            },
            Event::Log {
                level: "info",
                message: "quoted \"text\" and\nnewline".into(),
            },
            Event::Trace {
                trace_id: 4096,
                stage: "estimate".into(),
                us: 42.5,
                note: "model=default run=8".into(),
            },
        ];
        let mut kinds = std::collections::BTreeSet::new();
        for e in &events {
            let js = e.to_json();
            assert!(validate_json_object(&js), "invalid JSON: {js}");
            kinds.insert(e.kind());
        }
        assert_eq!(kinds.len(), 9, "nine distinct event kinds");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event::Gauge {
            name: "g".into(),
            value: f64::NAN,
        };
        assert!(e.to_json().contains("\"value\":null"));
        let e = Event::SolverIteration {
            solver: "fista",
            iter: 0,
            residual: f64::INFINITY,
            step: 0.0,
        };
        assert!(e.to_json().contains("\"residual\":null"));
    }
}
