//! Pluggable event sinks.
//!
//! The sink contract ([`ObsSink`]) is deliberately tiny: `record` must be
//! callable concurrently from any thread (the trait requires
//! `Send + Sync`), must not panic, and should be cheap — instrumented
//! code calls it synchronously. `flush` is best-effort and called at
//! experiment boundaries, not per event.

use crate::event::Event;
use std::sync::Mutex;

/// Receives structured events. Implementations must tolerate concurrent
/// `record` calls (events arrive from rayon worker threads under the
/// `parallel` feature).
pub trait ObsSink: Send + Sync {
    /// Records one event. Must not panic.
    fn record(&self, event: &Event);
    /// Flushes any buffered output. Default: no-op.
    fn flush(&self) {}
}

/// Discards every event. The default configuration is *no sink at all*
/// (one branch on a static); `NullSink` exists for explicitly measuring
/// the cost of the emission path itself.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ObsSink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Buffers events in memory for test assertions.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a snapshot of every event recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Drains and returns the recorded events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// `true` when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ObsSink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(event.clone());
    }
}

/// Writes one JSON object per line to a file (the `--trace-out` format).
#[cfg(feature = "jsonl")]
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<std::io::BufWriter<std::fs::File>>,
}

#[cfg(feature = "jsonl")]
impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self {
            writer: Mutex::new(std::io::BufWriter::new(file)),
        })
    }
}

#[cfg(feature = "jsonl")]
impl ObsSink for JsonlSink {
    fn record(&self, event: &Event) {
        use std::io::Write;
        let line = event.to_json();
        // Sinks must not panic: swallow I/O errors (disk-full traces are
        // best-effort diagnostics, not results).
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.write_all(line.as_bytes());
            let _ = w.write_all(b"\n");
        }
    }

    fn flush(&self) {
        use std::io::Write;
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}
