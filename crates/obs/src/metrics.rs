//! Counter, gauge, and histogram registries.
//!
//! Registration (first use of a name) takes a `RwLock` write; every
//! subsequent bump is lock-free on an `Arc<AtomicU64>` fetched under the
//! read lock, so concurrent bumps from rayon workers never serialise on
//! a mutex. Registries are `BTreeMap`s so snapshots are deterministically
//! sorted by name.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

type Registry = RwLock<BTreeMap<String, Arc<AtomicU64>>>;

fn counters() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(BTreeMap::new()))
}

fn gauges() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(BTreeMap::new()))
}

fn histograms() -> &'static RwLock<BTreeMap<String, Arc<Histogram>>> {
    static REG: OnceLock<RwLock<BTreeMap<String, Arc<Histogram>>>> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(BTreeMap::new()))
}

fn cell(reg: &'static Registry, name: &str) -> Arc<AtomicU64> {
    if let Some(c) = reg.read().unwrap_or_else(std::sync::PoisonError::into_inner).get(name) {
        return Arc::clone(c);
    }
    let mut w = reg.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(w.entry(name.to_string()).or_default())
}

/// Adds `n` to the monotonic counter `name`. No-op while observability is
/// disabled.
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if !crate::enabled() {
        return;
    }
    cell(counters(), name).fetch_add(n, Ordering::Relaxed);
}

/// Current value of counter `name` (0 if never bumped).
pub fn counter_get(name: &str) -> u64 {
    counters()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(name)
        .map_or(0, |c| c.load(Ordering::Relaxed))
}

/// Sets gauge `name` to `value` (last-writer-wins). No-op while disabled.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    cell(gauges(), name).store(value.to_bits(), Ordering::Relaxed);
}

/// Sorted snapshot of every counter.
pub fn counter_snapshot() -> Vec<(String, u64)> {
    counters()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect()
}

/// Sorted snapshot of every gauge.
pub fn gauge_snapshot() -> Vec<(String, f64)> {
    gauges()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
        .collect()
}

/// Octaves covered by the histogram: binary exponents `-OFFSET ..
/// OFFSET + OCTAVES - 1`, spanning ~1e-193 … ~1e+193 — far wider than
/// any latency or residual we record.
const OCTAVES: usize = 1284;
const OFFSET: i32 = 642;
/// Linear sub-buckets per octave. Pure log₂ buckets make quantiles
/// coarse (up to a factor of 2 off); four equal-width slices per octave
/// bound the midpoint's relative error at 1/8 = 12.5%.
const SUBS: usize = 4;
/// Bucket 0 catches non-finite and non-positive samples; the rest are
/// `OCTAVES × SUBS` linear-in-octave slices.
const BUCKETS: usize = 1 + OCTAVES * SUBS;

/// Lock-free histogram: log₂ octaves split into [`SUBS`] linear
/// sub-buckets, plus CAS-maintained exact min/max/sum, all `AtomicU64`.
/// Non-finite and non-positive samples go to bucket 0 (they still
/// count; min/max/sum skip non-finite values).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// f64 bits; ordering maintained by CAS loops.
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

fn bucket_index(v: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    let e = v.log2().floor() as i32;
    let octave = (e + OFFSET).clamp(0, OCTAVES as i32 - 1) as usize;
    // Mantissa in [1, 2); floating-point rounding at octave edges can
    // push it fractionally outside, so the slice index is clamped.
    let mantissa = v / 2f64.powi(e);
    let sub = (((mantissa - 1.0) * SUBS as f64) as usize).min(SUBS - 1);
    1 + octave * SUBS + sub
}

/// `(lower, upper)` edges of bucket `i ≥ 1`.
fn bucket_edges(i: usize) -> (f64, f64) {
    let k = i - 1;
    let base = 2f64.powi((k / SUBS) as i32 - OFFSET);
    let sub = (k % SUBS) as f64;
    (
        base * (1.0 + sub / SUBS as f64),
        base * (1.0 + (sub + 1.0) / SUBS as f64),
    )
}

fn bucket_midpoint(i: usize) -> f64 {
    if i == 0 {
        return 0.0;
    }
    let (lo, hi) = bucket_edges(i);
    (lo + hi) / 2.0
}

impl Histogram {
    fn record(&self, v: f64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if !v.is_finite() {
            return;
        }
        // CAS loops for min/max/sum. The sum is *not* deterministic under
        // parallel interleave (float addition is non-associative), but it
        // is only used for the mean in reports, never in results.
        let mut cur = self.min_bits.load(Ordering::Relaxed);
        while v < f64::from_bits(cur) {
            match self.min_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.max_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let quantile = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    let mid = bucket_midpoint(i);
                    // The tracked exact extremes tighten the edge
                    // buckets: no quantile can sit outside [min, max].
                    if min.is_finite() && max.is_finite() && min <= max {
                        return mid.clamp(min, max);
                    }
                    return mid;
                }
            }
            bucket_midpoint(BUCKETS - 1)
        };
        HistogramSummary {
            count,
            min: if count == 0 || !min.is_finite() { 0.0 } else { min },
            max: if count == 0 || !max.is_finite() { 0.0 } else { max },
            mean: if count == 0 { 0.0 } else { sum / count as f64 },
            p50: quantile(0.50),
            p90: quantile(0.90),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }

    /// Raw bucket export for the Prometheus exposition: cumulative
    /// counts at the upper edge of every non-empty bucket (ascending),
    /// plus the exact running sum. Bucket 0 (non-positive / non-finite
    /// samples) exports with an upper bound of `0`.
    fn export(&self) -> HistogramExport {
        let mut cumulative = Vec::new();
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            seen += c;
            let upper = if i == 0 { 0.0 } else { bucket_edges(i).1 };
            cumulative.push((upper, seen));
        }
        HistogramExport {
            cumulative,
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time summary of one histogram. Quantiles are linear
/// sub-bucket midpoints clamped to the exact tracked min/max — accurate
/// to within ~12.5% relative error, plenty for latency/residual
/// distributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact minimum finite sample (0.0 when empty).
    pub min: f64,
    /// Exact maximum finite sample (0.0 when empty).
    pub max: f64,
    /// Arithmetic mean of finite samples.
    pub mean: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 90th percentile.
    pub p90: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
}

/// Raw cumulative-bucket view of one histogram, shaped for the
/// Prometheus text exposition (`le` upper bounds with cumulative
/// counts, exact `sum`, total `count`).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramExport {
    /// `(upper_bound, cumulative_count)` for every non-empty bucket,
    /// ascending by bound. The final entry's count equals `count`.
    pub cumulative: Vec<(f64, u64)>,
    /// Total samples recorded.
    pub count: u64,
    /// Exact running sum of finite samples.
    pub sum: f64,
}

fn histogram_cell(name: &str) -> Arc<Histogram> {
    if let Some(h) = histograms()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(name)
    {
        return Arc::clone(h);
    }
    let mut w = histograms().write().unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(w.entry(name.to_string()).or_default())
}

/// Records `value` into histogram `name`. No-op while disabled.
#[inline]
pub fn histogram_record(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    histogram_cell(name).record(value);
}

/// Like [`histogram_record`] but takes an owned name (for composed
/// names); still no-op while disabled, checked before use.
#[inline]
pub(crate) fn histogram_record_str(name: String, value: f64) {
    if !crate::enabled() {
        return;
    }
    histogram_cell(&name).record(value);
}

/// Sorted snapshot of every histogram's summary.
pub fn histogram_snapshot() -> Vec<(String, HistogramSummary)> {
    histograms()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), v.summary()))
        .collect()
}

/// Summary of one named histogram, if it exists.
pub fn histogram_get(name: &str) -> Option<HistogramSummary> {
    histograms()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(name)
        .map(|h| h.summary())
}

/// Sorted snapshot of every histogram's raw cumulative buckets (the
/// `/metrics` exposition view).
pub fn histogram_export_snapshot() -> Vec<(String, HistogramExport)> {
    histograms()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), v.export()))
        .collect()
}

/// Clears all three registries.
pub fn reset() {
    counters().write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    gauges().write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    histograms()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    #[test]
    fn histogram_summary_tracks_distribution() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::clear_sink();
        crate::reset();
        crate::enable_stats(true);
        for i in 1..=1000u32 {
            histogram_record("lat", f64::from(i));
        }
        let s = histogram_get("lat").unwrap();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        assert!((s.mean - 500.5).abs() < 1e-9);
        // sub-bucketed quantiles: within ~12.5% of the truth
        assert!((s.p50 / 500.0 - 1.0).abs() <= 0.13, "p50 = {}", s.p50);
        assert!((s.p99 / 990.0 - 1.0).abs() <= 0.13, "p99 = {}", s.p99);
        crate::enable_stats(false);
        crate::reset();
    }

    /// The satellite acceptance bound: on known distributions every
    /// reported quantile lands within ~12.5% relative error (linear
    /// quarter-octave sub-buckets, midpoints clamped to exact min/max).
    #[test]
    fn quantile_error_is_bounded_on_known_distributions() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::clear_sink();
        crate::reset();
        crate::enable_stats(true);
        // Uniform on [1, 10000], geometric 2^(i/100) spanning ~10 octaves,
        // and a bimodal latency-like mix.
        let uniform: Vec<f64> = (1..=10_000).map(f64::from).collect();
        let geometric: Vec<f64> = (0..1000).map(|i| 2f64.powf(i as f64 / 100.0)).collect();
        let bimodal: Vec<f64> = (0..1000)
            .map(|i| if i % 10 == 9 { 900.0 + i as f64 } else { 3.0 + (i % 7) as f64 * 0.1 })
            .collect();
        for (name, samples) in [
            ("qbound.uniform", uniform),
            ("qbound.geometric", geometric),
            ("qbound.bimodal", bimodal),
        ] {
            for &v in &samples {
                histogram_record(name, v);
            }
            let mut sorted = samples.clone();
            sorted.sort_by(f64::total_cmp);
            let s = histogram_get(name).unwrap();
            for (q, got) in [(0.50, s.p50), (0.90, s.p90), (0.95, s.p95), (0.99, s.p99)] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let truth = sorted[rank - 1];
                let rel = (got / truth - 1.0).abs();
                assert!(
                    rel <= 0.125 + 1e-9,
                    "{name} p{}: got {got}, truth {truth}, rel err {rel:.4}",
                    (q * 100.0) as u32
                );
            }
        }
        crate::enable_stats(false);
        crate::reset();
    }

    #[test]
    fn export_is_cumulative_and_monotone() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::clear_sink();
        crate::reset();
        crate::enable_stats(true);
        for v in [0.5, 1.0, 1.3, 2.0, 2.6, 100.0, -1.0] {
            histogram_record("expo.h", v);
        }
        let export = histogram_export_snapshot()
            .into_iter()
            .find(|(n, _)| n == "expo.h")
            .map(|(_, e)| e)
            .unwrap();
        assert_eq!(export.count, 7);
        assert!((export.sum - (0.5 + 1.0 + 1.3 + 2.0 + 2.6 + 100.0 - 1.0)).abs() < 1e-12);
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_cum = 0;
        for &(bound, cum) in &export.cumulative {
            assert!(bound > prev_bound, "bounds ascend");
            assert!(cum > prev_cum, "cumulative counts strictly grow");
            prev_bound = bound;
            prev_cum = cum;
        }
        assert_eq!(export.cumulative.last().unwrap().1, 7);
        // -1.0 lands in the catch-all bucket with bound 0.
        assert_eq!(export.cumulative[0], (0.0, 1));
        crate::enable_stats(false);
        crate::reset();
    }

    #[test]
    fn histogram_handles_degenerate_samples() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::clear_sink();
        crate::reset();
        crate::enable_stats(true);
        histogram_record("weird", 0.0);
        histogram_record("weird", -3.0);
        histogram_record("weird", f64::NAN);
        histogram_record("weird", 1e-200);
        let s = histogram_get("weird").unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, -3.0);
        assert_eq!(s.max, 1e-200);
        crate::enable_stats(false);
        crate::reset();
    }

    #[test]
    fn counters_accumulate_across_threads() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::clear_sink();
        crate::reset();
        crate::enable_stats(true);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        counter_add("threaded", 1);
                    }
                });
            }
        });
        assert_eq!(counter_get("threaded"), 40_000);
        crate::enable_stats(false);
        crate::reset();
    }
}
