//! Integration tests for the sink layer: span nesting shape through a
//! `MemorySink`, and a golden-file check that `JsonlSink` output parses
//! line-by-line.
//!
//! These tests mutate process-global observability state, so the file
//! keeps them in one `#[test]` sequence per concern and resets around
//! each block; `cargo test` runs separate integration-test binaries in
//! separate processes, so no cross-file interference is possible.

use selearn_obs::{Event, MemorySink};
use std::sync::{Arc, Mutex};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn with_clean_state<R>(f: impl FnOnce() -> R) -> R {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    selearn_obs::clear_sink();
    selearn_obs::reset();
    let r = f();
    selearn_obs::clear_sink();
    selearn_obs::enable_stats(false);
    selearn_obs::reset();
    r
}

#[test]
fn memory_sink_observes_span_nesting_and_timing_tree_shape() {
    with_clean_state(|| {
        let mem = Arc::new(MemorySink::new());
        selearn_obs::set_sink(mem.clone());

        {
            let _fit = selearn_obs::span!("fit.quadhist");
            {
                let _asm = selearn_obs::span!("assemble");
            }
            for _ in 0..3 {
                let _solve = selearn_obs::span!("solve");
            }
        }
        {
            let _pred = selearn_obs::span!("predict.quadhist");
        }

        // Events arrive in close order: inner spans before their parents.
        let spans: Vec<(String, usize)> = mem
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Span { path, depth, .. } => Some((path.clone(), *depth)),
                _ => None,
            })
            .collect();
        assert_eq!(
            spans,
            vec![
                ("fit.quadhist/assemble".to_string(), 1),
                ("fit.quadhist/solve".to_string(), 1),
                ("fit.quadhist/solve".to_string(), 1),
                ("fit.quadhist/solve".to_string(), 1),
                ("fit.quadhist".to_string(), 0),
                ("predict.quadhist".to_string(), 0),
            ]
        );

        // The aggregate timing tree is path-keyed and sorted: parent
        // first, children under it, repeat counts folded.
        let tree: Vec<(String, u64)> = selearn_obs::span::timing_snapshot()
            .into_iter()
            .map(|(p, s)| (p, s.count))
            .collect();
        assert_eq!(
            tree,
            vec![
                ("fit.quadhist".to_string(), 1),
                ("fit.quadhist/assemble".to_string(), 1),
                ("fit.quadhist/solve".to_string(), 3),
                ("predict.quadhist".to_string(), 1),
            ]
        );
    });
}

#[test]
fn solver_iteration_helper_emits_event_and_residual_histogram() {
    with_clean_state(|| {
        let mem = Arc::new(MemorySink::new());
        selearn_obs::set_sink(mem.clone());
        selearn_obs::solver_iteration("fista", 0, 1e-3, 0.5);
        selearn_obs::solver_iteration("fista", 1, 1e-5, 0.5);
        let iters: Vec<usize> = mem
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::SolverIteration { iter, .. } => Some(*iter),
                _ => None,
            })
            .collect();
        assert_eq!(iters, vec![0, 1]);
        let h = selearn_obs::metrics::histogram_get("fista.residual").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 1e-3);
    });
}

#[cfg(feature = "jsonl")]
#[test]
fn jsonl_sink_golden_file_parses_line_by_line() {
    use selearn_obs::json::validate_json_object;
    use selearn_obs::JsonlSink;

    let path = std::env::temp_dir().join("selearn_obs_golden_trace.jsonl");
    with_clean_state(|| {
        let sink = Arc::new(JsonlSink::create(&path).expect("create trace file"));
        selearn_obs::set_sink(sink);

        // One event of every kind, including strings that exercise the
        // escaper, written through the real global emission path.
        {
            let _s = selearn_obs::span!("golden.fit");
        }
        selearn_obs::counter_add("mc_samples_drawn", 4096);
        selearn_obs::gauge_set("tau", 0.0125);
        selearn_obs::histogram_record("predict.latency_us", 17.0);
        selearn_obs::solver_iteration("nnls", 4, 3.2e-7, 1.0);
        selearn_obs::emit(&Event::SolverReport {
            solver: "nnls",
            iters: 5,
            max_iters: 600,
            converged: true,
            final_residual: 3.2e-7,
        });
        selearn_obs::emit(&Event::MetricsSummary {
            name: "q_error".into(),
            count: 100,
            p50: 1.1,
            p90: 2.0,
            p95: 2.6,
            p99: 4.2,
            max: f64::INFINITY, // must serialise as null, not break the line
        });
        selearn_obs::log::log(selearn_obs::Level::Info, "golden \"quoted\"\tline");
        selearn_obs::flush_aggregates();
        selearn_obs::flush_sink();
    });

    let contents = std::fs::read_to_string(&path).expect("read trace file");
    let lines: Vec<&str> = contents.lines().collect();
    assert!(lines.len() >= 8, "expected ≥8 events, got {}", lines.len());
    let mut kinds = std::collections::BTreeSet::new();
    for line in &lines {
        assert!(validate_json_object(line), "invalid JSONL line: {line}");
        let kind = line
            .split("\"kind\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or_default()
            .to_string();
        kinds.insert(kind);
    }
    for expected in [
        "span",
        "counter",
        "gauge",
        "histogram",
        "solver-iteration",
        "solver-report",
        "metrics-summary",
        "log",
    ] {
        assert!(kinds.contains(expected), "missing kind {expected}: {kinds:?}");
    }
    let _ = std::fs::remove_file(&path);
}
