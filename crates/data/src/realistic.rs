//! Seeded stand-ins for the paper's four evaluation datasets.
//!
//! The paper evaluates on UCI **Power** (2.1M × 7), UCI **Forest/CoverType**
//! (581K × 10), UCI **Census** (49K × 13, 8 categorical), and NY **DMV**
//! (11M × 11, 10 categorical). Those files are not redistributable inside
//! this repository, so each generator below reproduces the properties the
//! experiments actually exercise:
//!
//! * the **dimensionality** and attribute typing (numeric vs categorical),
//! * heavy **skew** and **clustering** (Power's measurements concentrate in
//!   the lower range — compare the paper's Figure 7 where the data mass
//!   sits in the lower half of the 2-D projection),
//! * cross-attribute **correlation** (Forest's terrain variables),
//! * low-cardinality **categorical marginals** with Zipf-like frequencies
//!   (Census, DMV).
//!
//! Row counts are scaled down (the selectivity function is scale-free; the
//! oracle only gets faster) and every generator is deterministic in its
//! seed. See DESIGN.md ("Substitutions") for the faithfulness argument.

use crate::dataset::Dataset;
use crate::synth::{generate, AttrSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default row count used by the experiment harness; large enough for the
/// oracle's labels to have negligible sampling error at the paper's
/// selectivity scales, small enough to keep labeling fast.
pub const DEFAULT_ROWS: usize = 100_000;

/// Power-like dataset: 7 numeric attributes of household electric-power
/// measurements. Highly skewed — most mass near the low end with a minor
/// high-usage mode — and pairwise-correlated (sub-metering channels follow
/// global active power).
pub fn power_like(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let specs = vec![
        // global active power: strong low mode + small high-load mode
        AttrSpec::GaussianMixture(vec![(0.75, 0.12, 0.06), (0.25, 0.45, 0.12)]),
        // global reactive power: tight low concentration
        AttrSpec::GaussianMixture(vec![(0.9, 0.08, 0.04), (0.1, 0.3, 0.08)]),
        // voltage: near-Gaussian band in the middle
        AttrSpec::GaussianMixture(vec![(1.0, 0.55, 0.08)]),
        // global intensity: follows active power (shared latent)
        AttrSpec::Correlated {
            a: 0.5,
            b: 0.05,
            sigma: 0.05,
        },
        // sub-metering 1..3: mostly zero with bursts
        AttrSpec::GaussianMixture(vec![(0.85, 0.03, 0.02), (0.15, 0.5, 0.15)]),
        AttrSpec::GaussianMixture(vec![(0.8, 0.05, 0.03), (0.2, 0.4, 0.1)]),
        AttrSpec::Correlated {
            a: 0.6,
            b: 0.02,
            sigma: 0.08,
        },
    ];
    generate("Power", n, &specs, &mut rng)
}

/// Forest/CoverType-like dataset: 10 numeric cartographic attributes with
/// clustered terrain structure (elevation bands) and correlated
/// hillshade/slope variables.
pub fn forest_like(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let specs = vec![
        // elevation: three terrain bands
        AttrSpec::GaussianMixture(vec![(0.4, 0.35, 0.07), (0.4, 0.55, 0.07), (0.2, 0.8, 0.05)]),
        // aspect: broad, near-uniform with mild mode
        AttrSpec::GaussianMixture(vec![(0.6, 0.3, 0.2), (0.4, 0.75, 0.15)]),
        // slope: skewed low
        AttrSpec::GaussianMixture(vec![(1.0, 0.2, 0.1)]),
        // horizontal distance to hydrology: skewed low
        AttrSpec::GaussianMixture(vec![(0.8, 0.15, 0.1), (0.2, 0.5, 0.15)]),
        // vertical distance to hydrology: tight near middle-low
        AttrSpec::GaussianMixture(vec![(1.0, 0.3, 0.06)]),
        // horizontal distance to roadways: correlated with elevation latent
        AttrSpec::Correlated {
            a: 0.6,
            b: 0.15,
            sigma: 0.1,
        },
        // hillshade 9am / noon / 3pm: correlated trio
        AttrSpec::Correlated {
            a: 0.3,
            b: 0.55,
            sigma: 0.06,
        },
        AttrSpec::Correlated {
            a: 0.25,
            b: 0.6,
            sigma: 0.05,
        },
        AttrSpec::Correlated {
            a: -0.3,
            b: 0.7,
            sigma: 0.07,
        },
        // distance to fire points: skewed low
        AttrSpec::GaussianMixture(vec![(0.7, 0.2, 0.1), (0.3, 0.55, 0.12)]),
    ];
    generate("Forest", n, &specs, &mut rng)
}

/// Census-like dataset: 13 attributes — 8 categorical (Zipf-skewed
/// low-cardinality codes) and 5 numeric (age/income-style skew).
pub fn census_like(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let specs = vec![
        // 8 categorical attributes with varying cardinalities
        AttrSpec::Zipf { k: 9, s: 1.1 },  // workclass
        AttrSpec::Zipf { k: 16, s: 0.9 }, // education
        AttrSpec::Zipf { k: 7, s: 1.0 },  // marital status
        AttrSpec::Zipf { k: 15, s: 1.2 }, // occupation
        AttrSpec::Zipf { k: 6, s: 1.3 },  // relationship
        AttrSpec::Zipf { k: 5, s: 1.8 },  // race
        AttrSpec::Zipf { k: 2, s: 0.5 },  // sex
        AttrSpec::Zipf { k: 42, s: 1.5 }, // native country
        // 5 numeric attributes
        AttrSpec::GaussianMixture(vec![(0.7, 0.3, 0.12), (0.3, 0.55, 0.1)]), // age
        AttrSpec::GaussianMixture(vec![(0.9, 0.1, 0.08), (0.1, 0.6, 0.2)]),  // capital gain
        AttrSpec::GaussianMixture(vec![(0.95, 0.05, 0.04), (0.05, 0.5, 0.15)]), // capital loss
        AttrSpec::GaussianMixture(vec![(1.0, 0.4, 0.07)]),                   // hours/week
        AttrSpec::GaussianMixture(vec![(0.8, 0.2, 0.1), (0.2, 0.5, 0.15)]),  // fnlwgt
    ];
    generate("Census", n, &specs, &mut rng)
}

/// DMV-like dataset: 11 attributes — 10 categorical registration codes
/// (heavily Zipf-skewed: a few vehicle classes/colors dominate) and 1
/// numeric (model year-style).
pub fn dmv_like(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let specs = vec![
        AttrSpec::Zipf { k: 20, s: 1.6 }, // record type
        AttrSpec::Zipf { k: 10, s: 1.4 }, // registration class
        AttrSpec::Zipf { k: 62, s: 1.8 }, // city (many, very skewed)
        AttrSpec::Zipf { k: 14, s: 1.0 }, // state
        AttrSpec::Zipf { k: 5, s: 1.2 },  // zip region
        AttrSpec::Zipf { k: 30, s: 1.7 }, // county
        AttrSpec::Zipf { k: 4, s: 0.8 },  // body type
        AttrSpec::Zipf { k: 25, s: 1.9 }, // fuel type/make bucket
        AttrSpec::Zipf { k: 12, s: 1.1 }, // color
        AttrSpec::Zipf { k: 3, s: 0.6 },  // scofflaw/suspension flags
        // model year: skewed toward recent
        AttrSpec::GaussianMixture(vec![(0.7, 0.75, 0.1), (0.3, 0.45, 0.15)]),
    ];
    generate("DMV", n, &specs, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selearn_geom::{Range, Rect};

    #[test]
    fn shapes_match_paper() {
        assert_eq!(power_like(1000, 1).dim(), 7);
        assert_eq!(forest_like(1000, 1).dim(), 10);
        assert_eq!(census_like(1000, 1).dim(), 13);
        assert_eq!(dmv_like(1000, 1).dim(), 11);
    }

    #[test]
    fn power_mass_concentrates_low() {
        // Figure 7 of the paper: the 2-D Power projection has its mass in
        // the lower region. Check attribute 0's median is below 0.5.
        let d = power_like(20_000, 7);
        let below = d.rows().filter(|r| r[0] < 0.5).count() as f64 / d.len() as f64;
        assert!(below > 0.7, "below = {below}");
    }

    #[test]
    fn datasets_are_seeded_deterministic() {
        let a = power_like(500, 42);
        let b = power_like(500, 42);
        assert_eq!(a.rows().collect::<Vec<_>>(), b.rows().collect::<Vec<_>>());
        let c = power_like(500, 43);
        assert_ne!(a.rows().collect::<Vec<_>>(), c.rows().collect::<Vec<_>>());
    }

    #[test]
    fn census_categoricals_are_discrete() {
        let d = census_like(5_000, 11);
        // attribute 6 (sex) takes exactly two values {0, 1}
        let mut vals: Vec<f64> = d.rows().map(|r| r[6]).collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        assert_eq!(vals.len(), 2, "{vals:?}");
    }

    #[test]
    fn dmv_is_heavily_skewed() {
        let d = dmv_like(20_000, 13);
        // city attribute (index 2): top category should dominate
        let top = d.rows().filter(|r| r[2] == 0.0).count() as f64 / d.len() as f64;
        assert!(top > 0.25, "top category frequency = {top}");
    }

    #[test]
    fn selectivity_oracle_works_on_projection() {
        let d = forest_like(5_000, 3).project(&[0, 1]);
        let r: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]).into();
        let s = d.selectivity(&r);
        assert!(s > 0.0 && s < 1.0, "s = {s}");
    }

    #[test]
    fn values_normalized() {
        for d in [
            power_like(2_000, 1),
            forest_like(2_000, 1),
            census_like(2_000, 1),
            dmv_like(2_000, 1),
        ] {
            for row in d.rows() {
                assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }
}
