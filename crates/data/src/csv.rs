//! Loading external relations from CSV.
//!
//! The paper evaluates on UCI Power/Forest/Census and NY DMV; this
//! repository ships seeded look-alikes ([`crate::realistic`]) because the
//! raw files are not redistributable — but users who have them can load
//! them here. Loading performs exactly the paper's preprocessing
//! (Section 4): numeric attributes are min–max normalized into `[0, 1]`;
//! non-numeric (categorical) attributes are dictionary-encoded onto the
//! lattice `{0, 1/(k−1), …, 1}` in sorted category order.
//!
//! All loader failures are typed [`SelearnError`]s: file-level problems
//! (unreadable file, ragged rows) use [`SelearnError::Dataset`], and
//! malformed cells use [`SelearnError::Csv`] carrying the zero-based data
//! row and column indices of the offending cell.

use crate::dataset::Dataset;
use selearn_core::SelearnError;
use std::collections::BTreeMap;
use std::path::Path;

/// Per-column metadata produced by the loader.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnKind {
    /// Numeric column with the observed `[min, max]` used for scaling.
    Numeric {
        /// Observed minimum (maps to 0).
        min: f64,
        /// Observed maximum (maps to 1).
        max: f64,
    },
    /// Categorical column with its dictionary (sorted category order).
    Categorical {
        /// Distinct values in encoding order.
        dictionary: Vec<String>,
    },
}

/// Loader output schema: name and kind per column.
#[derive(Clone, Debug)]
pub struct CsvSchema {
    /// Column names (from the header, or `col0…` when absent).
    pub names: Vec<String>,
    /// Per-column kind + normalization parameters.
    pub kinds: Vec<ColumnKind>,
}

impl CsvSchema {
    /// Indices of categorical columns — feed these to
    /// [`crate::workload::WorkloadSpec::with_categorical`].
    pub fn categorical_dims(&self) -> Vec<usize> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| matches!(k, ColumnKind::Categorical { .. }))
            .map(|(i, _)| i)
            .collect()
    }
}

fn dataset_err(message: impl Into<String>) -> SelearnError {
    SelearnError::Dataset {
        message: message.into(),
    }
}

/// Loads a comma-separated file into a normalized [`Dataset`].
///
/// * `has_header` — treat the first row as column names;
/// * a column is numeric iff *every* non-empty cell parses as `f64`;
/// * empty cells become the column's minimum (numeric) or their own
///   category (categorical);
/// * constant numeric columns map to 0.5 (min = max carries no signal).
pub fn load_csv(
    path: impl AsRef<Path>,
    has_header: bool,
) -> Result<(Dataset, CsvSchema), SelearnError> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| dataset_err(format!("{}: {e}", path.as_ref().display())))?;
    parse_csv(&text, has_header, path.as_ref().display().to_string())
}

/// Parses CSV text (exposed for tests and in-memory use).
pub fn parse_csv(
    text: &str,
    has_header: bool,
    name: String,
) -> Result<(Dataset, CsvSchema), SelearnError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let mut names: Vec<String> = Vec::new();
    if has_header {
        let header = lines.next().ok_or_else(|| dataset_err("empty file"))?;
        names = header.split(',').map(|s| s.trim().to_string()).collect();
    }
    let rows: Vec<Vec<String>> = lines
        .map(|l| l.split(',').map(|s| s.trim().to_string()).collect())
        .collect();
    if rows.is_empty() {
        return Err(dataset_err("no data rows"));
    }
    let width = rows[0].len();
    if width == 0 {
        return Err(dataset_err("zero-width rows"));
    }
    for (i, r) in rows.iter().enumerate() {
        if r.len() != width {
            return Err(dataset_err(format!(
                "row {i} has {} fields, expected {width}",
                r.len()
            )));
        }
    }
    if names.is_empty() {
        names = (0..width).map(|i| format!("col{i}")).collect();
    } else if names.len() != width {
        return Err(dataset_err(format!(
            "header has {} names but rows have {width} fields",
            names.len()
        )));
    }

    // classify columns
    let mut kinds: Vec<ColumnKind> = Vec::with_capacity(width);
    for c in 0..width {
        let mut numeric = true;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for r in &rows {
            let cell = &r[c];
            if cell.is_empty() {
                continue;
            }
            match cell.parse::<f64>() {
                Ok(v) if v.is_finite() => {
                    min = min.min(v);
                    max = max.max(v);
                }
                _ => {
                    numeric = false;
                    break;
                }
            }
        }
        if numeric && min.is_finite() {
            kinds.push(ColumnKind::Numeric { min, max });
        } else {
            let mut dict: BTreeMap<String, usize> = BTreeMap::new();
            for r in &rows {
                dict.entry(r[c].clone()).or_insert(0);
            }
            let dictionary: Vec<String> = dict.into_keys().collect();
            kinds.push(ColumnKind::Categorical { dictionary });
        }
    }

    // encode; classification above makes the per-cell failures below
    // unreachable, but a typed error beats trusting that at a distance
    let mut data = Vec::with_capacity(rows.len() * width);
    for (ri, r) in rows.iter().enumerate() {
        for (c, kind) in kinds.iter().enumerate() {
            let v = match kind {
                ColumnKind::Numeric { min, max } => {
                    let raw = if r[c].is_empty() {
                        *min
                    } else {
                        r[c].parse::<f64>().map_err(|_| SelearnError::Csv {
                            row: ri,
                            col: c,
                            message: format!("not a number: '{}'", r[c]),
                        })?
                    };
                    if max > min {
                        (raw - min) / (max - min)
                    } else {
                        0.5
                    }
                }
                ColumnKind::Categorical { dictionary } => {
                    let idx =
                        dictionary
                            .binary_search(&r[c])
                            .map_err(|_| SelearnError::Csv {
                                row: ri,
                                col: c,
                                message: format!("value '{}' missing from dictionary", r[c]),
                            })?;
                    if dictionary.len() == 1 {
                        0.5
                    } else {
                        idx as f64 / (dictionary.len() - 1) as f64
                    }
                }
            };
            data.push(v.clamp(0.0, 1.0));
        }
    }
    let dataset = Dataset::new(name, width, data);
    Ok((dataset, CsvSchema { names, kinds }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_columns_min_max_normalized() {
        let (d, schema) = parse_csv("a,b\n1,10\n3,20\n2,30\n", true, "t".into()).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(schema.names, vec!["a", "b"]);
        // a: [1,3] → {0, 1, 0.5}; b: [10,30] → {0, 0.5, 1}
        assert_eq!(d.row(0), &[0.0, 0.0]);
        assert_eq!(d.row(1), &[1.0, 0.5]);
        assert_eq!(d.row(2), &[0.5, 1.0]);
        assert!(matches!(
            schema.kinds[0],
            ColumnKind::Numeric { min, max } if min == 1.0 && max == 3.0
        ));
    }

    #[test]
    fn categorical_columns_dictionary_encoded() {
        let (d, schema) =
            parse_csv("city,year\nNYC,2001\nLA,2003\nNYC,2002\nSF,2001\n", true, "t".into())
                .unwrap();
        // dictionary sorted: LA, NYC, SF → 0, 0.5, 1
        assert_eq!(d.row(0)[0], 0.5); // NYC
        assert_eq!(d.row(1)[0], 0.0); // LA
        assert_eq!(d.row(3)[0], 1.0); // SF
        assert_eq!(schema.categorical_dims(), vec![0]);
        let ColumnKind::Categorical { dictionary } = &schema.kinds[0] else {
            panic!("expected categorical")
        };
        assert_eq!(dictionary, &["LA", "NYC", "SF"]);
    }

    #[test]
    fn headerless_files_get_generated_names() {
        let (d, schema) = parse_csv("0.5,x\n0.7,y\n", false, "t".into()).unwrap();
        assert_eq!(schema.names, vec!["col0", "col1"]);
        assert_eq!(d.len(), 2);
        assert_eq!(schema.categorical_dims(), vec![1]);
    }

    #[test]
    fn constant_numeric_column_maps_to_half() {
        let (d, _) = parse_csv("x\n5\n5\n5\n", true, "t".into()).unwrap();
        assert!(d.rows().all(|r| r[0] == 0.5));
    }

    #[test]
    fn empty_numeric_cells_become_min() {
        // note: a fully blank line would be skipped as empty, so the empty
        // cell lives in a two-column row
        let (d, _) = parse_csv("x,y\n1,a\n,b\n3,c\n", true, "t".into()).unwrap();
        assert_eq!(d.row(1)[0], 0.0);
    }

    #[test]
    fn ragged_rows_rejected() {
        let e = parse_csv("a,b\n1,2\n3\n", true, "t".into()).unwrap_err();
        assert!(matches!(e, SelearnError::Dataset { .. }), "{e}");
        assert!(e.to_string().contains("fields"), "{e}");
    }

    #[test]
    fn empty_file_rejected() {
        assert!(parse_csv("", true, "t".into()).is_err());
        assert!(parse_csv("a,b\n", true, "t".into()).is_err());
    }

    #[test]
    fn loaded_dataset_supports_selectivity_queries() {
        use selearn_geom::{Range, Rect};
        let (d, _) = parse_csv("x,y\n0,0\n1,1\n2,2\n3,3\n4,4\n", true, "t".into()).unwrap();
        // normalized to the diagonal {0, .25, .5, .75, 1}
        let r: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]).into();
        assert!((d.selectivity(&r) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn round_trip_through_file() {
        let dir = std::env::temp_dir().join("selearn_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.csv");
        std::fs::write(&path, "v,w\n0.1,red\n0.9,blue\n").unwrap();
        let (d, schema) = load_csv(&path, true).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(schema.names, vec!["v", "w"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load_csv("/definitely/not/here.csv", true).is_err());
    }
}
