//! Data substrate: datasets, workloads and error metrics.
//!
//! Section 4 of the paper evaluates on four UCI / open-data datasets
//! (Power, Forest, Census, DMV) with three workload center distributions
//! (Data-driven, Random, Gaussian) and three query types (orthogonal
//! range, halfspace, ball). The raw datasets are not redistributable here,
//! so [`realistic`] provides seeded synthetic generators reproducing each
//! dataset's salient statistics (dimensionality, skew, clustering,
//! categorical attributes); see DESIGN.md for the substitution rationale.
//!
//! * [`Dataset`] — in-memory normalized tuples with an exact selectivity
//!   oracle (the ground truth `s_D(R)` of the learning problem);
//! * [`workload`] — the workload generators of Section 4;
//! * [`metrics`] — RMS error, Q-error quantiles, `L∞` error;
//! * [`synth`] — generic distribution builders (mixtures, correlated
//!   attributes, categorical marginals) used by [`realistic`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The panic-free gate: unwrap/expect are banned outside test code
// (clippy.toml exempts #[cfg(test)]); CI runs clippy with -D warnings.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod csv;
pub mod dataset;
pub mod metrics;
pub mod realistic;
pub mod synth;
pub mod workload;

pub use csv::{load_csv, parse_csv, ColumnKind, CsvSchema};
pub use dataset::Dataset;
pub use metrics::{l_inf_error, mean_error, q_error, q_error_quantiles, rms_error, QErrorSummary};
pub use realistic::{census_like, dmv_like, forest_like, power_like};
pub use workload::{
    CenterDistribution, DriftSegment, LabeledQuery, QueryType, Workload, WorkloadSpec,
};
