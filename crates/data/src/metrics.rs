//! Error measures for selectivity estimators (Section 4, "Error Measures").
//!
//! * **RMS error** `√(1/n Σ (ŝ − s)²)` — the paper's primary accuracy plot
//!   metric;
//! * **Q-error** `max(ŝ, s)/min(ŝ, s)` quantiles [Moerkotte et al. 2009] —
//!   better at capturing relatively large errors on selective queries
//!   (Tables 1, 3, 4, 5);
//! * **L∞ error** `max |ŝ − s|` — used in the objective-function study
//!   (Section 4.6).

/// Root-mean-square error between estimates and truths.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn rms_error(estimated: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimated.len(), truth.len(), "length mismatch");
    assert!(!truth.is_empty(), "no test queries");
    let mse: f64 = estimated
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t) * (e - t))
        .sum::<f64>()
        / truth.len() as f64;
    mse.sqrt()
}

/// Mean absolute error.
pub fn mean_error(estimated: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimated.len(), truth.len(), "length mismatch");
    assert!(!truth.is_empty(), "no test queries");
    estimated
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// `L∞` (max absolute) error.
pub fn l_inf_error(estimated: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimated.len(), truth.len(), "length mismatch");
    estimated
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t).abs())
        .fold(0.0, f64::max)
}

/// Selectivity floor applied before computing Q-error ratios. A selectivity
/// of exactly 0 would make the ratio infinite; systems conventionally floor
/// at "one tuple" — with the harness's 100K-row datasets that is 1e-5.
pub const Q_ERROR_FLOOR: f64 = 1e-5;

/// Q-error of a single estimate: `max(ŝ', s')/min(ŝ', s')` where both
/// values are floored at [`Q_ERROR_FLOOR`].
pub fn q_error(estimated: f64, truth: f64) -> f64 {
    let e = estimated.max(Q_ERROR_FLOOR);
    let t = truth.max(Q_ERROR_FLOOR);
    if e > t {
        e / t
    } else {
        t / e
    }
}

/// Q-error quantile summary, matching the columns of the paper's tables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QErrorSummary {
    /// 50th percentile (median).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl std::fmt::Display for QErrorSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} / {:.3} / {:.3} / {:.3}",
            self.p50, self.p95, self.p99, self.max
        )
    }
}

/// Computes the `{50, 95, 99, max}` Q-error quantiles over a test set.
///
/// # Panics
/// Panics if inputs are empty or of different lengths.
pub fn q_error_quantiles(estimated: &[f64], truth: &[f64]) -> QErrorSummary {
    assert_eq!(estimated.len(), truth.len(), "length mismatch");
    assert!(!truth.is_empty(), "no test queries");
    let mut qs: Vec<f64> = estimated
        .iter()
        .zip(truth)
        .map(|(&e, &t)| q_error(e, t))
        .collect();
    qs.sort_by(f64::total_cmp);
    QErrorSummary {
        p50: quantile_sorted(&qs, 0.50),
        p90: quantile_sorted(&qs, 0.90),
        p95: quantile_sorted(&qs, 0.95),
        p99: quantile_sorted(&qs, 0.99),
        max: qs[qs.len() - 1],
    }
}

impl QErrorSummary {
    /// Exports this summary as a [`selearn_obs::Event::MetricsSummary`] so
    /// traces carry exactly the quantiles the bench tables print — both
    /// come from the one [`q_error_quantiles`] computation. `name` labels
    /// the estimator/workload; `count` is the number of test queries.
    pub fn emit(&self, name: &str, count: usize) {
        if !selearn_obs::sink_installed() {
            return;
        }
        selearn_obs::emit(&selearn_obs::Event::MetricsSummary {
            name: format!("q_error.{name}"),
            count,
            p50: self.p50,
            p90: self.p90,
            p95: self.p95,
            p99: self.p99,
            max: self.max,
        });
    }
}

/// The `p`-quantile (nearest-rank with linear interpolation) of an
/// ascending-sorted slice.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!((0.0..=1.0).contains(&p), "quantile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rms_known_value() {
        // errors 0.3 and 0.4 → RMS = 0.25·... √((0.09+0.16)/2) = √0.125
        let r = rms_error(&[0.5, 0.9], &[0.2, 0.5]);
        assert!((r - 0.125f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rms_zero_when_exact() {
        assert_eq!(rms_error(&[0.1, 0.2], &[0.1, 0.2]), 0.0);
    }

    #[test]
    fn mean_and_linf() {
        let e = [0.5, 0.0];
        let t = [0.2, 0.1];
        assert!((mean_error(&e, &t) - 0.2).abs() < 1e-12);
        assert!((l_inf_error(&e, &t) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn q_error_symmetric_ratio() {
        assert!((q_error(0.2, 0.1) - 2.0).abs() < 1e-12);
        assert!((q_error(0.1, 0.2) - 2.0).abs() < 1e-12);
        assert_eq!(q_error(0.3, 0.3), 1.0);
    }

    #[test]
    fn q_error_floors_zero_truth() {
        // estimated 0.1 vs true 0 → ratio vs floor, finite.
        let q = q_error(0.1, 0.0);
        assert!((q - 0.1 / Q_ERROR_FLOOR).abs() < 1e-9);
        assert!(q.is_finite());
        // both zero → 1
        assert_eq!(q_error(0.0, 0.0), 1.0);
    }

    #[test]
    fn quantiles_of_known_sample() {
        let e = [1.0, 2.0, 3.0, 4.0, 5.0];
        let t = [1.0; 5]; // q-errors are exactly e
        let s = q_error_quantiles(&e, &t);
        assert!((s.p50 - 3.0).abs() < 1e-12);
        assert_eq!(s.max, 5.0);
        assert!(s.p95 <= s.p99 && s.p99 <= s.max);
        assert!(s.p50 <= s.p95);
    }

    #[test]
    fn quantile_interpolation() {
        let v = [0.0, 1.0];
        assert!((quantile_sorted(&v, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(quantile_sorted(&v, 0.0), 0.0);
        assert_eq!(quantile_sorted(&v, 1.0), 1.0);
    }

    #[test]
    fn quantile_singleton() {
        assert_eq!(quantile_sorted(&[7.0], 0.99), 7.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = rms_error(&[0.1], &[0.1, 0.2]);
    }

    #[test]
    #[should_panic(expected = "no test queries")]
    fn empty_inputs_panic() {
        let _ = rms_error(&[], &[]);
    }

    proptest::proptest! {
        #[test]
        fn prop_qerror_at_least_one(e in 0.0f64..1.0, t in 0.0f64..1.0) {
            proptest::prop_assert!(q_error(e, t) >= 1.0);
        }

        #[test]
        fn prop_rms_bounded_by_linf(
            pairs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..40)
        ) {
            let e: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let t: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            proptest::prop_assert!(rms_error(&e, &t) <= l_inf_error(&e, &t) + 1e-12);
            proptest::prop_assert!(mean_error(&e, &t) <= l_inf_error(&e, &t) + 1e-12);
        }
    }
}
