//! In-memory datasets with an exact selectivity oracle.
//!
//! A dataset is the (hidden) empirical distribution `D` of the learning
//! problem: the selectivity of a query range `R` is
//! `s_D(R) = Pr_{x∼D}[x ∈ R]`, i.e. the fraction of tuples satisfying the
//! predicate. Attribute domains are normalized into `[0, 1]` as in
//! Section 4 ("we normalize the domain of each attribute into `[0,1]`").

use rand::seq::SliceRandom;
use rand::Rng;
use selearn_geom::{Point, Range, RangeQuery, Rect};

/// A normalized, in-memory relation: `n` tuples over `d` attributes, all
/// values in `[0, 1]`. Row-major flat storage.
#[derive(Clone, Debug)]
pub struct Dataset {
    dim: usize,
    data: Vec<f64>,
    name: String,
}

impl Dataset {
    /// Builds a dataset from row-major values.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `dim`, or any value
    /// falls outside `[0, 1]`.
    pub fn new(name: impl Into<String>, dim: usize, data: Vec<f64>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "buffer not a multiple of dim");
        debug_assert!(
            data.iter().all(|&v| (0.0..=1.0).contains(&v)),
            "values must be normalized into [0,1]"
        );
        Self {
            dim,
            data,
            name: name.into(),
        }
    }

    /// Builds a dataset from points.
    pub fn from_points(name: impl Into<String>, points: &[Point]) -> Self {
        let dim = points.first().map_or(1, Point::dim);
        let mut data = Vec::with_capacity(points.len() * dim);
        for p in points {
            assert_eq!(p.dim(), dim, "ragged points");
            data.extend_from_slice(p.coords());
        }
        Self::new(name, dim, data)
    }

    /// Dataset name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// `true` when the dataset has no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of attributes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow of tuple `i` as a coordinate slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Tuple `i` as an owned [`Point`].
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.row(i).to_vec())
    }

    /// Iterator over all tuples as coordinate slices.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// Exact selectivity of a range: the fraction of tuples inside it.
    /// This is the ground-truth oracle used to label workloads.
    pub fn selectivity(&self, range: &Range) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        // Fast path for rectangles: short-circuit per-dimension scan
        // without allocating a Point per row.
        match range {
            Range::Rect(r) => self.selectivity_rect(r),
            _ => {
                let mut count = 0usize;
                let mut p = Point::zeros(self.dim);
                for row in self.rows() {
                    p.coords_mut().copy_from_slice(row);
                    if range.contains(&p) {
                        count += 1;
                    }
                }
                count as f64 / self.len() as f64
            }
        }
    }

    fn selectivity_rect(&self, r: &Rect) -> f64 {
        assert_eq!(r.dim(), self.dim, "dimension mismatch");
        let lo = r.lo();
        let hi = r.hi();
        let count = self
            .rows()
            .filter(|row| {
                row.iter()
                    .zip(lo.iter().zip(hi))
                    .all(|(&x, (&l, &h))| l <= x && x <= h)
            })
            .count();
        count as f64 / self.len() as f64
    }

    /// Projects onto a subset of attributes (Section 4: "we will choose a
    /// subset of attributes randomly and project the tuples").
    pub fn project(&self, dims: &[usize]) -> Dataset {
        assert!(!dims.is_empty(), "need at least one dimension");
        assert!(
            dims.iter().all(|&d| d < self.dim),
            "projection index out of bounds"
        );
        let mut data = Vec::with_capacity(self.len() * dims.len());
        for row in self.rows() {
            data.extend(dims.iter().map(|&d| row[d]));
        }
        Dataset::new(
            format!("{}[{:?}]", self.name, dims),
            dims.len(),
            data,
        )
    }

    /// Draws `k` tuples uniformly at random (with replacement); used by the
    /// Data-driven workload generator.
    pub fn sample_points<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<Point> {
        (0..k)
            .map(|_| self.point(rng.gen_range(0..self.len())))
            .collect()
    }

    /// Random subsample of size `min(k, n)` without replacement.
    pub fn subsample<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Dataset {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.truncate(k.min(self.len()));
        let mut data = Vec::with_capacity(idx.len() * self.dim);
        for i in idx {
            data.extend_from_slice(self.row(i));
        }
        Dataset::new(format!("{}~{k}", self.name), self.dim, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selearn_geom::{Ball, Halfspace};

    fn grid_dataset() -> Dataset {
        // 5×5 grid over [0,1]² at coordinates 0.1, 0.3, 0.5, 0.7, 0.9.
        let mut data = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                data.push(0.1 + 0.2 * i as f64);
                data.push(0.1 + 0.2 * j as f64);
            }
        }
        Dataset::new("grid", 2, data)
    }

    #[test]
    fn basic_shape() {
        let d = grid_dataset();
        assert_eq!(d.len(), 25);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.row(0), &[0.1, 0.1]);
        assert!(!d.is_empty());
    }

    #[test]
    fn rect_selectivity_exact() {
        let d = grid_dataset();
        // Quadrant [0,0.5]² contains the 9 points with coords in {0.1,0.3,0.5}.
        let r: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]).into();
        assert!((d.selectivity(&r) - 9.0 / 25.0).abs() < 1e-12);
        // Whole cube: selectivity 1.
        let all: Range = Rect::unit(2).into();
        assert_eq!(d.selectivity(&all), 1.0);
        // Empty box.
        let none: Range = Rect::new(vec![0.95, 0.95], vec![1.0, 1.0]).into();
        assert_eq!(d.selectivity(&none), 0.0);
    }

    #[test]
    fn halfspace_selectivity_exact() {
        let d = grid_dataset();
        // x + y ≥ 1.0: count grid points with sum ≥ 1.0.
        let h: Range = Halfspace::new(vec![1.0, 1.0], 1.0).into();
        let expected = d
            .rows()
            .filter(|r| r[0] + r[1] >= 1.0 - 1e-12)
            .count() as f64
            / 25.0;
        assert!((d.selectivity(&h) - expected).abs() < 1e-12);
    }

    #[test]
    fn ball_selectivity_exact() {
        let d = grid_dataset();
        let b: Range = Ball::new(Point::new(vec![0.5, 0.5]), 0.21).into();
        // within 0.21 of center: (0.5,0.5), (0.3,0.5), (0.7,0.5), (0.5,0.3), (0.5,0.7)
        assert!((d.selectivity(&b) - 5.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_points_included() {
        let d = Dataset::new("one", 1, vec![0.5]);
        let r: Range = Rect::new(vec![0.5], vec![0.5]).into();
        assert_eq!(d.selectivity(&r), 1.0);
    }

    #[test]
    fn projection_preserves_marginals() {
        let d = grid_dataset();
        let p = d.project(&[1]);
        assert_eq!(p.dim(), 1);
        assert_eq!(p.len(), 25);
        let r: Range = Rect::new(vec![0.0], vec![0.5]).into();
        // y ≤ 0.5 holds for 3 of the 5 y values → 15/25
        assert!((p.selectivity(&r) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn projection_reorders_dims() {
        let d = Dataset::new("asym", 2, vec![0.1, 0.9]);
        let p = d.project(&[1, 0]);
        assert_eq!(p.row(0), &[0.9, 0.1]);
    }

    #[test]
    fn sample_points_in_dataset() {
        let d = grid_dataset();
        let mut rng = StdRng::seed_from_u64(3);
        for p in d.sample_points(50, &mut rng) {
            // Every sample must be an actual row.
            assert!(d.rows().any(|r| r == p.coords()));
        }
    }

    #[test]
    fn subsample_size_and_membership() {
        let d = grid_dataset();
        let mut rng = StdRng::seed_from_u64(4);
        let s = d.subsample(10, &mut rng);
        assert_eq!(s.len(), 10);
        for row in s.rows() {
            assert!(d.rows().any(|r| r == row));
        }
        // asking for more rows than exist caps at n
        let s2 = d.subsample(1000, &mut rng);
        assert_eq!(s2.len(), 25);
    }

    #[test]
    fn empty_dataset_selectivity_zero() {
        let d = Dataset::new("empty", 2, vec![]);
        let r: Range = Rect::unit(2).into();
        assert_eq!(d.selectivity(&r), 0.0);
    }
}
