//! Query workload generation (Section 4, "Workloads").
//!
//! Every query is parameterized by a **center point** plus shape
//! parameters:
//!
//! * orthogonal range: per-dimension side lengths drawn `U[0,1]`
//!   (width 0 — an equality predicate — on categorical attributes);
//! * ball: radius drawn `U[0,1]`;
//! * halfspace: the center lies on the boundary plane and a uniformly
//!   random unit normal fixes the orientation.
//!
//! Centers come from one of three distributions: **Data-driven** (uniform
//! over dataset tuples), **Random** (uniform over `[0,1]^d`) or
//! **Gaussian** (isotropic, mean 0.5 and σ 0.167 in the paper's main
//! setup; Figure 16 shifts the mean). Training and test sets are sampled
//! i.i.d. from the same workload unless an experiment says otherwise.

use crate::dataset::Dataset;
use crate::synth::standard_normal;
use rand::Rng;
use selearn_core::SelearnError;
use selearn_geom::{Ball, Halfspace, Point, Range, Rect};

/// Query shape family (Section 2.2's three running examples).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryType {
    /// Orthogonal range queries.
    Rect,
    /// Linear-inequality (halfspace) queries.
    Halfspace,
    /// Distance-based (ball) queries.
    Ball,
    /// Per-query draw among the three shapes, weighted by
    /// [`WorkloadSpec::shape_mix`] — the mixed-shape streams of the
    /// serving and drift experiments.
    Mixed,
}

/// Distribution of query center points.
#[derive(Clone, Debug, PartialEq)]
pub enum CenterDistribution {
    /// Centers sampled uniformly from the dataset tuples.
    DataDriven,
    /// Centers sampled uniformly from `[0,1]^d`.
    Random,
    /// Centers sampled from an isotropic Gaussian (clamped to `[0,1]^d`).
    Gaussian {
        /// Per-dimension mean.
        mean: f64,
        /// Per-dimension standard deviation (paper: 0.167).
        std: f64,
    },
}

impl CenterDistribution {
    /// The paper's default Gaussian workload: mean 0.5, σ 0.167.
    pub fn default_gaussian() -> Self {
        CenterDistribution::Gaussian {
            mean: 0.5,
            std: 0.167,
        }
    }
}

/// Full workload specification.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Query shape family.
    pub query_type: QueryType,
    /// Center-point distribution.
    pub center: CenterDistribution,
    /// Attribute indices treated as categorical: orthogonal queries place
    /// equality predicates there, with the predicate value drawn from the
    /// data so it can actually match (the paper generates "equality
    /// predicates for categorical attributes").
    pub categorical_dims: Vec<usize>,
    /// Width of categorical equality predicates, as a fraction of the
    /// attribute's observed category gap (the minimum distance between
    /// distinct codes). A literal width of 0 gives the box zero volume,
    /// which volume-based histograms cannot learn from; a slab spanning
    /// (most of) the category's share of the normalized domain selects
    /// exactly one code *and* keeps the uniform-within-bucket assumption
    /// meaningful — the discretize-then-normalize treatment the paper
    /// applies to categorical attributes. Must be in `(0, 1]`; values
    /// < 1 leave a margin so neighbouring codes stay excluded under
    /// floating-point wobble.
    pub categorical_width: f64,
    /// Shape-mix weights `[rect, halfspace, ball]`, consulted only when
    /// `query_type` is [`QueryType::Mixed`]. Weights need not sum to 1;
    /// they are normalized at generation time. Each must be finite and
    /// non-negative, and at least one must be positive.
    pub shape_mix: [f64; 3],
}

impl WorkloadSpec {
    /// Spec with no categorical attributes.
    pub fn new(query_type: QueryType, center: CenterDistribution) -> Self {
        Self {
            query_type,
            center,
            categorical_dims: Vec::new(),
            categorical_width: 0.95,
            shape_mix: [1.0, 1.0, 1.0],
        }
    }

    /// Adds categorical attribute indices.
    pub fn with_categorical(mut self, dims: Vec<usize>) -> Self {
        self.categorical_dims = dims;
        self
    }

    /// Sets the `[rect, halfspace, ball]` weights used by
    /// [`QueryType::Mixed`].
    pub fn with_shape_mix(mut self, mix: [f64; 3]) -> Self {
        self.shape_mix = mix;
        self
    }
}

/// One training/test example `z = (R, s)`: a range and its true
/// selectivity under the (hidden) data distribution.
#[derive(Clone, Debug)]
pub struct LabeledQuery {
    /// The query range.
    pub range: Range,
    /// Ground-truth selectivity `s_D(R) ∈ [0, 1]`.
    pub selectivity: f64,
}

/// A generated workload: an i.i.d. sequence of labeled queries.
#[derive(Clone, Debug)]
pub struct Workload {
    queries: Vec<LabeledQuery>,
    dim: usize,
}

impl Workload {
    /// Generates `n` labeled queries against `dataset` under `spec`.
    ///
    /// Returns [`SelearnError::Dataset`] on an empty dataset (there is
    /// nothing to sample centers or labels from) and
    /// [`SelearnError::InvalidConfig`] on a non-finite Gaussian center
    /// distribution or a categorical width outside `(0, 1]`.
    pub fn generate<R: Rng + ?Sized>(
        dataset: &Dataset,
        spec: &WorkloadSpec,
        n: usize,
        rng: &mut R,
    ) -> Result<Workload, SelearnError> {
        let _span = selearn_obs::span!("workload.generate");
        if dataset.is_empty() {
            return Err(SelearnError::Dataset {
                message: "cannot generate a workload over an empty dataset".into(),
            });
        }
        if !(spec.categorical_width > 0.0 && spec.categorical_width <= 1.0) {
            return Err(SelearnError::InvalidConfig {
                model: "workload",
                what: "categorical width must be in (0, 1]",
            });
        }
        if let CenterDistribution::Gaussian { mean, std } = spec.center {
            if !(mean.is_finite() && std.is_finite() && std >= 0.0) {
                return Err(SelearnError::InvalidConfig {
                    model: "workload",
                    what: "gaussian center distribution needs finite mean and std >= 0",
                });
            }
        }
        if spec.query_type == QueryType::Mixed {
            let ok = spec.shape_mix.iter().all(|w| w.is_finite() && *w >= 0.0)
                && spec.shape_mix.iter().sum::<f64>() > 0.0;
            if !ok {
                return Err(SelearnError::InvalidConfig {
                    model: "workload",
                    what: "shape mix weights must be finite, non-negative, with a positive sum",
                });
            }
        }
        let d = dataset.dim();
        // per-categorical-dim equality-slab widths: a fraction of the
        // observed gap between distinct codes
        let cat_width: Vec<f64> = (0..d)
            .map(|i| {
                if spec.categorical_dims.contains(&i) {
                    category_gap(dataset, i) * spec.categorical_width
                } else {
                    0.0
                }
            })
            .collect();
        // Phase 1 (serial): draw every range. All randomness happens here,
        // in a fixed order, so the stream of RNG draws — and therefore the
        // generated ranges — never depends on the `parallel` feature.
        let mut ranges = Vec::with_capacity(n);
        for _ in 0..n {
            // Mixed streams spend exactly one extra draw per query on the
            // shape choice, keeping the serial draw order fixed.
            let shape = match spec.query_type {
                QueryType::Mixed => sample_shape(&spec.shape_mix, rng),
                concrete => concrete,
            };
            let center = sample_center(dataset, &spec.center, rng);
            ranges.push(draw_range(dataset, spec, &cat_width, shape, center, rng));
        }
        // Phase 2: label each range with its true selectivity — a pure,
        // RNG-free scan per range, parallelized across ranges when built
        // with the `parallel` feature.
        let labels = {
            let _span = selearn_obs::span!("workload.label");
            selearn_obs::counter_add(
                "label_scan_rows",
                (ranges.len() * dataset.len()) as u64,
            );
            label_ranges(dataset, &ranges)
        };
        let queries = ranges
            .into_iter()
            .zip(labels)
            .map(|(range, selectivity)| LabeledQuery { range, selectivity })
            .collect();
        Ok(Workload { queries, dim: d })
    }

    /// The labeled queries.
    pub fn queries(&self) -> &[LabeledQuery] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Splits into a training prefix of size `n_train` and a test suffix.
    ///
    /// # Panics
    /// Panics if `n_train > len`.
    pub fn split(&self, n_train: usize) -> (Workload, Workload) {
        assert!(n_train <= self.len(), "training split larger than workload");
        let (a, b) = self.queries.split_at(n_train);
        (
            Workload {
                queries: a.to_vec(),
                dim: self.dim,
            },
            Workload {
                queries: b.to_vec(),
                dim: self.dim,
            },
        )
    }

    /// Retains only queries with selectivity strictly above `threshold`
    /// (Figure 14 evaluates on the non-empty subset of the Random
    /// workload).
    pub fn filter_nonempty(&self, threshold: f64) -> Workload {
        Workload {
            queries: self
                .queries
                .iter()
                .filter(|q| q.selectivity > threshold)
                .cloned()
                .collect(),
            dim: self.dim,
        }
    }

    /// Builds a workload directly from labeled queries (for tests).
    pub fn from_queries(queries: Vec<LabeledQuery>, dim: usize) -> Workload {
        Workload { queries, dim }
    }

    /// Generates a concatenated stream whose spec shifts between
    /// segments — the drifting workloads of the serving experiments
    /// (center distribution and shape mix can both change mid-stream).
    /// All segments draw from the one `rng` in order, so the whole
    /// stream is deterministic given a seed, and a query's position in
    /// the stream encodes which regime produced it.
    pub fn generate_drift<R: Rng + ?Sized>(
        dataset: &Dataset,
        segments: &[DriftSegment],
        rng: &mut R,
    ) -> Result<Workload, SelearnError> {
        let mut queries = Vec::with_capacity(segments.iter().map(|s| s.queries).sum());
        for segment in segments {
            let part = Workload::generate(dataset, &segment.spec, segment.queries, rng)?;
            queries.extend(part.queries);
        }
        Ok(Workload {
            queries,
            dim: dataset.dim(),
        })
    }
}

/// One regime of a drifting query stream: a workload spec and how many
/// queries it emits before the stream shifts to the next segment.
#[derive(Clone, Debug)]
pub struct DriftSegment {
    /// The workload active during this segment.
    pub spec: WorkloadSpec,
    /// Number of queries this segment contributes.
    pub queries: usize,
}

impl DriftSegment {
    /// Convenience constructor.
    pub fn new(spec: WorkloadSpec, queries: usize) -> Self {
        Self { spec, queries }
    }
}

/// Labeling work (ranges × rows) below which parallel dispatch is skipped.
#[cfg(feature = "parallel")]
const PAR_LABEL_THRESHOLD: usize = 262_144;

/// Ground-truth selectivity for each range, in input order. Each label is
/// an independent read-only scan of the dataset, so the parallel build
/// returns exactly the serial answer.
fn label_ranges(dataset: &Dataset, ranges: &[Range]) -> Vec<f64> {
    #[cfg(feature = "parallel")]
    if ranges.len() * dataset.len() >= PAR_LABEL_THRESHOLD
        && rayon::current_num_threads() > 1
    {
        use rayon::prelude::*;
        return ranges.par_iter().map(|r| dataset.selectivity(r)).collect();
    }
    ranges.iter().map(|r| dataset.selectivity(r)).collect()
}

/// Minimum distance between distinct values on attribute `dim` (1.0 when
/// the attribute is constant) — the lattice gap of a normalized
/// categorical column.
fn category_gap(dataset: &Dataset, dim: usize) -> f64 {
    let mut vals: Vec<f64> = dataset.rows().map(|r| r[dim]).collect();
    vals.sort_by(f64::total_cmp);
    vals.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    vals.windows(2)
        .map(|w| w[1] - w[0])
        .fold(f64::INFINITY, f64::min)
        .min(1.0)
}

/// Draws a concrete shape kind from normalized `[rect, halfspace, ball]`
/// weights with a single RNG draw.
fn sample_shape<R: Rng + ?Sized>(mix: &[f64; 3], rng: &mut R) -> QueryType {
    let total: f64 = mix.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (kind, w) in [QueryType::Rect, QueryType::Halfspace, QueryType::Ball]
        .into_iter()
        .zip(mix)
    {
        if u < *w {
            return kind;
        }
        u -= w;
    }
    QueryType::Ball
}

/// Draws one range of the given concrete shape around `center`, spending
/// RNG draws in a fixed per-shape order (the determinism contract).
fn draw_range<R: Rng + ?Sized>(
    dataset: &Dataset,
    spec: &WorkloadSpec,
    cat_width: &[f64],
    shape: QueryType,
    center: Point,
    rng: &mut R,
) -> Range {
    let d = dataset.dim();
    match shape {
        QueryType::Rect => {
            let mut widths = vec![0.0f64; d];
            let mut center = center;
            for (i, w) in widths.iter_mut().enumerate() {
                if spec.categorical_dims.contains(&i) {
                    *w = cat_width[i];
                    // equality predicates must hit actual category
                    // codes; snap to a data value on this attribute
                    let row = rng.gen_range(0..dataset.len());
                    center[i] = dataset.row(row)[i];
                } else {
                    *w = rng.gen();
                }
            }
            Range::Rect(Rect::from_center_widths(&center, &widths))
        }
        QueryType::Ball => {
            let radius: f64 = rng.gen();
            Range::Ball(Ball::new(center, radius))
        }
        // `Mixed` is resolved to a concrete kind before this call; treat a
        // stray value as a halfspace rather than panicking in a generator.
        QueryType::Halfspace | QueryType::Mixed => {
            let normal = random_unit_vector(d, rng);
            Range::Halfspace(Halfspace::through_point(&center, normal))
        }
    }
}

fn sample_center<R: Rng + ?Sized>(
    dataset: &Dataset,
    dist: &CenterDistribution,
    rng: &mut R,
) -> Point {
    let d = dataset.dim();
    match dist {
        CenterDistribution::DataDriven => {
            let i = rng.gen_range(0..dataset.len());
            dataset.point(i)
        }
        CenterDistribution::Random => Point::new((0..d).map(|_| rng.gen()).collect()),
        CenterDistribution::Gaussian { mean, std } => Point::new(
            (0..d)
                .map(|_| (mean + std * standard_normal(rng)).clamp(0.0, 1.0))
                .collect(),
        ),
    }
}

fn random_unit_vector<R: Rng + ?Sized>(d: usize, rng: &mut R) -> Vec<f64> {
    loop {
        let v: Vec<f64> = (0..d).map(|_| standard_normal(rng)).collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-9 {
            return v.into_iter().map(|x| x / norm).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realistic::power_like;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selearn_geom::RangeQuery;

    fn data2d() -> Dataset {
        power_like(5_000, 17).project(&[0, 2])
    }

    #[test]
    fn rect_workload_labels_are_consistent() {
        let d = data2d();
        let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
        let mut rng = StdRng::seed_from_u64(1);
        let w = Workload::generate(&d, &spec, 50, &mut rng).unwrap();
        assert_eq!(w.len(), 50);
        for q in w.queries() {
            assert!((0.0..=1.0).contains(&q.selectivity));
            assert!((d.selectivity(&q.range) - q.selectivity).abs() < 1e-12);
        }
    }

    #[test]
    fn data_driven_centers_hit_data() {
        // Data-driven rect queries contain their (data) center → positive
        // selectivity, always.
        let d = data2d();
        let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
        let mut rng = StdRng::seed_from_u64(2);
        let w = Workload::generate(&d, &spec, 100, &mut rng).unwrap();
        for q in w.queries() {
            assert!(q.selectivity > 0.0);
        }
    }

    #[test]
    fn random_workload_has_many_empty_queries_on_skewed_data() {
        // The paper observes up to 97% near-zero-selectivity Random queries
        // on Power; at minimum a noticeable share should be tiny here.
        let d = data2d();
        let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::Random);
        let mut rng = StdRng::seed_from_u64(3);
        let w = Workload::generate(&d, &spec, 300, &mut rng).unwrap();
        let tiny = w
            .queries()
            .iter()
            .filter(|q| q.selectivity < 1e-3)
            .count();
        assert!(tiny > 30, "only {tiny} near-empty queries");
        let filtered = w.filter_nonempty(0.0);
        assert!(filtered.len() < w.len());
        for q in filtered.queries() {
            assert!(q.selectivity > 0.0);
        }
    }

    #[test]
    fn gaussian_centers_cluster_near_mean() {
        let d = data2d();
        let spec = WorkloadSpec::new(
            QueryType::Ball,
            CenterDistribution::Gaussian {
                mean: 0.3,
                std: 0.05,
            },
        );
        let mut rng = StdRng::seed_from_u64(4);
        let w = Workload::generate(&d, &spec, 200, &mut rng).unwrap();
        let mut mean = [0.0f64; 2];
        for q in w.queries() {
            if let Range::Ball(b) = &q.range {
                mean[0] += b.center()[0];
                mean[1] += b.center()[1];
            } else {
                panic!("expected ball");
            }
        }
        assert!((mean[0] / 200.0 - 0.3).abs() < 0.02);
        assert!((mean[1] / 200.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn halfspace_center_on_boundary() {
        let d = data2d();
        let spec = WorkloadSpec::new(QueryType::Halfspace, CenterDistribution::Random);
        let mut rng = StdRng::seed_from_u64(5);
        let w = Workload::generate(&d, &spec, 20, &mut rng).unwrap();
        for q in w.queries() {
            let Range::Halfspace(h) = &q.range else {
                panic!("expected halfspace")
            };
            // unit normal
            let norm: f64 = h.normal().iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn categorical_dims_get_equality_predicates() {
        let d = crate::realistic::census_like(3_000, 7).project(&[0, 8]);
        // dim 0 is categorical (workclass), dim 1 numeric (age)
        let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven)
            .with_categorical(vec![0]);
        let mut rng = StdRng::seed_from_u64(6);
        let w = Workload::generate(&d, &spec, 50, &mut rng).unwrap();
        for q in w.queries() {
            let r = q.range.as_rect().unwrap();
            assert!(
                r.width(0) > 0.0 && r.width(0) < 1.0,
                "categorical predicate must be a positive-volume slab"
            );
            // the slab selects exactly one category code
            let codes: std::collections::BTreeSet<u64> = d
                .rows()
                .filter(|row| r.lo()[0] <= row[0] && row[0] <= r.hi()[0])
                .map(|row| (row[0] * 1e9).round() as u64)
                .collect();
            assert_eq!(codes.len(), 1, "slab spans {} codes", codes.len());
        }
    }

    #[test]
    fn split_preserves_order_and_counts() {
        let d = data2d();
        let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
        let mut rng = StdRng::seed_from_u64(8);
        let w = Workload::generate(&d, &spec, 30, &mut rng).unwrap();
        let (train, test) = w.split(20);
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 10);
        assert_eq!(
            train.queries()[0].selectivity,
            w.queries()[0].selectivity
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let d = data2d();
        let spec = WorkloadSpec::new(QueryType::Ball, CenterDistribution::Random);
        let a = Workload::generate(&d, &spec, 10, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = Workload::generate(&d, &spec, 10, &mut StdRng::seed_from_u64(9)).unwrap();
        for (x, y) in a.queries().iter().zip(b.queries()) {
            assert_eq!(x.selectivity, y.selectivity);
        }
    }

    #[test]
    fn mixed_workload_draws_all_three_shapes() {
        let d = data2d();
        let spec = WorkloadSpec::new(QueryType::Mixed, CenterDistribution::Random);
        let mut rng = StdRng::seed_from_u64(21);
        let w = Workload::generate(&d, &spec, 300, &mut rng).unwrap();
        let mut rects = 0;
        let mut halfspaces = 0;
        let mut balls = 0;
        for q in w.queries() {
            match &q.range {
                Range::Rect(_) => rects += 1,
                Range::Halfspace(_) => halfspaces += 1,
                Range::Ball(_) => balls += 1,
                other => panic!("unexpected range {other:?}"),
            }
            assert!((0.0..=1.0).contains(&q.selectivity));
        }
        // Equal weights: each shape should land near 100 of 300.
        for (name, n) in [("rect", rects), ("halfspace", halfspaces), ("ball", balls)] {
            assert!((60..=140).contains(&n), "{name}: {n} of 300");
        }
    }

    #[test]
    fn shape_mix_weights_bias_the_draw() {
        let d = data2d();
        let spec = WorkloadSpec::new(QueryType::Mixed, CenterDistribution::Random)
            .with_shape_mix([0.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(22);
        let w = Workload::generate(&d, &spec, 50, &mut rng).unwrap();
        assert!(w.queries().iter().all(|q| matches!(q.range, Range::Ball(_))));
    }

    #[test]
    fn degenerate_shape_mix_is_rejected() {
        let d = data2d();
        for mix in [[0.0, 0.0, 0.0], [f64::NAN, 1.0, 1.0], [-1.0, 1.0, 1.0]] {
            let spec = WorkloadSpec::new(QueryType::Mixed, CenterDistribution::Random)
                .with_shape_mix(mix);
            let mut rng = StdRng::seed_from_u64(23);
            assert!(
                Workload::generate(&d, &spec, 5, &mut rng).is_err(),
                "mix {mix:?} must be rejected"
            );
        }
        // Non-mixed workloads ignore the weights entirely.
        let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::Random)
            .with_shape_mix([0.0, 0.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(23);
        assert!(Workload::generate(&d, &spec, 5, &mut rng).is_ok());
    }

    #[test]
    fn mixed_generation_is_deterministic_per_seed() {
        let d = data2d();
        let spec = WorkloadSpec::new(QueryType::Mixed, CenterDistribution::Random)
            .with_shape_mix([2.0, 1.0, 1.0]);
        let a = Workload::generate(&d, &spec, 40, &mut StdRng::seed_from_u64(24)).unwrap();
        let b = Workload::generate(&d, &spec, 40, &mut StdRng::seed_from_u64(24)).unwrap();
        for (x, y) in a.queries().iter().zip(b.queries()) {
            assert_eq!(x.selectivity, y.selectivity);
            assert_eq!(
                std::mem::discriminant(&x.range),
                std::mem::discriminant(&y.range)
            );
        }
    }

    #[test]
    fn drift_stream_shifts_regime_at_segment_boundaries() {
        let d = data2d();
        let segments = [
            DriftSegment::new(
                WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven),
                30,
            ),
            DriftSegment::new(
                WorkloadSpec::new(QueryType::Mixed, CenterDistribution::Random)
                    .with_shape_mix([0.0, 1.0, 1.0]),
                30,
            ),
        ];
        let mut rng = StdRng::seed_from_u64(25);
        let w = Workload::generate_drift(&d, &segments, &mut rng).unwrap();
        assert_eq!(w.len(), 60);
        assert_eq!(w.dim(), 2);
        // Segment 1 is all rects; segment 2 excludes rects by weight.
        assert!(w.queries()[..30]
            .iter()
            .all(|q| matches!(q.range, Range::Rect(_))));
        assert!(w.queries()[30..]
            .iter()
            .all(|q| !matches!(q.range, Range::Rect(_))));
        // Deterministic under a shared seed.
        let again =
            Workload::generate_drift(&d, &segments, &mut StdRng::seed_from_u64(25)).unwrap();
        for (x, y) in w.queries().iter().zip(again.queries()) {
            assert_eq!(x.selectivity, y.selectivity);
        }
    }

    #[test]
    fn ranges_have_correct_dim() {
        let d = data2d();
        for qt in [QueryType::Rect, QueryType::Halfspace, QueryType::Ball] {
            let spec = WorkloadSpec::new(qt, CenterDistribution::DataDriven);
            let mut rng = StdRng::seed_from_u64(10);
            let w = Workload::generate(&d, &spec, 5, &mut rng).unwrap();
            for q in w.queries() {
                assert_eq!(q.range.dim(), 2);
            }
        }
    }
}
