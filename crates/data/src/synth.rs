//! Generic synthetic-distribution building blocks.
//!
//! The realistic dataset generators ([`crate::realistic`]) compose these
//! primitives: truncated-Gaussian mixtures for skewed/clustered numerical
//! attributes, Zipf-like categorical marginals, and latent-factor
//! correlation across attributes. Everything is seeded and deterministic.

use crate::dataset::Dataset;
use rand::Rng;
use rand_distr_normal::sample_standard_normal;

/// Specification of one attribute's marginal distribution.
#[derive(Clone, Debug)]
pub enum AttrSpec {
    /// Uniform on `[0, 1]`.
    Uniform,
    /// Mixture of truncated Gaussians: `(weight, mean, std)` triples.
    /// Weights are normalized internally; samples are clamped to `[0, 1]`.
    GaussianMixture(Vec<(f64, f64, f64)>),
    /// Categorical with `k` distinct values `0/(k−1), …, 1` (or all `0.5`
    /// when `k == 1`) and Zipf(`s`) frequencies — models the categorical
    /// attributes of Census/DMV.
    Zipf {
        /// Number of distinct categories.
        k: usize,
        /// Zipf skew exponent (`0` = uniform over categories).
        s: f64,
    },
    /// A linear function of a shared latent factor plus Gaussian noise:
    /// `clamp(a·latent + b + N(0, σ))` — models correlated attributes.
    Correlated {
        /// Slope on the shared latent factor.
        a: f64,
        /// Intercept.
        b: f64,
        /// Noise standard deviation.
        sigma: f64,
    },
}

/// Generates `n` tuples whose attribute `j` follows `specs[j]`. Attributes
/// declared [`AttrSpec::Correlated`] share a per-tuple latent factor
/// `latent ~ U[0,1]`, inducing positive cross-attribute correlation.
pub fn generate<R: Rng + ?Sized>(
    name: impl Into<String>,
    n: usize,
    specs: &[AttrSpec],
    rng: &mut R,
) -> Dataset {
    let d = specs.len();
    assert!(d > 0, "need at least one attribute");
    // Per-attribute sampling plan with weights/CDFs pre-normalized, so the
    // inner loop never has to re-derive (or trust) a parallel lookup table.
    enum Prepared {
        Uniform,
        Mixture(Vec<(f64, f64, f64)>),
        Zipf { k: usize, cdf: Vec<f64> },
        Correlated { a: f64, b: f64, sigma: f64 },
    }
    let prepared: Vec<Prepared> = specs
        .iter()
        .map(|s| match s {
            AttrSpec::Uniform => Prepared::Uniform,
            AttrSpec::GaussianMixture(comps) => {
                let total: f64 = comps.iter().map(|c| c.0).sum();
                assert!(total > 0.0, "mixture weights must be positive");
                Prepared::Mixture(
                    comps
                        .iter()
                        .map(|&(w, m, sd)| (w / total, m, sd))
                        .collect(),
                )
            }
            AttrSpec::Zipf { k, s } => Prepared::Zipf {
                k: *k,
                cdf: zipf_cdf(*k, *s),
            },
            AttrSpec::Correlated { a, b, sigma } => Prepared::Correlated {
                a: *a,
                b: *b,
                sigma: *sigma,
            },
        })
        .collect();

    let mut data = Vec::with_capacity(n * d);
    for _ in 0..n {
        let latent: f64 = rng.gen();
        for plan in &prepared {
            let v = match plan {
                Prepared::Uniform => rng.gen(),
                Prepared::Mixture(comps) => {
                    let mut pick: f64 = rng.gen();
                    let mut value = 0.5;
                    for (i, c) in comps.iter().enumerate() {
                        // fall through to the last component when rounding
                        // leaves `pick` past the normalized weights
                        if pick < c.0 || i + 1 == comps.len() {
                            let (_, mean, sd) = *c;
                            value =
                                (mean + sd * sample_standard_normal(rng)).clamp(0.0, 1.0);
                            break;
                        }
                        pick -= c.0;
                    }
                    value
                }
                Prepared::Zipf { k, cdf } => {
                    let u: f64 = rng.gen();
                    let idx = cdf.partition_point(|&c| c < u).min(*k - 1);
                    if *k == 1 {
                        0.5
                    } else {
                        idx as f64 / (*k as f64 - 1.0)
                    }
                }
                Prepared::Correlated { a, b, sigma } => {
                    (a * latent + b + sigma * sample_standard_normal(rng)).clamp(0.0, 1.0)
                }
            };
            data.push(v);
        }
    }
    Dataset::new(name, d, data)
}

fn zipf_cdf(k: usize, s: f64) -> Vec<f64> {
    assert!(k > 0, "need at least one category");
    let weights: Vec<f64> = (1..=k).map(|r| (r as f64).powf(-s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(k);
    let mut acc = 0.0;
    for w in weights {
        acc += w / total;
        cdf.push(acc);
    }
    cdf
}

/// Box–Muller standard-normal sampling (kept in a private module so the
/// public surface stays minimal; `rand_distr` is intentionally not a
/// dependency).
mod rand_distr_normal {
    use rand::Rng;

    /// One standard-normal draw via Box–Muller.
    pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

pub use rand_distr_normal::sample_standard_normal as standard_normal;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn uniform_marginal_moments() {
        let d = generate("u", 50_000, &[AttrSpec::Uniform], &mut rng());
        let mean: f64 = d.rows().map(|r| r[0]).sum::<f64>() / d.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gaussian_mixture_concentrates() {
        let spec = AttrSpec::GaussianMixture(vec![(1.0, 0.2, 0.05)]);
        let d = generate("g", 20_000, &[spec], &mut rng());
        let mean: f64 = d.rows().map(|r| r[0]).sum::<f64>() / d.len() as f64;
        assert!((mean - 0.2).abs() < 0.01, "mean = {mean}");
        // nearly all mass within 4σ
        let frac_near = d.rows().filter(|r| (r[0] - 0.2).abs() < 0.2).count() as f64
            / d.len() as f64;
        assert!(frac_near > 0.99);
    }

    #[test]
    fn mixture_is_bimodal() {
        let spec = AttrSpec::GaussianMixture(vec![(0.5, 0.2, 0.03), (0.5, 0.8, 0.03)]);
        let d = generate("bi", 20_000, &[spec], &mut rng());
        let low = d.rows().filter(|r| r[0] < 0.4).count() as f64 / d.len() as f64;
        let high = d.rows().filter(|r| r[0] > 0.6).count() as f64 / d.len() as f64;
        assert!((low - 0.5).abs() < 0.02);
        assert!((high - 0.5).abs() < 0.02);
    }

    #[test]
    fn zipf_categories_are_discrete_and_skewed() {
        let d = generate("z", 20_000, &[AttrSpec::Zipf { k: 5, s: 1.2 }], &mut rng());
        // values live on the lattice {0, 0.25, 0.5, 0.75, 1}
        for r in d.rows() {
            let v = r[0] * 4.0;
            assert!((v - v.round()).abs() < 1e-9, "off-lattice value {}", r[0]);
        }
        // category 0 is the most frequent under positive skew
        let f0 = d.rows().filter(|r| r[0] == 0.0).count();
        let f4 = d.rows().filter(|r| r[0] == 1.0).count();
        assert!(f0 > 3 * f4, "f0 = {f0}, f4 = {f4}");
    }

    #[test]
    fn zipf_single_category() {
        let d = generate("z1", 100, &[AttrSpec::Zipf { k: 1, s: 1.0 }], &mut rng());
        assert!(d.rows().all(|r| r[0] == 0.5));
    }

    #[test]
    fn correlated_attributes_correlate() {
        let specs = vec![
            AttrSpec::Correlated {
                a: 0.8,
                b: 0.1,
                sigma: 0.02,
            },
            AttrSpec::Correlated {
                a: 0.8,
                b: 0.1,
                sigma: 0.02,
            },
        ];
        let d = generate("corr", 20_000, &specs, &mut rng());
        let n = d.len() as f64;
        let (mut mx, mut my) = (0.0, 0.0);
        for r in d.rows() {
            mx += r[0];
            my += r[1];
        }
        mx /= n;
        my /= n;
        let (mut cov, mut vx, mut vy) = (0.0, 0.0, 0.0);
        for r in d.rows() {
            cov += (r[0] - mx) * (r[1] - my);
            vx += (r[0] - mx).powi(2);
            vy += (r[1] - my).powi(2);
        }
        let corr = cov / (vx.sqrt() * vy.sqrt());
        assert!(corr > 0.9, "correlation = {corr}");
    }

    #[test]
    fn deterministic_given_seed() {
        let specs = vec![AttrSpec::Uniform, AttrSpec::Zipf { k: 3, s: 1.0 }];
        let a = generate("a", 100, &specs, &mut StdRng::seed_from_u64(5));
        let b = generate("a", 100, &specs, &mut StdRng::seed_from_u64(5));
        assert_eq!(
            a.rows().collect::<Vec<_>>(),
            b.rows().collect::<Vec<_>>()
        );
    }

    #[test]
    fn standard_normal_moments() {
        let mut g = rng();
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let v = standard_normal(&mut g);
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }
}
