//! Linear-inequality (halfspace) queries: `{x ∈ R^d : a · x ≥ b}`.
//!
//! The paper (Section 2.2) shows the range space of halfspaces has
//! VC-dimension `d + 1`, so its selectivity functions are learnable with
//! `Õ(1/ε^{d+4})` training queries. This module provides exact
//! box-intersection volumes (via the generalized Irwin–Hall CDF) and the
//! smallest-bounding-box computation of Appendix A.2 used for rejection
//! sampling.

use crate::error::{first_non_finite, GeomError};
use crate::point::Point;
use crate::rect::Rect;
use crate::EPS;

/// The halfspace `{x : a · x ≥ b}` with normal `a` and offset `b`.
#[derive(Clone, PartialEq, Debug)]
pub struct Halfspace {
    normal: Vec<f64>,
    offset: f64,
}

impl Halfspace {
    /// Creates the halfspace `a · x ≥ b`.
    ///
    /// # Panics
    /// Panics if the normal is the zero vector (the predicate would be
    /// constant and the range degenerate).
    pub fn new(normal: Vec<f64>, offset: f64) -> Self {
        assert!(
            normal.iter().any(|&a| a.abs() > EPS),
            "halfspace normal must be nonzero"
        );
        Self { normal, offset }
    }

    /// Validating constructor for untrusted input: rejects non-finite
    /// coefficients and (numerically) zero normals with a typed
    /// [`GeomError`] instead of panicking.
    pub fn try_new(normal: Vec<f64>, offset: f64) -> Result<Self, GeomError> {
        if let Some((index, value)) = first_non_finite(&normal) {
            return Err(GeomError::NonFinite {
                what: "Halfspace normal",
                index,
                value,
            });
        }
        if !offset.is_finite() {
            return Err(GeomError::NonFinite {
                what: "Halfspace offset",
                index: 0,
                value: offset,
            });
        }
        if !normal.iter().any(|&a| a.abs() > EPS) {
            return Err(GeomError::ZeroNormal);
        }
        Ok(Self { normal, offset })
    }

    /// Builds a halfspace whose boundary hyperplane passes through `point`
    /// with the given (not necessarily unit) `normal`, i.e.
    /// `{x : normal · (x − point) ≥ 0}`. This is exactly the workload
    /// parameterization in Section 4: a center point on the boundary plane
    /// plus a random orientation.
    pub fn through_point(point: &Point, normal: Vec<f64>) -> Self {
        let offset = point.dot(&normal);
        Self::new(normal, offset)
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.normal.len()
    }

    /// The normal vector `a`.
    pub fn normal(&self) -> &[f64] {
        &self.normal
    }

    /// The offset `b`.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Membership test `a · x ≥ b` (closed halfspace).
    pub fn contains(&self, p: &Point) -> bool {
        p.dot(&self.normal) >= self.offset - EPS
    }

    /// Signed slack `a · x − b` (nonnegative inside).
    pub fn slack(&self, p: &Point) -> f64 {
        p.dot(&self.normal) - self.offset
    }

    /// Exact volume of `rect ∩ {a · x ≥ b}`.
    ///
    /// Computed in closed form: after mapping the box to `[0,1]^d`, the
    /// fraction is `P(Σ c_i U_i ≥ t)` for independent `U_i ~ U[0,1]`, whose
    /// CDF is the generalized Irwin–Hall piecewise polynomial
    /// `F(t) = (1/(n! Π c_i)) Σ_{S⊆[n]} (−1)^{|S|} (t − Σ_{i∈S} c_i)_+^n`.
    /// The `2^n` terms are exact for the `d ≤ 10` regimes of the paper.
    pub fn intersection_volume(&self, rect: &Rect) -> f64 {
        let frac = self.intersection_fraction(rect);
        frac * rect.volume()
    }

    /// Fraction of `rect`'s volume lying inside the halfspace, in `[0, 1]`.
    pub fn intersection_fraction(&self, rect: &Rect) -> f64 {
        assert_eq!(self.dim(), rect.dim(), "dimension mismatch");
        // Map x_i = lo_i + w_i u_i: the constraint a·x ≥ b becomes
        // Σ (a_i w_i) u_i ≥ b − a·lo.
        let mut t = self.offset;
        let mut coeffs = Vec::with_capacity(self.dim());
        for i in 0..self.dim() {
            t -= self.normal[i] * rect.lo()[i];
            coeffs.push(self.normal[i] * rect.width(i));
        }
        // Flip negative coefficients with u → 1 − u so all become positive:
        // Σ c_i u_i ≥ t  ⇔  Σ |c_i| v_i ≥ t − Σ_{c_i<0} c_i.
        let mut pos = Vec::with_capacity(coeffs.len());
        for c in coeffs {
            if c < 0.0 {
                t -= c;
                pos.push(-c);
            } else {
                pos.push(c);
            }
        }
        // Drop (numerically) zero coefficients; they do not move the sum.
        let scale: f64 = pos.iter().cloned().fold(0.0, f64::max);
        let pos: Vec<f64> = pos.into_iter().filter(|&c| c > scale * 1e-12 + EPS).collect();
        let total: f64 = pos.iter().sum();
        if t <= EPS {
            return 1.0;
        }
        if t >= total - EPS {
            return 0.0;
        }
        1.0 - uniform_sum_cdf(&pos, t)
    }

    /// Smallest axis-aligned bounding box of `clip ∩ {a · x ≥ b}`, or
    /// `None` when the intersection is empty.
    ///
    /// Implements the iterative tightening procedure of Appendix A.2:
    /// repeatedly shrink each interval `[l_i, r_i]` using the extreme values
    /// of `Σ_{j≠i} a_j x_j` over the current box, until a fixpoint.
    pub fn bounding_box(&self, clip: &Rect) -> Option<Rect> {
        assert_eq!(self.dim(), clip.dim(), "dimension mismatch");
        let d = self.dim();
        let mut lo = clip.lo().to_vec();
        let mut hi = clip.hi().to_vec();
        loop {
            let mut changed = false;
            for i in 0..d {
                let a = self.normal[i];
                if a.abs() <= EPS {
                    continue;
                }
                // Maximum of Σ_{j≠i} a_j x_j over the current box.
                let mut max_rest = 0.0;
                for j in 0..d {
                    if j != i {
                        max_rest += (self.normal[j] * lo[j]).max(self.normal[j] * hi[j]);
                    }
                }
                // a_i x_i ≥ b − max_rest must be satisfiable.
                let bound = (self.offset - max_rest) / a;
                if a > 0.0 {
                    if bound > lo[i] + EPS {
                        lo[i] = bound;
                        changed = true;
                    }
                } else if bound < hi[i] - EPS {
                    hi[i] = bound;
                    changed = true;
                }
                if lo[i] > hi[i] + EPS {
                    return None;
                }
                lo[i] = lo[i].min(hi[i]);
            }
            if !changed {
                break;
            }
        }
        Some(Rect::new(lo, hi))
    }
}

/// CDF of `Σ c_i U_i` at `t` for positive coefficients `c` and independent
/// `U_i ~ U[0,1]`, evaluated with the inclusion–exclusion formula.
///
/// Precondition: `0 < t < Σ c_i` and all `c_i > 0`.
fn uniform_sum_cdf(c: &[f64], t: f64) -> f64 {
    let n = c.len();
    debug_assert!(n > 0);
    if n > 25 {
        // 2^n terms would be too slow; callers in this repo never exceed
        // d = 20, but guard with a deterministic fallback anyway.
        return uniform_sum_cdf_grid(c, t);
    }
    // log-scale normalization constant n! Π c_i to avoid overflow.
    let mut terms = Vec::with_capacity(1 << n);
    for mask in 0usize..(1 << n) {
        let mut s = t;
        let mut parity = 1.0;
        for (i, &ci) in c.iter().enumerate() {
            if mask >> i & 1 == 1 {
                s -= ci;
                parity = -parity;
            }
        }
        if s > 0.0 {
            terms.push(parity * s.powi(n as i32));
        }
    }
    // Sum large-magnitude terms first is unnecessary here (n ≤ 25, values
    // are bounded by (Σc)^n); plain Kahan summation keeps error low.
    let mut sum = 0.0;
    let mut comp = 0.0;
    terms.sort_by(|a, b| a.abs().total_cmp(&b.abs()));
    for v in terms {
        let y = v - comp;
        let tally = sum + y;
        comp = (tally - sum) - y;
        sum = tally;
    }
    let mut denom = 1.0f64;
    for (i, &ci) in c.iter().enumerate() {
        denom *= ci * (i as f64 + 1.0);
    }
    (sum / denom).clamp(0.0, 1.0)
}

/// Deterministic grid fallback for very high dimension: numerically convolve
/// the uniform densities on a fixed grid.
fn uniform_sum_cdf_grid(c: &[f64], t: f64) -> f64 {
    const N: usize = 4096;
    let total: f64 = c.iter().sum();
    let h = total / N as f64;
    // density of the running sum, piecewise-constant on grid cells
    let mut dens = vec![0.0f64; N + 1];
    dens[0] = 1.0 / h; // delta approximated in first cell
    for &ci in c {
        let k = (ci / h).round().max(1.0) as usize;
        // convolve with U[0, ci] ≈ average of k shifted copies
        let mut next = vec![0.0f64; N + 1];
        let mut window = 0.0;
        for (j, slot) in next.iter_mut().enumerate() {
            window += dens[j];
            if j >= k {
                window -= dens[j - k];
            }
            *slot = window / k as f64;
        }
        dens = next;
    }
    let cut = ((t / h) as usize).min(N);
    dens[..cut].iter().sum::<f64>() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hs(normal: Vec<f64>, offset: f64) -> Halfspace {
        Halfspace::new(normal, offset)
    }

    #[test]
    fn membership() {
        let h = hs(vec![1.0, 1.0], 1.0); // x + y ≥ 1
        assert!(h.contains(&Point::new(vec![1.0, 0.5])));
        assert!(h.contains(&Point::new(vec![0.5, 0.5]))); // boundary
        assert!(!h.contains(&Point::new(vec![0.2, 0.2])));
    }

    #[test]
    fn through_point_boundary() {
        let p = Point::new(vec![0.3, 0.7]);
        let h = Halfspace::through_point(&p, vec![2.0, -1.0]);
        assert!(h.slack(&p).abs() < 1e-12);
    }

    #[test]
    fn halfplane_cuts_unit_square_in_half() {
        // x + y ≥ 1 cuts [0,1]^2 into two triangles of area 1/2.
        let h = hs(vec![1.0, 1.0], 1.0);
        let v = h.intersection_volume(&Rect::unit(2));
        assert!((v - 0.5).abs() < 1e-12, "v = {v}");
    }

    #[test]
    fn corner_cut_triangle() {
        // x + y ≥ 1.5 leaves the triangle with legs 0.5: area 1/8.
        let h = hs(vec![1.0, 1.0], 1.5);
        let v = h.intersection_volume(&Rect::unit(2));
        assert!((v - 0.125).abs() < 1e-12, "v = {v}");
    }

    #[test]
    fn axis_aligned_halfspace_is_a_slab() {
        // x_0 ≥ 0.25 over [0,1]^3 has volume 0.75.
        let h = hs(vec![1.0, 0.0, 0.0], 0.25);
        let v = h.intersection_volume(&Rect::unit(3));
        assert!((v - 0.75).abs() < 1e-12, "v = {v}");
    }

    #[test]
    fn negative_normal() {
        // −x ≥ −0.25 ⇔ x ≤ 0.25.
        let h = hs(vec![-1.0, 0.0], -0.25);
        let v = h.intersection_volume(&Rect::unit(2));
        assert!((v - 0.25).abs() < 1e-12, "v = {v}");
    }

    #[test]
    fn full_and_empty_intersections() {
        let full = hs(vec![1.0, 1.0], -10.0);
        assert!((full.intersection_volume(&Rect::unit(2)) - 1.0).abs() < 1e-12);
        let empty = hs(vec![1.0, 1.0], 10.0);
        assert_eq!(empty.intersection_volume(&Rect::unit(2)), 0.0);
    }

    #[test]
    fn simplex_volume_3d() {
        // x+y+z ≤ 1 over the unit cube is the standard simplex, volume 1/6.
        // Our halfspace is ≥, so use −x−y−z ≥ −1.
        let h = hs(vec![-1.0, -1.0, -1.0], -1.0);
        let v = h.intersection_volume(&Rect::unit(3));
        assert!((v - 1.0 / 6.0).abs() < 1e-12, "v = {v}");
    }

    #[test]
    fn irwin_hall_matches_monte_carlo_5d() {
        use rand::{Rng, SeedableRng};
        let h = hs(vec![0.3, -0.7, 1.2, 0.05, -0.4], 0.1);
        let exact = h.intersection_fraction(&Rect::unit(5));
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut hits = 0usize;
        for _ in 0..n {
            let p = Point::new((0..5).map(|_| rng.gen::<f64>()).collect());
            if h.contains(&p) {
                hits += 1;
            }
        }
        let mc = hits as f64 / n as f64;
        assert!(
            (exact - mc).abs() < 5e-3,
            "exact = {exact}, mc = {mc}"
        );
    }

    #[test]
    fn volume_on_shifted_scaled_box() {
        // x ≥ 1 over [0,2]x[3,5]: half of the box along x → volume 2.
        let h = hs(vec![1.0, 0.0], 1.0);
        let r = Rect::new(vec![0.0, 3.0], vec![2.0, 5.0]);
        let v = h.intersection_volume(&r);
        assert!((v - 2.0).abs() < 1e-12, "v = {v}");
    }

    #[test]
    fn bounding_box_axis_aligned() {
        // x0 ≥ 0.25 within the unit square → box [0.25,1]×[0,1].
        let h = hs(vec![1.0, 0.0], 0.25);
        let bb = h.bounding_box(&Rect::unit(2)).unwrap();
        assert!((bb.lo()[0] - 0.25).abs() < 1e-9);
        assert_eq!(bb.lo()[1], 0.0);
        assert_eq!(bb.hi(), &[1.0, 1.0]);
    }

    #[test]
    fn bounding_box_diagonal_corner() {
        // x + y ≥ 1.5 within unit square: feasible region needs x ≥ 0.5, y ≥ 0.5.
        let h = hs(vec![1.0, 1.0], 1.5);
        let bb = h.bounding_box(&Rect::unit(2)).unwrap();
        assert!((bb.lo()[0] - 0.5).abs() < 1e-9);
        assert!((bb.lo()[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bounding_box_empty() {
        let h = hs(vec![1.0, 1.0], 3.0); // unreachable inside unit square
        assert!(h.bounding_box(&Rect::unit(2)).is_none());
    }

    #[test]
    fn bounding_box_contains_all_inside_samples() {
        use rand::{Rng, SeedableRng};
        let h = hs(vec![0.8, -0.3, 0.5], 0.4);
        let bb = h.bounding_box(&Rect::unit(3)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let p = Point::new((0..3).map(|_| rng.gen::<f64>()).collect());
            if h.contains(&p) {
                assert!(bb.contains(&p), "{p:?} outside bbox");
            }
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_normal_panics() {
        let _ = Halfspace::new(vec![0.0, 0.0], 1.0);
    }

    #[test]
    fn complement_volumes_sum_to_box() {
        // vol(box ∩ {a·x ≥ b}) + vol(box ∩ {−a·x ≥ −b}) = vol(box),
        // for any halfspace: the two closed halves tile the box.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for d in [1usize, 2, 3, 5, 8] {
            for _ in 0..20 {
                let normal: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
                if normal.iter().all(|v| v.abs() < 1e-3) {
                    continue;
                }
                let off: f64 = rng.gen_range(-1.0..2.0);
                let h = Halfspace::new(normal.clone(), off);
                let hc = Halfspace::new(normal.iter().map(|v| -v).collect(), -off);
                let rect = Rect::unit(d);
                let total = h.intersection_volume(&rect) + hc.intersection_volume(&rect);
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "d = {d}: halves sum to {total}"
                );
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn prop_fraction_in_unit_interval(
            a in -2.0f64..2.0, b in -2.0f64..2.0, c in -2.0f64..2.0,
            off in -3.0f64..3.0,
        ) {
            proptest::prop_assume!(a.abs() + b.abs() + c.abs() > 1e-3);
            let h = Halfspace::new(vec![a, b, c], off);
            let f = h.intersection_fraction(&Rect::unit(3));
            proptest::prop_assert!((0.0..=1.0).contains(&f), "f = {f}");
        }

        #[test]
        fn prop_fraction_monotone_in_offset(
            a in 0.1f64..2.0, b in -2.0f64..2.0,
            off1 in -2.0f64..2.0, off2 in -2.0f64..2.0,
        ) {
            // raising b shrinks {a·x ≥ b}, so the fraction is nonincreasing
            let (lo, hi) = if off1 <= off2 { (off1, off2) } else { (off2, off1) };
            let f_lo = Halfspace::new(vec![a, b], lo).intersection_fraction(&Rect::unit(2));
            let f_hi = Halfspace::new(vec![a, b], hi).intersection_fraction(&Rect::unit(2));
            proptest::prop_assert!(f_hi <= f_lo + 1e-9);
        }
    }

    #[test]
    fn grid_fallback_agrees_with_exact() {
        let c = vec![0.4, 0.7, 1.0, 0.2];
        let t = 1.1;
        let exact = uniform_sum_cdf(&c, t);
        let grid = uniform_sum_cdf_grid(&c, t);
        assert!((exact - grid).abs() < 5e-3, "{exact} vs {grid}");
    }
}
