//! A static weighted k-d tree with range aggregation.
//!
//! PtsHist's prediction (Equation 7) sums the weights of support points
//! inside the query; done naively that is `O(k)` point tests per estimate.
//! This k-d tree prunes with per-subtree bounding boxes and aggregated
//! subtree weights: subtrees entirely inside the query are absorbed in
//! `O(1)`, subtrees entirely outside are skipped, so rectangle queries run
//! in `O(k^{1−1/d} + answer)` — the classic orthogonal-range-counting
//! bound. Arbitrary ranges use conservative bounding-box pruning plus the
//! exact membership predicate at the leaves.

use crate::point::Point;
use crate::range::{Range, RangeQuery};
use crate::rect::Rect;

#[derive(Clone, Debug)]
struct Node {
    /// Index into the point/weight arrays.
    item: usize,
    /// Bounding box of every point in this subtree.
    bbox: Rect,
    /// Total weight in this subtree (including this node).
    subtree_weight: f64,
    left: Option<usize>,
    right: Option<usize>,
}

/// Borrowed view of one k-d tree node, exposed for flattening the tree
/// into pointer-free inference layouts (see `selearn_core::frozen`).
#[derive(Clone, Copy, Debug)]
pub struct KdNodeView<'a> {
    /// The point stored at this node.
    pub point: &'a Point,
    /// The weight of this node's own point.
    pub weight: f64,
    /// Bounding box of every point in this subtree.
    pub bbox: &'a Rect,
    /// Total weight in this subtree (including this node).
    pub subtree_weight: f64,
    /// Left child id, if any.
    pub left: Option<usize>,
    /// Right child id, if any.
    pub right: Option<usize>,
}

/// A static k-d tree over weighted points.
#[derive(Clone, Debug)]
pub struct KdTree {
    points: Vec<Point>,
    weights: Vec<f64>,
    nodes: Vec<Node>,
    root: Option<usize>,
}

impl KdTree {
    /// Builds a tree from parallel point/weight arrays.
    ///
    /// # Panics
    /// Panics if the arrays differ in length or points differ in dimension.
    pub fn build(points: Vec<Point>, weights: Vec<f64>) -> Self {
        assert_eq!(points.len(), weights.len(), "length mismatch");
        if let Some(first) = points.first() {
            let d = first.dim();
            assert!(
                points.iter().all(|p| p.dim() == d),
                "ragged point dimensions"
            );
        }
        let mut tree = Self {
            nodes: Vec::with_capacity(points.len()),
            root: None,
            points,
            weights,
        };
        let mut idx: Vec<usize> = (0..tree.points.len()).collect();
        tree.root = tree.build_rec(&mut idx, 0);
        tree
    }

    fn build_rec(&mut self, idx: &mut [usize], depth: usize) -> Option<usize> {
        if idx.is_empty() {
            return None;
        }
        let d = self.points[idx[0]].dim();
        let axis = depth % d;
        let mid = idx.len() / 2;
        idx.select_nth_unstable_by(mid, |&a, &b| {
            self.points[a][axis].total_cmp(&self.points[b][axis])
        });
        let item = idx[mid];
        // compute subtree bbox and weight over the whole slice
        let mut lo = self.points[idx[0]].coords().to_vec();
        let mut hi = lo.clone();
        let mut w = 0.0;
        for &i in idx.iter() {
            w += self.weights[i];
            for k in 0..d {
                lo[k] = lo[k].min(self.points[i][k]);
                hi[k] = hi[k].max(self.points[i][k]);
            }
        }
        let node_id = self.nodes.len();
        self.nodes.push(Node {
            item,
            bbox: Rect::new(lo, hi),
            subtree_weight: w,
            left: None,
            right: None,
        });
        let (l, r) = idx.split_at_mut(mid);
        let left = self.build_rec(l, depth + 1);
        let right = self.build_rec(&mut r[1..], depth + 1);
        self.nodes[node_id].left = left;
        self.nodes[node_id].right = right;
        Some(node_id)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total weight of points inside the axis-aligned box, with full
    /// inside/outside subtree pruning.
    pub fn weight_in_rect(&self, query: &Rect) -> f64 {
        let mut total = 0.0;
        let mut stack = Vec::with_capacity(64);
        if let Some(r) = self.root {
            stack.push(r);
        }
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if !query.intersects(&node.bbox) {
                continue;
            }
            if query.contains_rect(&node.bbox) {
                total += node.subtree_weight;
                continue;
            }
            if query.contains(&self.points[node.item]) {
                total += self.weights[node.item];
            }
            if let Some(l) = node.left {
                stack.push(l);
            }
            if let Some(r) = node.right {
                stack.push(r);
            }
        }
        total
    }

    /// Total weight of points inside an arbitrary range: bounding-box
    /// pruning on subtrees, exact membership at nodes. `clip` is the
    /// domain used to compute the range's bounding box.
    pub fn weight_in_range(&self, query: &Range, clip: &Rect) -> f64 {
        // fast path: exact pruning for orthogonal ranges
        if let Range::Rect(r) = query {
            return self.weight_in_rect(r);
        }
        let Some(qbox) = query.bounding_box(clip) else {
            return 0.0;
        };
        let mut total = 0.0;
        let mut stack = Vec::with_capacity(64);
        if let Some(r) = self.root {
            stack.push(r);
        }
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if !qbox.intersects(&node.bbox) {
                continue;
            }
            if query.contains(&self.points[node.item]) {
                total += self.weights[node.item];
            }
            if let Some(l) = node.left {
                stack.push(l);
            }
            if let Some(r) = node.right {
                stack.push(r);
            }
        }
        total
    }

    /// Root node id, or `None` for an empty tree. Node ids index the
    /// arena in build order and stay stable for the tree's lifetime —
    /// flattened inference layouts copy nodes out by id so their
    /// traversal (and hence floating-point summation order) reproduces
    /// [`KdTree::weight_in_rect`] exactly.
    pub fn root_id(&self) -> Option<usize> {
        self.root
    }

    /// Total arena node count (equals [`KdTree::len`] — one node per point).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Read-only view of one arena node, for building flattened layouts.
    pub fn node(&self, id: usize) -> KdNodeView<'_> {
        let n = &self.nodes[id];
        KdNodeView {
            point: &self.points[n.item],
            weight: self.weights[n.item],
            bbox: &n.bbox,
            subtree_weight: n.subtree_weight,
            left: n.left,
            right: n.right,
        }
    }

    /// Nodes visited answering a rectangle query — exposed so benches can
    /// demonstrate the sublinear visit count.
    pub fn visits_for_rect(&self, query: &Rect) -> usize {
        let mut visits = 0;
        let mut stack = Vec::with_capacity(64);
        if let Some(r) = self.root {
            stack.push(r);
        }
        while let Some(id) = stack.pop() {
            visits += 1;
            let node = &self.nodes[id];
            if !query.intersects(&node.bbox) || query.contains_rect(&node.bbox) {
                continue;
            }
            if let Some(l) = node.left {
                stack.push(l);
            }
            if let Some(r) = node.right {
                stack.push(r);
            }
        }
        visits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> (Vec<Point>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new((0..d).map(|_| rng.gen()).collect()))
            .collect();
        let mut ws: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let total: f64 = ws.iter().sum();
        for w in &mut ws {
            *w /= total;
        }
        (pts, ws)
    }

    fn brute_rect(pts: &[Point], ws: &[f64], q: &Rect) -> f64 {
        pts.iter()
            .zip(ws)
            .filter(|(p, _)| q.contains(p))
            .map(|(_, &w)| w)
            .sum()
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::build(vec![], vec![]);
        assert!(t.is_empty());
        assert_eq!(t.weight_in_rect(&Rect::unit(2)), 0.0);
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(vec![Point::new(vec![0.5, 0.5])], vec![1.0]);
        assert_eq!(t.weight_in_rect(&Rect::unit(2)), 1.0);
        let off = Rect::new(vec![0.6, 0.6], vec![1.0, 1.0]);
        assert_eq!(t.weight_in_rect(&off), 0.0);
    }

    #[test]
    fn matches_brute_force_2d() {
        let (pts, ws) = random_points(500, 2, 1);
        let t = KdTree::build(pts.clone(), ws.clone());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let lo = [rng.gen::<f64>() * 0.8, rng.gen::<f64>() * 0.8];
            let q = Rect::new(
                lo.to_vec(),
                vec![lo[0] + rng.gen::<f64>() * 0.2, lo[1] + rng.gen::<f64>() * 0.2],
            );
            let got = t.weight_in_rect(&q);
            let want = brute_rect(&pts, &ws, &q);
            assert!((got - want).abs() < 1e-12, "got {got}, want {want}");
        }
    }

    #[test]
    fn matches_brute_force_high_dim() {
        let (pts, ws) = random_points(300, 6, 3);
        let t = KdTree::build(pts.clone(), ws.clone());
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let lo: Vec<f64> = (0..6).map(|_| rng.gen::<f64>() * 0.5).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen::<f64>() * 0.5).collect();
            let q = Rect::new(lo, hi);
            let got = t.weight_in_rect(&q);
            let want = brute_rect(&pts, &ws, &q);
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn whole_space_returns_total_weight() {
        let (pts, ws) = random_points(200, 3, 5);
        let t = KdTree::build(pts, ws);
        assert!((t.weight_in_rect(&Rect::unit(3)) - 1.0).abs() < 1e-12);
        assert_eq!(t.len(), 200);
    }

    #[test]
    fn ball_range_matches_brute_force() {
        use crate::ball::Ball;
        let (pts, ws) = random_points(400, 2, 6);
        let t = KdTree::build(pts.clone(), ws.clone());
        let b = Ball::new(Point::new(vec![0.4, 0.6]), 0.25);
        let q: Range = b.clone().into();
        let got = t.weight_in_range(&q, &Rect::unit(2));
        let want: f64 = pts
            .iter()
            .zip(&ws)
            .filter(|(p, _)| b.contains(p))
            .map(|(_, &w)| w)
            .sum();
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn halfspace_range_matches_brute_force() {
        use crate::halfspace::Halfspace;
        let (pts, ws) = random_points(400, 3, 7);
        let t = KdTree::build(pts.clone(), ws.clone());
        let h = Halfspace::new(vec![1.0, -0.5, 0.3], 0.2);
        let q: Range = h.clone().into();
        let got = t.weight_in_range(&q, &Rect::unit(3));
        let want: f64 = pts
            .iter()
            .zip(&ws)
            .filter(|(p, _)| h.contains(p))
            .map(|(_, &w)| w)
            .sum();
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn pruning_is_sublinear_for_small_queries() {
        let (pts, ws) = random_points(4096, 2, 8);
        let t = KdTree::build(pts, ws);
        let tiny = Rect::new(vec![0.4, 0.4], vec![0.45, 0.45]);
        let visits = t.visits_for_rect(&tiny);
        assert!(
            visits < 4096 / 4,
            "visited {visits} of 4096 nodes for a tiny query"
        );
        // whole-space query is absorbed at the root
        assert_eq!(t.visits_for_rect(&Rect::unit(2)), 1);
    }

    #[test]
    fn duplicate_points_supported() {
        let p = Point::new(vec![0.5, 0.5]);
        let t = KdTree::build(vec![p.clone(), p.clone(), p], vec![0.2, 0.3, 0.5]);
        assert!((t.weight_in_rect(&Rect::unit(2)) - 1.0).abs() < 1e-12);
        let exact = Rect::new(vec![0.5, 0.5], vec![0.5, 0.5]);
        assert!((t.weight_in_rect(&exact) - 1.0).abs() < 1e-12);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn prop_matches_brute_force(
            coords in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..80),
            qlo in (0.0f64..0.9, 0.0f64..0.9),
            qsize in (0.0f64..0.6, 0.0f64..0.6),
        ) {
            let pts: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(vec![x, y])).collect();
            let ws = vec![1.0 / pts.len() as f64; pts.len()];
            let t = KdTree::build(pts.clone(), ws.clone());
            let q = Rect::new(
                vec![qlo.0, qlo.1],
                vec![(qlo.0 + qsize.0).min(1.0), (qlo.1 + qsize.1).min(1.0)],
            );
            let got = t.weight_in_rect(&q);
            let want = brute_rect(&pts, &ws, &q);
            proptest::prop_assert!((got - want).abs() < 1e-12);
        }
    }
}
