//! Axis-aligned hyper-rectangles.
//!
//! Rectangles play three roles in the paper: orthogonal range queries
//! (Section 2.2), histogram buckets (Section 3.1), and quadtree cells
//! (Section 3.2). All of them are closed boxes `×_{i=1}^d [lo_i, hi_i]`.

use crate::error::{first_non_finite, GeomError};
use crate::point::Point;
use crate::EPS;

/// A closed axis-aligned hyper-rectangle `×_i [lo_i, hi_i]`.
#[derive(Clone, PartialEq, Debug)]
pub struct Rect {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Rect {
    /// Creates a rectangle from lower and upper corner coordinates.
    ///
    /// # Panics
    /// Panics if the corner dimensions differ or if `lo_i > hi_i` for some
    /// `i`. Untrusted input should go through [`Rect::try_new`] instead.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimension mismatch");
        for (i, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
            assert!(
                l <= h,
                "invalid rectangle: lo[{i}] = {l} > hi[{i}] = {h}"
            );
        }
        Self { lo, hi }
    }

    /// Validating constructor for untrusted input: rejects dimension
    /// mismatches, NaN/infinite coordinates, and inverted corners with a
    /// typed [`GeomError`] instead of panicking.
    pub fn try_new(lo: Vec<f64>, hi: Vec<f64>) -> Result<Self, GeomError> {
        if lo.len() != hi.len() {
            return Err(GeomError::DimensionMismatch {
                what: "Rect corners",
                expected: lo.len(),
                got: hi.len(),
            });
        }
        if let Some((index, value)) = first_non_finite(&lo) {
            return Err(GeomError::NonFinite {
                what: "Rect lower corner",
                index,
                value,
            });
        }
        if let Some((index, value)) = first_non_finite(&hi) {
            return Err(GeomError::NonFinite {
                what: "Rect upper corner",
                index,
                value,
            });
        }
        for (i, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
            if l > h {
                return Err(GeomError::InvertedCorners {
                    index: i,
                    lo: l,
                    hi: h,
                });
            }
        }
        Ok(Self { lo, hi })
    }

    /// The unit cube `[0, 1]^d`, the normalized data space of Section 4.
    pub fn unit(dim: usize) -> Self {
        Self {
            lo: vec![0.0; dim],
            hi: vec![1.0; dim],
        }
    }

    /// Builds a rectangle from a center point and per-dimension side lengths,
    /// the parameterization used by the paper's workload generators
    /// (Section 4, "Workloads"). The result is clipped to `[0, 1]^d`.
    pub fn from_center_widths(center: &Point, widths: &[f64]) -> Self {
        assert_eq!(center.dim(), widths.len(), "dimension mismatch");
        let lo = center
            .coords()
            .iter()
            .zip(widths)
            .map(|(&c, &w)| (c - w / 2.0).max(0.0))
            .collect();
        let hi = center
            .coords()
            .iter()
            .zip(widths)
            .map(|(&c, &w)| (c + w / 2.0).min(1.0))
            .collect();
        // Clipping can produce lo > hi when the center itself is outside the
        // cube; collapse to a degenerate box at the clipped center.
        let (lo, hi) = fix_degenerate(lo, hi);
        Self { lo, hi }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Side length along dimension `i`.
    pub fn width(&self, i: usize) -> f64 {
        self.hi[i] - self.lo[i]
    }

    /// The center point.
    pub fn center(&self) -> Point {
        Point::new(
            self.lo
                .iter()
                .zip(&self.hi)
                .map(|(&l, &h)| 0.5 * (l + h))
                .collect(),
        )
    }

    /// Lebesgue volume `∏_i (hi_i − lo_i)`.
    pub fn volume(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| h - l)
            .product()
    }

    /// `true` if the volume is (numerically) zero.
    pub fn is_degenerate(&self) -> bool {
        self.volume() <= EPS
    }

    /// Closed-box membership test.
    pub fn contains(&self, p: &Point) -> bool {
        assert_eq!(self.dim(), p.dim(), "dimension mismatch");
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p.coords())
            .all(|((&l, &h), &x)| l <= x && x <= h)
    }

    /// `true` if `other` is entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.lo
            .iter()
            .zip(&other.lo)
            .all(|(&a, &b)| a <= b + EPS)
            && self
                .hi
                .iter()
                .zip(&other.hi)
                .all(|(&a, &b)| a + EPS >= b)
    }

    /// Intersection with another rectangle, or `None` if they are disjoint
    /// (touching boundaries count as a degenerate, zero-volume intersection).
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        let mut lo = Vec::with_capacity(self.dim());
        let mut hi = Vec::with_capacity(self.dim());
        for i in 0..self.dim() {
            let l = self.lo[i].max(other.lo[i]);
            let h = self.hi[i].min(other.hi[i]);
            if l > h {
                return None;
            }
            lo.push(l);
            hi.push(h);
        }
        Some(Rect { lo, hi })
    }

    /// Volume of the intersection with another rectangle (0 when disjoint).
    pub fn intersection_volume(&self, other: &Rect) -> f64 {
        self.intersect(other).map_or(0.0, |r| r.volume())
    }

    /// `true` if the two rectangles have a common point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.intersect(other).is_some()
    }

    /// Splits the rectangle into `2^d` equal children, the quadtree split of
    /// Algorithm 2 (line 4). Children are ordered by the bitmask of which
    /// half they occupy in each dimension (bit `i` set ⇒ upper half in dim `i`).
    pub fn split(&self) -> Vec<Rect> {
        let d = self.dim();
        let mid: Vec<f64> = self
            .lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| 0.5 * (l + h))
            .collect();
        let n = 1usize << d;
        let mut out = Vec::with_capacity(n);
        for mask in 0..n {
            let mut lo = Vec::with_capacity(d);
            let mut hi = Vec::with_capacity(d);
            #[allow(clippy::needless_range_loop)] // indexed form is clearer here
            for i in 0..d {
                if mask >> i & 1 == 1 {
                    lo.push(mid[i]);
                    hi.push(self.hi[i]);
                } else {
                    lo.push(self.lo[i]);
                    hi.push(mid[i]);
                }
            }
            out.push(Rect { lo, hi });
        }
        out
    }

    /// Projects the rectangle onto a subset of dimensions.
    pub fn project(&self, dims: &[usize]) -> Rect {
        Rect {
            lo: dims.iter().map(|&i| self.lo[i]).collect(),
            hi: dims.iter().map(|&i| self.hi[i]).collect(),
        }
    }

    /// The corner of the rectangle selected by `mask` (bit `i` set ⇒ `hi_i`).
    pub fn corner(&self, mask: usize) -> Point {
        Point::new(
            (0..self.dim())
                .map(|i| {
                    if mask >> i & 1 == 1 {
                        self.hi[i]
                    } else {
                        self.lo[i]
                    }
                })
                .collect(),
        )
    }

    /// Iterates over all `2^d` corners.
    pub fn corners(&self) -> impl Iterator<Item = Point> + '_ {
        (0..(1usize << self.dim())).map(|m| self.corner(m))
    }
}

fn fix_degenerate(mut lo: Vec<f64>, mut hi: Vec<f64>) -> (Vec<f64>, Vec<f64>) {
    for i in 0..lo.len() {
        if lo[i] > hi[i] {
            let m = 0.5 * (lo[i] + hi[i]);
            lo[i] = m;
            hi[i] = m;
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cube_volume() {
        for d in 1..=6 {
            assert_eq!(Rect::unit(d).volume(), 1.0);
        }
    }

    #[test]
    fn volume_and_width() {
        let r = Rect::new(vec![0.0, 1.0], vec![2.0, 4.0]);
        assert_eq!(r.volume(), 6.0);
        assert_eq!(r.width(0), 2.0);
        assert_eq!(r.width(1), 3.0);
        assert_eq!(r.center().coords(), &[1.0, 2.5]);
    }

    #[test]
    fn containment() {
        let r = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert!(r.contains(&Point::new(vec![0.5, 0.5])));
        assert!(r.contains(&Point::new(vec![0.0, 1.0]))); // closed boundary
        assert!(!r.contains(&Point::new(vec![1.1, 0.5])));
    }

    #[test]
    fn rect_containment() {
        let outer = Rect::unit(2);
        let inner = Rect::new(vec![0.2, 0.2], vec![0.8, 0.8]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
    }

    #[test]
    fn intersection() {
        let a = Rect::new(vec![0.0, 0.0], vec![2.0, 2.0]);
        let b = Rect::new(vec![1.0, 1.0], vec![3.0, 3.0]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.lo(), &[1.0, 1.0]);
        assert_eq!(i.hi(), &[2.0, 2.0]);
        assert_eq!(a.intersection_volume(&b), 1.0);
    }

    #[test]
    fn disjoint_intersection() {
        let a = Rect::new(vec![0.0], vec![1.0]);
        let b = Rect::new(vec![2.0], vec![3.0]);
        assert!(a.intersect(&b).is_none());
        assert_eq!(a.intersection_volume(&b), 0.0);
    }

    #[test]
    fn touching_boxes_have_degenerate_intersection() {
        let a = Rect::new(vec![0.0], vec![1.0]);
        let b = Rect::new(vec![1.0], vec![2.0]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.volume(), 0.0);
    }

    #[test]
    fn split_partitions_volume() {
        let r = Rect::new(vec![0.0, 0.0, 0.0], vec![1.0, 2.0, 4.0]);
        let kids = r.split();
        assert_eq!(kids.len(), 8);
        let total: f64 = kids.iter().map(Rect::volume).sum();
        assert!((total - r.volume()).abs() < 1e-12);
        // children are pairwise interior-disjoint
        for i in 0..kids.len() {
            for j in (i + 1)..kids.len() {
                assert!(kids[i].intersection_volume(&kids[j]) < 1e-12);
            }
        }
    }

    #[test]
    fn from_center_widths_clips_to_unit_cube() {
        let c = Point::new(vec![0.05, 0.95]);
        let r = Rect::from_center_widths(&c, &[0.2, 0.2]);
        assert_eq!(r.lo()[0], 0.0);
        assert!((r.lo()[1] - 0.85).abs() < 1e-12);
        assert!((r.hi()[0] - 0.15).abs() < 1e-12);
        assert_eq!(r.hi()[1], 1.0);
    }

    #[test]
    fn from_center_widths_zero_width_is_equality_predicate() {
        // Categorical attributes use width 0 (Section 4 "Workloads").
        let c = Point::new(vec![0.3]);
        let r = Rect::from_center_widths(&c, &[0.0]);
        assert_eq!(r.lo(), &[0.3]);
        assert_eq!(r.hi(), &[0.3]);
        assert!(r.is_degenerate());
    }

    #[test]
    fn corners_enumeration() {
        let r = Rect::new(vec![0.0, 0.0], vec![1.0, 2.0]);
        let cs: Vec<_> = r.corners().collect();
        assert_eq!(cs.len(), 4);
        assert!(cs.contains(&Point::new(vec![0.0, 0.0])));
        assert!(cs.contains(&Point::new(vec![1.0, 2.0])));
        assert!(cs.contains(&Point::new(vec![1.0, 0.0])));
        assert!(cs.contains(&Point::new(vec![0.0, 2.0])));
    }

    #[test]
    fn projection() {
        let r = Rect::new(vec![0.0, 1.0, 2.0], vec![1.0, 2.0, 3.0]);
        let p = r.project(&[2, 0]);
        assert_eq!(p.lo(), &[2.0, 0.0]);
        assert_eq!(p.hi(), &[3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "invalid rectangle")]
    fn inverted_corners_panic() {
        let _ = Rect::new(vec![1.0], vec![0.0]);
    }
}
