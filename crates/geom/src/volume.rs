//! Volume estimation utilities.
//!
//! The paper's Equation (6) needs `vol(B ∩ R)` for every bucket `B` and
//! query range `R`. For rectangles and halfspaces this crate computes it in
//! closed form; for balls in `d ≥ 3` dimensions and for general
//! semi-algebraic ranges the paper suggests Monte-Carlo estimation
//! (Section 3.1, citing MCMC sampling). We use a *deterministic*
//! low-discrepancy (Halton) quasi-Monte-Carlo integrator instead, so the
//! whole pipeline stays reproducible.

use crate::point::Point;
use crate::rect::Rect;

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Sample count below which parallel QMC dispatch is skipped. The default
/// 4096-sample estimator stays serial per call — callers that evaluate many
/// cells (design-matrix assembly) parallelize across cells instead.
#[cfg(feature = "parallel")]
const PAR_SAMPLE_THRESHOLD: usize = 16_384;

/// First 20 primes, used as Halton bases.
const PRIMES: [u64; 20] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71,
];

/// How `vol(B ∩ R)` should be computed for ranges without a closed form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VolumeMethod {
    /// Deterministic Halton quasi-Monte-Carlo with the given sample count.
    QuasiMonteCarlo {
        /// Number of low-discrepancy samples.
        samples: usize,
    },
}

impl Default for VolumeMethod {
    fn default() -> Self {
        VolumeMethod::QuasiMonteCarlo { samples: 4096 }
    }
}

/// A reusable volume estimator for indicator functions over boxes.
#[derive(Clone, Debug, Default)]
pub struct VolumeEstimator {
    method: VolumeMethod,
}

impl VolumeEstimator {
    /// Creates an estimator with the given method.
    pub fn new(method: VolumeMethod) -> Self {
        Self { method }
    }

    /// Creates a quasi-Monte-Carlo estimator with `samples` points.
    pub fn qmc(samples: usize) -> Self {
        Self::new(VolumeMethod::QuasiMonteCarlo { samples })
    }

    /// Estimates `vol({x ∈ rect : inside(x)})`.
    ///
    /// Returns 0 for degenerate boxes. Deterministic: the same inputs always
    /// produce the same estimate — the Halton point for index `k` does not
    /// depend on any other index, and the hit count is an integer sum, so
    /// the parallel build (large sample counts only) is exactly equal to
    /// the serial one. The predicate is `Sync` because worker threads may
    /// evaluate it concurrently.
    pub fn volume_in_rect<F: Fn(&Point) -> bool + Sync>(&self, rect: &Rect, inside: F) -> f64 {
        let vol = rect.volume();
        if vol <= 0.0 {
            return 0.0;
        }
        let VolumeMethod::QuasiMonteCarlo { samples } = self.method;
        // One bump per call, not per sample: cheap enough to leave on the
        // hot path, and the trace still reconstructs total QMC work.
        selearn_obs::counter_add("mc_samples_drawn", samples as u64);
        let d = rect.dim();
        #[cfg(feature = "parallel")]
        if samples >= PAR_SAMPLE_THRESHOLD && rayon::current_num_threads() > 1 {
            let hits: usize = (0..samples)
                .into_par_iter()
                .map(|k| {
                    let mut p = Point::zeros(d);
                    for (i, c) in p.coords_mut().iter_mut().enumerate() {
                        let u = halton(k as u64 + 1, PRIMES[i % PRIMES.len()]);
                        *c = rect.lo()[i] + rect.width(i) * u;
                    }
                    usize::from(inside(&p))
                })
                .sum();
            return vol * hits as f64 / samples as f64;
        }
        let mut hits = 0usize;
        let mut p = Point::zeros(d);
        for k in 0..samples {
            for (i, c) in p.coords_mut().iter_mut().enumerate() {
                let u = halton(k as u64 + 1, PRIMES[i % PRIMES.len()]);
                *c = rect.lo()[i] + rect.width(i) * u;
            }
            if inside(&p) {
                hits += 1;
            }
        }
        vol * hits as f64 / samples as f64
    }

    /// Estimates the *fraction* of `rect` satisfying the predicate.
    pub fn fraction_in_rect<F: Fn(&Point) -> bool + Sync>(&self, rect: &Rect, inside: F) -> f64 {
        let vol = rect.volume();
        if vol <= 0.0 {
            return 0.0;
        }
        self.volume_in_rect(rect, inside) / vol
    }
}

/// The `k`-th element of the van der Corput sequence in the given base
/// (radical inverse). `k ≥ 1`.
pub fn halton(mut k: u64, base: u64) -> f64 {
    let mut f = 1.0;
    let mut r = 0.0;
    let b = base as f64;
    while k > 0 {
        f /= b;
        r += f * (k % base) as f64;
        k /= base;
    }
    r
}

/// Adaptive Simpson quadrature of `f` over `[a, b]` with absolute tolerance
/// `tol`. Used for the exact-to-tolerance 2-D circle/box intersection area.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, tol: f64) -> f64 {
    let c = 0.5 * (a + b);
    let fa = f(a);
    let fb = f(b);
    let fc = f(c);
    let whole = (b - a) / 6.0 * (fa + 4.0 * fc + fb);
    simpson_rec(f, a, b, fa, fb, fc, whole, tol, 50)
}

#[allow(clippy::too_many_arguments)]
fn simpson_rec<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fb: f64,
    fc: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let c = 0.5 * (a + b);
    let d = 0.5 * (a + c);
    let e = 0.5 * (c + b);
    let fd = f(d);
    let fe = f(e);
    let left = (c - a) / 6.0 * (fa + 4.0 * fd + fc);
    let right = (b - c) / 6.0 * (fc + 4.0 * fe + fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        simpson_rec(f, a, c, fa, fc, fd, left, tol / 2.0, depth - 1)
            + simpson_rec(f, c, b, fc, fb, fe, right, tol / 2.0, depth - 1)
    }
}

/// Volume of the unit `d`-ball, `π^{d/2} / Γ(d/2 + 1)`, computed by the
/// stable recurrence `V_d = 2π/d · V_{d−2}`.
pub fn unit_ball_volume(d: usize) -> f64 {
    match d {
        0 => 1.0,
        1 => 2.0,
        _ => 2.0 * std::f64::consts::PI / d as f64 * unit_ball_volume(d - 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ball::Ball;

    #[test]
    fn halton_is_in_unit_interval_and_low_discrepancy() {
        let n = 1000;
        let mut sum = 0.0;
        for k in 1..=n {
            let v = halton(k, 2);
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // mean of a low-discrepancy sequence converges fast to 1/2
        assert!((sum / n as f64 - 0.5).abs() < 1e-2);
    }

    #[test]
    fn adaptive_simpson_polynomial_exact() {
        let v = adaptive_simpson(&|x| x * x, 0.0, 1.0, 1e-12);
        assert!((v - 1.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn adaptive_simpson_sqrt_singularity() {
        // ∫_0^1 sqrt(1 − x²) dx = π/4 (quarter circle), an endpoint-singular
        // integrand like our chord-length function.
        let v = adaptive_simpson(&|x| (1.0 - x * x).max(0.0).sqrt(), 0.0, 1.0, 1e-10);
        assert!((v - std::f64::consts::FRAC_PI_4).abs() < 1e-7, "v = {v}");
    }

    #[test]
    fn unit_ball_volumes_match_known_values() {
        assert!((unit_ball_volume(1) - 2.0).abs() < 1e-12);
        assert!((unit_ball_volume(2) - std::f64::consts::PI).abs() < 1e-12);
        assert!((unit_ball_volume(3) - 4.0 / 3.0 * std::f64::consts::PI).abs() < 1e-12);
        // V_4 = π²/2
        assert!((unit_ball_volume(4) - std::f64::consts::PI.powi(2) / 2.0).abs() < 1e-12);
        // V_5 = 8π²/15
        assert!(
            (unit_ball_volume(5) - 8.0 * std::f64::consts::PI.powi(2) / 15.0).abs() < 1e-12
        );
    }

    #[test]
    fn qmc_estimates_ball_volume_3d() {
        let ball = Ball::new(Point::splat(3, 0.5), 0.4);
        let est = VolumeEstimator::qmc(200_000);
        let v = est.volume_in_rect(&Rect::unit(3), |p| ball.contains(p));
        let exact = unit_ball_volume(3) * 0.4f64.powi(3);
        assert!((v - exact).abs() < 2e-3, "v = {v}, exact = {exact}");
    }

    #[test]
    fn qmc_zero_volume_rect() {
        let r = Rect::new(vec![0.3, 0.1], vec![0.3, 0.9]);
        let est = VolumeEstimator::default();
        assert_eq!(est.volume_in_rect(&r, |_| true), 0.0);
    }

    #[test]
    fn qmc_constant_predicates() {
        let est = VolumeEstimator::qmc(128);
        let r = Rect::new(vec![0.0, 0.0], vec![2.0, 3.0]);
        assert_eq!(est.volume_in_rect(&r, |_| true), 6.0);
        assert_eq!(est.volume_in_rect(&r, |_| false), 0.0);
    }

    #[test]
    fn qmc_deterministic() {
        let ball = Ball::new(Point::splat(2, 0.5), 0.3);
        let est = VolumeEstimator::qmc(1024);
        let a = est.volume_in_rect(&Rect::unit(2), |p| ball.contains(p));
        let b = est.volume_in_rect(&Rect::unit(2), |p| ball.contains(p));
        assert_eq!(a, b);
    }
}
