//! Special functions needed for Gaussian-mixture selectivity models.
//!
//! The paper's conclusion flags "developing an algorithm that computes a
//! Gaussian mixture … with a small loss given a training sample" as an
//! open problem; the Gaussian-mixture extension (`GaussHist`) in `selearn-core`
//! needs the Gaussian CDF, hence `erf`. `std` has no `erf`, and pulling in
//! `libm` is outside the approved dependency set, so we implement the
//! standard high-accuracy rational approximation (W. J. Cody, 1969 —
//! the same algorithm behind most libm implementations), accurate to
//! ~1e-15 relative error over the whole line.

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{−t²} dt`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    let ax = x.abs();
    let v = if ax < 0.5 {
        return 1.0 - erf_small(x);
    } else if ax < 4.0 {
        erfc_medium(ax)
    } else {
        erfc_large(ax)
    };
    if x < 0.0 {
        2.0 - v
    } else {
        v
    }
}

/// Standard normal CDF `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Mass of `N(mean, sd²)` inside the interval `[lo, hi]`.
pub fn normal_mass(mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(sd > 0.0, "standard deviation must be positive");
    if hi <= lo {
        return 0.0;
    }
    (std_normal_cdf((hi - mean) / sd) - std_normal_cdf((lo - mean) / sd)).max(0.0)
}

/// Inverse of the standard normal CDF (quantile function), via Acklam's
/// rational approximation refined by one Halley step — accurate to
/// ~1e-15 over `(0, 1)`.
///
/// Out-of-domain arguments degrade gracefully instead of panicking, in the
/// usual libm convention: `p ≤ 0 → −∞`, `p ≥ 1 → +∞`, `NaN → NaN`.
pub fn inv_std_normal_cdf(p: f64) -> f64 {
    if p.is_nan() {
        return f64::NAN;
    }
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    };
    // one Halley refinement step against the forward CDF
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

// Cody's rational approximations, region by region.

fn erf_small(x: f64) -> f64 {
    // |x| < 0.5
    const P: [f64; 5] = [
        3.209_377_589_138_469_4e3,
        3.774_852_376_853_02e2,
        1.138_641_541_510_501_6e2,
        3.161_123_743_870_565_5,
        1.857_777_061_846_031_5e-1,
    ];
    const Q: [f64; 5] = [
        2.844_236_833_439_171e3,
        1.282_616_526_077_372_3e3,
        2.440_246_379_344_441_7e2,
        2.360_129_095_234_412_2e1,
        1.0,
    ];
    let z = x * x;
    let mut num = P[4];
    let mut den = Q[4];
    for i in (0..4).rev() {
        num = num * z + P[i];
        den = den * z + Q[i];
    }
    x * num / den
}

fn erfc_medium(ax: f64) -> f64 {
    // 0.5 ≤ |x| < 4
    const P: [f64; 9] = [
        1.230_339_354_797_997_2e3,
        2.051_078_377_826_071_6e3,
        1.712_047_612_634_070_7e3,
        8.819_522_212_417_69e2,
        2.986_351_381_974_001e2,
        6.611_919_063_714_163e1,
        8.883_149_794_388_377,
        5.641_884_969_886_701e-1,
        2.153_115_354_744_038_3e-8,
    ];
    const Q: [f64; 9] = [
        1.230_339_354_803_749_5e3,
        3.439_367_674_143_721_6e3,
        4.362_619_090_143_247e3,
        3.290_799_235_733_459_7e3,
        1.621_389_574_566_690_3e3,
        5.371_811_018_620_099e2,
        1.176_939_508_913_125e2,
        1.574_492_611_070_983_5e1,
        1.0,
    ];
    let mut num = P[8];
    let mut den = Q[8];
    for i in (0..8).rev() {
        num = num * ax + P[i];
        den = den * ax + Q[i];
    }
    (-ax * ax).exp() * num / den
}

fn erfc_large(ax: f64) -> f64 {
    // |x| ≥ 4
    if ax > 26.5 {
        return 0.0;
    }
    const P: [f64; 6] = [
        -6.587_491_615_298_378e-4,
        -1.608_378_514_874_227_5e-2,
        -1.257_817_261_112_292_6e-1,
        -3.603_448_999_498_044_5e-1,
        -3.053_266_349_612_323_6e-1,
        -1.631_538_713_730_209_7e-2,
    ];
    const Q: [f64; 6] = [
        2.335_204_976_268_691_8e-3,
        6.051_834_131_244_132e-2,
        5.279_051_029_514_285e-1,
        1.872_952_849_923_460_4,
        2.568_520_192_289_822,
        1.0,
    ];
    let z = 1.0 / (ax * ax);
    let mut num = P[5];
    let mut den = Q[5];
    for i in (0..5).rev() {
        num = num * z + P[i];
        den = den * z + Q[i];
    }
    let poly = z * num / den;
    let inv_sqrt_pi = 1.0 / std::f64::consts::PI.sqrt();
    ((-ax * ax).exp() / ax) * (inv_sqrt_pi + poly)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from the NIST Digital Library (DLMF 7.2).
    const REF: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.25, 0.2763263901682369),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
        (4.5, 0.9999999998033839),
    ];

    #[test]
    fn erf_matches_reference_values() {
        for &(x, want) in REF {
            let got = erf(x);
            assert!(
                (got - want).abs() < 1e-13,
                "erf({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn erf_is_odd() {
        for &(x, _) in REF {
            assert!((erf(-x) + erf(x)).abs() < 1e-14);
        }
    }

    #[test]
    fn erfc_complements() {
        for x in [-3.0, -1.0, -0.2, 0.0, 0.3, 1.7, 5.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13, "x = {x}");
        }
    }

    #[test]
    fn erfc_tail_values() {
        // erfc(5) ≈ 1.5374597944280349e-12 (DLMF)
        let got = erfc(5.0);
        assert!(
            (got - 1.537_459_794_428_035e-12).abs() < 1e-24,
            "erfc(5) = {got:e}"
        );
        assert_eq!(erfc(30.0), 0.0);
        assert!((erfc(-30.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn normal_cdf_symmetry_and_known_values() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-15);
        // Φ(1.96) ≈ 0.9750021048517795
        assert!((std_normal_cdf(1.96) - 0.9750021048517795).abs() < 1e-12);
        for x in [0.5, 1.0, 2.5] {
            assert!((std_normal_cdf(x) + std_normal_cdf(-x) - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn normal_mass_basics() {
        // ~68.27% within one σ
        let m = normal_mass(0.0, 1.0, -1.0, 1.0);
        assert!((m - 0.6826894921370859).abs() < 1e-12);
        // shift/scale invariance
        let m2 = normal_mass(5.0, 2.0, 3.0, 7.0);
        assert!((m - m2).abs() < 1e-12);
        // degenerate interval
        assert_eq!(normal_mass(0.0, 1.0, 1.0, 1.0), 0.0);
        assert_eq!(normal_mass(0.0, 1.0, 2.0, 1.0), 0.0);
    }

    #[test]
    fn inverse_cdf_round_trips() {
        for p in [1e-10, 1e-4, 0.01, 0.2, 0.5, 0.8, 0.99, 1.0 - 1e-8] {
            let x = inv_std_normal_cdf(p);
            let back = std_normal_cdf(x);
            assert!((back - p).abs() < 1e-12, "p = {p}: got back {back}");
        }
    }

    #[test]
    fn inverse_cdf_known_quantiles() {
        assert!(inv_std_normal_cdf(0.5).abs() < 1e-13);
        assert!((inv_std_normal_cdf(0.975) - 1.959963984540054).abs() < 1e-10);
        assert!((inv_std_normal_cdf(0.025) + 1.959963984540054).abs() < 1e-10);
    }

    #[test]
    fn inverse_cdf_boundaries_saturate() {
        assert_eq!(inv_std_normal_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inv_std_normal_cdf(1.0), f64::INFINITY);
        assert_eq!(inv_std_normal_cdf(-3.0), f64::NEG_INFINITY);
        assert!(inv_std_normal_cdf(f64::NAN).is_nan());
    }

    #[test]
    fn erf_monotone_dense_grid() {
        let mut prev = erf(-6.0);
        let mut x = -6.0;
        while x < 6.0 {
            x += 0.01;
            let v = erf(x);
            assert!(v >= prev - 1e-15, "erf not monotone at {x}");
            prev = v;
        }
    }
}
