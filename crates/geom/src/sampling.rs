//! Uniform sampling from range interiors (Appendix A.2).
//!
//! PtsHist (Section 3.3) needs uniform samples from the interior of
//! arbitrary training ranges. Sampling a rectangle is per-dimension
//! independent; for halfspaces, balls and semi-algebraic ranges the paper
//! uses **rejection sampling from the smallest bounding box**, which this
//! module implements.

use crate::point::Point;
use crate::range::{Range, RangeQuery};
use crate::rect::Rect;
use rand::Rng;

/// Draws one uniform sample from a rectangle.
pub fn sample_in_rect<R: Rng + ?Sized>(rect: &Rect, rng: &mut R) -> Point {
    Point::new(
        (0..rect.dim())
            .map(|i| {
                let w = rect.width(i);
                if w <= 0.0 {
                    rect.lo()[i]
                } else {
                    rng.gen_range(rect.lo()[i]..rect.hi()[i])
                }
            })
            .collect(),
    )
}

/// Rejection sampler for a fixed range within a clip box.
///
/// Precomputes the smallest bounding box once (Appendix A.2), then draws
/// proposals from it until one lands inside the range.
#[derive(Debug)]
pub struct RejectionSampler {
    range: Range,
    bbox: Option<Rect>,
    max_attempts: usize,
}

impl RejectionSampler {
    /// Default cap on proposals per sample before giving up.
    pub const DEFAULT_MAX_ATTEMPTS: usize = 10_000;

    /// Creates a sampler for `range ∩ clip`.
    pub fn new(range: Range, clip: &Rect) -> Self {
        let bbox = range.bounding_box(clip);
        Self {
            range,
            bbox,
            max_attempts: Self::DEFAULT_MAX_ATTEMPTS,
        }
    }

    /// Overrides the proposal cap.
    pub fn with_max_attempts(mut self, n: usize) -> Self {
        self.max_attempts = n;
        self
    }

    /// The precomputed bounding box (`None` if the clipped range is empty).
    pub fn bounding_box(&self) -> Option<&Rect> {
        self.bbox.as_ref()
    }

    /// Draws one uniform sample from the range interior, or `None` if the
    /// range is empty / too thin to hit within the attempt budget.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Point> {
        let bbox = self.bbox.as_ref()?;
        // A degenerate bbox (e.g. equality predicates on categorical
        // attributes) still admits sampling: the flat dimensions are pinned.
        for _ in 0..self.max_attempts {
            let p = sample_in_rect(bbox, rng);
            if self.range.contains(&p) {
                return Some(p);
            }
        }
        None
    }

    /// Draws up to `n` samples (fewer if the range keeps rejecting).
    pub fn sample_n<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Point> {
        (0..n).filter_map(|_| self.sample(rng)).collect()
    }
}

/// Draws one uniform sample from `range ∩ clip` without building a
/// [`RejectionSampler`]; convenient for one-off draws.
pub fn sample_in_range<R: Rng + ?Sized>(range: &Range, clip: &Rect, rng: &mut R) -> Option<Point> {
    RejectionSampler::new(range.clone(), clip).sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ball::Ball;
    use crate::halfspace::Halfspace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn rect_samples_inside() {
        let r = Rect::new(vec![0.2, 0.4], vec![0.3, 0.9]);
        let mut g = rng();
        for _ in 0..1000 {
            let p = sample_in_rect(&r, &mut g);
            assert!(r.contains(&p));
        }
    }

    #[test]
    fn rect_samples_are_uniform_per_dim() {
        let r = Rect::new(vec![0.0, 0.0], vec![1.0, 2.0]);
        let mut g = rng();
        let n = 20_000;
        let mut sums = [0.0f64; 2];
        for _ in 0..n {
            let p = sample_in_rect(&r, &mut g);
            sums[0] += p[0];
            sums[1] += p[1];
        }
        assert!((sums[0] / n as f64 - 0.5).abs() < 0.01);
        assert!((sums[1] / n as f64 - 1.0).abs() < 0.02);
    }

    #[test]
    fn degenerate_rect_sampling() {
        // Equality predicate: width-0 dimension stays pinned.
        let r = Rect::new(vec![0.3, 0.0], vec![0.3, 1.0]);
        let mut g = rng();
        let p = sample_in_rect(&r, &mut g);
        assert_eq!(p[0], 0.3);
    }

    #[test]
    fn rejection_ball_all_inside() {
        let ball = Ball::new(Point::splat(2, 0.5), 0.2);
        let s = RejectionSampler::new(ball.clone().into(), &Rect::unit(2));
        let mut g = rng();
        let pts = s.sample_n(500, &mut g);
        assert_eq!(pts.len(), 500);
        for p in &pts {
            assert!(ball.contains(p));
            assert!(p.in_unit_cube());
        }
    }

    #[test]
    fn rejection_halfspace_all_inside() {
        let h = Halfspace::new(vec![1.0, 1.0], 1.5);
        let s = RejectionSampler::new(h.clone().into(), &Rect::unit(2));
        let mut g = rng();
        let pts = s.sample_n(500, &mut g);
        assert_eq!(pts.len(), 500);
        for p in &pts {
            assert!(h.contains(p));
        }
        // bounding box is the tight corner box from Appendix A.2
        let bb = s.bounding_box().unwrap();
        assert!(bb.lo()[0] >= 0.5 - 1e-9);
        assert!(bb.lo()[1] >= 0.5 - 1e-9);
    }

    #[test]
    fn rejection_empty_range() {
        let h = Halfspace::new(vec![1.0, 1.0], 5.0); // empty in unit square
        let s = RejectionSampler::new(h.into(), &Rect::unit(2));
        let mut g = rng();
        assert!(s.sample(&mut g).is_none());
        assert!(s.bounding_box().is_none());
    }

    #[test]
    fn rejection_efficiency_acceptance_rate() {
        // Acceptance from the tight bbox of a halfspace corner cut is the
        // ratio of the triangle to its bbox = 1/2; the budget is never hit.
        let h = Halfspace::new(vec![1.0, 1.0], 1.8);
        let s = RejectionSampler::new(h.into(), &Rect::unit(2)).with_max_attempts(100);
        let mut g = rng();
        let pts = s.sample_n(200, &mut g);
        assert_eq!(pts.len(), 200);
    }

    #[test]
    fn ball_sample_mean_is_center() {
        let ball = Ball::new(Point::new(vec![0.4, 0.6]), 0.25);
        let s = RejectionSampler::new(ball.into(), &Rect::unit(2));
        let mut g = rng();
        let n = 10_000;
        let pts = s.sample_n(n, &mut g);
        let mean_x: f64 = pts.iter().map(|p| p[0]).sum::<f64>() / n as f64;
        let mean_y: f64 = pts.iter().map(|p| p[1]).sum::<f64>() / n as f64;
        assert!((mean_x - 0.4).abs() < 0.01, "mean_x = {mean_x}");
        assert!((mean_y - 0.6).abs() < 0.01, "mean_y = {mean_y}");
    }

    #[test]
    fn one_off_helper() {
        let r: Range = Rect::new(vec![0.1, 0.1], vec![0.2, 0.2]).into();
        let mut g = rng();
        let p = sample_in_range(&r, &Rect::unit(2), &mut g).unwrap();
        assert!(r.contains(&p));
    }
}
