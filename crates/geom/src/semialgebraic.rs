//! Semi-algebraic range queries (Section 2.2).
//!
//! A *semi-algebraic set* is a subset of `R^d` defined by a Boolean formula
//! over polynomial inequalities. The paper notes that the range space
//! `(R^d, Γ_{d,b,Δ})` of sets defined by at most `b` `d`-variate polynomial
//! inequalities of degree ≤ `Δ` has constant VC-dimension `λ(d, b, Δ)`
//! [Ben-David & Lindenbaum 1998], so their selectivity functions are
//! learnable. Rectangles, halfspaces and balls are all special cases.
//!
//! This module provides sparse multivariate polynomials, a small formula
//! tree over polynomial inequalities, and the *disc-intersection lifting*
//! of Figure 3: queries over a set of discs ("which discs intersect a query
//! disc?") map to semi-algebraic ranges over `R^3` points `(x, y, z)` with
//! `z` the disc radius.

use crate::point::Point;
use crate::rect::Rect;
use crate::volume::VolumeEstimator;

/// A single monomial `coeff · ∏ x_i^{e_i}` (sparse exponents).
#[derive(Clone, Debug, PartialEq)]
pub struct Monomial {
    /// Coefficient.
    pub coeff: f64,
    /// `(variable index, exponent)` pairs; exponents are ≥ 1.
    pub exps: Vec<(usize, u32)>,
}

impl Monomial {
    /// Evaluates the monomial at a point.
    pub fn eval(&self, p: &Point) -> f64 {
        let mut v = self.coeff;
        for &(i, e) in &self.exps {
            v *= p[i].powi(e as i32);
        }
        v
    }

    /// Total degree of the monomial.
    pub fn degree(&self) -> u32 {
        self.exps.iter().map(|&(_, e)| e).sum()
    }
}

/// A sparse multivariate polynomial (sum of monomials).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Polynomial {
    terms: Vec<Monomial>,
}

impl Polynomial {
    /// Creates a polynomial from monomials.
    pub fn new(terms: Vec<Monomial>) -> Self {
        Self { terms }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Self::default()
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Self::new(vec![Monomial {
            coeff: c,
            exps: vec![],
        }])
    }

    /// The linear polynomial `a · x − b` (so `≥ 0` is the halfspace `a·x ≥ b`).
    pub fn linear(a: &[f64], b: f64) -> Self {
        let mut terms: Vec<Monomial> = a
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0.0)
            .map(|(i, &c)| Monomial {
                coeff: c,
                exps: vec![(i, 1)],
            })
            .collect();
        if b != 0.0 {
            terms.push(Monomial {
                coeff: -b,
                exps: vec![],
            });
        }
        Self::new(terms)
    }

    /// `r² − ‖x − c‖²`, nonnegative exactly on the ball of radius `r` at `c`.
    pub fn ball(center: &[f64], r: f64) -> Self {
        let mut terms = vec![Monomial {
            coeff: r * r - center.iter().map(|c| c * c).sum::<f64>(),
            exps: vec![],
        }];
        for (i, &c) in center.iter().enumerate() {
            terms.push(Monomial {
                coeff: -1.0,
                exps: vec![(i, 2)],
            });
            if c != 0.0 {
                terms.push(Monomial {
                    coeff: 2.0 * c,
                    exps: vec![(i, 1)],
                });
            }
        }
        Self::new(terms)
    }

    /// Evaluates the polynomial at a point.
    pub fn eval(&self, p: &Point) -> f64 {
        self.terms.iter().map(|m| m.eval(p)).sum()
    }

    /// Total degree (0 for the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms.iter().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Number of monomials.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }
}

/// A Boolean formula over polynomial sign conditions `p(x) ≥ 0`.
#[derive(Clone, Debug)]
pub enum SemiAlgebraicSet {
    /// `p(x) ≥ 0`.
    NonNegative(Polynomial),
    /// Conjunction of subformulas.
    And(Vec<SemiAlgebraicSet>),
    /// Disjunction of subformulas.
    Or(Vec<SemiAlgebraicSet>),
    /// Complement of a subformula.
    Not(Box<SemiAlgebraicSet>),
}

impl SemiAlgebraicSet {
    /// The atomic condition `p(x) ≥ 0`.
    pub fn nonneg(p: Polynomial) -> Self {
        SemiAlgebraicSet::NonNegative(p)
    }

    /// The atomic condition `p(x) ≤ 0` (encoded as `−p ≥ 0`).
    pub fn nonpos(p: Polynomial) -> Self {
        let negated = Polynomial::new(
            p.terms
                .into_iter()
                .map(|mut m| {
                    m.coeff = -m.coeff;
                    m
                })
                .collect(),
        );
        SemiAlgebraicSet::NonNegative(negated)
    }

    /// Membership test.
    pub fn contains(&self, p: &Point) -> bool {
        match self {
            SemiAlgebraicSet::NonNegative(poly) => poly.eval(p) >= 0.0,
            SemiAlgebraicSet::And(xs) => xs.iter().all(|s| s.contains(p)),
            SemiAlgebraicSet::Or(xs) => xs.iter().any(|s| s.contains(p)),
            SemiAlgebraicSet::Not(s) => !s.contains(p),
        }
    }

    /// Number of atomic polynomial inequalities (`b` in `Γ_{d,b,Δ}`).
    pub fn num_atoms(&self) -> usize {
        match self {
            SemiAlgebraicSet::NonNegative(_) => 1,
            SemiAlgebraicSet::And(xs) | SemiAlgebraicSet::Or(xs) => {
                xs.iter().map(SemiAlgebraicSet::num_atoms).sum()
            }
            SemiAlgebraicSet::Not(s) => s.num_atoms(),
        }
    }

    /// Maximum polynomial degree (`Δ` in `Γ_{d,b,Δ}`).
    pub fn max_degree(&self) -> u32 {
        match self {
            SemiAlgebraicSet::NonNegative(p) => p.degree(),
            SemiAlgebraicSet::And(xs) | SemiAlgebraicSet::Or(xs) => {
                xs.iter().map(SemiAlgebraicSet::max_degree).max().unwrap_or(0)
            }
            SemiAlgebraicSet::Not(s) => s.max_degree(),
        }
    }

    /// Quasi-Monte-Carlo estimate of `vol(rect ∩ self)`. Semi-algebraic sets
    /// have no closed-form volume in general; the paper (Section 3.1)
    /// suggests MCMC — we use a deterministic QMC integrator instead.
    pub fn intersection_volume(&self, rect: &Rect, est: &VolumeEstimator) -> f64 {
        est.volume_in_rect(rect, |p| self.contains(p))
    }

    /// The paper's running example (Figure 3, left): the annulus-with-cut
    /// `(x² + y² ≤ 4) ∧ (x² + y² ≥ 1) ∧ (y − 2x² ≤ 0)` in `R²`.
    pub fn figure3_example() -> Self {
        let disc4 = SemiAlgebraicSet::nonneg(Polynomial::ball(&[0.0, 0.0], 2.0));
        let outside1 = SemiAlgebraicSet::nonpos(Polynomial::ball(&[0.0, 0.0], 1.0));
        // y − 2x² ≤ 0
        let parabola = SemiAlgebraicSet::nonpos(Polynomial::new(vec![
            Monomial {
                coeff: 1.0,
                exps: vec![(1, 1)],
            },
            Monomial {
                coeff: -2.0,
                exps: vec![(0, 2)],
            },
        ]));
        SemiAlgebraicSet::And(vec![disc4, outside1, parabola])
    }

    /// The disc-intersection lifting of Figure 3 (right): discs are mapped
    /// to points `(x, y, z) ∈ R² × R_{≥0}` with `z` the radius; the set of
    /// discs intersecting a query disc at `(c_x, c_y)` with radius `r` is
    /// the semi-algebraic range
    /// `{(x,y,z) : (x−c_x)² + (y−c_y)² ≤ (r+z)², z ≥ 0}` (b = 1, Δ = 2).
    pub fn disc_intersection_query(cx: f64, cy: f64, r: f64) -> Self {
        // (r+z)² − (x−cx)² − (y−cy)² ≥ 0, expanded over variables (x,y,z):
        // r² − cx² − cy² + 2cx·x + 2cy·y + 2r·z − x² − y² + z² ≥ 0
        let mut terms = vec![Monomial {
            coeff: r * r - cx * cx - cy * cy,
            exps: vec![],
        }];
        for (i, c) in [(0usize, cx), (1usize, cy)] {
            terms.push(Monomial {
                coeff: -1.0,
                exps: vec![(i, 2)],
            });
            if c != 0.0 {
                terms.push(Monomial {
                    coeff: 2.0 * c,
                    exps: vec![(i, 1)],
                });
            }
        }
        terms.push(Monomial {
            coeff: 1.0,
            exps: vec![(2, 2)],
        });
        if r != 0.0 {
            terms.push(Monomial {
                coeff: 2.0 * r,
                exps: vec![(2, 1)],
            });
        }
        let lifted = SemiAlgebraicSet::nonneg(Polynomial::new(terms));
        let z_nonneg = SemiAlgebraicSet::nonneg(Polynomial::linear(&[0.0, 0.0, 1.0], 0.0));
        SemiAlgebraicSet::And(vec![lifted, z_nonneg])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_eval() {
        // 3x² − 2xy + 1 at (2, 1) = 12 − 4 + 1 = 9
        let p = Polynomial::new(vec![
            Monomial {
                coeff: 3.0,
                exps: vec![(0, 2)],
            },
            Monomial {
                coeff: -2.0,
                exps: vec![(0, 1), (1, 1)],
            },
            Monomial {
                coeff: 1.0,
                exps: vec![],
            },
        ]);
        assert_eq!(p.eval(&Point::new(vec![2.0, 1.0])), 9.0);
        assert_eq!(p.degree(), 2);
        assert_eq!(p.num_terms(), 3);
    }

    #[test]
    fn linear_polynomial_matches_halfspace() {
        use crate::halfspace::Halfspace;
        let a = vec![0.5, -1.5];
        let b = 0.3;
        let p = Polynomial::linear(&a, b);
        let h = Halfspace::new(a, b);
        for pt in [
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.1]),
            Point::new(vec![0.9, -0.2]),
        ] {
            assert_eq!(p.eval(&pt) >= 0.0, h.contains(&pt));
        }
    }

    #[test]
    fn ball_polynomial_matches_ball() {
        use crate::ball::Ball;
        let p = Polynomial::ball(&[0.5, 0.25], 0.4);
        let b = Ball::new(Point::new(vec![0.5, 0.25]), 0.4);
        for pt in [
            Point::new(vec![0.5, 0.25]),
            Point::new(vec![0.9, 0.25]),
            Point::new(vec![0.95, 0.25]),
            Point::new(vec![0.1, 0.9]),
        ] {
            assert_eq!(p.eval(&pt) >= -1e-12, b.contains(&pt), "{pt:?}");
        }
    }

    #[test]
    fn figure3_membership() {
        let s = SemiAlgebraicSet::figure3_example();
        // (1.5, 0): between the circles, below the parabola ⇒ inside.
        assert!(s.contains(&Point::new(vec![1.5, 0.0])));
        // origin: inside the inner disc ⇒ excluded.
        assert!(!s.contains(&Point::new(vec![0.0, 0.0])));
        // (0, 1.5): inside outer circle but above parabola y ≤ 2x² ⇒ excluded.
        assert!(!s.contains(&Point::new(vec![0.0, 1.5])));
        // (3, 0): outside the outer circle ⇒ excluded.
        assert!(!s.contains(&Point::new(vec![3.0, 0.0])));
        assert_eq!(s.num_atoms(), 3);
        assert_eq!(s.max_degree(), 2);
    }

    #[test]
    fn disc_intersection_lifting() {
        // Query disc at (0,0) with radius 1. A disc at (3,0) with radius 2.5
        // intersects it (gap 3 < 1 + 2.5); one with radius 1.5 does not.
        let q = SemiAlgebraicSet::disc_intersection_query(0.0, 0.0, 1.0);
        assert!(q.contains(&Point::new(vec![3.0, 0.0, 2.5])));
        assert!(!q.contains(&Point::new(vec![3.0, 0.0, 1.5])));
        // Tangent discs intersect (closed condition).
        assert!(q.contains(&Point::new(vec![3.0, 0.0, 2.0])));
        // Negative radius excluded by the z ≥ 0 atom.
        assert!(!q.contains(&Point::new(vec![0.0, 0.0, -0.5])));
        assert_eq!(q.max_degree(), 2);
    }

    #[test]
    fn boolean_operators() {
        let left = SemiAlgebraicSet::nonneg(Polynomial::linear(&[1.0], 0.5)); // x ≥ 0.5
        let right = SemiAlgebraicSet::nonpos(Polynomial::linear(&[1.0], 0.8)); // x ≤ 0.8
        let band = SemiAlgebraicSet::And(vec![left.clone(), right.clone()]);
        assert!(band.contains(&Point::new(vec![0.6])));
        assert!(!band.contains(&Point::new(vec![0.9])));
        let either = SemiAlgebraicSet::Or(vec![left.clone(), right]);
        assert!(either.contains(&Point::new(vec![0.1]))); // satisfies x ≤ 0.8
        let neither = SemiAlgebraicSet::Not(Box::new(left));
        assert!(neither.contains(&Point::new(vec![0.1])));
        assert!(!neither.contains(&Point::new(vec![0.9])));
    }

    #[test]
    fn annulus_volume_via_qmc() {
        // Annulus between radii 1 and 2 inside [−2,2]²: area π(4−1) = 3π.
        let annulus = SemiAlgebraicSet::And(vec![
            SemiAlgebraicSet::nonneg(Polynomial::ball(&[0.0, 0.0], 2.0)),
            SemiAlgebraicSet::nonpos(Polynomial::ball(&[0.0, 0.0], 1.0)),
        ]);
        let rect = Rect::new(vec![-2.0, -2.0], vec![2.0, 2.0]);
        let v = annulus.intersection_volume(&rect, &VolumeEstimator::qmc(200_000));
        let exact = 3.0 * std::f64::consts::PI;
        assert!((v - exact).abs() < 0.05, "v = {v}, exact = {exact}");
    }
}
