//! Points in `R^d` with runtime-chosen dimensionality.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A point in `R^d`.
///
/// Dimensionality is chosen at runtime because the paper's experiments sweep
/// `d` from 2 to 10 (Section 4.4). Coordinates are stored densely.
#[derive(Clone, PartialEq)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from a coordinate vector.
    pub fn new(coords: Vec<f64>) -> Self {
        Self { coords }
    }

    /// Creates the origin of `R^d`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            coords: vec![0.0; dim],
        }
    }

    /// Creates a point with every coordinate equal to `v`.
    pub fn splat(dim: usize, v: f64) -> Self {
        Self {
            coords: vec![v; dim],
        }
    }

    /// The dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate slice.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Mutable coordinate slice.
    pub fn coords_mut(&mut self) -> &mut [f64] {
        &mut self.coords
    }

    /// Consumes the point and returns its coordinates.
    pub fn into_coords(self) -> Vec<f64> {
        self.coords
    }

    /// Euclidean (`ℓ2`) distance to another point.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to another point.
    pub fn dist_sq(&self, other: &Point) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.coords
            .iter()
            .zip(&other.coords)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Dot product with a coefficient vector.
    pub fn dot(&self, coeffs: &[f64]) -> f64 {
        assert_eq!(self.dim(), coeffs.len(), "dimension mismatch");
        self.coords.iter().zip(coeffs).map(|(a, b)| a * b).sum()
    }

    /// Projects the point onto a subset of its dimensions.
    pub fn project(&self, dims: &[usize]) -> Point {
        Point::new(dims.iter().map(|&i| self.coords[i]).collect())
    }

    /// Returns `true` if every coordinate lies in `[0, 1]`.
    pub fn in_unit_cube(&self) -> bool {
        self.coords.iter().all(|&c| (0.0..=1.0).contains(&c))
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Point::new(coords)
    }
}

impl From<&[f64]> for Point {
    fn from(coords: &[f64]) -> Self {
        Point::new(coords.to_vec())
    }
}

impl Index<usize> for Point {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl IndexMut<usize> for Point {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.coords[i]
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let p = Point::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p[1], 2.0);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn zeros_and_splat() {
        assert_eq!(Point::zeros(4).coords(), &[0.0; 4]);
        assert_eq!(Point::splat(2, 0.5).coords(), &[0.5, 0.5]);
    }

    #[test]
    fn distance() {
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![3.0, 4.0]);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn dot_product() {
        let p = Point::new(vec![1.0, 2.0]);
        assert_eq!(p.dot(&[3.0, -1.0]), 1.0);
    }

    #[test]
    fn projection() {
        let p = Point::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.project(&[0, 3]).coords(), &[1.0, 4.0]);
        assert_eq!(p.project(&[2]).coords(), &[3.0]);
    }

    #[test]
    fn unit_cube_membership() {
        assert!(Point::new(vec![0.0, 1.0, 0.5]).in_unit_cube());
        assert!(!Point::new(vec![0.0, 1.0001]).in_unit_cube());
        assert!(!Point::new(vec![-0.1]).in_unit_cube());
    }

    #[test]
    fn index_mut() {
        let mut p = Point::zeros(2);
        p[0] = 7.0;
        assert_eq!(p.coords(), &[7.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dist_dim_mismatch_panics() {
        let _ = Point::zeros(2).dist(&Point::zeros(3));
    }
}
