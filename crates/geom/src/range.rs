//! The unified query-range type and trait.
//!
//! The paper's learning framework is parameterized by a *range space*
//! `Σ = (X, R)`. This module gives all supported range families one
//! interface so that estimators (QuadHist, PtsHist, Isomer, QuickSel, …)
//! can be written generically, exactly as Section 3 does.

use crate::ball::Ball;
use crate::halfspace::Halfspace;
use crate::point::Point;
use crate::rect::Rect;
use crate::semialgebraic::SemiAlgebraicSet;
use crate::volume::VolumeEstimator;

/// Operations every query range must support.
pub trait RangeQuery {
    /// Dimensionality of the ambient space.
    fn dim(&self) -> usize;
    /// Membership test.
    fn contains(&self, p: &Point) -> bool;
    /// Smallest axis-aligned bounding box of the range clipped to `clip`
    /// (`None` when the intersection is empty). Used for rejection sampling
    /// (Appendix A.2).
    fn bounding_box(&self, clip: &Rect) -> Option<Rect>;
    /// `vol(rect ∩ range)` — the central quantity of Equation (6).
    fn intersection_volume(&self, rect: &Rect, est: &VolumeEstimator) -> f64;
}

/// Which range family a workload uses; determines the VC dimension and
/// hence the sample-complexity exponent of Theorem 2.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RangeClass {
    /// Orthogonal ranges (axis-aligned boxes): `VC-dim = 2d`.
    Rect,
    /// Halfspaces `a · x ≥ b`: `VC-dim = d + 1`.
    Halfspace,
    /// Euclidean balls: `VC-dim ≤ d + 2`.
    Ball,
    /// Semi-algebraic sets with `b` atoms of degree ≤ `Δ`: constant
    /// VC-dimension `λ(d, b, Δ)`.
    SemiAlgebraic,
}

impl RangeClass {
    /// The VC dimension of this range class in dimension `d`, per the known
    /// bounds quoted in Section 2.2 ([Kearns–Vazirani]).
    ///
    /// For `SemiAlgebraic` we return the standard `O(b·(d+Δ choose d)·log b)`
    /// style bound with `b = Δ = 2` as a representative constant; exact
    /// constants for semi-algebraic classes are formula-dependent.
    pub fn vc_dim(self, d: usize) -> usize {
        match self {
            RangeClass::Rect => 2 * d,
            RangeClass::Halfspace => d + 1,
            RangeClass::Ball => d + 2,
            RangeClass::SemiAlgebraic => 2 * (d + 2),
        }
    }

    /// The exponent `f(d)` in Theorem 2.1's training-set size
    /// `Õ(1/ε^{f(d)}) = Õ(1/ε^{λ+3})`.
    pub fn sample_exponent(self, d: usize) -> usize {
        self.vc_dim(d) + 3
    }
}

/// A query range: one of the paper's supported families.
#[derive(Clone, Debug)]
pub enum Range {
    /// Orthogonal range query (Section 2.2, `R_□`).
    Rect(Rect),
    /// Linear-inequality query (Section 2.2, `R_∖`).
    Halfspace(Halfspace),
    /// Distance-based query (Section 2.2, `R_○`).
    Ball(Ball),
    /// Semi-algebraic query (Section 2.2, `Γ_{d,b,Δ}`); the ambient
    /// dimension must be given explicitly since formulas do not carry it.
    SemiAlgebraic {
        /// The defining Boolean formula over polynomial inequalities.
        set: SemiAlgebraicSet,
        /// Ambient dimension `d`.
        dim: usize,
    },
}

impl Range {
    /// The family this range belongs to.
    pub fn class(&self) -> RangeClass {
        match self {
            Range::Rect(_) => RangeClass::Rect,
            Range::Halfspace(_) => RangeClass::Halfspace,
            Range::Ball(_) => RangeClass::Ball,
            Range::SemiAlgebraic { .. } => RangeClass::SemiAlgebraic,
        }
    }

    /// Volume of the range clipped to `clip` (`|R|` in Algorithm 2; the
    /// paper normalizes the data space to `[0,1]^d`, so ranges that extend
    /// beyond it only count their in-cube part).
    pub fn volume_in(&self, clip: &Rect, est: &VolumeEstimator) -> f64 {
        self.intersection_volume(clip, est)
    }

    /// Borrows the inner rectangle, if this is an orthogonal range.
    pub fn as_rect(&self) -> Option<&Rect> {
        match self {
            Range::Rect(r) => Some(r),
            _ => None,
        }
    }
}

impl RangeQuery for Range {
    fn dim(&self) -> usize {
        match self {
            Range::Rect(r) => r.dim(),
            Range::Halfspace(h) => h.dim(),
            Range::Ball(b) => b.dim(),
            Range::SemiAlgebraic { dim, .. } => *dim,
        }
    }

    fn contains(&self, p: &Point) -> bool {
        match self {
            Range::Rect(r) => r.contains(p),
            Range::Halfspace(h) => h.contains(p),
            Range::Ball(b) => b.contains(p),
            Range::SemiAlgebraic { set, .. } => set.contains(p),
        }
    }

    fn bounding_box(&self, clip: &Rect) -> Option<Rect> {
        match self {
            Range::Rect(r) => r.intersect(clip),
            Range::Halfspace(h) => h.bounding_box(clip),
            Range::Ball(b) => b.bounding_box(clip),
            // No generic closed form; the clip box is a valid (loose) bound.
            Range::SemiAlgebraic { .. } => Some(clip.clone()),
        }
    }

    fn intersection_volume(&self, rect: &Rect, est: &VolumeEstimator) -> f64 {
        match self {
            Range::Rect(r) => r.intersection_volume(rect),
            Range::Halfspace(h) => h.intersection_volume(rect),
            Range::Ball(b) => b.intersection_volume(rect, est),
            Range::SemiAlgebraic { set, .. } => set.intersection_volume(rect, est),
        }
    }
}

impl From<Rect> for Range {
    fn from(r: Rect) -> Self {
        Range::Rect(r)
    }
}

impl From<Halfspace> for Range {
    fn from(h: Halfspace) -> Self {
        Range::Halfspace(h)
    }
}

impl From<Ball> for Range {
    fn from(b: Ball) -> Self {
        Range::Ball(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_dims_match_paper() {
        assert_eq!(RangeClass::Rect.vc_dim(2), 4); // Figure 2
        assert_eq!(RangeClass::Rect.vc_dim(5), 10);
        assert_eq!(RangeClass::Halfspace.vc_dim(2), 3);
        assert_eq!(RangeClass::Ball.vc_dim(2), 4);
    }

    #[test]
    fn sample_exponents_match_theorem() {
        // Orthogonal: 2d + 3; halfspace: d + 4; ball: d + 5 (Section 2.2).
        assert_eq!(RangeClass::Rect.sample_exponent(3), 9);
        assert_eq!(RangeClass::Halfspace.sample_exponent(3), 7);
        assert_eq!(RangeClass::Ball.sample_exponent(3), 8);
    }

    #[test]
    fn dispatch_contains() {
        let unit = Rect::unit(2);
        let ranges: Vec<Range> = vec![
            Rect::new(vec![0.2, 0.2], vec![0.8, 0.8]).into(),
            Halfspace::new(vec![1.0, 0.0], 0.2).into(),
            Ball::new(Point::splat(2, 0.5), 0.4).into(),
        ];
        let inside = Point::splat(2, 0.5);
        for r in &ranges {
            assert!(r.contains(&inside));
            assert_eq!(r.dim(), 2);
            assert!(r.bounding_box(&unit).is_some());
        }
    }

    #[test]
    fn dispatch_volume_consistency() {
        let est = VolumeEstimator::default();
        let unit = Rect::unit(2);
        let r: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]).into();
        assert!((r.intersection_volume(&unit, &est) - 0.25).abs() < 1e-12);
        let h: Range = Halfspace::new(vec![1.0, 0.0], 0.5).into();
        assert!((h.intersection_volume(&unit, &est) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn semialgebraic_range_dispatch() {
        let set = SemiAlgebraicSet::disc_intersection_query(0.5, 0.5, 0.2);
        let r = Range::SemiAlgebraic { set, dim: 3 };
        assert_eq!(r.dim(), 3);
        assert_eq!(r.class(), RangeClass::SemiAlgebraic);
        // A tiny disc at the query center intersects it.
        assert!(r.contains(&Point::new(vec![0.5, 0.5, 0.01])));
        // bounding box falls back to the clip rect
        let clip = Rect::unit(3);
        assert_eq!(r.bounding_box(&clip).unwrap(), clip);
    }

    #[test]
    fn clipped_volume() {
        let est = VolumeEstimator::default();
        // Ball sticking out of the unit square: clipped volume < full volume.
        let b: Range = Ball::new(Point::new(vec![0.0, 0.5]), 0.3).into();
        let clipped = b.volume_in(&Rect::unit(2), &est);
        let full = std::f64::consts::PI * 0.09;
        assert!(clipped < full);
        assert!((clipped - full / 2.0).abs() < 1e-6);
    }
}
