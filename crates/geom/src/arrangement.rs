//! Arrangements of orthogonal ranges (Section 3.1, "Bucket design").
//!
//! The generic learning procedure of Section 3.1 buckets the data space by
//! the *arrangement* of the training ranges: the partition of `R^d` into
//! maximal regions lying in the same subset of ranges. For axis-aligned
//! rectangles the canonical constant-complexity refinement is the grid
//! induced by all facet coordinates: every grid cell lies in the same
//! subset of ranges, and there are `O(n^d)` cells — matching the paper's
//! `O(n^d)` bound for the decomposition.

use crate::rect::Rect;

/// The grid arrangement of a set of rectangles within a clip box.
#[derive(Clone, Debug)]
pub struct Arrangement {
    /// Sorted breakpoints per dimension (including the clip boundaries).
    breaks: Vec<Vec<f64>>,
    clip: Rect,
}

impl Arrangement {
    /// Number of cells in the arrangement.
    pub fn num_cells(&self) -> usize {
        self.breaks.iter().map(|b| b.len() - 1).product()
    }

    /// The clip box.
    pub fn clip(&self) -> &Rect {
        &self.clip
    }

    /// Iterates over all cells as rectangles, in row-major order.
    pub fn cells(&self) -> CellIter<'_> {
        CellIter {
            arr: self,
            idx: vec![0; self.breaks.len()],
            done: self.num_cells() == 0,
        }
    }

    /// Collects all cells into a vector.
    pub fn to_cells(&self) -> Vec<Rect> {
        self.cells().collect()
    }
}

/// Iterator over arrangement cells.
pub struct CellIter<'a> {
    arr: &'a Arrangement,
    idx: Vec<usize>,
    done: bool,
}

impl Iterator for CellIter<'_> {
    type Item = Rect;

    fn next(&mut self) -> Option<Rect> {
        if self.done {
            return None;
        }
        let d = self.idx.len();
        let lo: Vec<f64> = (0..d).map(|i| self.arr.breaks[i][self.idx[i]]).collect();
        let hi: Vec<f64> = (0..d)
            .map(|i| self.arr.breaks[i][self.idx[i] + 1])
            .collect();
        // advance multi-index
        let mut i = d;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.idx[i] += 1;
            if self.idx[i] < self.arr.breaks[i].len() - 1 {
                break;
            }
            self.idx[i] = 0;
            if i == 0 {
                self.done = true;
                break;
            }
        }
        Some(Rect::new(lo, hi))
    }
}

/// Builds the grid arrangement of `rects` clipped to `clip`.
///
/// Every returned cell lies entirely inside or entirely outside each input
/// rectangle (up to shared boundaries), which is exactly the property the
/// weight-estimation phase needs: `vol(cell ∩ R)` is either 0 or the full
/// cell volume, so the learned histogram can express the loss-minimizing
/// distribution (Lemma 3.1).
pub fn grid_arrangement(rects: &[Rect], clip: &Rect) -> Arrangement {
    let d = clip.dim();
    let mut breaks: Vec<Vec<f64>> = (0..d)
        .map(|i| vec![clip.lo()[i], clip.hi()[i]])
        .collect();
    for r in rects {
        assert_eq!(r.dim(), d, "dimension mismatch");
        #[allow(clippy::needless_range_loop)] // indexed form is clearer here
        for i in 0..d {
            for v in [r.lo()[i], r.hi()[i]] {
                if v > clip.lo()[i] && v < clip.hi()[i] {
                    breaks[i].push(v);
                }
            }
        }
    }
    for b in &mut breaks {
        b.sort_by(|a, c| a.total_cmp(c));
        b.dedup_by(|a, c| (*a - *c).abs() < crate::EPS);
    }
    Arrangement {
        breaks,
        clip: clip.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_single_cell() {
        let a = grid_arrangement(&[], &Rect::unit(2));
        assert_eq!(a.num_cells(), 1);
        assert_eq!(a.to_cells()[0], Rect::unit(2));
    }

    #[test]
    fn single_rect_produces_nine_cells_2d() {
        // One interior rectangle splits each axis into 3 intervals → 9 cells.
        let r = Rect::new(vec![0.25, 0.25], vec![0.75, 0.75]);
        let a = grid_arrangement(std::slice::from_ref(&r), &Rect::unit(2));
        assert_eq!(a.num_cells(), 9);
        let cells = a.to_cells();
        assert_eq!(cells.len(), 9);
        // cells tile the clip box
        let total: f64 = cells.iter().map(Rect::volume).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cells_are_range_homogeneous() {
        let rects = vec![
            Rect::new(vec![0.1, 0.2], vec![0.6, 0.7]),
            Rect::new(vec![0.4, 0.0], vec![0.9, 0.5]),
            Rect::new(vec![0.0, 0.5], vec![0.3, 1.0]),
        ];
        let a = grid_arrangement(&rects, &Rect::unit(2));
        for cell in a.cells() {
            for r in &rects {
                let iv = cell.intersection_volume(r);
                let cv = cell.volume();
                // each cell is entirely in or out of each rectangle
                assert!(
                    iv < 1e-12 || (iv - cv).abs() < 1e-12,
                    "cell {cell:?} partially overlaps {r:?}: {iv} of {cv}"
                );
            }
        }
    }

    #[test]
    fn boundary_coords_outside_clip_ignored() {
        let r = Rect::new(vec![-1.0, 0.5], vec![2.0, 0.6]);
        let a = grid_arrangement(std::slice::from_ref(&r), &Rect::unit(2));
        // only the y-coords 0.5, 0.6 fall strictly inside → 1 × 3 = 3 cells
        assert_eq!(a.num_cells(), 3);
    }

    #[test]
    fn cell_count_matches_breakpoint_product() {
        let rects = vec![
            Rect::new(vec![0.1, 0.1, 0.1], vec![0.5, 0.5, 0.5]),
            Rect::new(vec![0.3, 0.3, 0.3], vec![0.9, 0.9, 0.9]),
        ];
        let a = grid_arrangement(&rects, &Rect::unit(3));
        // 4 interior breakpoints per axis → 5 intervals per axis → 125 cells
        assert_eq!(a.num_cells(), 125);
        assert_eq!(a.cells().count(), 125);
    }

    #[test]
    fn duplicate_coordinates_deduped() {
        let rects = vec![
            Rect::new(vec![0.5], vec![0.7]),
            Rect::new(vec![0.5], vec![0.9]),
        ];
        let a = grid_arrangement(&rects, &Rect::unit(1));
        // breakpoints {0, 0.5, 0.7, 0.9, 1} → 4 cells
        assert_eq!(a.num_cells(), 4);
    }
}
