//! Distance-based (`ℓ2`-ball) queries: `{x : ‖x − a‖₂ ≤ r}`.
//!
//! Section 2.2 of the paper: the range space of Euclidean balls has
//! VC-dimension at most `d + 2`, hence its selectivity functions are
//! learnable with `Õ(1/ε^{d+5})` training queries.

use crate::error::{first_non_finite, GeomError};
use crate::point::Point;
use crate::rect::Rect;
use crate::volume::{adaptive_simpson, unit_ball_volume, VolumeEstimator};
use crate::EPS;

/// The closed Euclidean ball `{x : ‖x − center‖₂ ≤ radius}`.
#[derive(Clone, PartialEq, Debug)]
pub struct Ball {
    center: Point,
    radius: f64,
}

impl Ball {
    /// Creates a ball from its center and radius.
    ///
    /// # Panics
    /// Panics on a negative radius.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(radius >= 0.0, "negative radius {radius}");
        Self { center, radius }
    }

    /// Validating constructor for untrusted input: rejects non-finite
    /// centers and negative/NaN radii with a typed [`GeomError`] instead of
    /// panicking.
    pub fn try_new(center: Point, radius: f64) -> Result<Self, GeomError> {
        if let Some((index, value)) = first_non_finite(center.coords()) {
            return Err(GeomError::NonFinite {
                what: "Ball center",
                index,
                value,
            });
        }
        if !radius.is_finite() || radius < 0.0 {
            return Err(GeomError::InvalidRadius(radius));
        }
        Ok(Self { center, radius })
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.center.dim()
    }

    /// Center point.
    pub fn center(&self) -> &Point {
        &self.center
    }

    /// Radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Membership test (closed ball).
    pub fn contains(&self, p: &Point) -> bool {
        self.center.dist_sq(p) <= self.radius * self.radius + EPS
    }

    /// Volume of the full ball, `V_d · r^d`.
    pub fn volume(&self) -> f64 {
        unit_ball_volume(self.dim()) * self.radius.powi(self.dim() as i32)
    }

    /// Smallest axis-aligned bounding box `center ± radius`, clipped to
    /// `clip`; `None` when the boxes are disjoint.
    pub fn bounding_box(&self, clip: &Rect) -> Option<Rect> {
        let lo: Vec<f64> = self
            .center
            .coords()
            .iter()
            .map(|&c| c - self.radius)
            .collect();
        let hi: Vec<f64> = self
            .center
            .coords()
            .iter()
            .map(|&c| c + self.radius)
            .collect();
        Rect::new(lo, hi).intersect(clip)
    }

    /// Volume of `rect ∩ ball`.
    ///
    /// * `d = 1`: exact interval overlap.
    /// * `d = 2`: deterministic adaptive-Simpson integration of the clipped
    ///   chord length (accurate to ~1e-9).
    /// * `d ≥ 3`: deterministic Halton quasi-Monte-Carlo via `est`.
    pub fn intersection_volume(&self, rect: &Rect, est: &VolumeEstimator) -> f64 {
        assert_eq!(self.dim(), rect.dim(), "dimension mismatch");
        // restrict integration to the part of `rect` inside the ball's bbox
        let Some(bbox) = self.bounding_box(rect) else {
            return 0.0;
        };
        if bbox.volume() <= 0.0 && self.dim() > 1 {
            return 0.0;
        }
        match self.dim() {
            1 => {
                let l = (self.center[0] - self.radius).max(rect.lo()[0]);
                let h = (self.center[0] + self.radius).min(rect.hi()[0]);
                (h - l).max(0.0)
            }
            2 => {
                let (cx, cy, r) = (self.center[0], self.center[1], self.radius);
                let (ylo, yhi) = (bbox.lo()[1], bbox.hi()[1]);
                let chord = move |x: f64| {
                    let dx = x - cx;
                    let g2 = r * r - dx * dx;
                    if g2 <= 0.0 {
                        return 0.0;
                    }
                    let g = g2.sqrt();
                    ((cy + g).min(yhi) - (cy - g).max(ylo)).max(0.0)
                };
                adaptive_simpson(&chord, bbox.lo()[0], bbox.hi()[0], 1e-10)
            }
            _ => est.volume_in_rect(&bbox, |p| self.contains(p)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn membership() {
        let b = Ball::new(Point::new(vec![0.5, 0.5]), 0.25);
        assert!(b.contains(&Point::new(vec![0.5, 0.5])));
        assert!(b.contains(&Point::new(vec![0.75, 0.5]))); // boundary
        assert!(!b.contains(&Point::new(vec![0.76, 0.5])));
    }

    #[test]
    fn full_ball_volume() {
        let b = Ball::new(Point::zeros(2), 2.0);
        assert!((b.volume() - 4.0 * PI).abs() < 1e-12);
        let b3 = Ball::new(Point::zeros(3), 1.0);
        assert!((b3.volume() - 4.0 / 3.0 * PI).abs() < 1e-12);
    }

    #[test]
    fn bbox_clipped() {
        let b = Ball::new(Point::new(vec![0.1, 0.9]), 0.3);
        let bb = b.bounding_box(&Rect::unit(2)).unwrap();
        assert_eq!(bb.lo()[0], 0.0);
        assert!((bb.lo()[1] - 0.6).abs() < 1e-12);
        assert!((bb.hi()[0] - 0.4).abs() < 1e-12);
        assert_eq!(bb.hi()[1], 1.0);
    }

    #[test]
    fn bbox_disjoint() {
        let b = Ball::new(Point::new(vec![5.0, 5.0]), 0.5);
        assert!(b.bounding_box(&Rect::unit(2)).is_none());
    }

    #[test]
    fn interval_overlap_1d() {
        let b = Ball::new(Point::new(vec![0.5]), 0.3); // [0.2, 0.8]
        let r = Rect::new(vec![0.5], vec![2.0]);
        let v = b.intersection_volume(&r, &VolumeEstimator::default());
        assert!((v - 0.3).abs() < 1e-12);
    }

    #[test]
    fn circle_inside_rect_2d() {
        let b = Ball::new(Point::new(vec![0.5, 0.5]), 0.25);
        let v = b.intersection_volume(&Rect::unit(2), &VolumeEstimator::default());
        assert!((v - PI * 0.0625).abs() < 1e-7, "v = {v}");
    }

    #[test]
    fn half_circle_2d() {
        // Circle centered on the box edge: half the disc is inside.
        let b = Ball::new(Point::new(vec![0.0, 0.5]), 0.25);
        let v = b.intersection_volume(&Rect::unit(2), &VolumeEstimator::default());
        assert!((v - PI * 0.0625 / 2.0).abs() < 1e-7, "v = {v}");
    }

    #[test]
    fn quarter_circle_2d() {
        let b = Ball::new(Point::new(vec![0.0, 0.0]), 0.5);
        let v = b.intersection_volume(&Rect::unit(2), &VolumeEstimator::default());
        assert!((v - PI * 0.25 / 4.0).abs() < 1e-7, "v = {v}");
    }

    #[test]
    fn rect_inside_circle_2d() {
        // Huge circle: intersection is the whole rectangle.
        let b = Ball::new(Point::new(vec![0.5, 0.5]), 10.0);
        let v = b.intersection_volume(&Rect::unit(2), &VolumeEstimator::default());
        assert!((v - 1.0).abs() < 1e-9, "v = {v}");
    }

    #[test]
    fn ball_box_3d_qmc() {
        // Ball fully inside the box: QMC should recover its exact volume.
        let b = Ball::new(Point::splat(3, 0.5), 0.3);
        let est = VolumeEstimator::qmc(100_000);
        let v = b.intersection_volume(&Rect::unit(3), &est);
        let exact = 4.0 / 3.0 * PI * 0.3f64.powi(3);
        assert!((v - exact).abs() < 2e-3, "v = {v}, exact = {exact}");
    }

    #[test]
    fn octant_ball_3d_qmc() {
        // Ball centered at the corner: exactly 1/8 inside.
        let b = Ball::new(Point::zeros(3), 0.6);
        let est = VolumeEstimator::qmc(100_000);
        let v = b.intersection_volume(&Rect::unit(3), &est);
        let exact = 4.0 / 3.0 * PI * 0.6f64.powi(3) / 8.0;
        assert!((v - exact).abs() < 3e-3, "v = {v}, exact = {exact}");
    }

    #[test]
    fn disjoint_intersection_volume_is_zero() {
        let b = Ball::new(Point::new(vec![3.0, 3.0]), 0.5);
        assert_eq!(
            b.intersection_volume(&Rect::unit(2), &VolumeEstimator::default()),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "negative radius")]
    fn negative_radius_panics() {
        let _ = Ball::new(Point::zeros(2), -1.0);
    }
}
