//! Geometry substrate for learned selectivity estimation.
//!
//! This crate implements the geometric machinery required by
//! *"Selectivity Functions of Range Queries are Learnable"* (SIGMOD 2022):
//!
//! * [`Point`] — points in `R^d` with runtime dimensionality;
//! * [`Rect`] — axis-aligned hyper-rectangles (orthogonal range queries,
//!   histogram buckets, quadtree cells);
//! * [`Halfspace`] — linear-inequality queries `a · x ≥ b`;
//! * [`Ball`] — distance-based (`ℓ2`-ball) queries;
//! * [`SemiAlgebraicSet`] — Boolean combinations of polynomial inequalities
//!   (Section 2.2 of the paper), including the disc-intersection lifting;
//! * [`Range`] — the closed query-range enum implementing [`RangeQuery`];
//! * exact and Monte-Carlo **intersection volumes** (`vol(B ∩ R)`), the
//!   central quantity of the paper's Equation (6);
//! * **smallest bounding boxes** and **rejection sampling** from query
//!   interiors (Appendix A.2), used by PtsHist;
//! * the **arrangement** decomposition of a set of rectangles (Section 3.1).
//!
//! All sampling is seeded and deterministic; all exact-volume routines are
//! closed-form (rectangles, halfspaces via the Irwin–Hall formula, 1-D/2-D
//! balls) with deterministic quadrature / stratified Monte-Carlo fallbacks
//! in higher dimensions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The panic-free gate: unwrap/expect are banned outside test code
// (clippy.toml exempts #[cfg(test)]); CI runs clippy with -D warnings.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arrangement;
pub mod ball;
pub mod error;
pub mod halfspace;
pub mod kdtree;
pub mod point;
pub mod range;
pub mod rect;
pub mod sampling;
pub mod semialgebraic;
pub mod special;
pub mod volume;

pub use arrangement::{grid_arrangement, Arrangement};
pub use ball::Ball;
pub use error::GeomError;
pub use halfspace::Halfspace;
pub use kdtree::{KdNodeView, KdTree};
pub use point::Point;
pub use range::{Range, RangeClass, RangeQuery};
pub use rect::Rect;
pub use sampling::{sample_in_range, sample_in_rect, RejectionSampler};
pub use semialgebraic::{Polynomial, SemiAlgebraicSet};
pub use special::{erf, erfc, inv_std_normal_cdf, normal_mass, std_normal_cdf};
pub use volume::{VolumeEstimator, VolumeMethod};

/// Numerical tolerance used throughout geometric predicates.
pub const EPS: f64 = 1e-12;
