//! Typed errors for the geometry substrate.
//!
//! Every fallible public constructor and routine in this crate reports
//! failures through [`GeomError`] instead of panicking, so that untrusted
//! query feedback (NaN coordinates, inverted corners, zero normals) degrades
//! into a recoverable error at the pipeline boundary. The workspace-wide
//! `SelearnError` in `selearn-core` wraps this type.

use std::error::Error;
use std::fmt;

/// Errors produced by geometric constructors and routines.
#[derive(Clone, Debug, PartialEq)]
pub enum GeomError {
    /// A coordinate or parameter was NaN or infinite.
    NonFinite {
        /// Which object or argument carried the value.
        what: &'static str,
        /// Index of the offending component (0 for scalars).
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Two objects that must share a dimension did not.
    DimensionMismatch {
        /// The operation that failed.
        what: &'static str,
        /// Expected dimensionality.
        expected: usize,
        /// Actual dimensionality.
        got: usize,
    },
    /// A rectangle with `lo[i] > hi[i]`.
    InvertedCorners {
        /// Dimension where the corners are inverted.
        index: usize,
        /// Lower corner coordinate.
        lo: f64,
        /// Upper corner coordinate.
        hi: f64,
    },
    /// A halfspace whose normal vector is (numerically) zero.
    ZeroNormal,
    /// A ball with a negative (or NaN) radius.
    InvalidRadius(f64),
    /// A probability/quantile argument outside its domain.
    OutOfDomain {
        /// The function rejecting the argument.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::NonFinite { what, index, value } => {
                write!(f, "non-finite {what}: component {index} is {value}")
            }
            GeomError::DimensionMismatch {
                what,
                expected,
                got,
            } => write!(f, "dimension mismatch in {what}: expected {expected}, got {got}"),
            GeomError::InvertedCorners { index, lo, hi } => {
                write!(f, "invalid rectangle: lo[{index}] = {lo} > hi[{index}] = {hi}")
            }
            GeomError::ZeroNormal => write!(f, "halfspace normal must be nonzero"),
            GeomError::InvalidRadius(r) => write!(f, "invalid ball radius {r}"),
            GeomError::OutOfDomain { what, value } => {
                write!(f, "argument {value} outside the domain of {what}")
            }
        }
    }
}

impl Error for GeomError {}

/// Returns the index and value of the first non-finite entry, if any.
pub(crate) fn first_non_finite(values: &[f64]) -> Option<(usize, f64)> {
    values
        .iter()
        .enumerate()
        .find(|(_, v)| !v.is_finite())
        .map(|(i, &v)| (i, v))
}
