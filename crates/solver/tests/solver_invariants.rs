//! Property-based invariants for the weight solvers.
//!
//! These are the contracts the estimation pipeline (Equation 8) leans on:
//! the simplex projection really lands on the simplex and is idempotent,
//! both simplex-constrained least-squares solvers return distributions,
//! and isotonic regression returns the monotone mean-preserving projection.

use proptest::prelude::*;
use selearn_solver::{
    fista_simplex_ls, isotonic_regression, nnls_simplex, simplex_projection, DenseMatrix,
    FistaOptions, NnlsOptions,
};

const MAX_ROWS: usize = 12;
const MAX_COLS: usize = 8;

/// Builds an `r × c` design matrix from a fixed-size entry pool.
fn matrix_from(entries: &[f64], r: usize, c: usize) -> DenseMatrix {
    DenseMatrix::from_vec(r, c, entries[..r * c].to_vec())
}

fn assert_on_simplex(w: &[f64], cols: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(w.len(), cols);
    prop_assert!(w.iter().all(|&x| x >= 0.0), "negative weight in {w:?}");
    let total: f64 = w.iter().sum();
    prop_assert!((total - 1.0).abs() < 1e-8, "sum = {total}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simplex_projection_is_on_simplex_and_idempotent(
        v in proptest::collection::vec(-20.0f64..20.0, 1..40)
    ) {
        let mut w = v;
        simplex_projection(&mut w);
        prop_assert!(w.iter().all(|&x| x >= 0.0));
        let s: f64 = w.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-8, "sum = {s}");
        // idempotency: projecting a point already on the simplex is a no-op
        let mut again = w.clone();
        simplex_projection(&mut again);
        for (a, b) in again.iter().zip(&w) {
            prop_assert!((a - b).abs() < 1e-9, "not idempotent: {a} vs {b}");
        }
    }

    #[test]
    fn fista_output_stays_on_simplex(
        entries in proptest::collection::vec(0.0f64..1.0, MAX_ROWS * MAX_COLS),
        s_pool in proptest::collection::vec(0.0f64..1.0, MAX_ROWS),
        r in 1usize..MAX_ROWS,
        c in 1usize..MAX_COLS,
    ) {
        let a = matrix_from(&entries, r, c);
        let out = fista_simplex_ls(&a, &s_pool[..r], &FistaOptions::default()).unwrap();
        assert_on_simplex(&out.weights, c)?;
        prop_assert!(out.loss >= 0.0);
    }

    #[test]
    fn nnls_simplex_output_stays_on_simplex(
        entries in proptest::collection::vec(0.0f64..1.0, MAX_ROWS * MAX_COLS),
        s_pool in proptest::collection::vec(0.0f64..1.0, MAX_ROWS),
        r in 1usize..MAX_ROWS,
        c in 1usize..MAX_COLS,
    ) {
        let a = matrix_from(&entries, r, c);
        let w = nnls_simplex(&a, &s_pool[..r], &NnlsOptions::default()).unwrap();
        assert_on_simplex(&w, c)?;
    }

    #[test]
    fn isotonic_regression_monotone_and_mean_preserving(
        y in proptest::collection::vec(-10.0f64..10.0, 1..50),
        w_pool in proptest::collection::vec(0.1f64..5.0, 50),
    ) {
        let w = &w_pool[..y.len()];
        let g = isotonic_regression(&y, w).unwrap();
        prop_assert_eq!(g.len(), y.len());
        for pair in g.windows(2) {
            prop_assert!(pair[0] <= pair[1] + 1e-9, "not monotone: {pair:?}");
        }
        // the projection preserves the weighted mean
        let wy: f64 = y.iter().zip(w).map(|(a, b)| a * b).sum();
        let wg: f64 = g.iter().zip(w).map(|(a, b)| a * b).sum();
        prop_assert!((wy - wg).abs() < 1e-8, "weighted mean moved: {wy} vs {wg}");
    }
}
