//! FISTA — accelerated projected gradient descent on the simplex.
//!
//! Default solver for the weight-estimation QP (Equation 8):
//! `min ‖Aw − s‖²` over the probability simplex. Each iteration costs two
//! matrix-vector products, so it scales to the paper's largest instances
//! (2000 training queries × 8000 buckets) where an active-set method would
//! struggle. Uses the Beck–Teboulle momentum schedule with adaptive restart
//! (O'Donoghue–Candès) for robustness.

use crate::error::{check_finite, check_len, SolverError};
use crate::matrix::DenseMatrix;
use crate::report::SolveReport;
use crate::simplex_proj::simplex_projection;

/// FISTA configuration.
#[derive(Clone, Debug)]
pub struct FistaOptions {
    /// Maximum number of iterations.
    pub max_iters: usize,
    /// Stop when the squared-loss improvement over an iteration falls below
    /// this value (relative to the current loss + 1e-12).
    pub rel_tol: f64,
    /// Power-iteration count used to estimate the gradient Lipschitz
    /// constant `L = λ_max(AᵀA)`.
    pub power_iters: usize,
}

impl Default for FistaOptions {
    fn default() -> Self {
        // 700 accelerated iterations reach ~1e-6 relative accuracy on the
        // well-scaled design matrices of Equation (6) — far below the
        // statistical error of the estimators — while keeping training of
        // the largest paper configurations (thousands of buckets) fast.
        Self {
            max_iters: 700,
            rel_tol: 1e-10,
            power_iters: 30,
        }
    }
}

/// FISTA output.
#[derive(Clone, Debug)]
pub struct FistaResult {
    /// The weight vector on the simplex.
    pub weights: Vec<f64>,
    /// Final squared loss `‖Aw − s‖²`.
    pub loss: f64,
    /// Iterations actually performed.
    pub iters: usize,
    /// `true` when the relative-improvement criterion fired; `false` when
    /// `max_iters` was exhausted and the last iterate was returned as-is.
    pub converged: bool,
    /// The `max_iters` budget the solve ran with (for the report).
    pub max_iters: usize,
}

impl FistaResult {
    /// This solve's outcome as a [`SolveReport`] (`final_residual` is the
    /// LS residual norm `‖Aw − s‖`, the square root of [`Self::loss`]).
    pub fn report(&self) -> SolveReport {
        SolveReport {
            solver: "fista",
            iters: self.iters,
            max_iters: self.max_iters,
            converged: self.converged,
            final_residual: self.loss.max(0.0).sqrt(),
        }
    }
}

/// Minimizes `‖Aw − s‖²` over the probability simplex.
///
/// Returns a typed [`SolverError`] when `a` has zero columns, the row
/// count differs from `s`, or any input entry is NaN/infinite.
pub fn fista_simplex_ls(
    a: &DenseMatrix,
    s: &[f64],
    opts: &FistaOptions,
) -> Result<FistaResult, SolverError> {
    if a.cols() == 0 {
        return Err(SolverError::EmptyProblem { solver: "fista" });
    }
    check_len("fista", "labels", a.rows(), s.len())?;
    if let Some((index, value)) = a.first_non_finite() {
        return Err(SolverError::NonFiniteInput {
            solver: "fista",
            what: "design matrix",
            index,
            value,
        });
    }
    check_finite("fista", "labels", s)?;
    if !opts.rel_tol.is_finite() || opts.rel_tol < 0.0 {
        return Err(SolverError::InvalidOptions {
            solver: "fista",
            what: "rel_tol",
        });
    }
    let m = a.cols();

    // Lipschitz constant of ∇f(w) = 2Aᵀ(Aw − s) is 2 λ_max(AᵀA).
    let lambda = a.gram_spectral_norm(opts.power_iters);
    let lip = (2.0 * lambda).max(1e-12);
    let step = 1.0 / lip;

    // Start from the uniform distribution.
    let mut w = vec![1.0 / m as f64; m];
    let mut y = w.clone();
    let mut t = 1.0f64;
    let mut loss_prev = a.residual_sq(&w, s);
    let mut iters = 0;
    let mut converged = false;

    for k in 0..opts.max_iters {
        iters = k + 1;
        if selearn_obs::enabled() {
            selearn_obs::solver_iteration("fista", k, loss_prev.max(0.0).sqrt(), step);
        }
        // gradient step at the extrapolated point y
        let r = a.residual(&y, s);
        let g = a.matvec_t(&r); // = ∇f(y) / 2
        let mut w_next: Vec<f64> = y
            .iter()
            .zip(&g)
            .map(|(&yi, &gi)| yi - 2.0 * step * gi)
            .collect();
        simplex_projection(&mut w_next);

        let loss = a.residual_sq(&w_next, s);
        // adaptive restart: if the objective went up, drop the momentum
        if loss > loss_prev {
            t = 1.0;
            y = w.clone();
            // re-take a plain projected-gradient step from w
            let r = a.residual(&w, s);
            let g = a.matvec_t(&r);
            let mut w_pg: Vec<f64> = w
                .iter()
                .zip(&g)
                .map(|(&wi, &gi)| wi - 2.0 * step * gi)
                .collect();
            simplex_projection(&mut w_pg);
            let loss_pg = a.residual_sq(&w_pg, s);
            if loss_pg <= loss_prev {
                w = w_pg;
                y = w.clone();
                if loss_prev - loss_pg < opts.rel_tol * (loss_prev + 1e-12) {
                    loss_prev = loss_pg;
                    converged = true;
                    break;
                }
                loss_prev = loss_pg;
            }
            continue;
        }

        let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
        let beta = (t - 1.0) / t_next;
        y = w_next
            .iter()
            .zip(&w)
            .map(|(&wn, &wo)| wn + beta * (wn - wo))
            .collect();
        let improved = loss_prev - loss;
        w = w_next;
        t = t_next;
        if improved >= 0.0 && improved < opts.rel_tol * (loss_prev + 1e-12) {
            loss_prev = loss;
            converged = true;
            break;
        }
        loss_prev = loss;
    }

    let result = FistaResult {
        loss: loss_prev,
        weights: w,
        iters,
        converged,
        max_iters: opts.max_iters,
    };
    if selearn_obs::sink_installed() {
        result.report().emit();
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on_simplex(v: &[f64]) -> bool {
        (v.iter().sum::<f64>() - 1.0).abs() < 1e-7 && v.iter().all(|&x| x >= -1e-12)
    }

    #[test]
    fn recovers_exact_simplex_solution() {
        // A = I, s on the simplex ⇒ w = s exactly, loss 0.
        let a = DenseMatrix::identity(3);
        let s = vec![0.2, 0.3, 0.5];
        let r = fista_simplex_ls(&a, &s, &FistaOptions::default()).unwrap();
        assert!(on_simplex(&r.weights));
        assert!(r.loss < 1e-12, "loss = {}", r.loss);
        for (w, t) in r.weights.iter().zip(&s) {
            assert!((w - t).abs() < 1e-6);
        }
    }

    #[test]
    fn infeasible_target_projects() {
        // s outside the simplex image: best fit is the simplex projection.
        let a = DenseMatrix::identity(2);
        let s = vec![2.0, 0.0];
        let r = fista_simplex_ls(&a, &s, &FistaOptions::default()).unwrap();
        assert!(on_simplex(&r.weights));
        // projection of (2, 0) onto the simplex is (1, 0)
        assert!((r.weights[0] - 1.0).abs() < 1e-6, "{:?}", r.weights);
    }

    #[test]
    fn overdetermined_consistent_system() {
        // Two buckets, three consistent observations: w = (0.25, 0.75).
        let a = DenseMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ]);
        let s = vec![0.25, 0.75, 1.0];
        let r = fista_simplex_ls(&a, &s, &FistaOptions::default()).unwrap();
        assert!(r.loss < 1e-10, "loss = {}", r.loss);
        assert!((r.weights[0] - 0.25).abs() < 1e-5);
        assert!((r.weights[1] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn matches_brute_force_on_2d() {
        // Dense 1-D sweep over the 1-simplex validates global optimality.
        let a = DenseMatrix::from_rows(&[vec![0.8, 0.1], vec![0.3, 0.9], vec![0.5, 0.5]]);
        let s = vec![0.4, 0.6, 0.55];
        let r = fista_simplex_ls(&a, &s, &FistaOptions::default()).unwrap();
        let mut best = f64::INFINITY;
        for i in 0..=10_000 {
            let w0 = i as f64 / 10_000.0;
            let w = [w0, 1.0 - w0];
            best = best.min(a.residual_sq(&w, &s));
        }
        assert!(r.loss <= best + 1e-8, "fista {} vs brute {}", r.loss, best);
    }

    #[test]
    fn zero_matrix_stays_feasible() {
        let a = DenseMatrix::zeros(2, 3);
        let s = vec![0.5, 0.5];
        let r = fista_simplex_ls(&a, &s, &FistaOptions::default()).unwrap();
        assert!(on_simplex(&r.weights));
        assert!((r.loss - 0.5).abs() < 1e-12); // residual is −s regardless
    }

    #[test]
    fn respects_iteration_budget() {
        let a = DenseMatrix::identity(4);
        let s = vec![0.25; 4];
        let opts = FistaOptions {
            max_iters: 3,
            ..Default::default()
        };
        let r = fista_simplex_ls(&a, &s, &opts).unwrap();
        assert!(r.iters <= 3);
    }

    #[test]
    fn budget_exhaustion_is_reported_not_silent() {
        // A non-trivial system with a 1-iteration budget cannot meet the
        // rel_tol criterion; the report must say so instead of pretending.
        let a = DenseMatrix::from_rows(&[vec![0.8, 0.1], vec![0.3, 0.9], vec![0.5, 0.5]]);
        let s = vec![0.4, 0.6, 0.55];
        let opts = FistaOptions {
            max_iters: 1,
            ..Default::default()
        };
        let r = fista_simplex_ls(&a, &s, &opts).unwrap();
        assert!(!r.converged);
        let rep = r.report();
        assert_eq!(rep.solver, "fista");
        assert_eq!(rep.max_iters, 1);
        assert!(!rep.converged);
        assert!(rep.final_residual.is_finite());

        // ...and a generous budget converges and reports it.
        let r = fista_simplex_ls(&a, &s, &FistaOptions::default()).unwrap();
        assert!(r.converged);
        assert!(r.iters < r.max_iters);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn prop_feasible_and_no_worse_than_uniform(
            rows in proptest::collection::vec(
                proptest::collection::vec(0.0f64..1.0, 4), 1..12),
            s in proptest::collection::vec(0.0f64..1.0, 12),
        ) {
            let n = rows.len();
            let a = DenseMatrix::from_rows(&rows);
            let s = &s[..n];
            let r = fista_simplex_ls(&a, s, &FistaOptions::default()).unwrap();
            proptest::prop_assert!(on_simplex(&r.weights));
            let uniform = vec![0.25; 4];
            proptest::prop_assert!(r.loss <= a.residual_sq(&uniform, s) + 1e-8);
        }
    }
}
