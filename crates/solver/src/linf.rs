//! `L∞`-loss weight fitting (Section 4.6).
//!
//! The paper compares training with the `L2` objective of Equation (8)
//! against the `L∞` objective `min max_i |s_D(R_i) − s_i|`. Over the
//! probability simplex this is a linear program; we provide
//!
//! * [`linf_fit_exact`] — the LP formulation solved with the dense simplex
//!   method (exact, for small/medium instances), and
//! * [`linf_fit_smoothed`] — a scalable smoothed variant minimizing the
//!   log-sum-exp soft maximum with projected gradient descent.

use crate::error::{check_finite, check_len, SolverError};
use crate::linprog::{linprog, Constraint, ConstraintOp, LpStatus};
use crate::matrix::DenseMatrix;
use crate::report::SolveReport;
use crate::simplex_proj::simplex_projection;

/// Options for the smoothed solver.
#[derive(Clone, Debug)]
pub struct LinfOptions {
    /// Smoothing temperature: larger is closer to the true max.
    pub beta: f64,
    /// Maximum gradient iterations.
    pub max_iters: usize,
    /// Step size decay base.
    pub step0: f64,
}

impl Default for LinfOptions {
    fn default() -> Self {
        Self {
            beta: 200.0,
            max_iters: 3000,
            step0: 0.5,
        }
    }
}

/// `L∞` error of a weight vector: `max_i |(Aw)_i − s_i|`.
pub fn linf_error(a: &DenseMatrix, w: &[f64], s: &[f64]) -> f64 {
    a.residual(w, s)
        .iter()
        .map(|r| r.abs())
        .fold(0.0, f64::max)
}

/// Exactly minimizes `max_i |(Aw)_i − s_i|` over the probability simplex
/// via LP: variables `(w, z)`, minimize `z` s.t. `±(Aw − s) ≤ z`, `Σw = 1`.
///
/// Returns a typed [`SolverError`] on invalid input, or
/// [`SolverError::LpNotOptimal`] if the inner LP fails to find an optimum
/// (it should not on well-formed inputs — the feasible set is nonempty and
/// bounded).
pub fn linf_fit_exact(a: &DenseMatrix, s: &[f64]) -> Result<Vec<f64>, SolverError> {
    validate_linf("linf-exact", a, s)?;
    let n = a.rows();
    let m = a.cols();
    let mut cons = Vec::with_capacity(2 * n + 1);
    #[allow(clippy::needless_range_loop)] // indexed form is clearer here
    for i in 0..n {
        // (Aw)_i − z ≤ s_i
        let mut row = a.row(i).to_vec();
        row.push(-1.0);
        cons.push(Constraint::new(row, ConstraintOp::Le, s[i]));
        // −(Aw)_i − z ≤ −s_i
        let mut row = a.row(i).iter().map(|v| -v).collect::<Vec<_>>();
        row.push(-1.0);
        cons.push(Constraint::new(row, ConstraintOp::Le, -s[i]));
    }
    let mut sum_row = vec![1.0; m];
    sum_row.push(0.0);
    cons.push(Constraint::new(sum_row, ConstraintOp::Eq, 1.0));
    let mut c = vec![0.0; m];
    c.push(1.0);
    let r = linprog(&c, &cons)?;
    if r.status != LpStatus::Optimal {
        return Err(SolverError::LpNotOptimal {
            solver: "linf-exact",
            status: match r.status {
                LpStatus::Infeasible => "infeasible",
                LpStatus::Unbounded => "unbounded",
                LpStatus::Optimal => "optimal",
            },
        });
    }
    let mut w = r.x[..m].to_vec();
    // Clean up numerical drift.
    simplex_projection(&mut w);
    Ok(w)
}

/// Shared input validation for the `L∞` fitters.
fn validate_linf(solver: &'static str, a: &DenseMatrix, s: &[f64]) -> Result<(), SolverError> {
    if a.cols() == 0 {
        return Err(SolverError::EmptyProblem { solver });
    }
    check_len(solver, "labels", a.rows(), s.len())?;
    if let Some((index, value)) = a.first_non_finite() {
        return Err(SolverError::NonFiniteInput {
            solver,
            what: "design matrix",
            index,
            value,
        });
    }
    check_finite(solver, "labels", s)
}

/// Scalable smoothed `L∞` fit: minimizes the soft maximum
/// `(1/β) log Σ_i (e^{β r_i} + e^{−β r_i})` of the residuals `r = Aw − s`
/// with projected gradient descent over the simplex.
pub fn linf_fit_smoothed(
    a: &DenseMatrix,
    s: &[f64],
    opts: &LinfOptions,
) -> Result<Vec<f64>, SolverError> {
    Ok(linf_fit_smoothed_with_report(a, s, opts)?.0)
}

/// [`linf_fit_smoothed`] plus a [`SolveReport`]. The subgradient method
/// runs a fixed budget and keeps the best iterate seen, so there is no
/// classic stopping criterion; `converged` is defined as "the best
/// iterate was found in the first 90% of the budget" — `false` means the
/// incumbent was still improving at the end and more iterations would
/// likely help.
pub fn linf_fit_smoothed_with_report(
    a: &DenseMatrix,
    s: &[f64],
    opts: &LinfOptions,
) -> Result<(Vec<f64>, SolveReport), SolverError> {
    validate_linf("linf-smoothed", a, s)?;
    if !opts.beta.is_finite() || opts.beta <= 0.0 {
        return Err(SolverError::InvalidOptions {
            solver: "linf-smoothed",
            what: "beta",
        });
    }
    if !opts.step0.is_finite() || opts.step0 <= 0.0 {
        return Err(SolverError::InvalidOptions {
            solver: "linf-smoothed",
            what: "step0",
        });
    }
    let m = a.cols();
    let mut w = vec![1.0 / m as f64; m];
    let mut best_w = w.clone();
    let mut best_err = linf_error(a, &w, s);
    let mut best_iter = 0usize;
    let mut iters = 0usize;

    for k in 0..opts.max_iters {
        iters = k + 1;
        let r = a.residual(&w, s);
        // softmax weights over ±residuals; subtract the max for stability
        let beta = opts.beta;
        let mmax = r.iter().map(|v| v.abs()).fold(0.0, f64::max);
        let mut coeff = vec![0.0f64; r.len()];
        let mut z = 0.0f64;
        for (i, &ri) in r.iter().enumerate() {
            let ep = (beta * (ri - mmax)).exp();
            let en = (beta * (-ri - mmax)).exp();
            coeff[i] = ep - en;
            z += ep + en;
        }
        if z <= f64::MIN_POSITIVE {
            break;
        }
        for c in &mut coeff {
            *c /= z;
        }
        // gradient of softmax(|r|) wrt w is Aᵀ coeff
        let g = a.matvec_t(&coeff);
        let step = opts.step0 / (1.0 + k as f64).sqrt();
        for (wi, gi) in w.iter_mut().zip(&g) {
            *wi -= step * gi;
        }
        simplex_projection(&mut w);
        let err = linf_error(a, &w, s);
        if selearn_obs::enabled() {
            selearn_obs::solver_iteration("linf-smoothed", k, err, step);
        }
        if err < best_err {
            best_err = err;
            best_w = w.clone();
            best_iter = k;
        }
    }
    let report = SolveReport {
        solver: "linf-smoothed",
        iters,
        max_iters: opts.max_iters,
        converged: best_iter < (opts.max_iters * 9) / 10,
        final_residual: best_err,
    };
    if selearn_obs::sink_installed() {
        report.emit();
    }
    Ok((best_w, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_achieves_zero_when_consistent() {
        let a = DenseMatrix::identity(3);
        let s = vec![0.2, 0.3, 0.5];
        let w = linf_fit_exact(&a, &s).unwrap();
        assert!(linf_error(&a, &w, &s) < 1e-7);
    }

    #[test]
    fn exact_balances_infeasible_targets() {
        // One bucket, two incompatible targets 0.2 and 0.8 with A = [1; 1]:
        // w must be 1, residuals are ±0.3... wait, Σw = 1 forces w = 1, so
        // errors are |1−0.2| and |1−0.8|; L∞ = 0.8. Use two buckets where
        // only their sum matters: any simplex w gives (Aw) = (1, 1); the
        // minimax error is max(0.8, 0.2) = 0.8 regardless.
        let a = DenseMatrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let s = vec![0.2, 0.8];
        let w = linf_fit_exact(&a, &s).unwrap();
        assert!((linf_error(&a, &w, &s) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn exact_minimax_splits_error() {
        // A = I (2 buckets), targets (0.9, 0.5): simplex forces w1+w2 = 1.
        // Optimum splits the overflow evenly: w = (0.7, 0.3), error 0.2.
        let a = DenseMatrix::identity(2);
        let s = vec![0.9, 0.5];
        let w = linf_fit_exact(&a, &s).unwrap();
        let err = linf_error(&a, &w, &s);
        assert!((err - 0.2).abs() < 1e-6, "err = {err}, w = {w:?}");
    }

    #[test]
    fn smoothed_close_to_exact() {
        let a = DenseMatrix::from_rows(&[
            vec![0.9, 0.1, 0.3],
            vec![0.2, 0.8, 0.6],
            vec![0.5, 0.5, 0.1],
            vec![0.7, 0.2, 0.9],
        ]);
        let s = vec![0.4, 0.6, 0.3, 0.7];
        let we = linf_fit_exact(&a, &s).unwrap();
        let ws = linf_fit_smoothed(&a, &s, &LinfOptions::default()).unwrap();
        let ee = linf_error(&a, &we, &s);
        let es = linf_error(&a, &ws, &s);
        assert!(
            es <= ee + 0.02,
            "smoothed {es} much worse than exact {ee}"
        );
    }

    #[test]
    fn smoothed_output_on_simplex() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let w = linf_fit_smoothed(&a, &[0.4, 0.6], &LinfOptions::default()).unwrap();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-7);
        assert!(w.iter().all(|&v| v >= 0.0));
        assert!(linf_error(&a, &w, &[0.4, 0.6]) < 1e-2);
    }

    #[test]
    fn linf_error_definition() {
        let a = DenseMatrix::identity(2);
        assert!((linf_error(&a, &[0.5, 0.5], &[0.0, 1.0]) - 0.5).abs() < 1e-12);
    }
}
