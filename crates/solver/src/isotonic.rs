//! Isotonic regression — pool adjacent violators (PAVA).
//!
//! Used by the 1-D CDF estimator (`selearn-core::cdf1d`): learning a
//! cumulative distribution function from interval-query feedback needs the
//! fitted values to be **monotone nondecreasing**; PAVA computes the
//! weighted least-squares projection onto that cone in `O(n)`.

use crate::error::{check_finite, check_len, SolverError};

/// Weighted isotonic regression: returns the nondecreasing `g` minimizing
/// `Σ w_i (g_i − y_i)²`.
///
/// Returns a typed [`SolverError`] when lengths differ, any value is
/// NaN/infinite, or any weight is not strictly positive and finite.
pub fn isotonic_regression(y: &[f64], w: &[f64]) -> Result<Vec<f64>, SolverError> {
    check_len("isotonic", "weights", y.len(), w.len())?;
    check_finite("isotonic", "values", y)?;
    check_finite("isotonic", "weights", w)?;
    if w.iter().any(|&v| v <= 0.0) {
        return Err(SolverError::InvalidOptions {
            solver: "isotonic",
            what: "weights (must be strictly positive)",
        });
    }
    let n = y.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    // Blocks represented by (mean, weight, count), merged on violation.
    let mut means: Vec<f64> = Vec::with_capacity(n);
    let mut weights: Vec<f64> = Vec::with_capacity(n);
    let mut counts: Vec<usize> = Vec::with_capacity(n);
    let mut merges = 0usize;
    for i in 0..n {
        means.push(y[i]);
        weights.push(w[i]);
        counts.push(1);
        while means.len() >= 2 {
            let k = means.len();
            if means[k - 2] <= means[k - 1] {
                break;
            }
            // merge the last two blocks (indexing stays in bounds: k ≥ 2)
            merges += 1;
            let wt = weights[k - 2] + weights[k - 1];
            let m = (means[k - 2] * weights[k - 2] + means[k - 1] * weights[k - 1]) / wt;
            let c = counts[k - 1];
            means.truncate(k - 1);
            weights.truncate(k - 1);
            counts.truncate(k - 1);
            means[k - 2] = m;
            weights[k - 2] = wt;
            counts[k - 2] += c;
        }
    }
    let mut out = Vec::with_capacity(n);
    for (m, c) in means.iter().zip(&counts) {
        out.extend(std::iter::repeat_n(*m, *c));
    }
    // PAVA is exact and single-pass: the report records pool-merge work
    // (its "iterations"), and it always converges.
    if selearn_obs::enabled() {
        selearn_obs::counter_add("pava_merges", merges as u64);
        crate::report::SolveReport {
            solver: "isotonic",
            iters: merges,
            max_iters: n,
            converged: true,
            final_residual: 0.0,
        }
        .emit();
    }
    Ok(out)
}

/// Unweighted isotonic regression.
pub fn isotonic_regression_unweighted(y: &[f64]) -> Result<Vec<f64>, SolverError> {
    isotonic_regression(y, &vec![1.0; y.len()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_monotone(v: &[f64]) {
        for w in v.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "not monotone: {v:?}");
        }
    }

    #[test]
    fn already_monotone_unchanged() {
        let y = vec![0.1, 0.2, 0.5, 0.9];
        assert_eq!(isotonic_regression_unweighted(&y).unwrap(), y);
    }

    #[test]
    fn single_violation_pooled() {
        // (3, 1) pools to (2, 2)
        let g = isotonic_regression_unweighted(&[3.0, 1.0]).unwrap();
        assert_eq!(g, vec![2.0, 2.0]);
    }

    #[test]
    fn textbook_example() {
        let g = isotonic_regression_unweighted(&[1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(g, vec![1.0, 2.5, 2.5, 4.0]);
        assert_monotone(&g);
    }

    #[test]
    fn decreasing_input_pools_to_mean() {
        let y = vec![5.0, 4.0, 3.0, 2.0, 1.0];
        let g = isotonic_regression_unweighted(&y).unwrap();
        for v in &g {
            assert!((v - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_shift_pooled_means() {
        // heavy first element dominates the pooled block
        let g = isotonic_regression(&[2.0, 0.0], &[3.0, 1.0]).unwrap();
        assert!((g[0] - 1.5).abs() < 1e-12);
        assert_eq!(g[0], g[1]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(isotonic_regression_unweighted(&[]).unwrap().is_empty());
        assert_eq!(isotonic_regression_unweighted(&[7.0]).unwrap(), vec![7.0]);
    }

    proptest::proptest! {
        #[test]
        fn prop_output_monotone_and_mean_preserving(
            y in proptest::collection::vec(-10.0f64..10.0, 1..60)
        ) {
            let g = isotonic_regression_unweighted(&y).unwrap();
            proptest::prop_assert_eq!(g.len(), y.len());
            for w in g.windows(2) {
                proptest::prop_assert!(w[0] <= w[1] + 1e-9);
            }
            // PAVA preserves the (weighted) mean
            let my: f64 = y.iter().sum::<f64>() / y.len() as f64;
            let mg: f64 = g.iter().sum::<f64>() / g.len() as f64;
            proptest::prop_assert!((my - mg).abs() < 1e-9);
        }

        #[test]
        fn prop_projection_optimality_small(
            y in proptest::collection::vec(-5.0f64..5.0, 2..6)
        ) {
            // The PAVA output must beat any monotone candidate built by
            // cummax/cummin perturbations of y itself.
            let g = isotonic_regression_unweighted(&y).unwrap();
            let loss = |v: &[f64]| -> f64 {
                v.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum()
            };
            let mut cummax = y.clone();
            for i in 1..cummax.len() {
                cummax[i] = cummax[i].max(cummax[i - 1]);
            }
            proptest::prop_assert!(loss(&g) <= loss(&cummax) + 1e-9);
        }
    }
}
