//! Lawson–Hanson non-negative least squares.
//!
//! The paper's reference implementation solved Equation (8) with
//! `scipy.optimize.nnls` (reference 1 of the paper). scipy's `nnls` *is*
//! the Lawson–Hanson active-set algorithm (Solving Least Squares Problems,
//! 1974, Ch. 23), re-implemented here. The simplex constraint `Σ w = 1` is
//! enforced the same way the authors' code does it: by appending a heavily
//! weighted penalty row `√ρ · 1ᵀ w = √ρ`.

use crate::error::{check_finite, check_len, SolverError};
use crate::matrix::DenseMatrix;
use crate::report::SolveReport;

/// NNLS configuration.
#[derive(Clone, Debug)]
pub struct NnlsOptions {
    /// Maximum number of outer (active-set) iterations; `0` means the
    /// conventional `3 · cols` bound.
    pub max_iters: usize,
    /// Dual-feasibility tolerance on `Aᵀ(b − Ax)`.
    pub tol: f64,
    /// Penalty weight `ρ` for the `Σ w = 1` row in [`nnls_simplex`].
    pub sum_penalty: f64,
}

impl Default for NnlsOptions {
    fn default() -> Self {
        Self {
            max_iters: 0,
            tol: 1e-10,
            sum_penalty: 1e4,
        }
    }
}

/// Solves `min ‖Ax − b‖²` subject to `x ≥ 0` (Lawson–Hanson).
///
/// Returns the nonnegative least-squares solution, or a typed
/// [`SolverError`] on shape mismatches and NaN/infinite input. The
/// passive-set subproblems are solved through the normal equations with
/// Cholesky, which is accurate for the well-scaled design matrices produced
/// by Equation (6) (entries in `[0, 1]`).
pub fn nnls(a: &DenseMatrix, b: &[f64], opts: &NnlsOptions) -> Result<Vec<f64>, SolverError> {
    Ok(nnls_with_report(a, b, opts)?.0)
}

/// Shared input validation for the NNLS entry points.
fn validate_nnls(a: &DenseMatrix, b: &[f64], opts: &NnlsOptions) -> Result<(), SolverError> {
    check_len("nnls", "labels", a.rows(), b.len())?;
    if let Some((index, value)) = a.first_non_finite() {
        return Err(SolverError::NonFiniteInput {
            solver: "nnls",
            what: "design matrix",
            index,
            value,
        });
    }
    check_finite("nnls", "labels", b)?;
    if !opts.tol.is_finite() || opts.tol < 0.0 {
        return Err(SolverError::InvalidOptions {
            solver: "nnls",
            what: "tol",
        });
    }
    if !opts.sum_penalty.is_finite() || opts.sum_penalty <= 0.0 {
        return Err(SolverError::InvalidOptions {
            solver: "nnls",
            what: "sum_penalty",
        });
    }
    Ok(())
}

/// [`nnls`] plus a [`SolveReport`]: `converged` is `true` when the KKT
/// conditions were satisfied, `false` when the active-set budget was
/// exhausted and the last iterate was returned. Emits per-iteration
/// convergence events and a terminal `solver-report` event when
/// observability is enabled; bumps the `active_set_swaps` counter on every
/// passive-set change.
pub fn nnls_with_report(
    a: &DenseMatrix,
    b: &[f64],
    opts: &NnlsOptions,
) -> Result<(Vec<f64>, SolveReport), SolverError> {
    validate_nnls(a, b, opts)?;
    let m = a.cols();
    let max_iters = if opts.max_iters == 0 {
        3 * m.max(1)
    } else {
        opts.max_iters
    };

    let mut x = vec![0.0f64; m];
    let mut passive = vec![false; m];
    let mut n_passive = 0usize;
    let mut iters = 0usize;
    let mut converged = false;
    let mut last_res = f64::NAN;

    for k in 0..max_iters {
        iters = k + 1;
        // dual w = Aᵀ(b − Ax)
        let r: Vec<f64> = {
            let ax = a.matvec(&x);
            b.iter().zip(ax).map(|(&bi, axi)| bi - axi).collect()
        };
        let w = a.matvec_t(&r);

        // pick the most violated dual among the active set
        let mut best: Option<(usize, f64)> = None;
        for j in 0..m {
            if !passive[j] && w[j] > opts.tol
                && best.is_none_or(|(_, bw)| w[j] > bw) {
                    best = Some((j, w[j]));
                }
        }
        last_res = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        if selearn_obs::enabled() {
            selearn_obs::solver_iteration("nnls", k, last_res, best.map_or(0.0, |(_, v)| v));
        }
        let Some((enter, _)) = best else {
            converged = true; // KKT satisfied
            iters = k;
            break;
        };
        passive[enter] = true;
        n_passive += 1;
        selearn_obs::counter_add("active_set_swaps", 1);

        // inner loop: solve LS on the passive set; backtrack if infeasible
        loop {
            let idx: Vec<usize> = (0..m).filter(|&j| passive[j]).collect();
            let z = solve_ls_subset(a, b, &idx);
            let Some(z) = z else {
                // singular subproblem: drop the entering variable and stop
                passive[enter] = false;
                n_passive -= 1;
                break;
            };
            if z.iter().all(|&v| v > 0.0) {
                for (k, &j) in idx.iter().enumerate() {
                    x[j] = z[k];
                }
                break;
            }
            // step toward z as far as feasibility allows
            let mut alpha = f64::INFINITY;
            for (k, &j) in idx.iter().enumerate() {
                if z[k] <= 0.0 {
                    let denom = x[j] - z[k];
                    if denom > 0.0 {
                        alpha = alpha.min(x[j] / denom);
                    } else {
                        alpha = 0.0;
                    }
                }
            }
            let alpha = alpha.clamp(0.0, 1.0);
            for (k, &j) in idx.iter().enumerate() {
                x[j] += alpha * (z[k] - x[j]);
            }
            // deactivate variables that hit zero
            for &j in &idx {
                if x[j] <= opts.tol * opts.tol {
                    x[j] = 0.0;
                    if passive[j] {
                        passive[j] = false;
                        n_passive -= 1;
                        selearn_obs::counter_add("active_set_swaps", 1);
                    }
                }
            }
            if n_passive == 0 {
                break;
            }
        }
    }

    // On the KKT exit `x` is unchanged since `last_res` was measured; on
    // budget exhaustion it is not, so recompute (rare, diagnostic path).
    let final_residual = if converged && last_res.is_finite() {
        last_res
    } else {
        let ax = a.matvec(&x);
        b.iter()
            .zip(ax)
            .map(|(&bi, axi)| (bi - axi) * (bi - axi))
            .sum::<f64>()
            .sqrt()
    };
    let report = SolveReport {
        solver: "nnls",
        iters,
        max_iters,
        converged,
        final_residual,
    };
    report.emit();
    Ok((x, report))
}

/// Unconstrained least squares restricted to the columns `idx`, via normal
/// equations + Cholesky with a tiny ridge for numerical safety.
fn solve_ls_subset(a: &DenseMatrix, b: &[f64], idx: &[usize]) -> Option<Vec<f64>> {
    let p = idx.len();
    if p == 0 {
        return Some(vec![]);
    }
    let mut gram = DenseMatrix::zeros(p, p);
    let mut rhs = vec![0.0f64; p];
    #[allow(clippy::needless_range_loop)] // indexed form is clearer here
    for r in 0..a.rows() {
        let row = a.row(r);
        for (ki, &i) in idx.iter().enumerate() {
            let v = row[i];
            if v == 0.0 {
                continue;
            }
            rhs[ki] += v * b[r];
            for (kj, &j) in idx.iter().enumerate().skip(ki) {
                gram[(ki, kj)] += v * row[j];
            }
        }
    }
    // symmetrize + ridge
    for i in 0..p {
        gram[(i, i)] += 1e-12;
        for j in (i + 1)..p {
            gram[(j, i)] = gram[(i, j)];
        }
    }
    // A singular subproblem is a normal active-set event (backtrack), not
    // an input error, so the typed error collapses back to Option here.
    gram.solve_spd(&rhs).ok()
}

/// Solves Equation (8) — simplex-constrained least squares — through NNLS
/// with a penalty row: minimize `‖Aw − s‖² + ρ (Σ w − 1)²` over `w ≥ 0`,
/// then renormalize the tiny residual drift so `Σ w = 1` exactly.
pub fn nnls_simplex(
    a: &DenseMatrix,
    s: &[f64],
    opts: &NnlsOptions,
) -> Result<Vec<f64>, SolverError> {
    Ok(nnls_simplex_with_report(a, s, opts)?.0)
}

/// [`nnls_simplex`] plus the inner solve's [`SolveReport`]. The report's
/// `final_residual` is re-measured on the *original* system after the
/// simplex renormalization, so it is directly comparable to FISTA's.
pub fn nnls_simplex_with_report(
    a: &DenseMatrix,
    s: &[f64],
    opts: &NnlsOptions,
) -> Result<(Vec<f64>, SolveReport), SolverError> {
    validate_nnls(a, s, opts)?;
    let m = a.cols();
    if m == 0 {
        return Err(SolverError::EmptyProblem { solver: "nnls" });
    }
    let rho = opts.sum_penalty.sqrt();
    let mut aug = DenseMatrix::zeros(0, 0);
    for i in 0..a.rows() {
        aug.push_row(a.row(i));
    }
    aug.push_row(&vec![rho; m]);
    let mut b = s.to_vec();
    b.push(rho);
    let (mut w, mut report) = nnls_with_report(&aug, &b, opts)?;
    let total: f64 = w.iter().sum();
    if total > 1e-9 {
        for v in &mut w {
            *v /= total;
        }
    } else {
        // degenerate: fall back to uniform
        w = vec![1.0 / m as f64; m];
    }
    report.final_residual = a.residual_sq(&w, s).sqrt();
    Ok((w, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_optimum_already_nonnegative() {
        // A = I, b ≥ 0 ⇒ x = b.
        let a = DenseMatrix::identity(3);
        let b = vec![1.0, 2.0, 3.0];
        let x = nnls(&a, &b, &NnlsOptions::default()).unwrap();
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn clips_negative_components() {
        // A = I, b = (1, −1) ⇒ x = (1, 0).
        let a = DenseMatrix::identity(2);
        let x = nnls(&a, &[1.0, -1.0], &NnlsOptions::default()).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert_eq!(x[1], 0.0);
    }

    #[test]
    fn overdetermined_regression() {
        // Fit y = 2u with design [[1],[2],[3]] and b = [2,4,6].
        let a = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let x = nnls(&a, &[2.0, 4.0, 6.0], &NnlsOptions::default()).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn correlated_columns() {
        // Classic NNLS example where the unconstrained solution is negative.
        let a = DenseMatrix::from_rows(&[
            vec![1.0, 0.9],
            vec![0.9, 1.0],
            vec![0.5, 0.5],
        ]);
        let b = vec![1.0, 0.0, 0.3];
        let x = nnls(&a, &b, &NnlsOptions::default()).unwrap();
        assert!(x.iter().all(|&v| v >= 0.0));
        // KKT: dual Aᵀ(b − Ax) must be ≤ tol on active, ≈ 0 on passive.
        let r: Vec<f64> = {
            let ax = a.matvec(&x);
            b.iter().zip(ax).map(|(&bi, v)| bi - v).collect()
        };
        let w = a.matvec_t(&r);
        for (j, &xj) in x.iter().enumerate() {
            if xj > 0.0 {
                assert!(w[j].abs() < 1e-7, "stationarity violated: w[{j}] = {}", w[j]);
            } else {
                assert!(w[j] <= 1e-7, "dual feasibility violated: w[{j}] = {}", w[j]);
            }
        }
    }

    #[test]
    fn simplex_variant_sums_to_one() {
        let a = DenseMatrix::from_rows(&[
            vec![1.0, 0.0, 0.5],
            vec![0.0, 1.0, 0.5],
        ]);
        let s = vec![0.3, 0.7];
        let w = nnls_simplex(&a, &s, &NnlsOptions::default()).unwrap();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&v| v >= 0.0));
        // achieved loss should be near-zero: w = (0.3, 0.7, 0) works
        assert!(a.residual_sq(&w, &s) < 1e-6);
    }

    #[test]
    fn simplex_variant_agrees_with_fista() {
        use crate::fista::{fista_simplex_ls, FistaOptions};
        let a = DenseMatrix::from_rows(&[
            vec![0.9, 0.1, 0.4],
            vec![0.2, 0.8, 0.5],
            vec![0.6, 0.6, 0.1],
            vec![0.3, 0.3, 0.9],
        ]);
        let s = vec![0.35, 0.55, 0.4, 0.5];
        let w1 = nnls_simplex(&a, &s, &NnlsOptions::default()).unwrap();
        let w2 = fista_simplex_ls(&a, &s, &FistaOptions::default()).unwrap().weights;
        let l1 = a.residual_sq(&w1, &s);
        let l2 = a.residual_sq(&w2, &s);
        assert!(
            (l1 - l2).abs() < 1e-4,
            "losses diverge: nnls {l1} vs fista {l2}"
        );
    }

    #[test]
    fn report_tracks_kkt_convergence() {
        let a = DenseMatrix::from_rows(&[
            vec![1.0, 0.9],
            vec![0.9, 1.0],
            vec![0.5, 0.5],
        ]);
        let b = vec![1.0, 0.0, 0.3];
        let (x, rep) = nnls_with_report(&a, &b, &NnlsOptions::default()).unwrap();
        assert_eq!(rep.solver, "nnls");
        assert!(rep.converged, "well-posed instance must meet KKT");
        assert!(rep.iters <= rep.max_iters);
        // final_residual is the LS residual norm at the solution
        let expect = a.residual_sq(&x, &b).sqrt();
        assert!((rep.final_residual - expect).abs() < 1e-9);

        // exhausting a 1-iteration budget must be flagged
        let tight = NnlsOptions {
            max_iters: 1,
            ..Default::default()
        };
        let (_, rep) = nnls_with_report(&a, &b, &tight).unwrap();
        assert!(!rep.converged);
        assert_eq!(rep.iters, 1);
    }

    #[test]
    fn all_zero_design_stays_feasible() {
        // With a zero design every simplex point is equally optimal; the
        // active-set method picks a vertex — we only require feasibility.
        let a = DenseMatrix::zeros(2, 4);
        let w = nnls_simplex(&a, &[0.5, 0.5], &NnlsOptions::default()).unwrap();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&v| v >= 0.0));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        #[test]
        fn prop_nonnegative_and_kkt(
            rows in proptest::collection::vec(
                proptest::collection::vec(0.0f64..1.0, 3), 2..8),
            b in proptest::collection::vec(0.0f64..1.0, 8),
        ) {
            let a = DenseMatrix::from_rows(&rows);
            let b = &b[..rows.len()];
            let x = nnls(&a, b, &NnlsOptions::default()).unwrap();
            proptest::prop_assert!(x.iter().all(|&v| v >= 0.0));
            // objective no worse than the zero vector
            let zero = vec![0.0; 3];
            proptest::prop_assert!(
                a.residual_sq(&x, b) <= a.residual_sq(&zero, b) + 1e-9);
        }
    }
}
