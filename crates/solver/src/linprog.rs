//! Dense two-phase simplex linear programming.
//!
//! Used by the exact `L∞`-objective training of Section 4.6 (which is an LP)
//! and by the theory crate's linear-separability oracle (halfspace
//! shattering checks reduce to LP feasibility). Bland's rule guarantees
//! termination; the dense tableau is appropriate for the small/medium
//! instances that need *exact* answers.

use crate::error::{check_finite, SolverError};

/// Direction of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `a · x ≤ b`
    Le,
    /// `a · x = b`
    Eq,
    /// `a · x ≥ b`
    Ge,
}

/// One linear constraint `a · x (≤ | = | ≥) b` over nonnegative variables.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Coefficient vector `a`.
    pub coeffs: Vec<f64>,
    /// Comparison operator.
    pub op: ConstraintOp,
    /// Right-hand side `b`.
    pub rhs: f64,
}

impl Constraint {
    /// Convenience constructor.
    pub fn new(coeffs: Vec<f64>, op: ConstraintOp, rhs: f64) -> Self {
        Self { coeffs, op, rhs }
    }
}

/// Outcome status of an LP solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraints are inconsistent.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// Result of an LP solve.
#[derive(Clone, Debug)]
pub struct LpResult {
    /// Termination status.
    pub status: LpStatus,
    /// Primal solution (meaningful when `status == Optimal`).
    pub x: Vec<f64>,
    /// Objective value `cᵀx`.
    pub objective: f64,
}

const TOL: f64 = 1e-9;

/// Minimizes `cᵀx` subject to the given constraints and `x ≥ 0`.
///
/// Returns a typed [`SolverError`] when a constraint's arity disagrees
/// with the objective or any coefficient is NaN/infinite; infeasibility
/// and unboundedness are normal outcomes reported via [`LpStatus`].
pub fn linprog(c: &[f64], constraints: &[Constraint]) -> Result<LpResult, SolverError> {
    let n = c.len();
    let m = constraints.len();
    check_finite("linprog", "objective", c)?;
    for con in constraints {
        if con.coeffs.len() != n {
            return Err(SolverError::DimensionMismatch {
                solver: "linprog",
                what: "constraint coefficients",
                expected: n,
                got: con.coeffs.len(),
            });
        }
        check_finite("linprog", "constraint coefficients", &con.coeffs)?;
        if !con.rhs.is_finite() {
            return Err(SolverError::NonFiniteInput {
                solver: "linprog",
                what: "constraint rhs",
                index: 0,
                value: con.rhs,
            });
        }
    }

    // Standard form: flip rows so every RHS is nonnegative, then add slack
    // (≤), surplus (≥) and artificial (≥, =) variables.
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rhs: Vec<f64> = Vec::with_capacity(m);
    let mut ops: Vec<ConstraintOp> = Vec::with_capacity(m);
    for con in constraints {
        let mut a = con.coeffs.clone();
        let mut b = con.rhs;
        let mut op = con.op;
        if b < 0.0 {
            for v in &mut a {
                *v = -*v;
            }
            b = -b;
            op = match op {
                ConstraintOp::Le => ConstraintOp::Ge,
                ConstraintOp::Ge => ConstraintOp::Le,
                ConstraintOp::Eq => ConstraintOp::Eq,
            };
        }
        rows.push(a);
        rhs.push(b);
        ops.push(op);
    }

    let n_slack = ops
        .iter()
        .filter(|o| matches!(o, ConstraintOp::Le | ConstraintOp::Ge))
        .count();
    let n_art = ops
        .iter()
        .filter(|o| matches!(o, ConstraintOp::Ge | ConstraintOp::Eq))
        .count();
    let total = n + n_slack + n_art;

    // tableau: m rows × (total + 1) columns (last = RHS)
    let mut tab = vec![vec![0.0f64; total + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut s_idx = n;
    let mut a_idx = n + n_slack;
    let mut artificials = Vec::new();
    for i in 0..m {
        tab[i][..n].copy_from_slice(&rows[i]);
        tab[i][total] = rhs[i];
        match ops[i] {
            ConstraintOp::Le => {
                tab[i][s_idx] = 1.0;
                basis[i] = s_idx;
                s_idx += 1;
            }
            ConstraintOp::Ge => {
                tab[i][s_idx] = -1.0;
                s_idx += 1;
                tab[i][a_idx] = 1.0;
                basis[i] = a_idx;
                artificials.push(a_idx);
                a_idx += 1;
            }
            ConstraintOp::Eq => {
                tab[i][a_idx] = 1.0;
                basis[i] = a_idx;
                artificials.push(a_idx);
                a_idx += 1;
            }
        }
    }

    // Phase 1: minimize the sum of artificials.
    if !artificials.is_empty() {
        let mut c1 = vec![0.0f64; total];
        for &j in &artificials {
            c1[j] = 1.0;
        }
        match simplex_core(&mut tab, &mut basis, &c1, total) {
            SimplexOutcome::Optimal(obj) => {
                if obj > 1e-7 {
                    return Ok(LpResult {
                        status: LpStatus::Infeasible,
                        x: vec![0.0; n],
                        objective: f64::INFINITY,
                    });
                }
            }
            // Phase 1 minimizes a sum of nonnegative variables, so it cannot
            // be unbounded with the finite inputs validated above; if the
            // tableau is ever driven there by pathological round-off, report
            // infeasible instead of aborting the process.
            SimplexOutcome::Unbounded => {
                return Ok(LpResult {
                    status: LpStatus::Infeasible,
                    x: vec![0.0; n],
                    objective: f64::INFINITY,
                });
            }
        }
        // Drive any artificial still in the basis out (degenerate case).
        for i in 0..m {
            if artificials.contains(&basis[i]) {
                // find a non-artificial column with nonzero coefficient
                let pivot_col = (0..n + n_slack).find(|&j| tab[i][j].abs() > TOL);
                if let Some(j) = pivot_col {
                    pivot(&mut tab, &mut basis, i, j, total);
                } // else the row is all-zero: redundant constraint, harmless
            }
        }
    }

    // Phase 2: minimize the real objective (artificial columns pinned at 0).
    let mut c2 = vec![0.0f64; total];
    c2[..n].copy_from_slice(c);
    // forbid artificials from re-entering by pricing them prohibitively
    for &j in &artificials {
        c2[j] = 1e30;
    }
    match simplex_core(&mut tab, &mut basis, &c2, total) {
        SimplexOutcome::Optimal(_) => {
            let mut x = vec![0.0f64; n];
            for i in 0..m {
                if basis[i] < n {
                    x[basis[i]] = tab[i][total];
                }
            }
            let objective = x.iter().zip(c).map(|(a, b)| a * b).sum();
            Ok(LpResult {
                status: LpStatus::Optimal,
                x,
                objective,
            })
        }
        SimplexOutcome::Unbounded => Ok(LpResult {
            status: LpStatus::Unbounded,
            x: vec![0.0; n],
            objective: f64::NEG_INFINITY,
        }),
    }
}

enum SimplexOutcome {
    Optimal(f64),
    Unbounded,
}

/// Runs the primal simplex on the tableau with Bland's rule.
fn simplex_core(
    tab: &mut [Vec<f64>],
    basis: &mut [usize],
    c: &[f64],
    total: usize,
) -> SimplexOutcome {
    let m = tab.len();
    loop {
        // reduced costs: r_j = c_j − c_Bᵀ B⁻¹ A_j; the tableau stores B⁻¹A.
        let mut entering = None;
        for j in 0..total {
            let mut rc = c[j];
            for i in 0..m {
                rc -= c[basis[i]] * tab[i][j];
            }
            if rc < -1e-9 {
                entering = Some(j); // Bland: first improving index
                break;
            }
        }
        let Some(e) = entering else {
            let mut obj = 0.0;
            for i in 0..m {
                obj += c[basis[i]] * tab[i][total];
            }
            return SimplexOutcome::Optimal(obj);
        };
        // ratio test (Bland ties → smallest basis index)
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if tab[i][e] > TOL {
                let ratio = tab[i][total] / tab[i][e];
                if ratio < best - TOL
                    || (ratio < best + TOL
                        && leave.is_none_or(|l| basis[i] < basis[l]))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(l) = leave else {
            return SimplexOutcome::Unbounded;
        };
        pivot(tab, basis, l, e, total);
    }
}

fn pivot(tab: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, total: usize) {
    let m = tab.len();
    let p = tab[row][col];
    for v in tab[row].iter_mut() {
        *v /= p;
    }
    for i in 0..m {
        if i != row && tab[i][col].abs() > 0.0 {
            let f = tab[i][col];
            #[allow(clippy::needless_range_loop)] // indexed form is clearer here
            for j in 0..=total {
                let t = f * tab[row][j];
                tab[i][j] -= t;
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        // Minimize the negation.
        let r = linprog(
            &[-3.0, -5.0],
            &[
                Constraint::new(vec![1.0, 0.0], ConstraintOp::Le, 4.0),
                Constraint::new(vec![0.0, 2.0], ConstraintOp::Le, 12.0),
                Constraint::new(vec![3.0, 2.0], ConstraintOp::Le, 18.0),
            ],
        ).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.x[0] - 2.0).abs() < 1e-7, "{:?}", r.x);
        assert!((r.x[1] - 6.0).abs() < 1e-7);
        assert!((r.objective + 36.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 1, x − y = 0 → (0.5, 0.5).
        let r = linprog(
            &[1.0, 1.0],
            &[
                Constraint::new(vec![1.0, 1.0], ConstraintOp::Eq, 1.0),
                Constraint::new(vec![1.0, -1.0], ConstraintOp::Eq, 0.0),
            ],
        ).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.x[0] - 0.5).abs() < 1e-7);
        assert!((r.x[1] - 0.5).abs() < 1e-7);
    }

    #[test]
    fn ge_constraints() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1 → (4, 0), obj 8.
        let r = linprog(
            &[2.0, 3.0],
            &[
                Constraint::new(vec![1.0, 1.0], ConstraintOp::Ge, 4.0),
                Constraint::new(vec![1.0, 0.0], ConstraintOp::Ge, 1.0),
            ],
        ).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 8.0).abs() < 1e-7, "{:?}", r);
    }

    #[test]
    fn infeasible_detected() {
        let r = linprog(
            &[1.0],
            &[
                Constraint::new(vec![1.0], ConstraintOp::Le, 1.0),
                Constraint::new(vec![1.0], ConstraintOp::Ge, 2.0),
            ],
        ).unwrap();
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min −x s.t. x ≥ 0 (no upper bound).
        let r = linprog(&[-1.0], &[Constraint::new(vec![1.0], ConstraintOp::Ge, 0.0)]).unwrap();
        assert_eq!(r.status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_handled() {
        // min x s.t. −x ≤ −3  ⇔ x ≥ 3.
        let r = linprog(&[1.0], &[Constraint::new(vec![-1.0], ConstraintOp::Le, -3.0)]).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.x[0] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_redundant_constraints() {
        // Duplicate equalities should not break phase 1.
        let r = linprog(
            &[1.0, 1.0],
            &[
                Constraint::new(vec![1.0, 1.0], ConstraintOp::Eq, 1.0),
                Constraint::new(vec![1.0, 1.0], ConstraintOp::Eq, 1.0),
                Constraint::new(vec![1.0, 0.0], ConstraintOp::Le, 1.0),
            ],
        ).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 1.0).abs() < 1e-7);
    }

    #[test]
    fn simplex_constrained_least_abs_fit() {
        // Tiny L∞ fit: choose w on the simplex minimizing max |w_j − t_j|
        // for t = (0.7, 0.3): variables (w1, w2, z), minimize z subject to
        // w − t ≤ z, t − w ≤ z, Σw = 1. Optimum z = 0 at w = t.
        let cons = vec![
            Constraint::new(vec![1.0, 0.0, -1.0], ConstraintOp::Le, 0.7),
            Constraint::new(vec![0.0, 1.0, -1.0], ConstraintOp::Le, 0.3),
            Constraint::new(vec![-1.0, 0.0, -1.0], ConstraintOp::Le, -0.7),
            Constraint::new(vec![0.0, -1.0, -1.0], ConstraintOp::Le, -0.3),
            Constraint::new(vec![1.0, 1.0, 0.0], ConstraintOp::Eq, 1.0),
        ];
        let r = linprog(&[0.0, 0.0, 1.0], &cons).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!(r.objective.abs() < 1e-7);
        assert!((r.x[0] - 0.7).abs() < 1e-6);
    }

    #[test]
    fn separability_feasibility_lp() {
        // Points {(0,0)} vs {(1,1)} are linearly separable: find w, b,
        // encoded with split variables (w⁺ − w⁻), margin 1.
        // Variables: w1+, w1-, w2+, w2-, b+, b-.
        let sep = |pos: &[(f64, f64)], neg: &[(f64, f64)]| -> bool {
            let mut cons = Vec::new();
            for &(x, y) in pos {
                cons.push(Constraint::new(
                    vec![x, -x, y, -y, 1.0, -1.0],
                    ConstraintOp::Ge,
                    1.0,
                ));
            }
            for &(x, y) in neg {
                cons.push(Constraint::new(
                    vec![x, -x, y, -y, 1.0, -1.0],
                    ConstraintOp::Le,
                    -1.0,
                ));
            }
            linprog(&[0.0; 6], &cons).unwrap().status == LpStatus::Optimal
        };
        assert!(sep(&[(0.0, 0.0)], &[(1.0, 1.0)]));
        // XOR configuration is not separable.
        assert!(!sep(&[(0.0, 0.0), (1.0, 1.0)], &[(0.0, 1.0), (1.0, 0.0)]));
    }
}
