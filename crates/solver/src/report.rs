//! Solve-outcome reporting.
//!
//! Every iterative solver in this crate can exhaust its iteration budget
//! and silently return the last iterate — acceptable for well-conditioned
//! Equation (8) instances, but invisible to callers. [`SolveReport`]
//! makes the exit condition a first-class return value: each solver gains
//! a `*_with_report` variant, and the legacy entry points forward to it
//! and drop the report, so existing call sites are untouched.

/// Terminal summary of one iterative solve call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveReport {
    /// Solver identifier (`"nnls"`, `"fista"`, `"ipf"`, `"linf-smoothed"`,
    /// `"isotonic"`).
    pub solver: &'static str,
    /// Iterations actually performed.
    pub iters: usize,
    /// Iteration budget the solver was run with.
    pub max_iters: usize,
    /// `true` when the convergence criterion was met; `false` when the
    /// budget was exhausted and the last iterate was returned as-is.
    pub converged: bool,
    /// Solver-specific residual at exit (LS residual norm for NNLS/FISTA,
    /// max constraint violation for IPF, smoothed loss for L∞).
    pub final_residual: f64,
}

impl SolveReport {
    /// Emits this report as a [`selearn_obs::Event::SolverReport`] into
    /// the installed sink (no-op without one).
    pub fn emit(&self) {
        selearn_obs::emit(&selearn_obs::Event::SolverReport {
            solver: self.solver,
            iters: self.iters,
            max_iters: self.max_iters,
            converged: self.converged,
            final_residual: self.final_residual,
        });
    }
}
