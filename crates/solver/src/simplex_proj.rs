//! Euclidean projection onto the probability simplex.
//!
//! `Δ = {w : Σ w_j = 1, w_j ≥ 0}` is the feasible region of Equation (8)
//! (the constraint `w_j ≤ 1` is implied). The projection is computed with
//! the sort-based algorithm of Duchi, Shalev-Shwartz, Singer & Chandra
//! (ICML 2008), `O(m log m)`.

use crate::error::{check_finite, SolverError};

/// Projects `v` onto the probability simplex in place.
///
/// NaN entries cannot occur on the validated solver paths (every public
/// solver checks its inputs first); if one slips in anyway the NaN-total
/// ordering keeps the sort deterministic instead of panicking, and the
/// output degrades to NaN rather than aborting the process. Untrusted
/// input should go through [`try_simplex_projection`].
///
/// An empty vector is a no-op (the zero-dimensional simplex is empty, so
/// there is nothing to project — callers that need to treat this as an
/// error use the checked variant).
pub fn simplex_projection(v: &mut [f64]) {
    if v.is_empty() {
        return;
    }
    // Sort a copy in descending order. `total_cmp` is NaN-safe: NaNs sort
    // to a deterministic position instead of violating the comparator
    // contract and panicking inside `sort_by`.
    let mut u = v.to_vec();
    u.sort_by(|a, b| b.total_cmp(a));
    // Find ρ = max{ j : u_j − (Σ_{k≤j} u_k − 1)/j > 0 }.
    let mut cumsum = 0.0;
    let mut rho = 0usize;
    let mut theta = 0.0;
    for (j, &uj) in u.iter().enumerate() {
        cumsum += uj;
        let t = (cumsum - 1.0) / (j as f64 + 1.0);
        if uj - t > 0.0 {
            rho = j;
            theta = t;
        }
    }
    let _ = rho;
    for w in v.iter_mut() {
        *w = (*w - theta).max(0.0);
    }
}

/// Validating projection for untrusted input: rejects empty and non-finite
/// vectors with a typed [`SolverError`] instead of panicking or silently
/// producing NaN weights.
pub fn try_simplex_projection(v: &mut [f64]) -> Result<(), SolverError> {
    if v.is_empty() {
        return Err(SolverError::EmptyProblem {
            solver: "simplex-projection",
        });
    }
    check_finite("simplex-projection", "input vector", v)?;
    simplex_projection(v);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_on_simplex(v: &[f64]) {
        let s: f64 = v.iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "sum = {s}");
        assert!(v.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn already_on_simplex_is_fixed_point() {
        let mut v = vec![0.2, 0.3, 0.5];
        simplex_projection(&mut v);
        assert!((v[0] - 0.2).abs() < 1e-12);
        assert!((v[1] - 0.3).abs() < 1e-12);
        assert!((v[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_shift_removed() {
        // Adding a constant to a simplex point projects back to it.
        let mut v = vec![0.2 + 5.0, 0.3 + 5.0, 0.5 + 5.0];
        simplex_projection(&mut v);
        assert!((v[0] - 0.2).abs() < 1e-9);
        assert!((v[1] - 0.3).abs() < 1e-9);
        assert!((v[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn negative_entries_clipped() {
        let mut v = vec![-1.0, 2.0];
        simplex_projection(&mut v);
        assert_on_simplex(&v);
        assert_eq!(v[0], 0.0);
        assert!((v[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singleton() {
        let mut v = vec![42.0];
        simplex_projection(&mut v);
        assert_eq!(v, vec![1.0]);
    }

    #[test]
    fn zero_vector_projects_to_uniform() {
        let mut v = vec![0.0; 4];
        simplex_projection(&mut v);
        for &x in &v {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_is_idempotent() {
        let mut v = vec![0.9, -0.4, 1.7, 0.05, -2.0];
        simplex_projection(&mut v);
        assert_on_simplex(&v);
        let w = v.clone();
        simplex_projection(&mut v);
        for (a, b) in v.iter().zip(&w) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_minimizes_distance() {
        // Brute-force check against a fine grid on the 2-simplex.
        let target = [0.9, 0.7, -0.1];
        let mut v = target.to_vec();
        simplex_projection(&mut v);
        assert_on_simplex(&v);
        let dist = |w: &[f64]| -> f64 {
            w.iter()
                .zip(&target)
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        };
        let proj_d = dist(&v);
        let steps = 200;
        for i in 0..=steps {
            for j in 0..=(steps - i) {
                let w = [
                    i as f64 / steps as f64,
                    j as f64 / steps as f64,
                    (steps - i - j) as f64 / steps as f64,
                ];
                assert!(dist(&w) >= proj_d - 1e-9);
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_output_on_simplex(v in proptest::collection::vec(-10.0f64..10.0, 1..50)) {
            let mut w = v;
            simplex_projection(&mut w);
            let s: f64 = w.iter().sum();
            proptest::prop_assert!((s - 1.0).abs() < 1e-8);
            proptest::prop_assert!(w.iter().all(|&x| x >= 0.0));
        }

        #[test]
        fn prop_order_preserved(v in proptest::collection::vec(-10.0f64..10.0, 2..30)) {
            // Projection is order-preserving: v_i ≥ v_j ⇒ w_i ≥ w_j.
            let mut w = v.clone();
            simplex_projection(&mut w);
            for i in 0..v.len() {
                for j in 0..v.len() {
                    if v[i] >= v[j] {
                        proptest::prop_assert!(w[i] >= w[j] - 1e-9);
                    }
                }
            }
        }
    }
}
