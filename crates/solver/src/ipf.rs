//! Iterative proportional fitting (IPF) for maximum-entropy weights.
//!
//! The ISOMER baseline [Srivastava et al., ICDE 2006] assigns bucket
//! densities by choosing the **maximum-entropy** distribution consistent
//! with the observed query selectivities. With fractional bucket coverage
//! `f_ij = vol(B_j ∩ R_i)/vol(B_j)` and constraints `Σ_j f_ij w_j = s_i`,
//! `Σ_j w_j = 1`, the I-projection can be computed by cyclically rescaling:
//! for each constraint `i`, multiply the weights by
//! `(s_i/ŝ_i)^{f_ij} · ((1−s_i)/(1−ŝ_i))^{1−f_ij}` — the classic
//! raking/GIS update, which preserves the total mass constraint in the
//! binary-membership case and converges to the max-entropy solution when
//! the constraints are consistent.

use crate::error::{check_finite, check_len, SolverError};
use crate::matrix::DenseMatrix;
use crate::report::SolveReport;

/// IPF configuration.
#[derive(Clone, Debug)]
pub struct IpfOptions {
    /// Maximum full passes over the constraint set.
    pub max_passes: usize,
    /// Stop once every constraint is satisfied to this absolute tolerance.
    pub tol: f64,
    /// Clamp on per-step multiplicative factors, for robustness against
    /// inconsistent constraints (real query feedback can be noisy).
    pub max_factor: f64,
}

impl Default for IpfOptions {
    fn default() -> Self {
        Self {
            max_passes: 200,
            tol: 1e-6,
            max_factor: 1e3,
        }
    }
}

/// IPF output.
#[derive(Clone, Debug)]
pub struct IpfResult {
    /// Bucket weights (sum to 1).
    pub weights: Vec<f64>,
    /// Worst absolute constraint violation at termination.
    pub max_violation: f64,
    /// Passes performed.
    pub passes: usize,
    /// `true` when every constraint was met to tolerance; `false` when
    /// the pass budget ran out (e.g. on inconsistent query feedback).
    pub converged: bool,
    /// The `max_passes` budget the solve ran with (for the report).
    pub max_passes: usize,
}

impl IpfResult {
    /// This solve's outcome as a [`SolveReport`] (`final_residual` is the
    /// worst absolute constraint violation).
    pub fn report(&self) -> SolveReport {
        SolveReport {
            solver: "ipf",
            iters: self.passes,
            max_iters: self.max_passes,
            converged: self.converged,
            final_residual: self.max_violation,
        }
    }
}

/// Computes max-entropy-style weights satisfying `A w ≈ s`, `Σ w = 1`,
/// `w ≥ 0`, where `A[i][j] ∈ [0, 1]` is the fraction of bucket `j` covered
/// by query `i`.
///
/// Returns a typed [`SolverError`] on empty problems, shape mismatches,
/// non-finite inputs, or invalid options.
pub fn ipf_max_entropy(
    a: &DenseMatrix,
    s: &[f64],
    opts: &IpfOptions,
) -> Result<IpfResult, SolverError> {
    let m = a.cols();
    if m == 0 {
        return Err(SolverError::EmptyProblem { solver: "ipf" });
    }
    check_len("ipf", "labels", a.rows(), s.len())?;
    if let Some((index, value)) = a.first_non_finite() {
        return Err(SolverError::NonFiniteInput {
            solver: "ipf",
            what: "coverage matrix",
            index,
            value,
        });
    }
    check_finite("ipf", "labels", s)?;
    if !opts.tol.is_finite() || opts.tol < 0.0 {
        return Err(SolverError::InvalidOptions {
            solver: "ipf",
            what: "tol",
        });
    }
    if !opts.max_factor.is_finite() || opts.max_factor < 1.0 {
        return Err(SolverError::InvalidOptions {
            solver: "ipf",
            what: "max_factor",
        });
    }
    let mut w = vec![1.0 / m as f64; m];
    let mut passes = 0;
    let mut max_violation = violation(a, &w, s);

    for pass in 0..opts.max_passes {
        passes = pass + 1;
        #[allow(clippy::needless_range_loop)] // indexed form is clearer here
        for i in 0..a.rows() {
            let row = a.row(i);
            let shat: f64 = row.iter().zip(&w).map(|(f, wj)| f * wj).sum();
            let si = s[i].clamp(0.0, 1.0);
            // in-factor for covered mass, out-factor to preserve Σw = 1
            let fin = if shat > 1e-12 {
                (si / shat).clamp(1.0 / opts.max_factor, opts.max_factor)
            } else if si > 1e-12 {
                opts.max_factor
            } else {
                1.0
            };
            let fout = if shat < 1.0 - 1e-12 {
                ((1.0 - si) / (1.0 - shat)).clamp(1.0 / opts.max_factor, opts.max_factor)
            } else {
                1.0
            };
            for (j, wj) in w.iter_mut().enumerate() {
                let f = row[j].clamp(0.0, 1.0);
                // geometric interpolation between in- and out-factors
                *wj *= fin.powf(f) * fout.powf(1.0 - f);
            }
            // renormalize (exact for binary coverage, corrective otherwise)
            let total: f64 = w.iter().sum();
            if total > 1e-12 {
                for wj in &mut w {
                    *wj /= total;
                }
            }
        }
        max_violation = violation(a, &w, s);
        if selearn_obs::enabled() {
            selearn_obs::solver_iteration("ipf", pass, max_violation, 0.0);
        }
        if max_violation < opts.tol {
            break;
        }
    }

    let result = IpfResult {
        weights: w,
        max_violation,
        passes,
        converged: max_violation < opts.tol,
        max_passes: opts.max_passes,
    };
    if selearn_obs::sink_installed() {
        result.report().emit();
    }
    Ok(result)
}

fn violation(a: &DenseMatrix, w: &[f64], s: &[f64]) -> f64 {
    a.residual(w, s).iter().map(|r| r.abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_binary_constraint() {
        // Buckets {1, 2}; query covers bucket 1 fully with s = 0.3.
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0]]);
        let r = ipf_max_entropy(&a, &[0.3], &IpfOptions::default()).unwrap();
        assert!(r.max_violation < 1e-6);
        assert!((r.weights[0] - 0.3).abs() < 1e-5);
        assert!((r.weights[1] - 0.7).abs() < 1e-5);
    }

    #[test]
    fn max_entropy_spreads_mass_uniformly() {
        // 3 buckets; query covers buckets 1–2 with s = 0.5. Max-entropy
        // splits 0.5 evenly inside and leaves 0.5 on bucket 3.
        let a = DenseMatrix::from_rows(&[vec![1.0, 1.0, 0.0]]);
        let r = ipf_max_entropy(&a, &[0.5], &IpfOptions::default()).unwrap();
        assert!(r.max_violation < 1e-6);
        assert!((r.weights[0] - 0.25).abs() < 1e-4);
        assert!((r.weights[1] - 0.25).abs() < 1e-4);
        assert!((r.weights[2] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn two_overlapping_constraints() {
        // Buckets {a, b, c}; q1 = {a, b} with s = 0.6, q2 = {b, c} with 0.7.
        // Consistency: w_a + w_b = 0.6, w_b + w_c = 0.7, Σ = 1 ⇒ w_b = 0.3.
        let a = DenseMatrix::from_rows(&[vec![1.0, 1.0, 0.0], vec![0.0, 1.0, 1.0]]);
        let r = ipf_max_entropy(&a, &[0.6, 0.7], &IpfOptions::default()).unwrap();
        assert!(r.max_violation < 1e-5, "violation {}", r.max_violation);
        assert!((r.weights[1] - 0.3).abs() < 1e-3, "{:?}", r.weights);
    }

    #[test]
    fn weights_remain_simplex() {
        let a = DenseMatrix::from_rows(&[
            vec![1.0, 0.5, 0.0, 0.2],
            vec![0.0, 0.5, 1.0, 0.8],
        ]);
        let r = ipf_max_entropy(&a, &[0.4, 0.5], &IpfOptions::default()).unwrap();
        let total: f64 = r.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(r.weights.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn inconsistent_constraints_dont_blow_up() {
        // Contradictory: same bucket must have weight 0.2 and 0.8.
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0]]);
        let r = ipf_max_entropy(&a, &[0.2, 0.8], &IpfOptions::default()).unwrap();
        assert!(r.weights.iter().all(|v| v.is_finite()));
        let total: f64 = r.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_coverage() {
        // Query covers half of bucket 1 (f = 0.5): 0.5 w1 = 0.2 ⇒ w1 = 0.4.
        let a = DenseMatrix::from_rows(&[vec![0.5, 0.0]]);
        let r = ipf_max_entropy(&a, &[0.2], &IpfOptions::default()).unwrap();
        assert!(r.max_violation < 1e-5);
        assert!((r.weights[0] - 0.4).abs() < 1e-3, "{:?}", r.weights);
    }

    #[test]
    fn zero_selectivity_query_empties_buckets() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0, 0.0]]);
        let r = ipf_max_entropy(&a, &[0.0], &IpfOptions::default()).unwrap();
        assert!(r.weights[0] < 1e-6);
        assert!((r.weights[1] - 0.5).abs() < 1e-4);
    }
}
