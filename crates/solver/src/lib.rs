//! Numerical optimization substrate for learned selectivity estimation.
//!
//! The paper's weight-estimation phase (Section 3.1, Equation 8) solves the
//! convex quadratic program
//!
//! ```text
//! minimize   Σ_i (s_D(R_i) − s_i)²
//! subject to Σ_j w_j = 1,   0 ≤ w_j ≤ 1
//! ```
//!
//! over bucket weights `w`. The authors used `scipy.optimize.nnls`; this
//! crate re-implements everything from scratch:
//!
//! * [`DenseMatrix`] — minimal dense linear algebra (matvec, Gram matrices,
//!   Cholesky) sized for the paper's problem scales;
//! * [`nnls::nnls`] — Lawson–Hanson non-negative least squares, with a penalty
//!   row enforcing `Σ w = 1` (the scipy-style pathway);
//! * [`simplex_projection`] — Euclidean projection onto the probability
//!   simplex (Duchi et al. 2008), plus [`fista_simplex_ls`]: accelerated
//!   projected gradient descent, the default scalable solver;
//! * [`linprog::linprog`] — a dense two-phase simplex LP solver used for the exact
//!   `L∞` objective of Section 4.6 and for linear-separability tests in the
//!   theory crate;
//! * [`linf`] — `L∞`-loss fitting, exact (LP) and smoothed (log-sum-exp);
//! * [`ipf`] — iterative proportional fitting for the maximum-entropy
//!   weight assignment used by the ISOMER baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The panic-free gate: unwrap/expect are banned outside test code
// (clippy.toml exempts #[cfg(test)]); CI runs clippy with -D warnings.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod fista;
pub mod ipf;
pub mod isotonic;
pub mod linf;
pub mod linprog;
pub mod matrix;
pub mod nnls;
pub mod report;
pub mod simplex_proj;

pub use error::SolverError;
pub use fista::{fista_simplex_ls, FistaOptions, FistaResult};
pub use ipf::{ipf_max_entropy, IpfOptions, IpfResult};
pub use isotonic::{isotonic_regression, isotonic_regression_unweighted};
pub use linf::{linf_fit_exact, linf_fit_smoothed, linf_fit_smoothed_with_report, LinfOptions};
pub use linprog::{linprog, Constraint, ConstraintOp, LpResult, LpStatus};
pub use matrix::DenseMatrix;
pub use nnls::{nnls, nnls_simplex, nnls_simplex_with_report, nnls_with_report, NnlsOptions};
pub use report::SolveReport;
pub use simplex_proj::{simplex_projection, try_simplex_projection};
