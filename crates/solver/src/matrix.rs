//! Minimal dense linear algebra.
//!
//! Sized for the paper's problem scales: design matrices with up to a few
//! thousand rows (training queries) and columns (buckets). Row-major
//! storage; no BLAS, no unsafe.
//!
//! With the `parallel` feature, [`DenseMatrix::matvec`] and
//! [`DenseMatrix::matvec_t`] fan out across rows / columns on rayon;
//! [`DenseMatrix::residual`], [`DenseMatrix::residual_sq`] and
//! [`DenseMatrix::gram_spectral_norm`] inherit that parallelism. Both
//! parallel kernels keep the serial accumulation order per output element,
//! so results are bitwise identical to the serial build — the FISTA/NNLS
//! iterates (and hence the trained weights) do not change with the feature
//! or the thread count.

use crate::error::SolverError;

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Multiply-add count below which parallel dispatch is skipped: scoped
/// thread spawn costs far more than a small matvec.
#[cfg(feature = "parallel")]
const PAR_WORK_THRESHOLD: usize = 32_768;

#[cfg(feature = "parallel")]
fn par_worthwhile(work: usize) -> bool {
    work >= PAR_WORK_THRESHOLD && rayon::current_num_threads() > 1
}

/// A dense row-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested rows (for tests and small problems).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row length differs from `cols` (unless the matrix is
    /// empty, in which case it sets the width).
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// `y = A x`. Each output element is one independent row dot product,
    /// so the parallel build splits over rows with no change in the
    /// per-element summation order.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        #[cfg(feature = "parallel")]
        if par_worthwhile(self.rows * self.cols) {
            return (0..self.rows)
                .into_par_iter()
                .map(|i| dot(self.row(i), x))
                .collect();
        }
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = dot(self.row(i), x);
        }
        y
    }

    /// `y = Aᵀ x`. The parallel build computes each column sum
    /// independently, accumulating over rows in ascending order with the
    /// same zero-skip as the serial loop — identical association, so the
    /// floating-point result is bitwise equal to the serial one.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch");
        #[cfg(feature = "parallel")]
        if par_worthwhile(self.rows * self.cols) {
            return (0..self.cols)
                .into_par_iter()
                .map(|j| {
                    let mut yj = 0.0;
                    for (i, &xi) in x.iter().enumerate() {
                        if xi == 0.0 {
                            continue;
                        }
                        yj += self.data[i * self.cols + j] * xi;
                    }
                    yj
                })
                .collect();
        }
        let mut y = vec![0.0; self.cols];
        #[allow(clippy::needless_range_loop)] // indexed form is clearer here
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for (j, &a) in self.row(i).iter().enumerate() {
                y[j] += a * xi;
            }
        }
        y
    }

    /// Residual `A x − b` (parallel over rows via [`Self::matvec`]).
    pub fn residual(&self, x: &[f64], b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.rows, "dimension mismatch");
        let mut r = self.matvec(x);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri -= bi;
        }
        r
    }

    /// Squared residual norm `‖A x − b‖²`. The `O(rows·cols)` matvec is
    /// parallel; the `O(rows)` square-and-sum stays serial (it is never the
    /// bottleneck, and the serial fold keeps the reduction order fixed).
    pub fn residual_sq(&self, x: &[f64], b: &[f64]) -> f64 {
        self.residual(x, b).iter().map(|r| r * r).sum()
    }

    /// Largest eigenvalue of `AᵀA` (squared spectral norm of `A`) estimated
    /// by power iteration; used as the Lipschitz constant of the
    /// least-squares gradient in FISTA. Each iteration is one
    /// [`Self::matvec`] plus one [`Self::matvec_t`], so the power method
    /// parallelizes (deterministically) with the `parallel` feature.
    pub fn gram_spectral_norm(&self, iters: usize) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        // deterministic start vector
        let mut v: Vec<f64> = (0..self.cols)
            .map(|j| 1.0 + (j as f64 * 0.618_033_988_749).fract())
            .collect();
        let mut lambda = 0.0;
        for _ in 0..iters {
            let av = self.matvec(&v);
            let atav = self.matvec_t(&av);
            let norm = atav.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm <= f64::MIN_POSITIVE {
                return 0.0;
            }
            lambda = norm;
            for (vi, ai) in v.iter_mut().zip(&atav) {
                *vi = ai / norm;
            }
        }
        lambda
    }

    /// Index (flat, row-major) and value of the first non-finite entry.
    pub fn first_non_finite(&self) -> Option<(usize, f64)> {
        self.data
            .iter()
            .enumerate()
            .find(|(_, v)| !v.is_finite())
            .map(|(i, &v)| (i, v))
    }

    /// Solves the symmetric positive-definite system `M x = b` via
    /// Cholesky, where `M` is `self` (must be square SPD). Returns
    /// [`SolverError::NotSpd`] when the factorization breaks down (matrix
    /// not SPD to tolerance) and a dimension error on shape mismatches.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, SolverError> {
        if self.rows != self.cols {
            return Err(SolverError::DimensionMismatch {
                solver: "solve_spd",
                what: "matrix must be square",
                expected: self.rows,
                got: self.cols,
            });
        }
        if b.len() != self.rows {
            return Err(SolverError::DimensionMismatch {
                solver: "solve_spd",
                what: "right-hand side",
                expected: self.rows,
                got: b.len(),
            });
        }
        let n = self.rows;
        // Cholesky factor L (lower), column-oriented.
        let mut l = vec![0.0f64; n * n];
        for j in 0..n {
            let mut diag = self[(j, j)];
            for k in 0..j {
                diag -= l[j * n + k] * l[j * n + k];
            }
            if diag.is_nan() || diag <= 1e-14 {
                // non-positive or NaN pivot: not SPD to tolerance
                return Err(SolverError::NotSpd);
            }
            let dj = diag.sqrt();
            l[j * n + j] = dj;
            for i in (j + 1)..n {
                let mut v = self[(i, j)];
                for k in 0..j {
                    v -= l[i * n + k] * l[j * n + k];
                }
                l[i * n + j] = v / dj;
            }
        }
        // forward substitution L y = b
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                let t = l[i * n + k] * y[k];
                y[i] -= t;
            }
            y[i] /= l[i * n + i];
        }
        // back substitution Lᵀ x = y
        let mut x = y;
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let t = l[k * n + i] * x[k];
                x[i] -= t;
            }
            x[i] /= l[i * n + i];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_basic() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.matvec_t(&[1.0, 0.0, 1.0]), vec![6.0, 8.0]);
    }

    #[test]
    fn residual_and_norm() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let r = a.residual(&[2.0, 3.0], &[1.0, 1.0]);
        assert_eq!(r, vec![1.0, 2.0]);
        assert_eq!(a.residual_sq(&[2.0, 3.0], &[1.0, 1.0]), 5.0);
    }

    #[test]
    fn push_row_builds_matrix() {
        let mut m = DenseMatrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn identity_matvec() {
        let i = DenseMatrix::identity(3);
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn spd_solve_exact() {
        // M = [[4,1],[1,3]], b = [1,2] → x = [1/11, 7/11]
        let m = DenseMatrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let x = m.solve_spd(&[1.0, 2.0]).unwrap();
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn spd_solve_rejects_indefinite() {
        let m = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert_eq!(m.solve_spd(&[1.0, 1.0]), Err(SolverError::NotSpd));
    }

    #[test]
    fn spd_solve_rejects_shape_mismatch() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!(matches!(
            m.solve_spd(&[1.0]),
            Err(SolverError::DimensionMismatch { .. })
        ));
        let rect = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            rect.solve_spd(&[1.0, 1.0]),
            Err(SolverError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn spd_solve_nan_matrix_is_error_not_panic() {
        let m = DenseMatrix::from_rows(&[vec![f64::NAN, 0.0], vec![0.0, 1.0]]);
        assert_eq!(m.solve_spd(&[1.0, 1.0]), Err(SolverError::NotSpd));
    }

    #[test]
    fn spd_solve_larger_system() {
        // Build SPD M = AᵀA + I for a random-ish A and verify M x̂ ≈ b.
        let a = DenseMatrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![0.0, 1.0, 1.5],
            vec![2.0, 0.0, 1.0],
            vec![1.0, 1.0, 1.0],
        ]);
        let n = a.cols();
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for k in 0..a.rows() {
                    s += a[(k, i)] * a[(k, j)];
                }
                m[(i, j)] = s;
            }
        }
        let b = vec![1.0, -2.0, 3.0];
        let x = m.solve_spd(&b).unwrap();
        let back = m.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn spectral_norm_of_diagonal() {
        let m = DenseMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]);
        // ‖A‖² = 9 for diag(3,1)
        let s = m.gram_spectral_norm(100);
        assert!((s - 9.0).abs() < 1e-6, "s = {s}");
    }

    #[test]
    fn spectral_norm_upper_bounds_rayleigh() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let s = a.gram_spectral_norm(200);
        // Rayleigh quotient of any unit vector is ≤ s (plus tolerance).
        for v in [[1.0, 0.0], [0.0, 1.0], [0.707, 0.707]] {
            let av = a.matvec(&v);
            let num: f64 = av.iter().map(|x| x * x).sum();
            let den: f64 = v.iter().map(|x| x * x).sum();
            assert!(num / den <= s + 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_size_mismatch_panics() {
        let _ = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    /// Cross-checks the parallel kernels against hand-rolled serial loops
    /// on a matrix large enough to cross the dispatch threshold. Exact
    /// bitwise equality is required, not an epsilon.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_matvecs_bitwise_match_serial() {
        let rows = 300;
        let cols = 200;
        let data: Vec<f64> = (0..rows * cols)
            .map(|k| ((k as f64) * 0.37).sin() / 3.0)
            .collect();
        let a = DenseMatrix::from_vec(rows, cols, data);
        let x: Vec<f64> = (0..cols).map(|j| ((j as f64) * 0.11).cos()).collect();
        // every third entry zero so the zero-skip path is exercised
        let z: Vec<f64> = (0..rows)
            .map(|i| if i % 3 == 0 { 0.0 } else { (i as f64).sqrt() })
            .collect();

        let mut want = vec![0.0; rows];
        for (i, w) in want.iter_mut().enumerate() {
            *w = dot(a.row(i), &x);
        }
        let got = a.matvec(&x);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }

        let mut want_t = vec![0.0; cols];
        for (i, &zi) in z.iter().enumerate() {
            if zi == 0.0 {
                continue;
            }
            for (j, &v) in a.row(i).iter().enumerate() {
                want_t[j] += v * zi;
            }
        }
        let got_t = a.matvec_t(&z);
        for (g, w) in got_t.iter().zip(&want_t) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }
}
