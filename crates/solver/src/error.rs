//! Typed errors for the optimization substrate.
//!
//! Served deployments feed the solvers with query-driven data (Equation 8's
//! design matrix and selectivity labels) that the library does not control.
//! Every public solver entry point validates its inputs and reports
//! problems through [`SolverError`] — carrying the solver name and the
//! offending component — instead of panicking mid-iteration.

use std::error::Error;
use std::fmt;

/// Errors produced by the numerical solvers.
#[derive(Clone, Debug, PartialEq)]
pub enum SolverError {
    /// An input vector or matrix entry was NaN or infinite.
    NonFiniteInput {
        /// The solver that rejected the input.
        solver: &'static str,
        /// Which argument carried the value (`"design matrix"`, `"labels"`, …).
        what: &'static str,
        /// Flat index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Two arguments that must agree in size did not.
    DimensionMismatch {
        /// The solver that rejected the input.
        solver: &'static str,
        /// What was being matched.
        what: &'static str,
        /// Expected size.
        expected: usize,
        /// Actual size.
        got: usize,
    },
    /// The problem has no variables (zero columns / empty vector).
    EmptyProblem {
        /// The solver that rejected the input.
        solver: &'static str,
    },
    /// An options field was invalid (non-positive tolerance, NaN penalty, …).
    InvalidOptions {
        /// The solver that rejected its options.
        solver: &'static str,
        /// Which field was invalid.
        what: &'static str,
    },
    /// Cholesky factorization broke down: the matrix is not SPD to tolerance.
    NotSpd,
    /// The inner LP terminated without an optimal solution.
    LpNotOptimal {
        /// The solver that ran the LP.
        solver: &'static str,
        /// Terminal LP status, rendered (`"infeasible"` / `"unbounded"`).
        status: &'static str,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::NonFiniteInput {
                solver,
                what,
                index,
                value,
            } => write!(f, "{solver}: non-finite {what} entry {index}: {value}"),
            SolverError::DimensionMismatch {
                solver,
                what,
                expected,
                got,
            } => write!(f, "{solver}: {what} size mismatch: expected {expected}, got {got}"),
            SolverError::EmptyProblem { solver } => {
                write!(f, "{solver}: problem has no variables")
            }
            SolverError::InvalidOptions { solver, what } => {
                write!(f, "{solver}: invalid option {what}")
            }
            SolverError::NotSpd => write!(f, "matrix is not symmetric positive definite"),
            SolverError::LpNotOptimal { solver, status } => {
                write!(f, "{solver}: inner LP terminated {status}")
            }
        }
    }
}

impl Error for SolverError {}

/// Validates that every entry of `x` is finite.
pub(crate) fn check_finite(
    solver: &'static str,
    what: &'static str,
    x: &[f64],
) -> Result<(), SolverError> {
    match x.iter().position(|v| !v.is_finite()) {
        Some(index) => Err(SolverError::NonFiniteInput {
            solver,
            what,
            index,
            value: x[index],
        }),
        None => Ok(()),
    }
}

/// Validates that `got == expected`.
pub(crate) fn check_len(
    solver: &'static str,
    what: &'static str,
    expected: usize,
    got: usize,
) -> Result<(), SolverError> {
    if expected == got {
        Ok(())
    } else {
        Err(SolverError::DimensionMismatch {
            solver,
            what,
            expected,
            got,
        })
    }
}
