//! Frozen-vs-original equivalence: `freeze()` is a pure layout change.
//!
//! The contract (see `selearn_core::frozen`) is that a [`FrozenEstimator`]
//! returns **bit-identical** estimates to the pointer-based model it was
//! compiled from — same traversal order, same operand order, same clamps.
//! These properties exercise that contract for every model family on
//! adversarial query mixes:
//!
//! * random rects straddling the domain boundary,
//! * degenerate (zero-width) rects,
//! * rects entirely outside the trained root (empty intersection),
//! * rects covering the whole domain,
//! * non-rectangular ranges (balls, halfspaces) on the generic path,
//! * batch entry points (`estimate_into`, `estimate_all`),
//! * persist round-trips restored straight into the frozen layout.

use proptest::prelude::*;
use selearn_core::{
    load_frozen, save_ptshist, save_quadhist, ArrangementHist, ArrangementHistConfig, Cdf1D,
    Cdf1DConfig, FrozenEstimator, GaussHist, GaussHistConfig, PtsHist, PtsHistConfig, QuadHist,
    QuadHistConfig, SelectivityEstimator, TrainingQuery,
};
use selearn_geom::{Ball, Halfspace, Point, Range, Rect};

/// 2-D training workload from a flat parameter pool; five values per query
/// (center x/y, width x/y, label).
fn training_2d(pool: &[f64]) -> Vec<TrainingQuery> {
    pool.chunks_exact(5)
        .map(|c| {
            let center = Point::new(vec![c[0], c[1]]);
            let widths = [c[2].max(0.05), c[3].max(0.05)];
            TrainingQuery::new(Rect::from_center_widths(&center, &widths), c[4])
        })
        .collect()
}

/// Adversarial 2-D query mix from a flat pool (four values per rect),
/// plus fixed degenerate / outside / covering cases.
fn query_mix_2d(pool: &[f64]) -> Vec<Range> {
    let mut out: Vec<Range> = pool
        .chunks_exact(4)
        .map(|c| {
            // Straddle the unit domain: lo ∈ [-0.5, 1.5).
            let lo = [c[0] * 2.0 - 0.5, c[1] * 2.0 - 0.5];
            Rect::new(
                vec![lo[0], lo[1]],
                vec![lo[0] + c[2] * 0.8, lo[1] + c[3] * 0.8],
            )
            .into()
        })
        .collect();
    // Degenerate: zero width in one / both dims.
    out.push(Rect::new(vec![0.3, 0.1], vec![0.3, 0.9]).into());
    out.push(Rect::new(vec![0.25, 0.75], vec![0.25, 0.75]).into());
    // Entirely outside the unit root: every intersection is empty.
    out.push(Rect::new(vec![1.5, 1.5], vec![2.0, 1.75]).into());
    out.push(Rect::new(vec![-3.0, -2.0], vec![-1.0, -0.5]).into());
    // Covers the whole domain (and then some).
    out.push(Rect::new(vec![-1.0, -1.0], vec![2.0, 2.0]).into());
    out
}

/// Mixed-shape 2-D training workload from a flat parameter pool; five
/// values per query, cycling rect → halfspace → ball so every fit path
/// sees every shape family in one batch.
fn training_mixed_2d(pool: &[f64]) -> Vec<TrainingQuery> {
    pool.chunks_exact(5)
        .enumerate()
        .map(|(i, c)| {
            let center = Point::new(vec![c[0], c[1]]);
            let range: Range = match i % 3 {
                0 => {
                    let widths = [c[2].max(0.05), c[3].max(0.05)];
                    Rect::from_center_widths(&center, &widths).into()
                }
                1 => {
                    // Angle from the pool; the plane passes through center.
                    let theta = c[2] * std::f64::consts::TAU;
                    let normal = vec![theta.cos(), theta.sin()];
                    Halfspace::through_point(&center, normal).into()
                }
                _ => Ball::new(center, c[2].max(0.05) * 0.5).into(),
            };
            TrainingQuery::new(range, c[4])
        })
        .collect()
}

/// Randomized non-rectangular queries from a flat pool (four values per
/// query, alternating halfspace / ball), exercising the generic path with
/// shapes the fixed spot checks cannot cover.
fn random_generic_queries_2d(pool: &[f64]) -> Vec<Range> {
    pool.chunks_exact(4)
        .enumerate()
        .map(|(i, c)| {
            let center = Point::new(vec![c[0], c[1]]);
            if i % 2 == 0 {
                let theta = c[2] * std::f64::consts::TAU;
                Halfspace::through_point(&center, vec![theta.cos(), theta.sin()]).into()
            } else {
                Ball::new(center, c[2] * 0.7 + 0.01).into()
            }
        })
        .collect()
}

/// Non-rectangular spot checks for the generic estimation path.
fn generic_queries_2d() -> Vec<Range> {
    vec![
        Ball::new(Point::new(vec![0.4, 0.6]), 0.25).into(),
        Ball::new(Point::new(vec![1.8, 1.8]), 0.1).into(),
        Halfspace::new(vec![1.0, 0.0], 0.5).into(),
        Halfspace::new(vec![-1.0, -1.0], -0.3).into(),
    ]
}

/// Asserts bit-identical estimates plus batch-path agreement.
fn assert_equivalent(
    model: &dyn SelectivityEstimator,
    frozen: &FrozenEstimator,
    queries: &[Range],
) -> Result<(), TestCaseError> {
    for q in queries {
        let a = model.estimate(q);
        let b = frozen.estimate(q);
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "frozen {} diverged from {}: {} vs {} on {:?}",
            frozen.name(),
            model.name(),
            a,
            b,
            q
        );
    }
    // Batch entry points reduce to the same per-query scalar path.
    let mut out = vec![f64::NAN; queries.len()];
    frozen.estimate_into(queries, &mut out);
    let all = model.estimate_all(queries);
    for (i, (x, y)) in out.iter().zip(&all).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "batch divergence at query {}", i);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn quadhist_freeze_is_bitwise(
        train_pool in proptest::collection::vec(0.0f64..1.0, 50),
        query_pool in proptest::collection::vec(0.0f64..1.0, 48),
    ) {
        let train = training_2d(&train_pool);
        let model =
            QuadHist::fit(Rect::unit(2), &train, &QuadHistConfig::with_tau(0.05)).unwrap();
        let frozen = model.freeze();
        let mut queries = query_mix_2d(&query_pool);
        queries.extend(generic_queries_2d());
        assert_equivalent(&model, &frozen, &queries)?;
        prop_assert_eq!(model.num_buckets(), frozen.num_buckets());
        prop_assert_eq!(frozen.name(), "FrozenQuadHist");
    }

    #[test]
    fn ptshist_freeze_is_bitwise(
        train_pool in proptest::collection::vec(0.0f64..1.0, 50),
        query_pool in proptest::collection::vec(0.0f64..1.0, 48),
    ) {
        let train = training_2d(&train_pool);
        let cfg = PtsHistConfig { model_size: 64, ..Default::default() };
        let model = PtsHist::fit(Rect::unit(2), &train, &cfg).unwrap();
        let frozen = model.freeze();
        let mut queries = query_mix_2d(&query_pool);
        queries.extend(generic_queries_2d());
        assert_equivalent(&model, &frozen, &queries)?;
        prop_assert_eq!(model.num_buckets(), frozen.num_buckets());
        prop_assert_eq!(frozen.name(), "FrozenPtsHist");
    }

    #[test]
    fn gausshist_freeze_is_bitwise(
        train_pool in proptest::collection::vec(0.0f64..1.0, 50),
        query_pool in proptest::collection::vec(0.0f64..1.0, 48),
    ) {
        let train = training_2d(&train_pool);
        let cfg = GaussHistConfig { model_size: 32, qmc_samples: 128, ..Default::default() };
        let model = GaussHist::fit(Rect::unit(2), &train, &cfg).unwrap();
        let frozen = model.freeze();
        let mut queries = query_mix_2d(&query_pool);
        queries.extend(generic_queries_2d());
        assert_equivalent(&model, &frozen, &queries)?;
        prop_assert_eq!(frozen.name(), "FrozenGaussHist");
    }

    #[test]
    fn arrangement_freeze_is_bitwise(
        train_pool in proptest::collection::vec(0.0f64..1.0, 20),
        query_pool in proptest::collection::vec(0.0f64..1.0, 32),
        discrete_coin in 0.0f64..1.0,
    ) {
        let discrete = discrete_coin < 0.5;
        let train = training_2d(&train_pool);
        let cfg = ArrangementHistConfig { discrete, ..Default::default() };
        let model = ArrangementHist::fit(Rect::unit(2), &train, &cfg).unwrap();
        let frozen = model.freeze();
        let mut queries = query_mix_2d(&query_pool);
        queries.extend(generic_queries_2d());
        assert_equivalent(&model, &frozen, &queries)?;
        prop_assert_eq!(model.num_buckets(), frozen.num_buckets());
    }

    #[test]
    fn cdf1d_freeze_is_bitwise(
        train_pool in proptest::collection::vec(0.0f64..1.0, 30),
        query_pool in proptest::collection::vec(0.0f64..1.0, 20),
    ) {
        let train: Vec<TrainingQuery> = train_pool
            .chunks_exact(3)
            .map(|c| {
                let (a, b) = if c[0] <= c[1] { (c[0], c[1]) } else { (c[1], c[0]) };
                TrainingQuery::new(Rect::new(vec![a], vec![b]), c[2])
            })
            .collect();
        let model = Cdf1D::fit(&train, &Cdf1DConfig::default()).unwrap();
        let frozen = model.freeze();
        let mut queries: Vec<Range> = query_pool
            .chunks_exact(2)
            .map(|c| {
                let lo = c[0] * 2.0 - 0.5;
                Rect::new(vec![lo], vec![lo + c[1]]).into()
            })
            .collect();
        queries.push(Rect::new(vec![0.4], vec![0.4]).into());
        queries.push(Rect::new(vec![-2.0], vec![-1.0]).into());
        queries.push(Rect::new(vec![-1.0], vec![2.0]).into());
        assert_equivalent(&model, &frozen, &queries)?;
        prop_assert_eq!(frozen.name(), "FrozenCdf1D");
    }

    #[test]
    fn quadhist_fit_on_mixed_shapes_freezes_bitwise(
        train_pool in proptest::collection::vec(0.0f64..1.0, 60),
        query_pool in proptest::collection::vec(0.0f64..1.0, 32),
    ) {
        // The estimator is trained on a batch mixing rects, halfspaces,
        // and balls — the end-to-end mixed-shape contract — then frozen;
        // both forms must agree bitwise on an equally mixed query stream.
        let train = training_mixed_2d(&train_pool);
        let model =
            QuadHist::fit(Rect::unit(2), &train, &QuadHistConfig::with_tau(0.05)).unwrap();
        let frozen = model.freeze();
        let mut queries = query_mix_2d(&query_pool);
        queries.extend(random_generic_queries_2d(&query_pool));
        queries.extend(generic_queries_2d());
        assert_equivalent(&model, &frozen, &queries)?;
        prop_assert_eq!(model.num_buckets(), frozen.num_buckets());
    }

    #[test]
    fn ptshist_fit_on_mixed_shapes_freezes_bitwise(
        train_pool in proptest::collection::vec(0.0f64..1.0, 60),
        query_pool in proptest::collection::vec(0.0f64..1.0, 32),
    ) {
        let train = training_mixed_2d(&train_pool);
        let cfg = PtsHistConfig { model_size: 64, ..Default::default() };
        let model = PtsHist::fit(Rect::unit(2), &train, &cfg).unwrap();
        let frozen = model.freeze();
        let mut queries = query_mix_2d(&query_pool);
        queries.extend(random_generic_queries_2d(&query_pool));
        assert_equivalent(&model, &frozen, &queries)?;
    }

    #[test]
    fn gausshist_fit_on_mixed_shapes_freezes_bitwise(
        train_pool in proptest::collection::vec(0.0f64..1.0, 60),
        query_pool in proptest::collection::vec(0.0f64..1.0, 32),
    ) {
        let train = training_mixed_2d(&train_pool);
        let cfg = GaussHistConfig { model_size: 32, qmc_samples: 128, ..Default::default() };
        let model = GaussHist::fit(Rect::unit(2), &train, &cfg).unwrap();
        let frozen = model.freeze();
        let mut queries = query_mix_2d(&query_pool);
        queries.extend(random_generic_queries_2d(&query_pool));
        assert_equivalent(&model, &frozen, &queries)?;
    }

    #[test]
    fn persist_round_trip_restores_frozen_layout(
        train_pool in proptest::collection::vec(0.0f64..1.0, 40),
        query_pool in proptest::collection::vec(0.0f64..1.0, 32),
    ) {
        let train = training_2d(&train_pool);
        let mut queries = query_mix_2d(&query_pool);
        queries.extend(generic_queries_2d());

        // QuadHist: save → load_frozen must agree bitwise with the frozen
        // form of the reloaded pointer model (restore goes straight into
        // the flat layout — no pointer tree is ever rebuilt for serving).
        let qh = QuadHist::fit(Rect::unit(2), &train, &QuadHistConfig::with_tau(0.05)).unwrap();
        let mut buf = Vec::new();
        save_quadhist(&qh, &mut buf).unwrap();
        let frozen = load_frozen(&buf[..]).unwrap();
        prop_assert_eq!(frozen.name(), "FrozenQuadHist");
        let reloaded = selearn_core::load_quadhist(&buf[..]).unwrap();
        assert_equivalent(&reloaded, &frozen, &queries)?;

        // PtsHist: same contract through the other loader arm.
        let cfg = PtsHistConfig { model_size: 48, ..Default::default() };
        let ph = PtsHist::fit(Rect::unit(2), &train, &cfg).unwrap();
        let mut buf = Vec::new();
        save_ptshist(&ph, &mut buf).unwrap();
        let frozen = load_frozen(&buf[..]).unwrap();
        prop_assert_eq!(frozen.name(), "FrozenPtsHist");
        let reloaded = selearn_core::load_ptshist(&buf[..]).unwrap();
        assert_equivalent(&reloaded, &frozen, &queries)?;
    }
}

#[test]
fn load_frozen_rejects_unknown_family() {
    let text = "selearn-model v1\ngausshist 2\nend\n";
    assert!(load_frozen(text.as_bytes()).is_err());
}

#[test]
fn frozen_root_exposes_trained_domain() {
    let train = vec![TrainingQuery::new(
        Rect::new(vec![0.1, 0.1], vec![0.6, 0.6]),
        0.4,
    )];
    let qh = QuadHist::fit(Rect::unit(2), &train, &QuadHistConfig::with_tau(0.1)).unwrap();
    let frozen = qh.freeze();
    assert_eq!(frozen.root(), Some(&Rect::unit(2)));
    assert!(frozen.solve_report().is_some());
}
