//! Metamorphic properties of the trained estimators.
//!
//! Every model in this crate represents a probability distribution, so its
//! selectivity function must behave like a measure regardless of the
//! (noisy, random) workload it was trained on:
//!
//! * **range of values** — `ŝ(R) ∈ [0, 1]` for any query range;
//! * **containment monotonicity** — `R₁ ⊆ R₂ ⇒ ŝ(R₁) ≤ ŝ(R₂)`.
//!
//! The workloads here are synthetic and deliberately arbitrary (random
//! rectangles with random pseudo-labels): the properties must hold for
//! *any* training input, not just realistic ones.

use proptest::prelude::*;
use selearn_core::{
    Cdf1D, Cdf1DConfig, PtsHist, PtsHistConfig, QuadHist, QuadHistConfig, SelectivityEstimator,
    TrainingQuery,
};
use selearn_geom::{Point, Range, Rect};

/// Slack for the monotonicity checks: QuadHist compares two closed-form
/// rect intersections per bucket, so only rounding noise is tolerated.
const MONO_TOL: f64 = 1e-9;

/// Builds a 2-D training workload from a flat parameter pool: each query
/// consumes five values (center x/y, width x/y, label).
fn training_2d(pool: &[f64]) -> Vec<TrainingQuery> {
    pool.chunks_exact(5)
        .map(|c| {
            let center = Point::new(vec![c[0], c[1]]);
            let widths = [c[2].max(0.05), c[3].max(0.05)];
            TrainingQuery::new(Rect::from_center_widths(&center, &widths), c[4])
        })
        .collect()
}

/// A nested query pair inside the unit square: the inner rect shrinks the
/// outer one toward its center by the (positive) factors in `t`.
fn nested_pair(c: &[f64]) -> (Range, Range) {
    let center = Point::new(vec![c[0], c[1]]);
    let outer_w = [c[2].max(0.1), c[3].max(0.1)];
    let inner_w = [outer_w[0] * c[4], outer_w[1] * c[5]];
    let outer = Rect::from_center_widths(&center, &outer_w);
    let inner = Rect::from_center_widths(&center, &inner_w);
    (Range::Rect(inner), Range::Rect(outer))
}

fn check_model(
    model: &dyn SelectivityEstimator,
    pairs: &[(Range, Range)],
) -> Result<(), TestCaseError> {
    for (inner, outer) in pairs {
        let si = model.estimate(inner);
        let so = model.estimate(outer);
        prop_assert!((0.0..=1.0).contains(&si), "estimate out of range: {si}");
        prop_assert!((0.0..=1.0).contains(&so), "estimate out of range: {so}");
        prop_assert!(
            si <= so + MONO_TOL,
            "containment violated: inner {si} > outer {so} ({})",
            model.name()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn quadhist_estimates_bounded_and_monotone(
        train_pool in proptest::collection::vec(0.0f64..1.0, 60),
        query_pool in proptest::collection::vec(0.01f64..1.0, 60),
    ) {
        let train = training_2d(&train_pool);
        let model = QuadHist::fit(Rect::unit(2), &train, &QuadHistConfig::with_tau(0.05)).unwrap();
        let pairs: Vec<_> = query_pool.chunks_exact(6).map(nested_pair).collect();
        check_model(&model, &pairs)?;
    }

    #[test]
    fn ptshist_estimates_bounded_and_monotone(
        train_pool in proptest::collection::vec(0.0f64..1.0, 60),
        query_pool in proptest::collection::vec(0.01f64..1.0, 60),
        seed in 0u64..1_000,
    ) {
        let train = training_2d(&train_pool);
        let mut cfg = PtsHistConfig::with_model_size(64);
        cfg.seed = seed;
        let model = PtsHist::fit(Rect::unit(2), &train, &cfg).unwrap();
        let pairs: Vec<_> = query_pool.chunks_exact(6).map(nested_pair).collect();
        check_model(&model, &pairs)?;
    }

    #[test]
    fn cdf1d_estimates_bounded_and_monotone(
        train_pool in proptest::collection::vec(0.0f64..1.0, 45),
        query_pool in proptest::collection::vec(0.01f64..1.0, 40),
    ) {
        // 1-D intervals: each training query consumes (lo, width, label)
        let train: Vec<TrainingQuery> = train_pool
            .chunks_exact(3)
            .map(|c| {
                let lo = c[0].min(0.95);
                let hi = (lo + c[1].max(0.01)).min(1.0);
                TrainingQuery::new(Rect::new(vec![lo], vec![hi]), c[2])
            })
            .collect();
        let model = Cdf1D::fit(&train, &Cdf1DConfig::default()).unwrap();
        let pairs: Vec<_> = query_pool
            .chunks_exact(4)
            .map(|c| {
                let lo = c[0].min(0.9);
                let hi = (lo + c[1].max(0.02)).min(1.0);
                // inner interval: shrink from both ends
                let ilo = lo + (hi - lo) * 0.5 * c[2];
                let ihi = hi - (hi - lo) * 0.5 * c[3].min(1.0 - c[2]).max(0.0);
                (
                    Range::Rect(Rect::new(vec![ilo], vec![ihi.max(ilo)])),
                    Range::Rect(Rect::new(vec![lo], vec![hi])),
                )
            })
            .collect();
        check_model(&model, &pairs)?;
    }
}
