//! Scale tests for the restore path and the online learner: thousands of
//! buckets and tens of thousands of feedback records, with explicit
//! performance guards on the indexed (non-quadratic) restore.

use selearn_core::{
    load_quadhist, save_quadhist, OnlineQuadHist, QuadHist, QuadHistConfig, SelectivityEstimator,
    TrainingQuery,
};
use selearn_geom::{Rect, VolumeEstimator};
use std::collections::VecDeque;
use std::time::Instant;

/// BFS-splits `root` into at least `target` congruent-by-level quadtree
/// leaves (each split replaces one leaf with 2^d children).
fn partition(root: &Rect, target: usize) -> Vec<Rect> {
    let mut queue: VecDeque<Rect> = VecDeque::from([root.clone()]);
    while queue.len() < target {
        let cell = queue.pop_front().unwrap();
        queue.extend(cell.split());
    }
    queue.into()
}

/// Deterministic pseudo-random stream without a dev-dependency: a 64-bit
/// splitmix step mapped to `[0, 1)`.
struct Mix(u64);
impl Mix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn weighted_buckets(cells: Vec<Rect>) -> Vec<(Rect, f64)> {
    let n = cells.len();
    let total: f64 = (1..=n).map(|i| i as f64).sum();
    cells
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, (i + 1) as f64 / total))
        .collect()
}

#[test]
fn five_thousand_bucket_round_trip_is_bit_for_bit() {
    let root = Rect::new(vec![0.0, 0.0], vec![1e6, 1e6]);
    let buckets = weighted_buckets(partition(&root, 5000));
    assert!(buckets.len() >= 5000);

    let model = QuadHist::from_buckets(root.clone(), &buckets, VolumeEstimator::default())
        .expect("restore");
    let mut dump = Vec::new();
    save_quadhist(&model, &mut dump).expect("save");

    let t0 = Instant::now();
    let loaded = load_quadhist(dump.as_slice()).expect("load");
    let load_time = t0.elapsed();

    // The hex-bit persist format plus the lattice-indexed restore must
    // round-trip every coordinate and weight exactly.
    let a = model.buckets();
    let b = loaded.buckets();
    assert_eq!(a.len(), b.len());
    for ((ra, wa), (rb, wb)) in a.iter().zip(&b) {
        assert_eq!(wa.to_bits(), wb.to_bits(), "weight not bit-for-bit");
        assert_eq!(ra.lo(), rb.lo());
        assert_eq!(ra.hi(), rb.hi());
    }

    // Restore-time guard: parsing + rebuilding 5k buckets is indexed work,
    // not quadratic search. Generous bound for slow CI machines — the
    // old find-based path took tens of seconds here.
    assert!(
        load_time.as_secs_f64() < 5.0,
        "5k-bucket load took {load_time:?}"
    );

    // And the loaded model answers like the original.
    let probe: selearn_geom::Range = Rect::new(vec![1e5, 2e5], vec![6e5, 7e5]).into();
    assert_eq!(
        model.estimate(&probe).to_bits(),
        loaded.estimate(&probe).to_bits()
    );
}

#[test]
fn indexed_restore_beats_linear_find_by_10x_at_10k_buckets() {
    let root = Rect::unit(2);
    let buckets = weighted_buckets(partition(&root, 10_000));
    assert!(buckets.len() >= 10_000);

    // Indexed path: the real restore.
    let t0 = Instant::now();
    let model = QuadHist::from_buckets(root.clone(), &buckets, VolumeEstimator::default())
        .expect("restore");
    let indexed = t0.elapsed();
    assert_eq!(model.num_buckets(), buckets.len());

    // Reference: the pre-fix matching strategy — for every leaf, linearly
    // scan the bucket list comparing corners under tolerance. Same work
    // the old `find`-based loop did per leaf, reproduced here so the
    // speedup assertion keeps guarding the O(n log n) property.
    let leaves = model.buckets();
    let t1 = Instant::now();
    let mut matched = 0usize;
    for (cell, _) in &leaves {
        let hit = buckets.iter().position(|(r, _)| {
            r.lo()
                .iter()
                .zip(cell.lo())
                .chain(r.hi().iter().zip(cell.hi()))
                .all(|(a, b)| (a - b).abs() < 1e-9)
        });
        matched += usize::from(hit.is_some());
    }
    let linear = t1.elapsed();
    assert_eq!(matched, leaves.len(), "reference matcher must succeed");

    assert!(
        linear >= indexed * 10,
        "indexed restore must be >= 10x faster than linear find: \
         indexed {indexed:?}, linear {linear:?}"
    );
}

#[test]
fn online_survives_50k_record_stream_with_bounded_window() {
    const STREAM: usize = 50_000;
    const CAP: usize = 1_000;

    let root = Rect::unit(2);
    let config = QuadHistConfig {
        max_leaves: 128,
        ..QuadHistConfig::with_tau(0.05)
    };
    let make = || {
        OnlineQuadHist::new(root.clone(), config.clone(), 5_000)
            .expect("construct")
            .with_history_cap(CAP)
    };
    let mut online = make();
    let mut twin = make();

    let mut rng = Mix(42);
    for i in 0..STREAM {
        let (a, b) = (rng.next_f64(), rng.next_f64());
        let (c, d) = (rng.next_f64(), rng.next_f64());
        let lo = vec![a.min(b), c.min(d)];
        let hi = vec![a.max(b), c.max(d)];
        // Uniform ground truth: selectivity = box volume.
        let sel: f64 = lo.iter().zip(&hi).map(|(l, h)| h - l).product();
        let q = TrainingQuery::new(Rect::new(lo, hi), sel);
        online.observe(q.clone()).expect("observe");
        twin.observe(q).expect("observe twin");
        // The memory bound must hold throughout the stream, not just at
        // the end — a late trim would still be unbounded growth.
        if i % 10_000 == 0 {
            assert!(online.history_len() <= CAP);
        }
    }

    assert_eq!(online.observations(), STREAM);
    assert_eq!(online.history_len(), CAP, "window must sit exactly at cap");
    online.refit().expect("refit");
    twin.refit().expect("refit twin");

    // Estimates are valid probabilities, track uniform truth sanely, and
    // the whole ingest→refit pipeline is deterministic.
    let mut probe_rng = Mix(7);
    let mut worst: f64 = 0.0;
    for _ in 0..200 {
        let (a, b) = (probe_rng.next_f64(), probe_rng.next_f64());
        let (c, d) = (probe_rng.next_f64(), probe_rng.next_f64());
        let lo = vec![a.min(b), c.min(d)];
        let hi = vec![a.max(b), c.max(d)];
        let truth: f64 = lo.iter().zip(&hi).map(|(l, h)| h - l).product();
        let probe: selearn_geom::Range = Rect::new(lo, hi).into();
        let est = online.estimate(&probe);
        assert!((0.0..=1.0).contains(&est), "estimate {est} out of range");
        assert_eq!(
            est.to_bits(),
            twin.estimate(&probe).to_bits(),
            "same stream, same cap => bitwise-identical estimates"
        );
        worst = worst.max((est - truth).abs());
    }
    assert!(worst < 0.15, "uniform-data model off by {worst}");

    // Freezing the online model onto its window still works at scale.
    let frozen = online.freeze().expect("freeze");
    assert!(frozen.num_buckets() >= 1);
}
