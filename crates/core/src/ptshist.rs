//! PtsHist — the discrete distribution of Section 3.3.
//!
//! For high dimensions, rectangles are poor density carriers and
//! box/range intersection volumes get expensive, so PtsHist represents the
//! learned distribution as a set of weighted **points**. Bucket design:
//! given target model size `k`,
//!
//! 1. draw `0.9k` points from training-query interiors, each query
//!    receiving a share proportional to its selectivity
//!    (`s_i / Σ_j s_j · 0.9k` points, rejection-sampled from the query's
//!    smallest bounding box — Appendix A.2);
//! 2. draw the remaining `0.1k` uniformly from the whole space, so regions
//!    not covered by any training query can still receive density.
//!
//! The sample is *not* unbiased for any data distribution — and need not
//! be (Section 3.3, Remarks): the weight-estimation phase makes the model
//! consistent with the workload.

use crate::assemble::assemble_design_matrix;
use crate::error::SelearnError;
use crate::estimator::{SelectivityEstimator, TrainingQuery};
use crate::weights::{estimate_weights_with_report, Objective, WeightSolver};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selearn_geom::{sample_in_rect, KdTree, Point, Range, RangeQuery, Rect, RejectionSampler};
use selearn_solver::SolveReport;

/// PtsHist configuration.
#[derive(Clone, Debug)]
pub struct PtsHistConfig {
    /// Target model size `k` (number of support points).
    pub model_size: usize,
    /// Fraction of points drawn from query interiors (paper: 0.9).
    pub interior_fraction: f64,
    /// RNG seed for the (stochastic) bucket design.
    pub seed: u64,
    /// Training objective.
    pub objective: Objective,
    /// Weight solver.
    pub solver: WeightSolver,
}

impl Default for PtsHistConfig {
    fn default() -> Self {
        Self {
            model_size: 400,
            interior_fraction: 0.9,
            seed: 0x5e1ec7,
            objective: Objective::L2,
            solver: WeightSolver::Fista,
        }
    }
}

impl PtsHistConfig {
    /// Config with a given model size `k`.
    pub fn with_model_size(k: usize) -> Self {
        Self {
            model_size: k,
            ..Default::default()
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the objective.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the weight solver.
    pub fn solver(mut self, solver: WeightSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the interior/uniform split (ablation knob).
    pub fn interior_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "fraction out of range");
        self.interior_fraction = f;
        self
    }
}

/// A trained PtsHist model: weighted support points (Equation 7), indexed
/// by a k-d tree so prediction prunes instead of scanning all `k` points.
#[derive(Clone, Debug)]
pub struct PtsHist {
    points: Vec<Point>,
    weights: Vec<f64>,
    index: KdTree,
    root: Rect,
    /// Outcome of the weight-estimation solve (None for loaded models).
    solve_report: Option<SolveReport>,
}

impl PtsHist {
    /// Trains a PtsHist over the data space `root` from a workload.
    ///
    /// Returns a typed [`SelearnError`] on `k = 0`, an interior fraction
    /// outside `[0, 1]`, or a non-finite training label; an empty workload
    /// is fine (uniform model).
    pub fn fit(
        root: Rect,
        queries: &[TrainingQuery],
        config: &PtsHistConfig,
    ) -> Result<Self, SelearnError> {
        if config.model_size == 0 {
            return Err(SelearnError::InvalidConfig {
                model: "ptshist",
                what: "model size must be >= 1",
            });
        }
        if !(0.0..=1.0).contains(&config.interior_fraction) {
            return Err(SelearnError::InvalidConfig {
                model: "ptshist",
                what: "interior fraction must be in [0, 1]",
            });
        }
        crate::error::check_labels(queries)?;
        let _span = selearn_obs::span!("fit.ptshist");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let k = config.model_size;
        let k_interior = (config.interior_fraction * k as f64).round() as usize;

        // Step 1: interior points, shares proportional to selectivity.
        // Labels are clamped at zero for the allocation only: finite
        // out-of-band labels are legal in the agnostic setting, but a
        // negative share would let one query's floor exceed k_interior
        // and underflow the shortfall below.
        let mut points: Vec<Point> = Vec::with_capacity(k);
        let total_s: f64 = queries.iter().map(|q| q.selectivity.max(0.0)).sum();
        if total_s > 0.0 && k_interior > 0 {
            // Largest-remainder allocation of k_interior shares.
            let raw: Vec<f64> = queries
                .iter()
                .map(|q| q.selectivity.max(0.0) / total_s * k_interior as f64)
                .collect();
            let mut alloc: Vec<usize> = raw.iter().map(|r| r.floor() as usize).collect();
            let mut remainder: Vec<(usize, f64)> = raw
                .iter()
                .enumerate()
                .map(|(i, r)| (i, r - r.floor()))
                .collect();
            remainder.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let mut short = k_interior.saturating_sub(alloc.iter().sum::<usize>());
            for (i, _) in remainder {
                if short == 0 {
                    break;
                }
                alloc[i] += 1;
                short -= 1;
            }
            for (q, &n) in queries.iter().zip(&alloc) {
                if n == 0 {
                    continue;
                }
                let sampler = RejectionSampler::new(q.range.clone(), &root);
                points.extend(sampler.sample_n(n, &mut rng));
            }
        }

        // Step 2: fill the rest uniformly from the whole space.
        while points.len() < k {
            points.push(sample_in_rect(&root, &mut rng));
        }

        // Weight estimation with the indicator design matrix (Equation 7).
        // Point sampling above is intentionally serial — it threads one RNG
        // through rejection sampling — but once the support is frozen each
        // indicator row is a pure function of its query, so assembly
        // parallelizes across queries.
        let a = assemble_design_matrix(queries, points.len(), |q| {
            points
                .iter()
                .map(|p| if q.range.contains(p) { 1.0 } else { 0.0 })
                .collect()
        });
        let s: Vec<f64> = queries.iter().map(|q| q.selectivity).collect();
        let (weights, solve_report) = if a.rows() == 0 {
            (vec![1.0 / points.len() as f64; points.len()], None)
        } else {
            estimate_weights_with_report(&a, &s, &config.objective, &config.solver)?
        };

        let index = KdTree::build(points.clone(), weights.clone());
        Ok(Self {
            points,
            weights,
            index,
            root,
            solve_report,
        })
    }

    /// The weighted support, for introspection (Figure 7 renders these).
    pub fn support(&self) -> impl Iterator<Item = (&Point, f64)> {
        self.points.iter().zip(self.weights.iter().copied())
    }

    /// The data-space box the model was trained over.
    pub fn root(&self) -> &Rect {
        &self.root
    }

    /// Compiles the model into a pointer-free [`FrozenEstimator`]: the k-d
    /// arena copied id-for-id into SoA lanes (see [`crate::frozen`]), so
    /// traversal and summation order — hence every estimate — are
    /// bit-identical to this model's.
    pub fn freeze(&self) -> crate::frozen::FrozenEstimator {
        crate::frozen::FrozenEstimator::Pts(crate::frozen::FrozenPts::build(
            &self.index,
            self.root.clone(),
            self.solve_report,
        ))
    }

    /// Reconstructs a model from its weighted support (the inverse of
    /// [`PtsHist::support`], used when loading persisted models).
    ///
    /// Returns a typed [`SelearnError`] if lengths differ or a weight is
    /// non-finite.
    pub fn from_support(
        root: Rect,
        points: Vec<Point>,
        weights: Vec<f64>,
    ) -> Result<Self, SelearnError> {
        if points.len() != weights.len() {
            return Err(SelearnError::LengthMismatch {
                what: "ptshist support",
                expected: points.len(),
                got: weights.len(),
            });
        }
        if let Some((i, w)) = weights.iter().enumerate().find(|(_, w)| !w.is_finite()) {
            return Err(SelearnError::CorruptModel {
                what: format!("support point {i} has non-finite weight {w}"),
            });
        }
        let index = KdTree::build(points.clone(), weights.clone());
        Ok(Self {
            points,
            weights,
            index,
            root,
            solve_report: None,
        })
    }
}

impl SelectivityEstimator for PtsHist {
    fn estimate(&self, range: &Range) -> f64 {
        self.index
            .weight_in_range(range, &self.root)
            .clamp(0.0, 1.0)
    }

    fn num_buckets(&self) -> usize {
        self.points.len()
    }

    fn name(&self) -> &'static str {
        "PtsHist"
    }

    fn solve_report(&self) -> Option<SolveReport> {
        self.solve_report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selearn_geom::{Ball, Halfspace};

    fn tq(lo: Vec<f64>, hi: Vec<f64>, s: f64) -> TrainingQuery {
        TrainingQuery::new(Rect::new(lo, hi), s)
    }

    #[test]
    fn model_size_respected() {
        let queries = vec![tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.6)];
        let ph = PtsHist::fit(
            Rect::unit(2),
            &queries,
            &PtsHistConfig::with_model_size(100),
        ).unwrap();
        assert_eq!(ph.num_buckets(), 100);
    }

    #[test]
    fn interior_points_follow_selectivity_shares() {
        // Two disjoint queries with selectivities 0.8 and 0.2: roughly 4×
        // as many interior points should land in the first.
        let queries = vec![
            tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.8),
            tq(vec![0.5, 0.5], vec![1.0, 1.0], 0.2),
        ];
        let ph = PtsHist::fit(
            Rect::unit(2),
            &queries,
            &PtsHistConfig::with_model_size(1000),
        ).unwrap();
        let r0 = queries[0].range.clone();
        let r1 = queries[1].range.clone();
        let in0 = ph.support().filter(|(p, _)| r0.contains(p)).count();
        let in1 = ph.support().filter(|(p, _)| r1.contains(p)).count();
        // shares: 0.9k · 0.8 = 720 vs 0.9k · 0.2 = 180 (+ uniform spillover)
        assert!(in0 > 600 && in0 < 850, "in0 = {in0}");
        assert!(in1 > 120 && in1 < 350, "in1 = {in1}");
    }

    #[test]
    fn uniform_share_covers_uncovered_space() {
        // One tiny query: 10% of points must still land elsewhere.
        let queries = vec![tq(vec![0.0, 0.0], vec![0.1, 0.1], 0.5)];
        let ph = PtsHist::fit(
            Rect::unit(2),
            &queries,
            &PtsHistConfig::with_model_size(500),
        ).unwrap();
        let outside = ph
            .support()
            .filter(|(p, _)| !queries[0].range.contains(p))
            .count();
        assert!(outside > 20, "outside = {outside}");
    }

    #[test]
    fn weights_form_distribution() {
        let queries = vec![
            tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.7),
            tq(vec![0.3, 0.3], vec![1.0, 1.0], 0.5),
        ];
        let ph = PtsHist::fit(
            Rect::unit(2),
            &queries,
            &PtsHistConfig::with_model_size(200),
        ).unwrap();
        let total: f64 = ph.support().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(ph.support().all(|(_, w)| w >= -1e-9));
    }

    #[test]
    fn reproduces_training_selectivities() {
        let queries = vec![
            tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.75),
            tq(vec![0.5, 0.5], vec![1.0, 1.0], 0.25),
        ];
        let ph = PtsHist::fit(
            Rect::unit(2),
            &queries,
            &PtsHistConfig::with_model_size(400),
        ).unwrap();
        for q in &queries {
            let est = ph.estimate(&q.range);
            assert!(
                (est - q.selectivity).abs() < 0.02,
                "est = {est}, true = {}",
                q.selectivity
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let queries = vec![tq(vec![0.1, 0.1], vec![0.7, 0.7], 0.5)];
        let cfg = PtsHistConfig::with_model_size(100).seed(7);
        let a = PtsHist::fit(Rect::unit(2), &queries, &cfg).unwrap();
        let b = PtsHist::fit(Rect::unit(2), &queries, &cfg).unwrap();
        let ra: Vec<f64> = a.support().map(|(_, w)| w).collect();
        let rb: Vec<f64> = b.support().map(|(_, w)| w).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn high_dimensional_fit() {
        // 6-D: PtsHist's home turf.
        let d = 6;
        let queries = vec![
            TrainingQuery::new(Rect::new(vec![0.0; d], vec![0.5; d]), 0.4),
            TrainingQuery::new(Rect::new(vec![0.3; d], vec![1.0; d]), 0.3),
        ];
        let ph = PtsHist::fit(
            Rect::unit(d),
            &queries,
            &PtsHistConfig::with_model_size(300),
        ).unwrap();
        for q in &queries {
            let est = ph.estimate(&q.range);
            assert!((est - q.selectivity).abs() < 0.05, "est = {est}");
        }
    }

    #[test]
    fn works_with_ball_and_halfspace_queries() {
        let queries = vec![
            TrainingQuery::new(Ball::new(Point::splat(2, 0.3), 0.25), 0.5),
            TrainingQuery::new(Halfspace::new(vec![1.0, 1.0], 1.2), 0.2),
        ];
        let ph = PtsHist::fit(
            Rect::unit(2),
            &queries,
            &PtsHistConfig::with_model_size(400),
        ).unwrap();
        for q in &queries {
            let est = ph.estimate(&q.range);
            assert!(
                (est - q.selectivity).abs() < 0.05,
                "est = {est}, true = {}",
                q.selectivity
            );
        }
    }

    #[test]
    fn empty_workload_gives_uniform_weights() {
        let ph = PtsHist::fit(Rect::unit(3), &[], &PtsHistConfig::with_model_size(50)).unwrap();
        assert_eq!(ph.num_buckets(), 50);
        let total: f64 = ph.support().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // estimate of the whole space is 1
        let all: Range = Rect::unit(3).into();
        assert!((ph.estimate(&all) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_selectivity_workload() {
        // All-empty queries: all interior shares are zero, everything
        // uniform; estimator should learn ~0 for those regions.
        let queries = vec![tq(vec![0.8, 0.8], vec![0.9, 0.9], 0.0)];
        let ph = PtsHist::fit(
            Rect::unit(2),
            &queries,
            &PtsHistConfig::with_model_size(200),
        ).unwrap();
        let est = ph.estimate(&queries[0].range);
        assert!(est < 0.05, "est = {est}");
    }
}
