//! Saving and loading trained models.
//!
//! Estimators are deployed inside long-running optimizer processes;
//! retraining on every restart wastes the feedback history. This module
//! persists the two headline models (QuadHist, PtsHist) in a
//! versioned, human-readable, line-oriented text format — no external
//! serialization dependency, values round-tripped exactly via hex-encoded
//! IEEE-754 bits.
//!
//! ```text
//! selearn-model v1
//! quadhist 2
//! root <lo...> <hi...>
//! buckets <n>
//! <lo...> <hi...> <weight>
//! ...
//! end
//! ```

use crate::ptshist::PtsHist;
use crate::quadhist::QuadHist;
use selearn_geom::{Point, Rect, VolumeEstimator};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Persistence failure: I/O error or malformed input.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural/format failure with a message.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist i/o error: {e}"),
            PersistError::Format(m) => write!(f, "persist format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn bad<T>(msg: impl Into<String>) -> Result<T, PersistError> {
    Err(PersistError::Format(msg.into()))
}

/// Lossless float encoding: hex of the IEEE-754 bit pattern.
fn enc(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn dec(s: &str) -> Result<f64, PersistError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| PersistError::Format(format!("bad float '{s}': {e}")))
}

fn write_coords(out: &mut String, coords: &[f64]) {
    for c in coords {
        out.push(' ');
        out.push_str(&enc(*c));
    }
}

const MAGIC: &str = "selearn-model v1";

/// Serializes a QuadHist.
pub fn save_quadhist<W: Write>(model: &QuadHist, mut w: W) -> Result<(), PersistError> {
    let root = model.root();
    let d = root.dim();
    let mut s = String::new();
    s.push_str(MAGIC);
    s.push('\n');
    s.push_str(&format!("quadhist {d}\nroot"));
    write_coords(&mut s, root.lo());
    write_coords(&mut s, root.hi());
    s.push('\n');
    let buckets = model.buckets();
    s.push_str(&format!("buckets {}\n", buckets.len()));
    for (rect, weight) in &buckets {
        let mut line = String::new();
        write_coords(&mut line, rect.lo());
        write_coords(&mut line, rect.hi());
        line.push(' ');
        line.push_str(&enc(*weight));
        s.push_str(line.trim_start());
        s.push('\n');
    }
    s.push_str("end\n");
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Deserializes a QuadHist (with the default volume backend).
pub fn load_quadhist<R: BufRead>(r: R) -> Result<QuadHist, PersistError> {
    let mut lines = r.lines();
    let mut next = || -> Result<String, PersistError> {
        match lines.next() {
            Some(l) => Ok(l?),
            None => bad("unexpected end of file"),
        }
    };
    if next()? != MAGIC {
        return bad("missing magic header");
    }
    let header = next()?;
    let mut it = header.split_whitespace();
    if it.next() != Some("quadhist") {
        return bad("expected 'quadhist' section");
    }
    let d: usize = it
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| PersistError::Format("bad dimension".into()))?;
    let root_line = next()?;
    let root = parse_rect_line(&root_line, "root", d)?;
    let count_line = next()?;
    let n: usize = count_line
        .strip_prefix("buckets ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| PersistError::Format("bad bucket count".into()))?;
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        let line = next()?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != 2 * d + 1 {
            return bad(format!("bucket line has {} fields", toks.len()));
        }
        let lo: Vec<f64> = toks[..d].iter().map(|t| dec(t)).collect::<Result<_, _>>()?;
        let hi: Vec<f64> = toks[d..2 * d]
            .iter()
            .map(|t| dec(t))
            .collect::<Result<_, _>>()?;
        let weight = dec(toks[2 * d])?;
        let rect = Rect::try_new(lo, hi)
            .map_err(|e| PersistError::Format(format!("bad bucket box: {e}")))?;
        buckets.push((rect, weight));
    }
    if next()? != "end" {
        return bad("missing trailer");
    }
    QuadHist::from_buckets(root, &buckets, VolumeEstimator::default())
        .map_err(|e| PersistError::Format(e.to_string()))
}

/// Serializes a PtsHist.
pub fn save_ptshist<W: Write>(model: &PtsHist, mut w: W) -> Result<(), PersistError> {
    let root = model.root();
    let d = root.dim();
    let mut s = String::new();
    s.push_str(MAGIC);
    s.push('\n');
    s.push_str(&format!("ptshist {d}\nroot"));
    write_coords(&mut s, root.lo());
    write_coords(&mut s, root.hi());
    s.push('\n');
    let support: Vec<(&Point, f64)> = model.support().collect();
    s.push_str(&format!("points {}\n", support.len()));
    for (p, weight) in support {
        let mut line = String::new();
        write_coords(&mut line, p.coords());
        line.push(' ');
        line.push_str(&enc(weight));
        s.push_str(line.trim_start());
        s.push('\n');
    }
    s.push_str("end\n");
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Deserializes a PtsHist.
pub fn load_ptshist<R: BufRead>(r: R) -> Result<PtsHist, PersistError> {
    let mut lines = r.lines();
    let mut next = || -> Result<String, PersistError> {
        match lines.next() {
            Some(l) => Ok(l?),
            None => bad("unexpected end of file"),
        }
    };
    if next()? != MAGIC {
        return bad("missing magic header");
    }
    let header = next()?;
    let mut it = header.split_whitespace();
    if it.next() != Some("ptshist") {
        return bad("expected 'ptshist' section");
    }
    let d: usize = it
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| PersistError::Format("bad dimension".into()))?;
    let root_line = next()?;
    let root = parse_rect_line(&root_line, "root", d)?;
    let count_line = next()?;
    let n: usize = count_line
        .strip_prefix("points ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| PersistError::Format("bad point count".into()))?;
    let mut points = Vec::with_capacity(n);
    let mut weights = Vec::with_capacity(n);
    for _ in 0..n {
        let line = next()?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != d + 1 {
            return bad(format!("point line has {} fields", toks.len()));
        }
        let coords: Vec<f64> = toks[..d].iter().map(|t| dec(t)).collect::<Result<_, _>>()?;
        if let Some(c) = coords.iter().find(|c| !c.is_finite()) {
            return bad(format!("non-finite point coordinate {c}"));
        }
        points.push(Point::new(coords));
        weights.push(dec(toks[d])?);
    }
    if next()? != "end" {
        return bad("missing trailer");
    }
    PtsHist::from_support(root, points, weights)
        .map_err(|e| PersistError::Format(e.to_string()))
}

/// Loads any supported model file and compiles it straight into its
/// pointer-free [`crate::frozen::FrozenEstimator`] layout — the restore
/// path servers use, so a loaded model never serves from the pointer
/// tree. The section header (`quadhist` / `ptshist`) selects the family.
pub fn load_frozen<R: BufRead>(mut r: R) -> Result<crate::frozen::FrozenEstimator, PersistError> {
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return bad("missing magic header");
    }
    let family = lines
        .next()
        .and_then(|h| h.split_whitespace().next())
        .unwrap_or("");
    match family {
        "quadhist" => Ok(load_quadhist(text.as_bytes())?.freeze()),
        "ptshist" => Ok(load_ptshist(text.as_bytes())?.freeze()),
        other => bad(format!("unknown model family '{other}'")),
    }
}

fn parse_rect_line(line: &str, tag: &str, d: usize) -> Result<Rect, PersistError> {
    let rest = line
        .strip_prefix(tag)
        .ok_or_else(|| PersistError::Format(format!("expected '{tag}' line")))?;
    let toks: Vec<&str> = rest.split_whitespace().collect();
    if toks.len() != 2 * d {
        return bad(format!("{tag} line has {} coords, expected {}", toks.len(), 2 * d));
    }
    let lo: Vec<f64> = toks[..d].iter().map(|t| dec(t)).collect::<Result<_, _>>()?;
    let hi: Vec<f64> = toks[d..].iter().map(|t| dec(t)).collect::<Result<_, _>>()?;
    Rect::try_new(lo, hi).map_err(|e| PersistError::Format(format!("bad {tag} box: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{SelectivityEstimator, TrainingQuery};
    use crate::ptshist::PtsHistConfig;
    use crate::quadhist::QuadHistConfig;
    use selearn_geom::Range;

    fn workload() -> Vec<TrainingQuery> {
        vec![
            TrainingQuery::new(Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]), 0.6),
            TrainingQuery::new(Rect::new(vec![0.25, 0.25], vec![0.9, 0.9]), 0.35),
            TrainingQuery::new(Rect::new(vec![0.6, 0.1], vec![0.95, 0.45]), 0.2),
        ]
    }

    fn probes() -> Vec<Range> {
        vec![
            Rect::new(vec![0.0, 0.0], vec![0.3, 0.7]).into(),
            Rect::new(vec![0.2, 0.4], vec![0.9, 0.8]).into(),
            Rect::unit(2).into(),
        ]
    }

    #[test]
    fn quadhist_round_trip_is_exact() {
        let qh = QuadHist::fit(
            Rect::unit(2),
            &workload(),
            &QuadHistConfig::with_tau(0.02),
        ).unwrap();
        let mut buf = Vec::new();
        save_quadhist(&qh, &mut buf).unwrap();
        let back = load_quadhist(&buf[..]).unwrap();
        assert_eq!(back.num_buckets(), qh.num_buckets());
        for p in probes() {
            assert_eq!(back.estimate(&p), qh.estimate(&p), "estimates must be bit-identical");
        }
    }

    #[test]
    fn ptshist_round_trip_is_exact() {
        let ph = PtsHist::fit(
            Rect::unit(2),
            &workload(),
            &PtsHistConfig::with_model_size(64),
        ).unwrap();
        let mut buf = Vec::new();
        save_ptshist(&ph, &mut buf).unwrap();
        let back = load_ptshist(&buf[..]).unwrap();
        assert_eq!(back.num_buckets(), 64);
        for p in probes() {
            assert_eq!(back.estimate(&p), ph.estimate(&p));
        }
    }

    #[test]
    fn format_is_versioned_and_validated() {
        let e = load_quadhist("not a model\n".as_bytes()).unwrap_err();
        assert!(matches!(e, PersistError::Format(_)));
        let e = load_quadhist("selearn-model v1\nptshist 2\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("quadhist"));
        // truncated file
        let qh = QuadHist::fit(Rect::unit(2), &workload(), &QuadHistConfig::with_tau(0.05)).unwrap();
        let mut buf = Vec::new();
        save_quadhist(&qh, &mut buf).unwrap();
        let cut = &buf[..buf.len() / 2];
        assert!(load_quadhist(cut).is_err());
    }

    #[test]
    fn float_encoding_is_lossless() {
        for v in [0.0, 1.0, -0.0, 0.1 + 0.2, f64::MIN_POSITIVE, 1e300] {
            assert_eq!(dec(&enc(v)).unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn tree_reconstruction_from_buckets() {
        // direct check of the QuadTree rebuild on a nested partition
        let qh = QuadHist::fit(
            Rect::unit(2),
            &workload(),
            &QuadHistConfig::with_tau(0.01),
        ).unwrap();
        let rebuilt = QuadHist::from_buckets(
            Rect::unit(2),
            &qh.buckets(),
            VolumeEstimator::default(),
        ).unwrap();
        assert_eq!(rebuilt.num_buckets(), qh.num_buckets());
        let total: f64 = rebuilt.buckets().iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-6);
    }
}
