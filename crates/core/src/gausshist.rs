//! GaussHist — a Gaussian-mixture selectivity model (Section 6 extension).
//!
//! The paper's conclusion names this an open problem: *"Although our
//! framework does not assume query ranges to be bounded and thus works
//! even if we consider data distributions with unbounded support, e.g.,
//! Gaussian mixtures, developing an algorithm that computes a Gaussian
//! mixture (or another model) with a small loss given a training sample is
//! also an open problem."*
//!
//! Fitting all GMM parameters to query feedback is non-convex; following
//! the paper's own two-phase recipe we sidestep that: **bucket design**
//! places isotropic Gaussian kernels at PtsHist-style support points
//! (interior-sampled proportionally to selectivity + a uniform share), and
//! **weight estimation** reuses the convex Equation-(8) machinery — so the
//! result is the loss-minimizing mixture over the chosen kernels, fully
//! inside the learnability framework (a mixture's selectivity function is
//! still a selectivity function of a distribution on `R^d`).
//!
//! Kernel masses are exact for rectangles (products of normal CDFs) and
//! halfspaces (a 1-D normal CDF along the normal direction), and
//! deterministic quasi-Monte-Carlo for balls and semi-algebraic ranges.

use crate::error::SelearnError;
use crate::estimator::{SelectivityEstimator, TrainingQuery};
use crate::weights::{estimate_weights, Objective, WeightSolver};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selearn_geom::volume::halton;
use selearn_geom::{
    inv_std_normal_cdf, normal_mass, sample_in_rect, std_normal_cdf, Point, Range, RangeQuery,
    Rect, RejectionSampler,
};
use selearn_solver::DenseMatrix;

/// GaussHist configuration.
#[derive(Clone, Debug)]
pub struct GaussHistConfig {
    /// Number of Gaussian kernels `k`.
    pub model_size: usize,
    /// Isotropic kernel bandwidth σ (in normalized domain units).
    pub bandwidth: f64,
    /// Fraction of kernel centers drawn from query interiors (PtsHist
    /// convention: 0.9).
    pub interior_fraction: f64,
    /// RNG seed for center placement.
    pub seed: u64,
    /// QMC samples for ranges without a closed-form Gaussian mass.
    pub qmc_samples: usize,
    /// Training objective.
    pub objective: Objective,
    /// Weight solver.
    pub solver: WeightSolver,
}

impl Default for GaussHistConfig {
    fn default() -> Self {
        Self {
            model_size: 400,
            bandwidth: 0.05,
            interior_fraction: 0.9,
            seed: 0x9a55,
            qmc_samples: 2048,
            objective: Objective::L2,
            solver: WeightSolver::Fista,
        }
    }
}

impl GaussHistConfig {
    /// Config with a given kernel count.
    pub fn with_model_size(k: usize) -> Self {
        Self {
            model_size: k,
            ..Default::default()
        }
    }

    /// Sets the kernel bandwidth.
    pub fn bandwidth(mut self, sigma: f64) -> Self {
        assert!(sigma > 0.0, "bandwidth must be positive");
        self.bandwidth = sigma;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A trained Gaussian-mixture selectivity model.
#[derive(Clone, Debug)]
pub struct GaussHist {
    centers: Vec<Point>,
    weights: Vec<f64>,
    sigma: f64,
    qmc_samples: usize,
}

impl GaussHist {
    /// Trains a GaussHist over the data space `root` from a workload.
    ///
    /// Returns a typed [`SelearnError`] on `k = 0`, a non-positive or
    /// non-finite bandwidth, an interior fraction outside `[0, 1]`, or a
    /// non-finite training label.
    pub fn fit(
        root: Rect,
        queries: &[TrainingQuery],
        config: &GaussHistConfig,
    ) -> Result<Self, SelearnError> {
        if config.model_size == 0 {
            return Err(SelearnError::InvalidConfig {
                model: "gausshist",
                what: "model size must be >= 1",
            });
        }
        if !(config.bandwidth.is_finite() && config.bandwidth > 0.0) {
            return Err(SelearnError::InvalidConfig {
                model: "gausshist",
                what: "bandwidth must be finite and positive",
            });
        }
        if !(0.0..=1.0).contains(&config.interior_fraction) {
            return Err(SelearnError::InvalidConfig {
                model: "gausshist",
                what: "interior fraction must be in [0, 1]",
            });
        }
        crate::error::check_labels(queries)?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let k = config.model_size;
        let k_interior = (config.interior_fraction * k as f64).round() as usize;

        // Center placement: PtsHist-style (Section 3.3).
        let mut centers: Vec<Point> = Vec::with_capacity(k);
        let total_s: f64 = queries.iter().map(|q| q.selectivity).sum();
        if total_s > 0.0 && k_interior > 0 {
            for q in queries {
                let share =
                    (q.selectivity / total_s * k_interior as f64).round() as usize;
                if share == 0 {
                    continue;
                }
                let sampler = RejectionSampler::new(q.range.clone(), &root);
                centers.extend(sampler.sample_n(share, &mut rng));
            }
        }
        while centers.len() < k {
            centers.push(sample_in_rect(&root, &mut rng));
        }
        centers.truncate(k);

        // Weight estimation over exact / QMC kernel masses.
        let probe = GaussHist {
            centers,
            weights: Vec::new(),
            sigma: config.bandwidth,
            qmc_samples: config.qmc_samples,
        };
        let mut a = DenseMatrix::zeros(0, 0);
        let mut s = Vec::with_capacity(queries.len());
        for q in queries {
            let row: Vec<f64> = probe
                .centers
                .iter()
                .map(|c| probe.kernel_mass(c, &q.range))
                .collect();
            a.push_row(&row);
            s.push(q.selectivity);
        }
        let weights = if a.rows() == 0 {
            vec![1.0 / probe.centers.len() as f64; probe.centers.len()]
        } else {
            estimate_weights(&a, &s, &config.objective, &config.solver)?
        };
        Ok(GaussHist { weights, ..probe })
    }

    /// The mixture components `(center, weight)`; every component has the
    /// shared isotropic bandwidth [`GaussHist::bandwidth`].
    pub fn components(&self) -> impl Iterator<Item = (&Point, f64)> {
        self.centers.iter().zip(self.weights.iter().copied())
    }

    /// The shared kernel bandwidth σ.
    pub fn bandwidth(&self) -> f64 {
        self.sigma
    }

    /// Mass of the isotropic Gaussian at `center` inside `range`.
    fn kernel_mass(&self, center: &Point, range: &Range) -> f64 {
        kernel_mass(center, self.sigma, self.qmc_samples, range)
    }

    /// Compiles the mixture into a pointer-free [`FrozenEstimator`] with
    /// kernel centers in coordinate lanes. Estimates are bit-identical.
    pub fn freeze(&self) -> crate::frozen::FrozenEstimator {
        crate::frozen::FrozenEstimator::Gauss(crate::frozen::FrozenGauss::build(
            &self.centers,
            &self.weights,
            self.sigma,
            self.qmc_samples,
        ))
    }
}

/// Mass of the isotropic Gaussian `N(center, σ²I)` inside `range` — shared
/// by [`GaussHist`] and its frozen layout so both produce identical bits.
pub(crate) fn kernel_mass(center: &Point, sigma: f64, qmc_samples: usize, range: &Range) -> f64 {
    match range {
        Range::Rect(r) => {
            let mut m = 1.0;
            for i in 0..r.dim() {
                m *= normal_mass(center[i], sigma, r.lo()[i], r.hi()[i]);
                if m == 0.0 {
                    break;
                }
            }
            m
        }
        Range::Halfspace(h) => {
            // a·X ≥ b with X ~ N(c, σ²I): a·X ~ N(a·c, σ²‖a‖²)
            let mu = center.dot(h.normal());
            let norm: f64 = h.normal().iter().map(|v| v * v).sum::<f64>().sqrt();
            std_normal_cdf((mu - h.offset()) / (sigma * norm))
        }
        _ => {
            // deterministic QMC: Halton uniforms → normal samples
            let d = center.dim();
            let mut hits = 0usize;
            let mut p = Point::zeros(d);
            for n in 0..qmc_samples {
                for (i, c) in p.coords_mut().iter_mut().enumerate() {
                    let u = halton(n as u64 + 1, PRIMES[i % PRIMES.len()]);
                    // clamp away from {0,1} for the quantile function
                    let u = u.clamp(1e-12, 1.0 - 1e-12);
                    *c = center[i] + sigma * inv_std_normal_cdf(u);
                }
                if range.contains(&p) {
                    hits += 1;
                }
            }
            hits as f64 / qmc_samples as f64
        }
    }
}

const PRIMES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

impl SelectivityEstimator for GaussHist {
    fn estimate(&self, range: &Range) -> f64 {
        let total: f64 = self
            .centers
            .iter()
            .zip(&self.weights)
            .filter(|(_, &w)| w > 0.0)
            .map(|(c, &w)| w * self.kernel_mass(c, range))
            .sum();
        total.clamp(0.0, 1.0)
    }

    fn num_buckets(&self) -> usize {
        self.centers.len()
    }

    fn name(&self) -> &'static str {
        "GaussHist"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selearn_geom::{Ball, Halfspace};

    fn tq(lo: Vec<f64>, hi: Vec<f64>, s: f64) -> TrainingQuery {
        TrainingQuery::new(Rect::new(lo, hi), s)
    }

    #[test]
    fn fits_disjoint_quadrants() {
        let queries = vec![
            tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.7),
            tq(vec![0.5, 0.5], vec![1.0, 1.0], 0.2),
        ];
        let gh = GaussHist::fit(
            Rect::unit(2),
            &queries,
            &GaussHistConfig::with_model_size(300),
        ).unwrap();
        for q in &queries {
            let est = gh.estimate(&q.range);
            assert!(
                (est - q.selectivity).abs() < 0.05,
                "est = {est}, true = {}",
                q.selectivity
            );
        }
    }

    #[test]
    fn weights_form_distribution() {
        let queries = vec![tq(vec![0.2, 0.2], vec![0.8, 0.8], 0.5)];
        let gh = GaussHist::fit(
            Rect::unit(2),
            &queries,
            &GaussHistConfig::with_model_size(100),
        ).unwrap();
        let total: f64 = gh.components().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(gh.components().all(|(_, w)| w >= -1e-9));
        assert_eq!(gh.num_buckets(), 100);
        assert_eq!(gh.name(), "GaussHist");
    }

    #[test]
    fn unbounded_support_mass_leaks_gracefully() {
        // Kernels near the boundary put some mass outside [0,1]^2, so the
        // whole-cube estimate is slightly below the total weight — the
        // "unbounded support" behavior the paper's conclusion discusses.
        let queries = vec![tq(vec![0.0, 0.0], vec![1.0, 1.0], 1.0)];
        let gh = GaussHist::fit(
            Rect::unit(2),
            &queries,
            &GaussHistConfig::with_model_size(200).bandwidth(0.1),
        ).unwrap();
        let all: Range = Rect::unit(2).into();
        let est = gh.estimate(&all);
        assert!(est > 0.85 && est <= 1.0, "est = {est}");
        // ...and a much larger box recovers (almost) everything
        let big: Range = Rect::new(vec![-1.0, -1.0], vec![2.0, 2.0]).into();
        assert!(gh.estimate(&big) > 0.999);
    }

    #[test]
    fn halfspace_mass_is_exact() {
        // single kernel at the center: halfspace through it gets mass 1/2
        let gh = GaussHist {
            centers: vec![Point::splat(2, 0.5)],
            weights: vec![1.0],
            sigma: 0.05,
            qmc_samples: 1024,
        };
        let h: Range = Halfspace::new(vec![1.0, 1.0], 1.0).into();
        assert!((gh.estimate(&h) - 0.5).abs() < 1e-12);
        // far halfspace gets ~0
        let far: Range = Halfspace::new(vec![1.0, 0.0], 0.9).into();
        assert!(gh.estimate(&far) < 1e-8);
    }

    #[test]
    fn ball_mass_via_qmc_matches_analytic_radius() {
        // Mass of N(c, σ²I₂) within radius r of c is 1 − exp(−r²/2σ²).
        let sigma = 0.05;
        let gh = GaussHist {
            centers: vec![Point::splat(2, 0.5)],
            weights: vec![1.0],
            sigma,
            qmc_samples: 20_000,
        };
        for r in [0.05, 0.1, 0.15] {
            let want = 1.0 - (-(r * r) / (2.0 * sigma * sigma)).exp();
            let b: Range = Ball::new(Point::splat(2, 0.5), r).into();
            let got = gh.estimate(&b);
            assert!(
                (got - want).abs() < 0.02,
                "r = {r}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn smoother_than_ptshist_between_training_queries() {
        // A Gaussian mixture interpolates: a probe box midway between two
        // trained boxes should get an estimate strictly between 0 and the
        // trained masses (no hard histogram cliffs).
        let queries = vec![
            tq(vec![0.1, 0.4], vec![0.3, 0.6], 0.5),
            tq(vec![0.7, 0.4], vec![0.9, 0.6], 0.5),
        ];
        let gh = GaussHist::fit(
            Rect::unit(2),
            &queries,
            &GaussHistConfig::with_model_size(200).bandwidth(0.08),
        ).unwrap();
        let mid: Range = Rect::new(vec![0.4, 0.4], vec![0.6, 0.6]).into();
        let est = gh.estimate(&mid);
        assert!(est > 0.001 && est < 0.5, "est = {est}");
    }

    #[test]
    fn deterministic_per_seed() {
        let queries = vec![tq(vec![0.1, 0.1], vec![0.7, 0.7], 0.4)];
        let cfg = GaussHistConfig::with_model_size(64).seed(5);
        let a = GaussHist::fit(Rect::unit(2), &queries, &cfg).unwrap();
        let b = GaussHist::fit(Rect::unit(2), &queries, &cfg).unwrap();
        let wa: Vec<f64> = a.components().map(|(_, w)| w).collect();
        let wb: Vec<f64> = b.components().map(|(_, w)| w).collect();
        assert_eq!(wa, wb);
    }

    #[test]
    fn empty_workload_uniform_mixture() {
        let gh = GaussHist::fit(Rect::unit(2), &[], &GaussHistConfig::with_model_size(32)).unwrap();
        let total: f64 = gh.components().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
