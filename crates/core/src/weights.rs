//! Weight estimation — the second phase of the generic procedure
//! (Section 3.1, Equation 8).
//!
//! Given buckets `B_1 … B_m` and training queries `(R_i, s_i)`, solve
//!
//! ```text
//! minimize   Σ_i (s_D(R_i) − s_i)²      (or  max_i |s_D(R_i) − s_i|)
//! subject to Σ_j w_j = 1,  0 ≤ w_j ≤ 1
//! ```
//!
//! where `s_D(R_i) = Σ_j A[i][j] · w_j` with the design matrix
//! `A[i][j] = vol(B_j ∩ R_i)/vol(B_j)` for histogram buckets (Equation 6)
//! or `A[i][j] = 1(B_j ∈ R_i)` for discrete support points (Equation 7).

use selearn_solver::{
    fista_simplex_ls, linf_fit_exact, linf_fit_smoothed_with_report, nnls_simplex_with_report,
    DenseMatrix, FistaOptions, LinfOptions, NnlsOptions, SolveReport, SolverError,
};

use crate::error::SelearnError;

/// Which algorithm solves the constrained fit.
#[derive(Clone, Debug, Default)]
pub enum WeightSolver {
    /// Accelerated projected gradient (FISTA) on the simplex — the default,
    /// scales to thousands of buckets.
    #[default]
    Fista,
    /// Lawson–Hanson NNLS with a penalty row for `Σ w = 1`: the pathway the
    /// paper's reference implementation used (`scipy.optimize.nnls`).
    NnlsPenalty,
}

/// Training objective (Section 4.6 compares `L2` against `L∞`).
#[derive(Clone, Debug, Default)]
pub enum Objective {
    /// Squared loss — Equation (8).
    #[default]
    L2,
    /// Exact minimax loss via LP (small/medium instances).
    LInfExact,
    /// Smoothed minimax loss via projected subgradient (large instances).
    LInfSmoothed,
}

/// Solves the weight-estimation program over the design matrix `a`
/// (rows = training queries, columns = buckets) and targets `s`.
///
/// Returns weights on the probability simplex. An empty bucket set or a
/// non-finite entry is a typed [`SelearnError`]; an empty query set
/// returns the uniform distribution (no information).
pub fn estimate_weights(
    a: &DenseMatrix,
    s: &[f64],
    objective: &Objective,
    solver: &WeightSolver,
) -> Result<Vec<f64>, SelearnError> {
    Ok(estimate_weights_with_report(a, s, objective, solver)?.0)
}

/// [`estimate_weights`] plus the underlying solver's [`SolveReport`].
///
/// `None` when no iterative solver ran: an empty query set (uniform
/// fallback) or an exact-LP `L∞` fit. A report with `converged == false`
/// means the solver exhausted its iteration budget and returned the last
/// iterate — surfaced here with a debug log (not a panic: the iterate is
/// still feasible and usually near-optimal; see `solver::report`).
pub fn estimate_weights_with_report(
    a: &DenseMatrix,
    s: &[f64],
    objective: &Objective,
    solver: &WeightSolver,
) -> Result<(Vec<f64>, Option<SolveReport>), SelearnError> {
    if a.cols() == 0 {
        return Err(SolverError::EmptyProblem {
            solver: "estimate-weights",
        }
        .into());
    }
    if a.rows() == 0 {
        return Ok((vec![1.0 / a.cols() as f64; a.cols()], None));
    }
    let _span = selearn_obs::span!("estimate_weights");
    let (w, report) = match objective {
        Objective::L2 => match solver {
            WeightSolver::Fista => {
                let r = fista_simplex_ls(a, s, &FistaOptions::default())?;
                let report = r.report();
                (r.weights, Some(report))
            }
            WeightSolver::NnlsPenalty => {
                let (w, report) = nnls_simplex_with_report(a, s, &NnlsOptions::default())?;
                (w, Some(report))
            }
        },
        Objective::LInfExact => match linf_fit_exact(a, s) {
            Ok(w) => (w, None), // exact LP: no iterative report
            // The LP failing to reach an optimum (degenerate pivoting) is
            // recoverable: fall back to the smoothed solver. Real input
            // errors propagate.
            Err(SolverError::LpNotOptimal { .. }) => {
                let (w, report) = linf_fit_smoothed_with_report(a, s, &LinfOptions::default())?;
                (w, Some(report))
            }
            Err(e) => return Err(e.into()),
        },
        Objective::LInfSmoothed => {
            let (w, report) = linf_fit_smoothed_with_report(a, s, &LinfOptions::default())?;
            (w, Some(report))
        }
    };
    if let Some(r) = &report {
        if !r.converged {
            // Deliberately a log, not an assert: budget exhaustion yields a
            // feasible (if slightly suboptimal) iterate, and some workloads
            // legitimately hit it. It must be *visible*, not fatal.
            selearn_obs::debug!(
                "{} exhausted {}/{} iterations without converging (residual {:.3e}) \
                 on a {}x{} system",
                r.solver,
                r.iters,
                r.max_iters,
                r.final_residual,
                a.rows(),
                a.cols()
            );
        }
    }
    Ok((w, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> (DenseMatrix, Vec<f64>) {
        let a = DenseMatrix::from_rows(&[
            vec![1.0, 0.0, 0.5],
            vec![0.0, 1.0, 0.5],
            vec![1.0, 1.0, 1.0],
        ]);
        let s = vec![0.3, 0.7, 1.0];
        (a, s)
    }

    #[test]
    fn l2_solvers_agree() {
        let (a, s) = design();
        let w1 = estimate_weights(&a, &s, &Objective::L2, &WeightSolver::Fista).unwrap();
        let w2 = estimate_weights(&a, &s, &Objective::L2, &WeightSolver::NnlsPenalty).unwrap();
        assert!((a.residual_sq(&w1, &s) - a.residual_sq(&w2, &s)).abs() < 1e-5);
    }

    #[test]
    fn linf_variants_feasible() {
        let (a, s) = design();
        for obj in [Objective::LInfExact, Objective::LInfSmoothed] {
            let w = estimate_weights(&a, &s, &obj, &WeightSolver::Fista).unwrap();
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            assert!(w.iter().all(|&v| v >= -1e-9));
        }
    }

    #[test]
    fn no_queries_gives_uniform() {
        let a = DenseMatrix::zeros(0, 4);
        let w = estimate_weights(&a, &[], &Objective::L2, &WeightSolver::Fista).unwrap();
        for &v in &w {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_buckets_is_typed_error() {
        let a = DenseMatrix::zeros(1, 0);
        let err = estimate_weights(&a, &[0.5], &Objective::L2, &WeightSolver::Fista).unwrap_err();
        assert!(matches!(
            err,
            SelearnError::Solver(SolverError::EmptyProblem { .. })
        ));
    }

    #[test]
    fn nan_labels_are_typed_errors() {
        let (a, _) = design();
        let s = vec![0.3, f64::NAN, 1.0];
        for obj in [Objective::L2, Objective::LInfExact, Objective::LInfSmoothed] {
            let err = estimate_weights(&a, &s, &obj, &WeightSolver::Fista).unwrap_err();
            assert!(
                matches!(
                    err,
                    SelearnError::Solver(SolverError::NonFiniteInput { .. })
                ),
                "{obj:?} gave {err}"
            );
        }
    }

    #[test]
    fn length_mismatch_is_typed_error() {
        let (a, _) = design();
        let err = estimate_weights(&a, &[0.5], &Objective::L2, &WeightSolver::Fista).unwrap_err();
        assert!(matches!(
            err,
            SelearnError::Solver(SolverError::DimensionMismatch { .. })
        ));
    }
}
