//! Frozen (pointer-free) inference artifacts.
//!
//! Training produces pointer-rich structures — `QuadTree` arenas with
//! `Option<usize>` child links, k-d trees of boxed `Rect`s — that are
//! convenient to grow but hostile to the inference hot path: every node
//! visit chases an option, and every leaf contribution routes through
//! [`Rect::intersect`], which allocates two `Vec<f64>` corners per call.
//! `freeze()` compiles a trained estimator into a structure-of-arrays
//! layout the traversal reads front-to-back:
//!
//! ```text
//!   nodes (implicit tree, arena order)      leaves (DFS preorder)
//!   ┌──────────┬──────────┬─────────────┐   ┌─────────┬─────────┬───┬────┐
//!   │ node_lo  │ node_hi  │ first_child │   │ leaf_lo │ leaf_hi │ w │ cv │
//!   │ n·d lane │ n·d lane │ u32 (0=leaf)│   │ k·d lane│ k·d lane│ k │ k  │
//!   └──────────┴──────────┴─────────────┘   └─────────┴─────────┴───┴────┘
//!              child(id, j) = first_child[id] + j
//!   leaf_begin[id] .. leaf_end[id]  = the node's subtree leaves, contiguous
//! ```
//!
//! The rectangle kernel never materializes an intersection box: the
//! per-dimension overlap `max(0, min(q_hi, hi) − max(q_lo, lo))` is
//! multiplied straight into the running volume, a branch-free form the
//! auto-vectorizer handles. A node fully contained in the query switches
//! to a tight sequential sweep over its contiguous leaf range.
//!
//! **Equivalence contract.** For every range, a frozen estimator returns
//! the *bit-identical* `f64` its source estimator returns: traversal
//! visits leaves in the same DFS order, per-leaf arithmetic keeps the same
//! operand order (`IEEE` min/max and multiplication are deterministic),
//! and excluded leaves (non-positive weight or degenerate cell) are
//! encoded as `w = 0, cv = 1` so they contribute an exact `+0.0` instead
//! of branching. The property suite in `tests/frozen_equivalence.rs`
//! enforces this with `to_bits()` comparisons.

use crate::cdf1d::Cdf1D;
use crate::gausshist::kernel_mass;
use crate::quadtree::{QuadTree, ROOT};
use selearn_geom::{normal_mass, KdTree, Point, Range, RangeQuery, Rect, VolumeEstimator, EPS};
use selearn_solver::SolveReport;

use crate::estimator::SelectivityEstimator;

/// Sentinel child id meaning "absent" in flattened k-d layouts.
const NONE: u32 = u32::MAX;

/// Depth-first traversal stack with inline storage. Tree depth is bounded
/// (quadtree cells stop splitting near volume `1e-15`; restore caps depth
/// at 60), so the inline segment covers real models and the heap spill
/// only exists to keep adversarial inputs panic-free.
struct TraversalStack {
    inline: [u32; 128],
    len: usize,
    spill: Vec<u32>,
}

impl TraversalStack {
    fn new() -> Self {
        Self {
            inline: [0; 128],
            len: 0,
            spill: Vec::new(),
        }
    }

    #[inline]
    fn push(&mut self, v: u32) {
        if self.len < self.inline.len() {
            self.inline[self.len] = v;
            self.len += 1;
        } else {
            self.spill.push(v);
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<u32> {
        // The spill holds the most recently pushed entries, so draining it
        // first preserves LIFO order.
        if let Some(v) = self.spill.pop() {
            return Some(v);
        }
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        Some(self.inline[self.len])
    }
}

/// `true` when boxes `[a_lo, a_hi]` and `[b_lo, b_hi]` share no point —
/// the same predicate as [`Rect::intersects`], without building the
/// intersection box.
#[inline]
fn boxes_disjoint(a_lo: &[f64], a_hi: &[f64], b_lo: &[f64], b_hi: &[f64]) -> bool {
    for j in 0..a_lo.len() {
        if a_lo[j].max(b_lo[j]) > a_hi[j].min(b_hi[j]) {
            return true;
        }
    }
    false
}

/// `true` when `[b_lo, b_hi] ⊆ [a_lo, a_hi]` exactly (closed, no epsilon).
/// Used only as a sufficient condition to absorb a subtree: exact
/// containment guarantees every descendant passes the intersection test,
/// so skipping those tests cannot change which leaves are visited.
#[inline]
fn box_contains(a_lo: &[f64], a_hi: &[f64], b_lo: &[f64], b_hi: &[f64]) -> bool {
    for j in 0..a_lo.len() {
        if a_lo[j] > b_lo[j] || b_hi[j] > a_hi[j] {
            return false;
        }
    }
    true
}

// ---------------------------------------------------------------------------
// FrozenQuad
// ---------------------------------------------------------------------------

/// Flattened [`crate::QuadHist`]: implicit `2^d`-ary tree over SoA lanes.
#[derive(Clone, Debug)]
pub struct FrozenQuad {
    dim: usize,
    fanout: usize,
    root: Rect,
    /// Node boxes, arena order, `node * dim + j` lanes.
    node_lo: Vec<f64>,
    node_hi: Vec<f64>,
    /// First child id per node; `0` marks a leaf (the root is never a child).
    first_child: Vec<u32>,
    /// Contiguous range of this node's subtree leaves in the leaf lanes.
    leaf_begin: Vec<u32>,
    leaf_end: Vec<u32>,
    /// Leaf boxes in DFS preorder, `leaf * dim + j` lanes.
    leaf_lo: Vec<f64>,
    leaf_hi: Vec<f64>,
    /// Effective leaf weight: `0.0` for leaves the tree path skips
    /// (non-positive weight or cell volume ≤ EPS).
    leaf_w: Vec<f64>,
    /// Effective leaf cell volume; `1.0` for excluded leaves so the
    /// branch-free kernel divides by a harmless constant.
    leaf_cv: Vec<f64>,
    num_leaves: usize,
    volume: VolumeEstimator,
    solve_report: Option<SolveReport>,
}

impl FrozenQuad {
    pub(crate) fn build(
        tree: &QuadTree,
        node_weight: &[f64],
        volume: VolumeEstimator,
        solve_report: Option<SolveReport>,
    ) -> Self {
        let dim = tree.dim();
        let fanout = 1usize << dim;
        let n = tree.num_nodes();
        debug_assert!(n <= u32::MAX as usize, "quadtree too large to freeze");
        let mut node_lo = Vec::with_capacity(n * dim);
        let mut node_hi = Vec::with_capacity(n * dim);
        let mut first_child = vec![0u32; n];
        for (id, fc) in first_child.iter_mut().enumerate() {
            let r = tree.rect(id);
            node_lo.extend_from_slice(r.lo());
            node_hi.extend_from_slice(r.hi());
            if !tree.is_leaf(id) {
                if let Some(c) = tree.children(id).next() {
                    *fc = c as u32;
                }
            }
        }
        // DFS preorder (children ascending — the order the pointer tree's
        // traversal pops them) assigns every leaf its lane slot and every
        // node its contiguous subtree-leaf range.
        let mut leaf_begin = vec![0u32; n];
        let mut leaf_end = vec![0u32; n];
        let mut leaf_lo = Vec::with_capacity(tree.num_leaves() * dim);
        let mut leaf_hi = Vec::with_capacity(tree.num_leaves() * dim);
        let mut leaf_w = Vec::with_capacity(tree.num_leaves());
        let mut leaf_cv = Vec::with_capacity(tree.num_leaves());
        let mut leaf_count = 0u32;
        enum Ev {
            Enter(usize),
            Exit(usize),
        }
        let mut stack = vec![Ev::Enter(ROOT)];
        while let Some(ev) = stack.pop() {
            match ev {
                Ev::Enter(id) => {
                    leaf_begin[id] = leaf_count;
                    if tree.is_leaf(id) {
                        let cell = tree.rect(id);
                        leaf_lo.extend_from_slice(cell.lo());
                        leaf_hi.extend_from_slice(cell.hi());
                        let w = node_weight[id];
                        let cv = cell.volume();
                        if w <= 0.0 || cv <= EPS {
                            leaf_w.push(0.0);
                            leaf_cv.push(1.0);
                        } else {
                            leaf_w.push(w);
                            leaf_cv.push(cv);
                        }
                        leaf_count += 1;
                        leaf_end[id] = leaf_count;
                    } else {
                        stack.push(Ev::Exit(id));
                        let fc = first_child[id] as usize;
                        for k in (0..fanout).rev() {
                            stack.push(Ev::Enter(fc + k));
                        }
                    }
                }
                Ev::Exit(id) => leaf_end[id] = leaf_count,
            }
        }
        Self {
            dim,
            fanout,
            root: tree.rect(ROOT).clone(),
            node_lo,
            node_hi,
            first_child,
            leaf_begin,
            leaf_end,
            leaf_lo,
            leaf_hi,
            leaf_w,
            leaf_cv,
            num_leaves: tree.num_leaves(),
            volume,
            solve_report,
        }
    }

    /// One leaf's contribution: clamped per-dimension overlap product,
    /// divided by the cell volume, clamped, scaled by the leaf weight —
    /// operand-for-operand the math of `QuadHist::estimate`, minus the
    /// two `Vec` allocations `Rect::intersect` would make.
    #[inline]
    fn leaf_term(&self, leaf: usize, q_lo: &[f64], q_hi: &[f64]) -> f64 {
        let base = leaf * self.dim;
        let mut iv = 1.0;
        for j in 0..self.dim {
            let l = q_lo[j].max(self.leaf_lo[base + j]);
            let h = q_hi[j].min(self.leaf_hi[base + j]);
            iv *= (h - l).max(0.0);
        }
        (iv / self.leaf_cv[leaf]).clamp(0.0, 1.0) * self.leaf_w[leaf]
    }

    /// Rectangle fast path. Pruning against the unclipped query is
    /// equivalent to the tree path's pruning against `query ∩ root`
    /// because every cell is a subset of the root.
    fn estimate_rect(&self, q: &Rect) -> f64 {
        assert_eq!(q.dim(), self.dim, "dimension mismatch");
        let (q_lo, q_hi) = (q.lo(), q.hi());
        let mut total = 0.0;
        let mut stack = TraversalStack::new();
        stack.push(ROOT as u32);
        while let Some(id) = stack.pop() {
            let id = id as usize;
            let base = id * self.dim;
            let n_lo = &self.node_lo[base..base + self.dim];
            let n_hi = &self.node_hi[base..base + self.dim];
            if boxes_disjoint(q_lo, q_hi, n_lo, n_hi) {
                continue;
            }
            if box_contains(q_lo, q_hi, n_lo, n_hi) {
                // absorbed subtree: sequential sweep over its leaf lanes
                for leaf in self.leaf_begin[id] as usize..self.leaf_end[id] as usize {
                    total += self.leaf_term(leaf, q_lo, q_hi);
                }
                continue;
            }
            let fc = self.first_child[id];
            if fc == 0 {
                total += self.leaf_term(self.leaf_begin[id] as usize, q_lo, q_hi);
            } else {
                for k in (0..self.fanout as u32).rev() {
                    stack.push(fc + k);
                }
            }
        }
        total.clamp(0.0, 1.0)
    }

    /// Non-rectangular ranges replicate the tree path exactly: prune by
    /// the clipped bounding box, evaluate every surviving leaf through the
    /// range's own `intersection_volume`.
    fn estimate_generic(&self, range: &Range) -> f64 {
        let Some(bbox) = range.bounding_box(&self.root) else {
            return 0.0;
        };
        let (b_lo, b_hi) = (bbox.lo(), bbox.hi());
        let mut total = 0.0;
        let mut stack = TraversalStack::new();
        stack.push(ROOT as u32);
        while let Some(id) = stack.pop() {
            let id = id as usize;
            let base = id * self.dim;
            let n_lo = &self.node_lo[base..base + self.dim];
            let n_hi = &self.node_hi[base..base + self.dim];
            if boxes_disjoint(n_lo, n_hi, b_lo, b_hi) {
                continue;
            }
            let fc = self.first_child[id];
            if fc != 0 {
                for k in (0..self.fanout as u32).rev() {
                    stack.push(fc + k);
                }
                continue;
            }
            let leaf = self.leaf_begin[id] as usize;
            let w = self.leaf_w[leaf];
            if w <= 0.0 {
                continue;
            }
            let lb = leaf * self.dim;
            let cell = Rect::new(
                self.leaf_lo[lb..lb + self.dim].to_vec(),
                self.leaf_hi[lb..lb + self.dim].to_vec(),
            );
            let frac = range.intersection_volume(&cell, &self.volume) / self.leaf_cv[leaf];
            total += frac.clamp(0.0, 1.0) * w;
        }
        total.clamp(0.0, 1.0)
    }

    fn estimate(&self, range: &Range) -> f64 {
        match range {
            Range::Rect(r) => self.estimate_rect(r),
            _ => self.estimate_generic(range),
        }
    }

    /// The data-space box the source model was trained over.
    pub fn root(&self) -> &Rect {
        &self.root
    }
}

// ---------------------------------------------------------------------------
// FrozenPts
// ---------------------------------------------------------------------------

/// Flattened [`crate::PtsHist`]: the k-d tree arena copied id-for-id into
/// SoA lanes, so traversal (and floating-point summation order) reproduces
/// [`KdTree::weight_in_rect`] exactly.
#[derive(Clone, Debug)]
pub struct FrozenPts {
    dim: usize,
    root: Rect,
    root_id: u32,
    /// Subtree bounding boxes, `node * dim + j` lanes.
    bbox_lo: Vec<f64>,
    bbox_hi: Vec<f64>,
    /// The node's own point, `node * dim + j` lanes.
    pt: Vec<f64>,
    /// The node's own weight.
    w: Vec<f64>,
    /// Aggregated subtree weight (absorbed when the query contains the bbox).
    subw: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    /// Node-order point copies for the generic (non-rect) membership test.
    points: Vec<Point>,
    num_points: usize,
    solve_report: Option<SolveReport>,
}

impl FrozenPts {
    pub(crate) fn build(index: &KdTree, root: Rect, solve_report: Option<SolveReport>) -> Self {
        let dim = root.dim();
        let n = index.num_nodes();
        debug_assert!(n < NONE as usize, "kd-tree too large to freeze");
        let mut bbox_lo = Vec::with_capacity(n * dim);
        let mut bbox_hi = Vec::with_capacity(n * dim);
        let mut pt = Vec::with_capacity(n * dim);
        let mut w = Vec::with_capacity(n);
        let mut subw = Vec::with_capacity(n);
        let mut left = Vec::with_capacity(n);
        let mut right = Vec::with_capacity(n);
        let mut points = Vec::with_capacity(n);
        for id in 0..n {
            let v = index.node(id);
            bbox_lo.extend_from_slice(v.bbox.lo());
            bbox_hi.extend_from_slice(v.bbox.hi());
            pt.extend_from_slice(v.point.coords());
            w.push(v.weight);
            subw.push(v.subtree_weight);
            left.push(v.left.map_or(NONE, |l| l as u32));
            right.push(v.right.map_or(NONE, |r| r as u32));
            points.push(v.point.clone());
        }
        Self {
            dim,
            root,
            root_id: index.root_id().map_or(NONE, |r| r as u32),
            bbox_lo,
            bbox_hi,
            pt,
            w,
            subw,
            left,
            right,
            points,
            num_points: index.len(),
            solve_report,
        }
    }

    /// `Rect::contains_rect` on raw lanes (same epsilon slack).
    #[inline]
    fn query_contains_bbox(&self, q_lo: &[f64], q_hi: &[f64], base: usize) -> bool {
        for j in 0..self.dim {
            if !(q_lo[j] <= self.bbox_lo[base + j] + EPS
                && q_hi[j] + EPS >= self.bbox_hi[base + j])
            {
                return false;
            }
        }
        true
    }

    /// Closed-interval point membership, exactly `Rect::contains`.
    #[inline]
    fn query_contains_point(&self, q_lo: &[f64], q_hi: &[f64], base: usize) -> bool {
        for j in 0..self.dim {
            let x = self.pt[base + j];
            if !(q_lo[j] <= x && x <= q_hi[j]) {
                return false;
            }
        }
        true
    }

    fn weight_in_rect(&self, q: &Rect) -> f64 {
        if self.root_id == NONE {
            return 0.0;
        }
        assert_eq!(q.dim(), self.dim, "dimension mismatch");
        let (q_lo, q_hi) = (q.lo(), q.hi());
        let mut total = 0.0;
        let mut stack = TraversalStack::new();
        stack.push(self.root_id);
        while let Some(id) = stack.pop() {
            let id = id as usize;
            let base = id * self.dim;
            if boxes_disjoint(
                q_lo,
                q_hi,
                &self.bbox_lo[base..base + self.dim],
                &self.bbox_hi[base..base + self.dim],
            ) {
                continue;
            }
            if self.query_contains_bbox(q_lo, q_hi, base) {
                total += self.subw[id];
                continue;
            }
            if self.query_contains_point(q_lo, q_hi, base) {
                total += self.w[id];
            }
            if self.left[id] != NONE {
                stack.push(self.left[id]);
            }
            if self.right[id] != NONE {
                stack.push(self.right[id]);
            }
        }
        total
    }

    fn weight_in_range(&self, query: &Range) -> f64 {
        if let Range::Rect(r) = query {
            return self.weight_in_rect(r);
        }
        if self.root_id == NONE {
            return 0.0;
        }
        let Some(qbox) = query.bounding_box(&self.root) else {
            return 0.0;
        };
        let (b_lo, b_hi) = (qbox.lo(), qbox.hi());
        let mut total = 0.0;
        let mut stack = TraversalStack::new();
        stack.push(self.root_id);
        while let Some(id) = stack.pop() {
            let id = id as usize;
            let base = id * self.dim;
            if boxes_disjoint(
                b_lo,
                b_hi,
                &self.bbox_lo[base..base + self.dim],
                &self.bbox_hi[base..base + self.dim],
            ) {
                continue;
            }
            if query.contains(&self.points[id]) {
                total += self.w[id];
            }
            if self.left[id] != NONE {
                stack.push(self.left[id]);
            }
            if self.right[id] != NONE {
                stack.push(self.right[id]);
            }
        }
        total
    }

    fn estimate(&self, range: &Range) -> f64 {
        self.weight_in_range(range).clamp(0.0, 1.0)
    }

    /// The data-space box the source model was trained over.
    pub fn root(&self) -> &Rect {
        &self.root
    }
}

// ---------------------------------------------------------------------------
// FrozenGauss
// ---------------------------------------------------------------------------

/// Flattened [`crate::GaussHist`]: kernel centers in coordinate lanes for
/// the rectangle fast path (products of 1-D normal masses), `Point` copies
/// for halfspace / QMC masses.
#[derive(Clone, Debug)]
pub struct FrozenGauss {
    dim: usize,
    /// Center coordinates, `kernel * dim + j` lanes.
    centers_flat: Vec<f64>,
    centers: Vec<Point>,
    weights: Vec<f64>,
    sigma: f64,
    qmc_samples: usize,
}

impl FrozenGauss {
    pub(crate) fn build(
        centers: &[Point],
        weights: &[f64],
        sigma: f64,
        qmc_samples: usize,
    ) -> Self {
        let dim = centers.first().map_or(0, Point::dim);
        let mut centers_flat = Vec::with_capacity(centers.len() * dim);
        for c in centers {
            centers_flat.extend_from_slice(c.coords());
        }
        Self {
            dim,
            centers_flat,
            centers: centers.to_vec(),
            weights: weights.to_vec(),
            sigma,
            qmc_samples,
        }
    }

    fn estimate(&self, range: &Range) -> f64 {
        // The pointer model reduces with `.sum::<f64>()`, which folds from
        // -0.0; start there so a termless sum keeps the same zero sign.
        let mut total = -0.0;
        if let Range::Rect(r) = range {
            for (i, &w) in self.weights.iter().enumerate() {
                if w > 0.0 {
                    let base = i * self.dim;
                    let c = &self.centers_flat[base..base + self.dim];
                    let mut m = 1.0;
                    // Indexing (not zip) is deliberate: a query with more
                    // dimensions than the model must panic exactly like
                    // the pointer model's `center[i]` access does.
                    #[allow(clippy::needless_range_loop)]
                    for j in 0..r.dim() {
                        m *= normal_mass(c[j], self.sigma, r.lo()[j], r.hi()[j]);
                        if m == 0.0 {
                            break;
                        }
                    }
                    total += w * m;
                }
            }
        } else {
            for (c, &w) in self.centers.iter().zip(&self.weights) {
                if w > 0.0 {
                    total += w * kernel_mass(c, self.sigma, self.qmc_samples, range);
                }
            }
        }
        total.clamp(0.0, 1.0)
    }
}

// ---------------------------------------------------------------------------
// FrozenArrangement
// ---------------------------------------------------------------------------

/// Flattened [`crate::ArrangementHist`]: cell boxes in coordinate lanes
/// with precomputed volumes (histogram mode) or representative points in
/// lanes (discrete mode).
#[derive(Clone, Debug)]
pub struct FrozenArrangement {
    dim: usize,
    discrete: bool,
    /// Cell boxes, `cell * dim + j` lanes.
    cell_lo: Vec<f64>,
    cell_hi: Vec<f64>,
    /// Precomputed cell volumes (same bits as `Rect::volume` on the cell).
    cell_cv: Vec<f64>,
    /// `Rect` copies for non-rectangular intersection volumes.
    cells: Vec<Rect>,
    /// Representative point coordinates, `cell * dim + j` (discrete mode).
    pts_flat: Vec<f64>,
    /// `Point` copies for non-rectangular membership (discrete mode).
    points: Vec<Point>,
    weights: Vec<f64>,
    num_cells: usize,
}

impl FrozenArrangement {
    pub(crate) fn build(
        cells: &[Rect],
        points: &[Point],
        weights: &[f64],
        discrete: bool,
    ) -> Self {
        let dim = cells.first().map_or(0, Rect::dim);
        let mut cell_lo = Vec::with_capacity(cells.len() * dim);
        let mut cell_hi = Vec::with_capacity(cells.len() * dim);
        let mut cell_cv = Vec::with_capacity(cells.len());
        for c in cells {
            cell_lo.extend_from_slice(c.lo());
            cell_hi.extend_from_slice(c.hi());
            cell_cv.push(c.volume());
        }
        let mut pts_flat = Vec::with_capacity(points.len() * dim);
        for p in points {
            pts_flat.extend_from_slice(p.coords());
        }
        Self {
            dim,
            discrete,
            cell_lo,
            cell_hi,
            cell_cv,
            cells: cells.to_vec(),
            pts_flat,
            points: points.to_vec(),
            weights: weights.to_vec(),
            num_cells: cells.len(),
        }
    }

    fn estimate(&self, range: &Range) -> f64 {
        if self.weights.is_empty() {
            // An empty `.sum::<f64>()` is -0.0 and `clamp(0.0, 1.0)`
            // passes it through; match the pointer model's bits.
            return -0.0;
        }
        // `.sum::<f64>()` folds from -0.0; mirror the fold state exactly.
        let mut total = -0.0;
        if self.discrete {
            if let Range::Rect(r) = range {
                assert_eq!(r.dim(), self.dim, "dimension mismatch");
                let (q_lo, q_hi) = (r.lo(), r.hi());
                'point: for (i, &w) in self.weights.iter().enumerate() {
                    let base = i * self.dim;
                    for j in 0..self.dim {
                        let x = self.pts_flat[base + j];
                        if !(q_lo[j] <= x && x <= q_hi[j]) {
                            continue 'point;
                        }
                    }
                    total += w;
                }
            } else {
                for (p, &w) in self.points.iter().zip(&self.weights) {
                    if range.contains(p) {
                        total += w;
                    }
                }
            }
        } else if let Range::Rect(r) = range {
            assert_eq!(r.dim(), self.dim, "dimension mismatch");
            let (q_lo, q_hi) = (r.lo(), r.hi());
            for (i, &w) in self.weights.iter().enumerate() {
                let cv = self.cell_cv[i];
                if cv <= EPS || w <= 0.0 {
                    // The pointer model maps excluded cells to an explicit
                    // +0.0 term; adding it keeps the fold state identical
                    // (-0.0 + 0.0 == +0.0).
                    total += 0.0;
                    continue;
                }
                let base = i * self.dim;
                let mut iv = 1.0;
                for j in 0..self.dim {
                    let l = q_lo[j].max(self.cell_lo[base + j]);
                    let h = q_hi[j].min(self.cell_hi[base + j]);
                    iv *= (h - l).max(0.0);
                }
                total += (iv / cv).clamp(0.0, 1.0) * w;
            }
        } else {
            for (i, &w) in self.weights.iter().enumerate() {
                let cv = self.cell_cv[i];
                if cv <= EPS || w <= 0.0 {
                    total += 0.0;
                    continue;
                }
                let est = VolumeEstimator::default();
                let frac = range.intersection_volume(&self.cells[i], &est) / cv;
                total += frac.clamp(0.0, 1.0) * w;
            }
        }
        total.clamp(0.0, 1.0)
    }
}

// ---------------------------------------------------------------------------
// FrozenCdf
// ---------------------------------------------------------------------------

/// Frozen [`Cdf1D`]. The source model is already two flat `f64` arrays, so
/// freezing is a copy; the variant exists so 1-D models round-trip through
/// the same frozen serving path as everything else.
#[derive(Clone, Debug)]
pub struct FrozenCdf {
    inner: Cdf1D,
}

impl FrozenCdf {
    pub(crate) fn build(inner: Cdf1D) -> Self {
        Self { inner }
    }
}

// ---------------------------------------------------------------------------
// FrozenEstimator
// ---------------------------------------------------------------------------

/// A pointer-free inference artifact produced by an estimator's
/// `freeze()`. Implements [`SelectivityEstimator`], returning bit-identical
/// estimates to its source model, so registries and callers hot-swap it in
/// anywhere a trained model is accepted.
#[derive(Clone, Debug)]
pub enum FrozenEstimator {
    /// Frozen [`crate::QuadHist`].
    Quad(FrozenQuad),
    /// Frozen [`crate::PtsHist`].
    Pts(FrozenPts),
    /// Frozen [`crate::GaussHist`].
    Gauss(FrozenGauss),
    /// Frozen [`crate::ArrangementHist`].
    Arrangement(FrozenArrangement),
    /// Frozen [`Cdf1D`].
    Cdf(FrozenCdf),
}

impl FrozenEstimator {
    /// The data-space box the source model was trained over, where the
    /// model family records one (`QuadHist`, `PtsHist`).
    pub fn root(&self) -> Option<&Rect> {
        match self {
            FrozenEstimator::Quad(q) => Some(q.root()),
            FrozenEstimator::Pts(p) => Some(p.root()),
            _ => None,
        }
    }
}

impl SelectivityEstimator for FrozenEstimator {
    fn estimate(&self, range: &Range) -> f64 {
        match self {
            FrozenEstimator::Quad(q) => q.estimate(range),
            FrozenEstimator::Pts(p) => p.estimate(range),
            FrozenEstimator::Gauss(g) => g.estimate(range),
            FrozenEstimator::Arrangement(a) => a.estimate(range),
            FrozenEstimator::Cdf(c) => c.inner.estimate(range),
        }
    }

    fn num_buckets(&self) -> usize {
        match self {
            FrozenEstimator::Quad(q) => q.num_leaves,
            FrozenEstimator::Pts(p) => p.num_points,
            FrozenEstimator::Gauss(g) => g.centers.len(),
            FrozenEstimator::Arrangement(a) => a.num_cells,
            FrozenEstimator::Cdf(c) => c.inner.num_buckets(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            FrozenEstimator::Quad(_) => "FrozenQuadHist",
            FrozenEstimator::Pts(_) => "FrozenPtsHist",
            FrozenEstimator::Gauss(_) => "FrozenGaussHist",
            FrozenEstimator::Arrangement(a) => {
                if a.discrete {
                    "FrozenArrangementPts"
                } else {
                    "FrozenArrangementHist"
                }
            }
            FrozenEstimator::Cdf(_) => "FrozenCdf1D",
        }
    }

    fn solve_report(&self) -> Option<SolveReport> {
        match self {
            FrozenEstimator::Quad(q) => q.solve_report,
            FrozenEstimator::Pts(p) => p.solve_report,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traversal_stack_is_lifo_across_spill() {
        let mut s = TraversalStack::new();
        for i in 0..300u32 {
            s.push(i);
        }
        for i in (0..300u32).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn disjoint_and_contains_predicates() {
        let a = (vec![0.0, 0.0], vec![1.0, 1.0]);
        let b = (vec![0.25, 0.25], vec![0.5, 0.5]);
        let c = (vec![2.0, 2.0], vec![3.0, 3.0]);
        assert!(!boxes_disjoint(&a.0, &a.1, &b.0, &b.1));
        assert!(boxes_disjoint(&a.0, &a.1, &c.0, &c.1));
        assert!(box_contains(&a.0, &a.1, &b.0, &b.1));
        assert!(!box_contains(&b.0, &b.1, &a.0, &a.1));
        // touching boxes intersect (closed boxes), like Rect::intersects
        let d = (vec![1.0, 0.0], vec![2.0, 1.0]);
        assert!(!boxes_disjoint(&a.0, &a.1, &d.0, &d.1));
    }
}
