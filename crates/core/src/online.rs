//! Online (incremental) learned selectivity estimation.
//!
//! The query-driven setting is naturally *streaming*: every executed query
//! returns its true cardinality as free feedback (this is how STHoles and
//! ISOMER were deployed). QuadHist's bucket design is already incremental
//! — Algorithm 1 processes queries one at a time and Lemma A.4 guarantees
//! the partition never depends on arrival order — so an online wrapper
//! only has to (a) refine the tree per observation and (b) decide when to
//! re-run the weight-estimation phase.
//!
//! [`OnlineQuadHist`] refits weights lazily: estimates are served from the
//! last fitted weights until `refit_every` new observations accumulate (or
//! [`OnlineQuadHist::refit`] is called). Between refits, freshly created
//! leaves inherit their parent's mass proportionally to volume, so
//! estimates remain a valid distribution at all times.

use crate::assemble::assemble_design_matrix;
use crate::error::SelearnError;
use crate::estimator::{SelectivityEstimator, TrainingQuery};
use crate::quadhist::{update_quad, QuadHist, QuadHistConfig};
use crate::quadtree::{QuadTree, ROOT};
use crate::weights::estimate_weights;
use selearn_geom::{Range, RangeQuery, Rect, EPS};
use std::collections::VecDeque;

/// The complete mutable state of an [`OnlineQuadHist`], captured by
/// [`OnlineQuadHist::snapshot`] and rebuilt by [`OnlineQuadHist::restore`].
/// Deployment configuration (root, [`QuadHistConfig`], refit interval,
/// window cap) is deliberately *not* part of the snapshot: a durable store
/// owns the config and persists only this state.
#[derive(Clone, Debug)]
pub struct OnlineSnapshot {
    /// Arena link per tree node (`None` = leaf), in node-id order — the
    /// exact layout, because estimate summation order follows it.
    pub first_child: Vec<Option<usize>>,
    /// Weight per tree node (nonzero at leaves, plus interim split mass).
    pub node_weight: Vec<f64>,
    /// The retained feedback window, oldest first.
    pub history: Vec<TrainingQuery>,
    /// Lifetime observation count.
    pub total_observed: usize,
    /// Observations since the last weight refit.
    pub observed_since_refit: usize,
}

/// An incrementally trained QuadHist.
#[derive(Clone, Debug)]
pub struct OnlineQuadHist {
    config: QuadHistConfig,
    root: Rect,
    tree: QuadTree,
    /// Weight per node; kept distribution-valid between refits by pushing
    /// mass down to new leaves on split.
    node_weight: Vec<f64>,
    /// Sliding window of the most recent feedback (all of it when
    /// `history_cap` is 0). A long-running server otherwise accumulates
    /// unbounded memory *and* pays an ever-growing refit bill.
    history: VecDeque<TrainingQuery>,
    /// Window cap; 0 = unbounded.
    history_cap: usize,
    /// Lifetime feedback count (keeps counting past evictions).
    total_observed: usize,
    /// Per-node volume cache: `node_volume[id] == tree.rect(id).volume()`.
    /// Volumes are immutable once a node exists, so the cache only ever
    /// appends — refits stop recomputing `∏(hi−lo)` for every leaf × query.
    node_volume: Vec<f64>,
    observed_since_refit: usize,
    refit_every: usize,
}

impl OnlineQuadHist {
    /// Creates an empty online estimator over the data space `root` that
    /// re-runs weight estimation every `refit_every` observations.
    ///
    /// Returns [`SelearnError::InvalidConfig`] on a zero refit interval or
    /// a `τ` outside `(0, 1)`.
    pub fn new(
        root: Rect,
        config: QuadHistConfig,
        refit_every: usize,
    ) -> Result<Self, SelearnError> {
        if refit_every == 0 {
            return Err(SelearnError::InvalidConfig {
                model: "online-quadhist",
                what: "refit interval must be >= 1",
            });
        }
        if !(config.tau > 0.0 && config.tau < 1.0) {
            return Err(SelearnError::InvalidConfig {
                model: "online-quadhist",
                what: "tau must be in (0, 1)",
            });
        }
        let tree = QuadTree::new(root.clone());
        let root_volume = root.volume();
        Ok(Self {
            config,
            root,
            node_weight: vec![1.0; 1], // single leaf carries all mass
            tree,
            history: VecDeque::new(),
            history_cap: 0,
            total_observed: 0,
            node_volume: vec![root_volume],
            observed_since_refit: 0,
            refit_every,
        })
    }

    /// Caps the feedback window at `cap` records (0 = unbounded, the
    /// default): once full, each new observation evicts the oldest one, so
    /// a long-running server holds bounded memory and each refit costs
    /// `O(cap · leaves)` instead of `O(total · leaves)`. Evicted feedback
    /// still left its mark on the partition — only weight estimation
    /// forgets it.
    pub fn with_history_cap(mut self, cap: usize) -> Self {
        self.history_cap = cap;
        self.trim_history();
        self
    }

    fn trim_history(&mut self) {
        if self.history_cap > 0 {
            while self.history.len() > self.history_cap {
                self.history.pop_front();
            }
        }
    }

    /// Ingests one piece of query feedback: refines the partition
    /// (Algorithm 2) and schedules a weight refit.
    ///
    /// Returns [`SelearnError::InvalidLabel`] on a non-finite **or
    /// negative** selectivity (the model is left unchanged), or a solver
    /// error from a scheduled refit. Batch `fit` tolerates finite
    /// out-of-band labels (the agnostic setting), but feedback arriving
    /// one record at a time is a *measurement* of a probability — a
    /// negative value can only be an upstream bug, and admitting it into
    /// the window would silently poison every refit until it ages out.
    pub fn observe(&mut self, feedback: TrainingQuery) -> Result<(), SelearnError> {
        if !feedback.selectivity.is_finite() || feedback.selectivity < 0.0 {
            return Err(SelearnError::InvalidLabel {
                query: self.total_observed,
                value: feedback.selectivity,
            });
        }
        let nodes_before = self.tree.num_nodes();
        let vol_r = feedback.range.volume_in(&self.root, &self.config.volume);
        if vol_r > EPS {
            update_quad(
                &mut self.tree,
                ROOT,
                &feedback.range,
                feedback.selectivity,
                vol_r,
                &self.config,
            );
        }
        // keep the interim weights a valid distribution: push split mass
        // down to children proportionally to volume
        if self.tree.num_nodes() > nodes_before {
            for id in self.node_volume.len()..self.tree.num_nodes() {
                self.node_volume.push(self.tree.rect(id).volume());
            }
            self.node_weight.resize(self.tree.num_nodes(), 0.0);
            for id in 0..nodes_before {
                if !self.tree.is_leaf(id) && self.node_weight[id] > 0.0 {
                    let w = std::mem::take(&mut self.node_weight[id]);
                    let total: f64 = self.tree.children(id).map(|c| self.node_volume[c]).sum();
                    let kids: Vec<_> = self.tree.children(id).collect();
                    for c in kids {
                        let share = if total > 0.0 {
                            self.node_volume[c] / total
                        } else {
                            0.0
                        };
                        self.node_weight[c] += w * share;
                    }
                }
            }
            // repeat for freshly created internal nodes (deep splits)
            for id in nodes_before..self.tree.num_nodes() {
                if !self.tree.is_leaf(id) && self.node_weight[id] > 0.0 {
                    let w = std::mem::take(&mut self.node_weight[id]);
                    let kids: Vec<_> = self.tree.children(id).collect();
                    let total: f64 = kids.iter().map(|&c| self.node_volume[c]).sum();
                    for c in kids {
                        let share = if total > 0.0 {
                            self.node_volume[c] / total
                        } else {
                            0.0
                        };
                        self.node_weight[c] += w * share;
                    }
                }
            }
        }
        self.history.push_back(feedback);
        self.total_observed += 1;
        self.trim_history();
        self.observed_since_refit += 1;
        if self.observed_since_refit >= self.refit_every {
            self.refit()?;
        }
        Ok(())
    }

    /// Re-runs the weight-estimation phase (Equation 8) over the retained
    /// feedback window on the current partition. Matrix assembly goes
    /// through [`crate::assemble`], so it picks up the parallel row-build
    /// path under the `parallel` feature, and per-leaf volumes come from
    /// the node-volume cache instead of being recomputed per row.
    ///
    /// On a solver error the interim (still distribution-valid) weights
    /// are kept and the error is returned.
    pub fn refit(&mut self) -> Result<(), SelearnError> {
        let _span = selearn_obs::span!("refit.online");
        self.observed_since_refit = 0;
        let leaves = self.tree.leaves();
        if leaves.is_empty() || self.history.is_empty() {
            return Ok(());
        }
        let window = self.history.make_contiguous();
        let tree = &self.tree;
        let node_volume = &self.node_volume;
        let volume = &self.config.volume;
        let a = assemble_design_matrix(window, leaves.len(), |q| {
            leaves
                .iter()
                .map(|&leaf| {
                    let cv = node_volume[leaf];
                    if cv <= EPS {
                        0.0
                    } else {
                        (q.range.intersection_volume(tree.rect(leaf), volume) / cv)
                            .clamp(0.0, 1.0)
                    }
                })
                .collect()
        });
        let s: Vec<f64> = window.iter().map(|q| q.selectivity).collect();
        let w = estimate_weights(&a, &s, &self.config.objective, &self.config.solver)?;
        self.node_weight = vec![0.0; self.tree.num_nodes()];
        for (k, &leaf) in leaves.iter().enumerate() {
            self.node_weight[leaf] = w[k];
        }
        Ok(())
    }

    /// Captures the complete mutable state of the model — the exact arena
    /// layout of the partition tree, per-node weights, the retained
    /// feedback window, and the observation counters. Restoring the
    /// snapshot with [`OnlineQuadHist::restore`] (same root and config)
    /// yields a model whose estimates *and whose response to any future
    /// feedback stream* are bitwise identical to the original — the
    /// contract durable checkpoints are built on.
    pub fn snapshot(&self) -> OnlineSnapshot {
        OnlineSnapshot {
            first_child: (0..self.tree.num_nodes())
                .map(|id| self.tree.first_child(id))
                .collect(),
            node_weight: self.node_weight.clone(),
            history: self.history.iter().cloned().collect(),
            total_observed: self.total_observed,
            observed_since_refit: self.observed_since_refit,
        }
    }

    /// Rebuilds a model from a [`snapshot`](OnlineQuadHist::snapshot). The
    /// caller supplies the same `root`, `config`, `refit_every`, and
    /// `history_cap` the snapshotted model was built with — a durable
    /// store treats those as deployment configuration and persists only
    /// the state (validating a config fingerprint separately).
    ///
    /// Returns [`SelearnError::InvalidConfig`] on a bad config, or
    /// [`SelearnError::CorruptModel`] when the snapshot is internally
    /// inconsistent (arena/weight length mismatch, non-finite weight,
    /// invalid history label, window over the cap).
    pub fn restore(
        root: Rect,
        config: QuadHistConfig,
        refit_every: usize,
        history_cap: usize,
        snapshot: OnlineSnapshot,
    ) -> Result<Self, SelearnError> {
        let fresh = Self::new(root.clone(), config.clone(), refit_every)?;
        let tree = QuadTree::from_arena(root.clone(), &snapshot.first_child)?;
        if snapshot.node_weight.len() != tree.num_nodes() {
            return Err(SelearnError::CorruptModel {
                what: format!(
                    "snapshot has {} weights for {} nodes",
                    snapshot.node_weight.len(),
                    tree.num_nodes()
                ),
            });
        }
        if let Some(w) = snapshot.node_weight.iter().find(|w| !w.is_finite()) {
            return Err(SelearnError::CorruptModel {
                what: format!("snapshot contains non-finite node weight {w}"),
            });
        }
        if history_cap > 0 && snapshot.history.len() > history_cap {
            return Err(SelearnError::CorruptModel {
                what: format!(
                    "snapshot window of {} exceeds the history cap {}",
                    snapshot.history.len(),
                    history_cap
                ),
            });
        }
        for (i, q) in snapshot.history.iter().enumerate() {
            if !q.selectivity.is_finite() || q.selectivity < 0.0 {
                return Err(SelearnError::CorruptModel {
                    what: format!(
                        "snapshot window record {i} has invalid selectivity {}",
                        q.selectivity
                    ),
                });
            }
        }
        let node_volume = (0..tree.num_nodes())
            .map(|id| tree.rect(id).volume())
            .collect();
        Ok(Self {
            tree,
            node_weight: snapshot.node_weight,
            history: snapshot.history.into(),
            history_cap,
            total_observed: snapshot.total_observed,
            node_volume,
            observed_since_refit: snapshot.observed_since_refit,
            ..fresh
        })
    }

    /// The data-space root this model was built over.
    pub fn root(&self) -> &Rect {
        &self.root
    }

    /// The model's refit interval (observations per scheduled refit).
    pub fn refit_every(&self) -> usize {
        self.refit_every
    }

    /// The feedback-window cap (0 = unbounded).
    pub fn history_cap(&self) -> usize {
        self.history_cap
    }

    /// Lifetime number of feedback records ingested (not reduced by
    /// window eviction).
    pub fn observations(&self) -> usize {
        self.total_observed
    }

    /// Number of feedback records currently retained for refits — at most
    /// the [`OnlineQuadHist::with_history_cap`] window.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Converts into a frozen batch model (refitting first). With a
    /// history cap, the batch model is trained on the retained window.
    pub fn freeze(mut self) -> Result<QuadHist, SelearnError> {
        self.refit()?;
        let window: Vec<TrainingQuery> = self.history.into_iter().collect();
        QuadHist::fit(self.root, &window, &self.config)
    }
}

impl SelectivityEstimator for OnlineQuadHist {
    fn estimate(&self, range: &Range) -> f64 {
        let Some(bbox) = range.bounding_box(&self.root) else {
            return 0.0;
        };
        let mut total = 0.0;
        self.tree.for_each_leaf_intersecting(&bbox, |id, cell| {
            let w = self.node_weight[id];
            if w <= 0.0 {
                return;
            }
            let cv = cell.volume();
            if cv <= EPS {
                return;
            }
            let frac = range.intersection_volume(cell, &self.config.volume) / cv;
            total += frac.clamp(0.0, 1.0) * w;
        });
        total.clamp(0.0, 1.0)
    }

    fn num_buckets(&self) -> usize {
        self.tree.num_leaves()
    }

    fn name(&self) -> &'static str {
        "OnlineQuadHist"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tq(lo: Vec<f64>, hi: Vec<f64>, s: f64) -> TrainingQuery {
        TrainingQuery::new(Rect::new(lo, hi), s)
    }

    fn stream() -> Vec<TrainingQuery> {
        vec![
            tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.6),
            tq(vec![0.25, 0.25], vec![0.9, 0.9], 0.35),
            tq(vec![0.6, 0.1], vec![0.95, 0.45], 0.2),
            tq(vec![0.1, 0.55], vec![0.4, 0.95], 0.15),
            tq(vec![0.0, 0.0], vec![0.25, 0.25], 0.3),
            tq(vec![0.5, 0.5], vec![1.0, 1.0], 0.25),
        ]
    }

    #[test]
    fn mass_stays_valid_without_refit() {
        let mut m = OnlineQuadHist::new(Rect::unit(2), QuadHistConfig::with_tau(0.02), 1000).unwrap();
        for q in stream() {
            m.observe(q).unwrap();
            // interim estimates remain a distribution: whole space ≈ 1
            let all: Range = Rect::unit(2).into();
            let e = m.estimate(&all);
            assert!((e - 1.0).abs() < 1e-6, "mass drifted to {e}");
        }
    }

    #[test]
    fn refit_matches_batch_partition() {
        // After observing the full stream and refitting, the online model
        // must agree with the batch model (same τ, same queries) — a
        // consequence of Lemma A.4 plus shared weight estimation.
        let cfg = QuadHistConfig::with_tau(0.02);
        let mut online = OnlineQuadHist::new(Rect::unit(2), cfg.clone(), 1).unwrap();
        for q in stream() {
            online.observe(q).unwrap();
        }
        let batch = QuadHist::fit(Rect::unit(2), &stream(), &cfg).unwrap();
        assert_eq!(online.num_buckets(), batch.num_buckets());
        for q in stream() {
            let a = online.estimate(&q.range);
            let b = batch.estimate(&q.range);
            assert!((a - b).abs() < 1e-5, "online {a} vs batch {b}");
        }
    }

    #[test]
    fn accuracy_improves_along_the_stream() {
        let mut m = OnlineQuadHist::new(Rect::unit(2), QuadHistConfig::with_tau(0.02), 2).unwrap();
        let qs = stream();
        let probe = &qs[0];
        let mut err_first = None;
        for q in &qs {
            m.observe(q.clone()).unwrap();
            let e = (m.estimate(&probe.range) - 0.6f64).abs();
            err_first.get_or_insert(e);
        }
        m.refit().unwrap();
        let final_err = (m.estimate(&probe.range) - 0.6f64).abs();
        assert!(final_err <= err_first.unwrap() + 1e-9);
        assert!(final_err < 0.05, "final error {final_err}");
        assert_eq!(m.observations(), qs.len());
    }

    #[test]
    fn freeze_produces_equivalent_batch_model() {
        let cfg = QuadHistConfig::with_tau(0.05);
        let mut online = OnlineQuadHist::new(Rect::unit(2), cfg.clone(), 3).unwrap();
        for q in stream() {
            online.observe(q).unwrap();
        }
        let frozen = online.freeze().unwrap();
        let batch = QuadHist::fit(Rect::unit(2), &stream(), &cfg).unwrap();
        assert_eq!(frozen.num_buckets(), batch.num_buckets());
    }

    #[test]
    fn empty_online_model_is_uniform() {
        let m = OnlineQuadHist::new(Rect::unit(2), QuadHistConfig::default(), 10).unwrap();
        let half: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 1.0]).into();
        assert!((m.estimate(&half) - 0.5).abs() < 1e-9);
        assert_eq!(m.num_buckets(), 1);
        assert_eq!(m.name(), "OnlineQuadHist");
    }

    #[test]
    fn history_cap_bounds_retained_window() {
        let mut m = OnlineQuadHist::new(Rect::unit(2), QuadHistConfig::with_tau(0.05), 1000)
            .unwrap()
            .with_history_cap(3);
        for _ in 0..4 {
            for q in stream() {
                m.observe(q).unwrap();
            }
        }
        assert_eq!(m.observations(), 24, "lifetime count keeps counting");
        assert_eq!(m.history_len(), 3, "window stays capped");
        m.refit().unwrap();
        // weights refit on the window still form a distribution
        let all: Range = Rect::unit(2).into();
        assert!((m.estimate(&all) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn windowed_refit_matches_window_only_weights() {
        // Same partition + same retained window ⇒ same weights, no matter
        // how much older feedback was evicted along the way.
        let cfg = QuadHistConfig::with_tau(0.02);
        let qs = stream();
        let cap = 3;
        let mut windowed = OnlineQuadHist::new(Rect::unit(2), cfg.clone(), usize::MAX)
            .unwrap()
            .with_history_cap(cap);
        let mut unbounded = OnlineQuadHist::new(Rect::unit(2), cfg, usize::MAX).unwrap();
        for q in &qs {
            windowed.observe(q.clone()).unwrap();
            unbounded.observe(q.clone()).unwrap();
        }
        // rebuild the unbounded model's history down to the same window
        let unbounded = unbounded.with_history_cap(cap);
        let (mut a, mut b) = (windowed, unbounded);
        a.refit().unwrap();
        b.refit().unwrap();
        for q in &qs {
            let (ea, eb) = (a.estimate(&q.range), b.estimate(&q.range));
            assert!((ea - eb).abs() < 1e-12, "windowed {ea} vs trimmed {eb}");
        }
    }

    #[test]
    fn nan_and_negative_feedback_are_rejected_untouched() {
        // Regression: negative selectivities used to slide into the window
        // silently and poison every refit until they aged out.
        let mut m = OnlineQuadHist::new(Rect::unit(2), QuadHistConfig::with_tau(0.05), 2).unwrap();
        m.observe(tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.5)).unwrap();
        let before = m.history_len();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.2, -1e-12] {
            let err = m
                .observe(tq(vec![0.1, 0.1], vec![0.6, 0.6], bad))
                .unwrap_err();
            assert!(
                matches!(err, SelearnError::InvalidLabel { .. }),
                "{bad}: {err}"
            );
        }
        assert_eq!(m.history_len(), before, "rejected feedback must not be retained");
        assert_eq!(m.observations(), 1, "rejected feedback must not be counted");
        // -0.0 is a legal (zero) selectivity, not a negative one.
        m.observe(tq(vec![0.2, 0.2], vec![0.3, 0.3], -0.0)).unwrap();
    }

    #[test]
    fn snapshot_restore_round_trips_bitwise() {
        let cfg = QuadHistConfig::with_tau(0.02);
        let mut m = OnlineQuadHist::new(Rect::unit(2), cfg.clone(), 4)
            .unwrap()
            .with_history_cap(5);
        for q in stream() {
            m.observe(q).unwrap();
        }
        let snap = m.snapshot();
        let mut back =
            OnlineQuadHist::restore(Rect::unit(2), cfg, 4, 5, snap).expect("restore");
        assert_eq!(back.observations(), m.observations());
        assert_eq!(back.history_len(), m.history_len());
        assert_eq!(back.num_buckets(), m.num_buckets());
        for q in stream() {
            assert_eq!(
                back.estimate(&q.range).to_bits(),
                m.estimate(&q.range).to_bits(),
                "restored estimates must be bit-identical"
            );
        }
        // Future behavior must also match: feed both the same tail.
        for q in stream() {
            m.observe(q.clone()).unwrap();
            back.observe(q).unwrap();
        }
        for q in stream() {
            assert_eq!(back.estimate(&q.range).to_bits(), m.estimate(&q.range).to_bits());
        }
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let cfg = QuadHistConfig::with_tau(0.05);
        let mut m = OnlineQuadHist::new(Rect::unit(2), cfg.clone(), 4).unwrap();
        for q in stream() {
            m.observe(q).unwrap();
        }
        let good = m.snapshot();

        let mut short = good.clone();
        short.node_weight.pop();
        assert!(matches!(
            OnlineQuadHist::restore(Rect::unit(2), cfg.clone(), 4, 0, short),
            Err(SelearnError::CorruptModel { .. })
        ));

        let mut nan = good.clone();
        nan.node_weight[0] = f64::NAN;
        assert!(matches!(
            OnlineQuadHist::restore(Rect::unit(2), cfg.clone(), 4, 0, nan),
            Err(SelearnError::CorruptModel { .. })
        ));

        let mut bad_hist = good.clone();
        bad_hist.history[0].selectivity = -0.5;
        assert!(matches!(
            OnlineQuadHist::restore(Rect::unit(2), cfg.clone(), 4, 0, bad_hist),
            Err(SelearnError::CorruptModel { .. })
        ));

        // Window larger than the declared cap.
        assert!(matches!(
            OnlineQuadHist::restore(Rect::unit(2), cfg, 4, 1, good),
            Err(SelearnError::CorruptModel { .. })
        ));
    }

    #[test]
    fn degenerate_feedback_is_tolerated() {
        let mut m = OnlineQuadHist::new(Rect::unit(2), QuadHistConfig::default(), 2).unwrap();
        m.observe(tq(vec![0.3, 0.0], vec![0.3, 1.0], 0.2)).unwrap(); // zero volume
        m.observe(tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.5)).unwrap();
        let all: Range = Rect::unit(2).into();
        assert!((m.estimate(&all) - 1.0).abs() < 1e-6);
    }
}
