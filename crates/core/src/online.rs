//! Online (incremental) learned selectivity estimation.
//!
//! The query-driven setting is naturally *streaming*: every executed query
//! returns its true cardinality as free feedback (this is how STHoles and
//! ISOMER were deployed). QuadHist's bucket design is already incremental
//! — Algorithm 1 processes queries one at a time and Lemma A.4 guarantees
//! the partition never depends on arrival order — so an online wrapper
//! only has to (a) refine the tree per observation and (b) decide when to
//! re-run the weight-estimation phase.
//!
//! [`OnlineQuadHist`] refits weights lazily: estimates are served from the
//! last fitted weights until `refit_every` new observations accumulate (or
//! [`OnlineQuadHist::refit`] is called). Between refits, freshly created
//! leaves inherit their parent's mass proportionally to volume, so
//! estimates remain a valid distribution at all times.

use crate::error::SelearnError;
use crate::estimator::{SelectivityEstimator, TrainingQuery};
use crate::quadhist::{update_quad, QuadHist, QuadHistConfig};
use crate::quadtree::{QuadTree, ROOT};
use crate::weights::estimate_weights;
use selearn_geom::{Range, RangeQuery, Rect, EPS};
use selearn_solver::DenseMatrix;

/// An incrementally trained QuadHist.
#[derive(Clone, Debug)]
pub struct OnlineQuadHist {
    config: QuadHistConfig,
    root: Rect,
    tree: QuadTree,
    /// Weight per node; kept distribution-valid between refits by pushing
    /// mass down to new leaves on split.
    node_weight: Vec<f64>,
    history: Vec<TrainingQuery>,
    observed_since_refit: usize,
    refit_every: usize,
}

impl OnlineQuadHist {
    /// Creates an empty online estimator over the data space `root` that
    /// re-runs weight estimation every `refit_every` observations.
    ///
    /// Returns [`SelearnError::InvalidConfig`] on a zero refit interval or
    /// a `τ` outside `(0, 1)`.
    pub fn new(
        root: Rect,
        config: QuadHistConfig,
        refit_every: usize,
    ) -> Result<Self, SelearnError> {
        if refit_every == 0 {
            return Err(SelearnError::InvalidConfig {
                model: "online-quadhist",
                what: "refit interval must be >= 1",
            });
        }
        if !(config.tau > 0.0 && config.tau < 1.0) {
            return Err(SelearnError::InvalidConfig {
                model: "online-quadhist",
                what: "tau must be in (0, 1)",
            });
        }
        let tree = QuadTree::new(root.clone());
        Ok(Self {
            config,
            root,
            node_weight: vec![1.0; 1], // single leaf carries all mass
            tree,
            history: Vec::new(),
            observed_since_refit: 0,
            refit_every,
        })
    }

    /// Ingests one piece of query feedback: refines the partition
    /// (Algorithm 2) and schedules a weight refit.
    ///
    /// Returns [`SelearnError::InvalidLabel`] on a non-finite selectivity
    /// (the model is left unchanged), or a solver error from a scheduled
    /// refit.
    pub fn observe(&mut self, feedback: TrainingQuery) -> Result<(), SelearnError> {
        if !feedback.selectivity.is_finite() {
            return Err(SelearnError::InvalidLabel {
                query: self.history.len(),
                value: feedback.selectivity,
            });
        }
        let nodes_before = self.tree.num_nodes();
        let vol_r = feedback.range.volume_in(&self.root, &self.config.volume);
        if vol_r > EPS {
            update_quad(
                &mut self.tree,
                ROOT,
                &feedback.range,
                feedback.selectivity,
                vol_r,
                &self.config,
            );
        }
        // keep the interim weights a valid distribution: push split mass
        // down to children proportionally to volume
        if self.tree.num_nodes() > nodes_before {
            self.node_weight.resize(self.tree.num_nodes(), 0.0);
            for id in 0..nodes_before {
                if !self.tree.is_leaf(id) && self.node_weight[id] > 0.0 {
                    let w = std::mem::take(&mut self.node_weight[id]);
                    let total: f64 = self
                        .tree
                        .children(id)
                        .map(|c| self.tree.rect(c).volume())
                        .sum();
                    let kids: Vec<_> = self.tree.children(id).collect();
                    for c in kids {
                        let share = if total > 0.0 {
                            self.tree.rect(c).volume() / total
                        } else {
                            0.0
                        };
                        self.node_weight[c] += w * share;
                    }
                }
            }
            // repeat for freshly created internal nodes (deep splits)
            for id in nodes_before..self.tree.num_nodes() {
                if !self.tree.is_leaf(id) && self.node_weight[id] > 0.0 {
                    let w = std::mem::take(&mut self.node_weight[id]);
                    let kids: Vec<_> = self.tree.children(id).collect();
                    let total: f64 = kids.iter().map(|&c| self.tree.rect(c).volume()).sum();
                    for c in kids {
                        let share = if total > 0.0 {
                            self.tree.rect(c).volume() / total
                        } else {
                            0.0
                        };
                        self.node_weight[c] += w * share;
                    }
                }
            }
        }
        self.history.push(feedback);
        self.observed_since_refit += 1;
        if self.observed_since_refit >= self.refit_every {
            self.refit()?;
        }
        Ok(())
    }

    /// Re-runs the weight-estimation phase (Equation 8) over the full
    /// observation history on the current partition.
    ///
    /// On a solver error the interim (still distribution-valid) weights
    /// are kept and the error is returned.
    pub fn refit(&mut self) -> Result<(), SelearnError> {
        self.observed_since_refit = 0;
        let leaves = self.tree.leaves();
        if leaves.is_empty() || self.history.is_empty() {
            return Ok(());
        }
        let mut a = DenseMatrix::zeros(0, 0);
        let mut s = Vec::with_capacity(self.history.len());
        for q in &self.history {
            let row: Vec<f64> = leaves
                .iter()
                .map(|&leaf| {
                    let cell = self.tree.rect(leaf);
                    let cv = cell.volume();
                    if cv <= EPS {
                        0.0
                    } else {
                        (q.range.intersection_volume(cell, &self.config.volume) / cv)
                            .clamp(0.0, 1.0)
                    }
                })
                .collect();
            a.push_row(&row);
            s.push(q.selectivity);
        }
        let w = estimate_weights(&a, &s, &self.config.objective, &self.config.solver)?;
        self.node_weight = vec![0.0; self.tree.num_nodes()];
        for (k, &leaf) in leaves.iter().enumerate() {
            self.node_weight[leaf] = w[k];
        }
        Ok(())
    }

    /// Number of feedback records ingested so far.
    pub fn observations(&self) -> usize {
        self.history.len()
    }

    /// Converts into a frozen batch model (refitting first).
    pub fn freeze(mut self) -> Result<QuadHist, SelearnError> {
        self.refit()?;
        QuadHist::fit(self.root, &self.history, &self.config)
    }
}

impl SelectivityEstimator for OnlineQuadHist {
    fn estimate(&self, range: &Range) -> f64 {
        let Some(bbox) = range.bounding_box(&self.root) else {
            return 0.0;
        };
        let mut total = 0.0;
        self.tree.for_each_leaf_intersecting(&bbox, |id, cell| {
            let w = self.node_weight[id];
            if w <= 0.0 {
                return;
            }
            let cv = cell.volume();
            if cv <= EPS {
                return;
            }
            let frac = range.intersection_volume(cell, &self.config.volume) / cv;
            total += frac.clamp(0.0, 1.0) * w;
        });
        total.clamp(0.0, 1.0)
    }

    fn num_buckets(&self) -> usize {
        self.tree.num_leaves()
    }

    fn name(&self) -> &'static str {
        "OnlineQuadHist"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tq(lo: Vec<f64>, hi: Vec<f64>, s: f64) -> TrainingQuery {
        TrainingQuery::new(Rect::new(lo, hi), s)
    }

    fn stream() -> Vec<TrainingQuery> {
        vec![
            tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.6),
            tq(vec![0.25, 0.25], vec![0.9, 0.9], 0.35),
            tq(vec![0.6, 0.1], vec![0.95, 0.45], 0.2),
            tq(vec![0.1, 0.55], vec![0.4, 0.95], 0.15),
            tq(vec![0.0, 0.0], vec![0.25, 0.25], 0.3),
            tq(vec![0.5, 0.5], vec![1.0, 1.0], 0.25),
        ]
    }

    #[test]
    fn mass_stays_valid_without_refit() {
        let mut m = OnlineQuadHist::new(Rect::unit(2), QuadHistConfig::with_tau(0.02), 1000).unwrap();
        for q in stream() {
            m.observe(q).unwrap();
            // interim estimates remain a distribution: whole space ≈ 1
            let all: Range = Rect::unit(2).into();
            let e = m.estimate(&all);
            assert!((e - 1.0).abs() < 1e-6, "mass drifted to {e}");
        }
    }

    #[test]
    fn refit_matches_batch_partition() {
        // After observing the full stream and refitting, the online model
        // must agree with the batch model (same τ, same queries) — a
        // consequence of Lemma A.4 plus shared weight estimation.
        let cfg = QuadHistConfig::with_tau(0.02);
        let mut online = OnlineQuadHist::new(Rect::unit(2), cfg.clone(), 1).unwrap();
        for q in stream() {
            online.observe(q).unwrap();
        }
        let batch = QuadHist::fit(Rect::unit(2), &stream(), &cfg).unwrap();
        assert_eq!(online.num_buckets(), batch.num_buckets());
        for q in stream() {
            let a = online.estimate(&q.range);
            let b = batch.estimate(&q.range);
            assert!((a - b).abs() < 1e-5, "online {a} vs batch {b}");
        }
    }

    #[test]
    fn accuracy_improves_along_the_stream() {
        let mut m = OnlineQuadHist::new(Rect::unit(2), QuadHistConfig::with_tau(0.02), 2).unwrap();
        let qs = stream();
        let probe = &qs[0];
        let mut err_first = None;
        for q in &qs {
            m.observe(q.clone()).unwrap();
            let e = (m.estimate(&probe.range) - 0.6f64).abs();
            err_first.get_or_insert(e);
        }
        m.refit().unwrap();
        let final_err = (m.estimate(&probe.range) - 0.6f64).abs();
        assert!(final_err <= err_first.unwrap() + 1e-9);
        assert!(final_err < 0.05, "final error {final_err}");
        assert_eq!(m.observations(), qs.len());
    }

    #[test]
    fn freeze_produces_equivalent_batch_model() {
        let cfg = QuadHistConfig::with_tau(0.05);
        let mut online = OnlineQuadHist::new(Rect::unit(2), cfg.clone(), 3).unwrap();
        for q in stream() {
            online.observe(q).unwrap();
        }
        let frozen = online.freeze().unwrap();
        let batch = QuadHist::fit(Rect::unit(2), &stream(), &cfg).unwrap();
        assert_eq!(frozen.num_buckets(), batch.num_buckets());
    }

    #[test]
    fn empty_online_model_is_uniform() {
        let m = OnlineQuadHist::new(Rect::unit(2), QuadHistConfig::default(), 10).unwrap();
        let half: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 1.0]).into();
        assert!((m.estimate(&half) - 0.5).abs() < 1e-9);
        assert_eq!(m.num_buckets(), 1);
        assert_eq!(m.name(), "OnlineQuadHist");
    }

    #[test]
    fn degenerate_feedback_is_tolerated() {
        let mut m = OnlineQuadHist::new(Rect::unit(2), QuadHistConfig::default(), 2).unwrap();
        m.observe(tq(vec![0.3, 0.0], vec![0.3, 1.0], 0.2)).unwrap(); // zero volume
        m.observe(tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.5)).unwrap();
        let all: Range = Rect::unit(2).into();
        assert!((m.estimate(&all) - 1.0).abs() < 1e-6);
    }
}
