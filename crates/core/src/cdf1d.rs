//! Exact 1-D CDF learning — the optimizer "bread and butter" case.
//!
//! The paper's introduction singles out 1-D range selectivity as the
//! classic cost-based-optimizer problem. In one dimension the generic
//! procedure of Section 3.1 specializes beautifully: every query
//! `[a, b]` constrains the CDF by `F(b) − F(a) = s`, the arrangement is
//! just the sorted endpoint sequence, and the family of histograms on
//! that arrangement corresponds exactly to piecewise-linear monotone CDFs
//! with knots at the endpoints. [`Cdf1D`] fits the loss-minimizing such
//! CDF by projected gradient descent, with the monotonicity projection
//! computed exactly by PAVA (isotonic regression) — so it inherits
//! Lemma 3.1's optimality in the 1-D case.

use crate::error::SelearnError;
use crate::estimator::{SelectivityEstimator, TrainingQuery};
use selearn_geom::{Range, RangeQuery, Rect};
use selearn_solver::isotonic_regression;

/// Configuration for [`Cdf1D`].
#[derive(Clone, Debug)]
pub struct Cdf1DConfig {
    /// Projected-gradient iterations.
    pub max_iters: usize,
    /// Stop when the loss improvement falls below this.
    pub tol: f64,
}

impl Default for Cdf1DConfig {
    fn default() -> Self {
        Self {
            max_iters: 4000,
            tol: 1e-12,
        }
    }
}

/// A monotone piecewise-linear CDF learned from 1-D interval feedback.
#[derive(Clone, Debug)]
pub struct Cdf1D {
    /// Sorted knot positions, starting at 0 and ending at 1.
    knots: Vec<f64>,
    /// CDF values at the knots (monotone, `values[0] = 0`, last = 1).
    values: Vec<f64>,
}

impl Cdf1D {
    /// Fits the CDF to a workload of 1-D interval queries.
    ///
    /// Returns a typed [`SelearnError`] if a training range is not
    /// one-dimensional or a label is non-finite.
    pub fn fit(queries: &[TrainingQuery], config: &Cdf1DConfig) -> Result<Self, SelearnError> {
        crate::error::check_labels(queries)?;
        // knots: all clipped interval endpoints + domain boundaries
        let unit = Rect::unit(1);
        let mut knots = vec![0.0, 1.0];
        let mut intervals: Vec<(f64, f64, f64)> = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            if q.range.dim() != 1 {
                return Err(SelearnError::UnsupportedQuery {
                    model: "cdf1d",
                    query: i,
                    what: "1-D ranges required",
                });
            }
            // every 1-D range (box, halfline, ball) clips to an interval
            if let Some(seg) = q.range.bounding_box(&unit) {
                let (a, b) = (seg.lo()[0], seg.hi()[0]);
                knots.push(a);
                knots.push(b);
                intervals.push((a, b, q.selectivity));
            } else {
                // range entirely outside the domain: selectivity target 0
                // carries no constraint on F within [0,1]
            }
        }
        knots.sort_by(f64::total_cmp);
        knots.dedup_by(|a, b| (*a - *b).abs() < 1e-15);
        let m = knots.len();
        let index_of = |x: f64| -> usize {
            knots
                .binary_search_by(|k| k.total_cmp(&x))
                .unwrap_or_else(|i| i.min(m - 1))
        };
        let constraints: Vec<(usize, usize, f64)> = intervals
            .iter()
            .map(|&(a, b, s)| (index_of(a), index_of(b), s))
            .collect();

        // initial guess: the uniform CDF
        let mut f: Vec<f64> = knots.clone();
        // anchor weights pin F(0) = 0 and F(1) = 1 inside the projection
        let mut weights = vec![1.0f64; m];
        weights[0] = 1e9;
        weights[m - 1] = 1e9;

        // Lipschitz bound: each knot appears in ≤ (incident constraints)
        // residual terms with unit coefficients
        let mut incident = vec![0usize; m];
        for &(a, b, _) in &constraints {
            incident[a] += 1;
            incident[b] += 1;
        }
        // Each constraint contributes 2·vvᵀ with v = e_b − e_a (‖v‖² = 2)
        // to the Hessian, so λ_max ≤ 4 · max incident count.
        let lip = 4.0 * incident.iter().copied().max().unwrap_or(1).max(1) as f64;
        let step = 1.0 / lip;

        let loss = |f: &[f64]| -> f64 {
            constraints
                .iter()
                .map(|&(a, b, s)| {
                    let r = f[b] - f[a] - s;
                    r * r
                })
                .sum()
        };
        let mut prev = loss(&f);
        for _ in 0..config.max_iters {
            if constraints.is_empty() {
                break;
            }
            let mut grad = vec![0.0f64; m];
            for &(a, b, s) in &constraints {
                let r = f[b] - f[a] - s;
                grad[b] += 2.0 * r;
                grad[a] -= 2.0 * r;
            }
            for j in 0..m {
                f[j] -= step * grad[j];
            }
            // exact projection: pin anchors, isotonic-project, clamp
            f[0] = 0.0;
            f[m - 1] = 1.0;
            f = isotonic_regression(&f, &weights)?;
            for v in f.iter_mut() {
                *v = v.clamp(0.0, 1.0);
            }
            f[0] = 0.0;
            f[m - 1] = 1.0;
            let cur = loss(&f);
            // stop only on a genuine (nonnegative) stall — a transient
            // uptick from the projection just keeps iterating
            if cur <= prev && prev - cur < config.tol * (prev + 1e-15) {
                break;
            }
            prev = cur;
        }

        Ok(Self { knots, values: f })
    }

    /// The learned CDF at `x` (piecewise-linear between knots; 0 below the
    /// domain, 1 above).
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.knots[0] {
            return 0.0;
        }
        let m = self.knots.len();
        if x >= self.knots[m - 1] {
            return 1.0;
        }
        let i = self
            .knots
            .partition_point(|&k| k <= x)
            .min(m - 1)
            .max(1);
        let (x0, x1) = (self.knots[i - 1], self.knots[i]);
        let (y0, y1) = (self.values[i - 1], self.values[i]);
        if x1 <= x0 {
            return y1;
        }
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Training loss of the fit on a workload.
    pub fn training_loss(&self, queries: &[TrainingQuery]) -> f64 {
        queries
            .iter()
            .map(|q| {
                let e = self.estimate(&q.range);
                (e - q.selectivity) * (e - q.selectivity)
            })
            .sum()
    }

    /// Number of CDF knots.
    pub fn num_knots(&self) -> usize {
        self.knots.len()
    }

    /// Wraps the model in a [`FrozenEstimator`]. A fitted CDF is already
    /// two flat `f64` arrays, so the "freeze" is a copy — the variant
    /// exists so 1-D models ride the same frozen serving path as the
    /// multidimensional families. Estimates are bit-identical.
    pub fn freeze(&self) -> crate::frozen::FrozenEstimator {
        crate::frozen::FrozenEstimator::Cdf(crate::frozen::FrozenCdf::build(self.clone()))
    }
}

impl SelectivityEstimator for Cdf1D {
    /// Estimates the selectivity of a 1-D range. A range of any other
    /// dimensionality cannot intersect the learned domain and estimates 0.
    fn estimate(&self, range: &Range) -> f64 {
        if range.dim() != 1 {
            return 0.0;
        }
        match range.bounding_box(&Rect::unit(1)) {
            Some(seg) => (self.cdf(seg.hi()[0]) - self.cdf(seg.lo()[0])).clamp(0.0, 1.0),
            None => 0.0,
        }
    }

    fn num_buckets(&self) -> usize {
        self.knots.len().saturating_sub(1)
    }

    fn name(&self) -> &'static str {
        "Cdf1D"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selearn_geom::{Ball, Halfspace, Point};

    fn iv(a: f64, b: f64, s: f64) -> TrainingQuery {
        TrainingQuery::new(Rect::new(vec![a], vec![b]), s)
    }

    #[test]
    fn consistent_intervals_fit_exactly() {
        // Labels from F(x) = x² (density 2x): consistent, so loss → 0.
        let truth = |a: f64, b: f64| b * b - a * a;
        let queries: Vec<TrainingQuery> = [
            (0.0, 0.5),
            (0.25, 0.75),
            (0.5, 1.0),
            (0.1, 0.9),
            (0.3, 0.6),
        ]
        .iter()
        .map(|&(a, b)| iv(a, b, truth(a, b)))
        .collect();
        let cdf = Cdf1D::fit(&queries, &Cdf1DConfig::default()).unwrap();
        let loss = cdf.training_loss(&queries);
        assert!(loss < 1e-8, "loss = {loss}");
        // knots pinned by a query touching the anchored boundary match the
        // truth exactly; knots only constrained through free neighbours
        // (e.g. 0.75 via (0.25, 0.75)) are underdetermined at zero loss,
        // which the agnostic framework permits.
        assert!((cdf.cdf(0.5) - 0.25).abs() < 1e-3);
        assert!((cdf.cdf(0.9) - cdf.cdf(0.1) - 0.8).abs() < 1e-3);
    }

    #[test]
    fn cdf_is_monotone_and_anchored() {
        let queries = vec![iv(0.2, 0.4, 0.7), iv(0.5, 0.9, 0.1), iv(0.0, 0.3, 0.5)];
        let cdf = Cdf1D::fit(&queries, &Cdf1DConfig::default()).unwrap();
        assert_eq!(cdf.cdf(0.0), 0.0);
        assert_eq!(cdf.cdf(1.0), 1.0);
        let mut prev = 0.0;
        let mut x = 0.0;
        while x <= 1.0 {
            let v = cdf.cdf(x);
            assert!(v >= prev - 1e-12, "CDF decreases at {x}");
            prev = v;
            x += 0.01;
        }
    }

    #[test]
    fn contradictory_feedback_compromises() {
        let queries = vec![iv(0.2, 0.8, 0.9), iv(0.2, 0.8, 0.1)];
        let cdf = Cdf1D::fit(&queries, &Cdf1DConfig::default()).unwrap();
        let e = cdf.estimate(&Range::Rect(Rect::new(vec![0.2], vec![0.8])));
        assert!((e - 0.5).abs() < 0.05, "compromise = {e}");
    }

    #[test]
    fn answers_halfspace_and_ball_ranges() {
        let queries = vec![iv(0.0, 0.5, 0.8), iv(0.5, 1.0, 0.2)];
        let cdf = Cdf1D::fit(&queries, &Cdf1DConfig::default()).unwrap();
        // x ≥ 0.5 should get ≈ 0.2
        let h: Range = Halfspace::new(vec![1.0], 0.5).into();
        assert!((cdf.estimate(&h) - 0.2).abs() < 0.02);
        // ball |x − 0.25| ≤ 0.25 = [0, 0.5] should get ≈ 0.8
        let b: Range = Ball::new(Point::new(vec![0.25]), 0.25).into();
        assert!((cdf.estimate(&b) - 0.8).abs() < 0.02);
    }

    #[test]
    fn empty_workload_is_uniform() {
        let cdf = Cdf1D::fit(&[], &Cdf1DConfig::default()).unwrap();
        assert!((cdf.cdf(0.3) - 0.3).abs() < 1e-12);
        let r: Range = Rect::new(vec![0.25], vec![0.75]).into();
        assert!((cdf.estimate(&r) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn beats_quadhist_on_1d_consistency() {
        // In 1-D the CDF model's arrangement-aligned knots should fit at
        // least as well as a quadtree (binary) partition of similar size.
        use crate::quadhist::{QuadHist, QuadHistConfig};
        let truth = |a: f64, b: f64| b.powi(3) - a.powi(3); // F(x) = x³
        let queries: Vec<TrainingQuery> = (0..12)
            .map(|i| {
                let a = i as f64 / 16.0;
                let b = (a + 0.3).min(1.0);
                iv(a, b, truth(a, b))
            })
            .collect();
        let cdf = Cdf1D::fit(&queries, &Cdf1DConfig::default()).unwrap();
        let qh = QuadHist::fit_with_bucket_target(
            Rect::unit(1),
            &queries,
            cdf.num_buckets(),
            &QuadHistConfig::default(),
        ).unwrap();
        let qh_loss: f64 = queries
            .iter()
            .map(|q| (qh.estimate(&q.range) - q.selectivity).powi(2))
            .sum();
        assert!(
            cdf.training_loss(&queries) <= qh_loss + 1e-9,
            "cdf {} vs quadhist {qh_loss}",
            cdf.training_loss(&queries)
        );
    }

    #[test]
    fn out_of_domain_ranges() {
        let queries = vec![iv(0.0, 1.0, 1.0)];
        let cdf = Cdf1D::fit(&queries, &Cdf1DConfig::default()).unwrap();
        let far: Range = Ball::new(Point::new(vec![5.0]), 0.5).into();
        assert_eq!(cdf.estimate(&far), 0.0);
    }

    #[test]
    fn rejects_multidimensional_ranges() {
        let q = TrainingQuery::new(Rect::unit(2), 0.5);
        let err = Cdf1D::fit(&[q], &Cdf1DConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            SelearnError::UnsupportedQuery {
                model: "cdf1d",
                query: 0,
                ..
            }
        ));
    }

    #[test]
    fn rejects_nan_labels() {
        let q = iv(0.2, 0.8, f64::NAN);
        let err = Cdf1D::fit(&[q], &Cdf1DConfig::default()).unwrap_err();
        assert!(matches!(err, SelearnError::InvalidLabel { query: 0, .. }));
    }
}
