//! A `2^d`-ary space-partitioning tree (quadtree / octree / …).
//!
//! QuadHist's bucket-design phase (Algorithm 1) incrementally refines this
//! tree; its leaves become the histogram buckets. The tree also doubles as
//! the search structure for prediction — the paper notes (Section 3.2,
//! third remark) that the quadtree "doubles up as a convenient data
//! structure for speeding up" range operations.

use crate::error::SelearnError;
use selearn_geom::Rect;

#[derive(Clone, Debug)]
struct Node {
    rect: Rect,
    /// Index of the first of `2^d` contiguous children; `None` for leaves.
    first_child: Option<usize>,
}

/// An arena-allocated `2^d`-ary partition tree over a root box.
#[derive(Clone, Debug)]
pub struct QuadTree {
    dim: usize,
    nodes: Vec<Node>,
    num_leaves: usize,
}

/// Identifier of a tree node.
pub type NodeId = usize;

/// The root node id.
pub const ROOT: NodeId = 0;

impl QuadTree {
    /// Creates a single-leaf tree covering `root`.
    pub fn new(root: Rect) -> Self {
        let dim = root.dim();
        Self {
            dim,
            nodes: vec![Node {
                rect: root,
                first_child: None,
            }],
            num_leaves: 1,
        }
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Current leaf count (histogram bucket count).
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// The box covered by a node.
    pub fn rect(&self, id: NodeId) -> &Rect {
        &self.nodes[id].rect
    }

    /// `true` if the node has no children.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id].first_child.is_none()
    }

    /// Child ids of an internal node (empty for leaves).
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> {
        let fanout = 1usize << self.dim;
        let base = self.nodes[id].first_child;
        (0..fanout).filter_map(move |k| base.map(|b| b + k))
    }

    /// Splits a leaf into `2^d` children and returns the first child id.
    ///
    /// # Panics
    /// Panics if the node is not a leaf.
    pub fn split(&mut self, id: NodeId) -> NodeId {
        assert!(self.is_leaf(id), "can only split leaves");
        let first = self.nodes.len();
        let kids = self.nodes[id].rect.split();
        debug_assert_eq!(kids.len(), 1 << self.dim);
        for rect in kids {
            self.nodes.push(Node {
                rect,
                first_child: None,
            });
        }
        self.nodes[id].first_child = Some(first);
        self.num_leaves += (1 << self.dim) - 1;
        first
    }

    /// Index of the first of `2^d` contiguous children, `None` for a leaf
    /// — the raw arena link. Exposed so durable stores can serialize the
    /// exact node layout: estimates sum over leaves in arena order, so a
    /// recovered tree must reproduce the layout bit-for-bit, not just the
    /// same leaf set.
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id].first_child
    }

    /// Rebuilds a tree from its exact arena layout: `first_child[i]` is
    /// the serialized link of node `i` (`None` for leaves). Node rects are
    /// rederived by re-splitting top-down — children always carry a higher
    /// index than their parent, so one ascending pass assigns every rect —
    /// which reproduces the original coordinates exactly (the split
    /// midpoint computation is deterministic).
    ///
    /// Returns [`SelearnError::CorruptModel`] when the links do not
    /// describe a tree this crate could have grown: a link to a
    /// non-contiguous child block, an out-of-range index, a child index
    /// not past its parent, or nodes not reachable from the root.
    pub fn from_arena(root: Rect, first_child: &[Option<usize>]) -> Result<Self, SelearnError> {
        let n = first_child.len();
        if n == 0 {
            return Err(SelearnError::CorruptModel {
                what: "arena tree must contain at least the root node".into(),
            });
        }
        let dim = root.dim();
        let fanout = 1usize << dim;
        if !(n - 1).is_multiple_of(fanout) {
            return Err(SelearnError::CorruptModel {
                what: format!("arena of {n} nodes is not 1 + k·2^{dim}"),
            });
        }
        let mut rects: Vec<Option<Rect>> = vec![None; n];
        rects[ROOT] = Some(root);
        let mut num_leaves = 0usize;
        let mut claimed = vec![false; n];
        claimed[ROOT] = true;
        for i in 0..n {
            let Some(rect) = rects[i].clone() else {
                return Err(SelearnError::CorruptModel {
                    what: format!("arena node {i} is not reachable from the root"),
                });
            };
            match first_child[i] {
                None => num_leaves += 1,
                Some(first) => {
                    if first <= i || first + fanout > n {
                        return Err(SelearnError::CorruptModel {
                            what: format!("arena node {i} links children at {first}"),
                        });
                    }
                    let kids = rect.split();
                    for (k, kid) in kids.into_iter().enumerate() {
                        let c = first + k;
                        if claimed[c] {
                            return Err(SelearnError::CorruptModel {
                                what: format!("arena node {c} claimed by two parents"),
                            });
                        }
                        claimed[c] = true;
                        rects[c] = Some(kid);
                    }
                }
            }
        }
        let nodes = rects
            .into_iter()
            .zip(first_child)
            .map(|(rect, fc)| {
                Some(Node {
                    rect: rect?,
                    first_child: *fc,
                })
            })
            .collect::<Option<Vec<Node>>>()
            .ok_or_else(|| SelearnError::CorruptModel {
                what: "arena contains unreachable nodes".into(),
            })?;
        Ok(Self {
            dim,
            nodes,
            num_leaves,
        })
    }

    /// All leaf ids, in deterministic (arena) order.
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.is_leaf(i))
            .collect()
    }

    /// Visits every leaf whose box intersects `probe`, in deterministic
    /// order. This is the prediction-time traversal: only the subtree
    /// overlapping the query is touched.
    pub fn for_each_leaf_intersecting<F: FnMut(NodeId, &Rect)>(&self, probe: &Rect, mut f: F) {
        let mut stack = vec![ROOT];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if !node.rect.intersects(probe) {
                continue;
            }
            match node.first_child {
                None => f(id, &node.rect),
                Some(first) => {
                    for k in (0..(1usize << self.dim)).rev() {
                        stack.push(first + k);
                    }
                }
            }
        }
    }

    /// Depth of a node (root = 0), computed from box widths; valid because
    /// every split exactly halves each side.
    pub fn depth(&self, id: NodeId) -> u32 {
        let ratio = self.nodes[ROOT].rect.width(0) / self.nodes[id].rect.width(0);
        ratio.log2().round() as u32
    }

    /// Reconstructs a tree from a valid quadtree leaf partition of `root`
    /// (used when loading persisted models): every input box is reduced to
    /// its [`cell_key`] — depth plus integer lattice position — and the
    /// tree is grown top-down, splitting exactly the nodes whose key is
    /// not in the leaf set. Keyed lookup makes reconstruction `O(n)` in
    /// the node count (the previous per-node linear scan over the boxes
    /// was `O(n²)` — a multi-second stall at the 10k-bucket scale Figure 9
    /// sweeps to), and the lattice rounding tolerates coordinate error up
    /// to half a cell on any domain scale, instead of the old absolute
    /// epsilon that both rejected decimal-rounded dumps of large domains
    /// and over-split near it.
    ///
    /// Returns [`SelearnError::CorruptModel`] if the boxes do not form a
    /// quadtree partition of `root` (off-lattice box, covered hole, or a
    /// box at an internal position).
    pub fn from_leaf_boxes(root: Rect, leaves: &[Rect]) -> Result<Self, SelearnError> {
        let mut tree = QuadTree::new(root);
        if leaves.len() <= 1 {
            return Ok(tree);
        }
        let root_rect = tree.rect(ROOT).clone();
        let mut keys = std::collections::HashSet::with_capacity(leaves.len());
        let mut max_depth = 0u32;
        for (i, l) in leaves.iter().enumerate() {
            let Some(key) = cell_key(&root_rect, l) else {
                return Err(SelearnError::CorruptModel {
                    what: format!("box {i} ({l:?}) is not a quadtree cell of the root"),
                });
            };
            max_depth = max_depth.max(key.0);
            keys.insert(key);
        }
        let dim = tree.dim();
        let mut stack = vec![(ROOT, 0u32, vec![0u64; dim])];
        while let Some((id, depth, lattice)) = stack.pop() {
            if keys.contains(&(depth, lattice.clone())) {
                continue; // realized one of the input boxes
            }
            if depth >= max_depth {
                // inside a hole: no input box covers this cell
                return Err(SelearnError::CorruptModel {
                    what: "leaf boxes do not form a quadtree partition".into(),
                });
            }
            let first = tree.split(id);
            for mask in 0..(1usize << dim) {
                let child: Vec<u64> = lattice
                    .iter()
                    .enumerate()
                    .map(|(d, &i)| 2 * i + (mask as u64 >> d & 1))
                    .collect();
                stack.push((first + mask, depth + 1, child));
            }
        }
        if tree.num_leaves() != leaves.len() {
            // duplicate or internal-position boxes inflate the input list
            return Err(SelearnError::CorruptModel {
                what: format!(
                    "{} boxes produced a partition with {} leaves",
                    leaves.len(),
                    tree.num_leaves()
                ),
            });
        }
        Ok(tree)
    }
}

/// Identity of one quadtree cell: refinement depth plus the integer
/// lattice position of its lower corner at that depth. Splits halve every
/// dimension at once, so a cell at depth `k` has lower corner
/// `root.lo[d] + i_d · root.width(d) / 2^k` with `i_d ∈ [0, 2^k)` — the
/// pair `(k, i)` is a collision-free key for restore-time indexing.
pub(crate) type CellKey = (u32, Vec<u64>);

/// Deepest cell the restore index will key: beyond this the lattice
/// arithmetic loses integer precision, and `update_quad`'s volume guard
/// stops refinement far earlier anyway.
const MAX_RESTORE_DEPTH: u32 = 60;

/// Computes the [`CellKey`] of `cell` within `root`, or `None` when `cell`
/// cannot be a quadtree cell of `root` (wrong dimension, width ratio not a
/// power of two, or lower corner outside the root).
pub(crate) fn cell_key(root: &Rect, cell: &Rect) -> Option<CellKey> {
    if cell.dim() != root.dim() {
        return None;
    }
    // Depth from the width ratio in the first non-degenerate dimension;
    // degenerate (zero-width) dimensions stay zero-width at every depth.
    let d_ref = (0..root.dim()).find(|&d| root.width(d) > 0.0)?;
    let ratio = root.width(d_ref) / cell.width(d_ref);
    if !ratio.is_finite() || ratio < 1.0 - 1e-6 {
        return None;
    }
    let k = ratio.log2().round();
    if !(0.0..=MAX_RESTORE_DEPTH as f64).contains(&k) {
        return None;
    }
    let k = k as u32;
    let cells = (1u64 << k) as f64;
    let mut key = Vec::with_capacity(root.dim());
    for d in 0..root.dim() {
        let w = root.width(d);
        if w <= 0.0 {
            key.push(0);
            continue;
        }
        let i = ((cell.lo()[d] - root.lo()[d]) / w * cells).round();
        if !(0.0..cells).contains(&i) {
            return None;
        }
        key.push(i as u64);
    }
    Some((k, key))
}

/// Verifies that two boxes sharing a [`CellKey`] really are the same cell,
/// with a relative-or-absolute tolerance: a small fraction of the cell
/// width (relative part, so deep sub-1e-9 cells of the unit cube are never
/// cross-matched) plus a term scaled by the root's coordinate magnitude
/// (absolute part, so decimal-rounded dumps of unnormalized domains like
/// `[0, 1e9]` are not spuriously rejected).
pub(crate) fn cells_match(root: &Rect, a: &Rect, b: &Rect) -> bool {
    (0..root.dim()).all(|d| {
        let scale = root.lo()[d].abs().max(root.hi()[d].abs());
        let tol = 1e-6 * b.width(d) + 1e-12 * scale;
        (a.lo()[d] - b.lo()[d]).abs() <= tol && (a.hi()[d] - b.hi()[d]).abs() <= tol
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tree_is_single_leaf() {
        let t = QuadTree::new(Rect::unit(2));
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_leaves(), 1);
        assert!(t.is_leaf(ROOT));
        assert_eq!(t.leaves(), vec![ROOT]);
    }

    #[test]
    fn split_2d_makes_four_children() {
        let mut t = QuadTree::new(Rect::unit(2));
        let first = t.split(ROOT);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_leaves(), 4);
        assert!(!t.is_leaf(ROOT));
        let kids: Vec<_> = t.children(ROOT).collect();
        assert_eq!(kids, vec![first, first + 1, first + 2, first + 3]);
        let total: f64 = kids.iter().map(|&k| t.rect(k).volume()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn split_3d_makes_eight_children() {
        let mut t = QuadTree::new(Rect::unit(3));
        t.split(ROOT);
        assert_eq!(t.num_leaves(), 8);
    }

    #[test]
    fn nested_splits_update_leaf_count() {
        let mut t = QuadTree::new(Rect::unit(2));
        let first = t.split(ROOT);
        t.split(first); // split one child again
        assert_eq!(t.num_leaves(), 7); // 4 − 1 + 4
        assert_eq!(t.leaves().len(), 7);
    }

    #[test]
    fn depth_tracks_splits() {
        let mut t = QuadTree::new(Rect::unit(2));
        let c1 = t.split(ROOT);
        let c2 = t.split(c1);
        assert_eq!(t.depth(ROOT), 0);
        assert_eq!(t.depth(c1), 1);
        assert_eq!(t.depth(c2), 2);
    }

    #[test]
    fn leaf_traversal_prunes() {
        let mut t = QuadTree::new(Rect::unit(2));
        let first = t.split(ROOT);
        // probe only the lower-left quadrant
        let probe = Rect::new(vec![0.1, 0.1], vec![0.2, 0.2]);
        let mut visited = Vec::new();
        t.for_each_leaf_intersecting(&probe, |id, _| visited.push(id));
        assert_eq!(visited, vec![first]);
    }

    #[test]
    fn leaf_traversal_visits_all_on_full_probe() {
        let mut t = QuadTree::new(Rect::unit(2));
        let first = t.split(ROOT);
        t.split(first + 3);
        let mut visited = Vec::new();
        t.for_each_leaf_intersecting(&Rect::unit(2), |id, _| visited.push(id));
        assert_eq!(visited.len(), t.num_leaves());
    }

    #[test]
    fn leaves_tile_the_root() {
        let mut t = QuadTree::new(Rect::unit(2));
        let c = t.split(ROOT);
        t.split(c + 1);
        t.split(c + 2);
        let total: f64 = t.leaves().iter().map(|&l| t.rect(l).volume()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arena_round_trip_preserves_layout() {
        let mut t = QuadTree::new(Rect::unit(2));
        let c = t.split(ROOT);
        t.split(c + 2);
        t.split(c + 1);
        let links: Vec<Option<usize>> = (0..t.num_nodes()).map(|i| t.first_child(i)).collect();
        let back = QuadTree::from_arena(Rect::unit(2), &links).unwrap();
        assert_eq!(back.num_nodes(), t.num_nodes());
        assert_eq!(back.num_leaves(), t.num_leaves());
        for i in 0..t.num_nodes() {
            assert_eq!(back.first_child(i), t.first_child(i));
            assert_eq!(back.rect(i).lo(), t.rect(i).lo(), "node {i} lo");
            assert_eq!(back.rect(i).hi(), t.rect(i).hi(), "node {i} hi");
        }
    }

    #[test]
    fn from_arena_rejects_malformed_links() {
        // wrong node count for the fanout
        assert!(QuadTree::from_arena(Rect::unit(2), &[Some(1), None, None]).is_err());
        // child block out of range
        assert!(QuadTree::from_arena(Rect::unit(2), &[Some(3), None, None, None, None]).is_err());
        // child index not past its parent
        let links = [Some(1), None, None, None, None, Some(1), None, None, None];
        assert!(QuadTree::from_arena(Rect::unit(2), &links).is_err());
        // unreachable tail nodes
        let links = [None, None, None, None, None];
        assert!(QuadTree::from_arena(Rect::unit(2), &links).is_err());
        // empty arena
        assert!(QuadTree::from_arena(Rect::unit(2), &[]).is_err());
    }

    #[test]
    #[should_panic(expected = "can only split leaves")]
    fn double_split_panics() {
        let mut t = QuadTree::new(Rect::unit(2));
        t.split(ROOT);
        t.split(ROOT);
    }
}
