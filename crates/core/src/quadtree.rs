//! A `2^d`-ary space-partitioning tree (quadtree / octree / …).
//!
//! QuadHist's bucket-design phase (Algorithm 1) incrementally refines this
//! tree; its leaves become the histogram buckets. The tree also doubles as
//! the search structure for prediction — the paper notes (Section 3.2,
//! third remark) that the quadtree "doubles up as a convenient data
//! structure for speeding up" range operations.

use crate::error::SelearnError;
use selearn_geom::Rect;

#[derive(Clone, Debug)]
struct Node {
    rect: Rect,
    /// Index of the first of `2^d` contiguous children; `None` for leaves.
    first_child: Option<usize>,
}

/// An arena-allocated `2^d`-ary partition tree over a root box.
#[derive(Clone, Debug)]
pub struct QuadTree {
    dim: usize,
    nodes: Vec<Node>,
    num_leaves: usize,
}

/// Identifier of a tree node.
pub type NodeId = usize;

/// The root node id.
pub const ROOT: NodeId = 0;

impl QuadTree {
    /// Creates a single-leaf tree covering `root`.
    pub fn new(root: Rect) -> Self {
        let dim = root.dim();
        Self {
            dim,
            nodes: vec![Node {
                rect: root,
                first_child: None,
            }],
            num_leaves: 1,
        }
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Current leaf count (histogram bucket count).
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// The box covered by a node.
    pub fn rect(&self, id: NodeId) -> &Rect {
        &self.nodes[id].rect
    }

    /// `true` if the node has no children.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id].first_child.is_none()
    }

    /// Child ids of an internal node (empty for leaves).
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> {
        let fanout = 1usize << self.dim;
        let base = self.nodes[id].first_child;
        (0..fanout).filter_map(move |k| base.map(|b| b + k))
    }

    /// Splits a leaf into `2^d` children and returns the first child id.
    ///
    /// # Panics
    /// Panics if the node is not a leaf.
    pub fn split(&mut self, id: NodeId) -> NodeId {
        assert!(self.is_leaf(id), "can only split leaves");
        let first = self.nodes.len();
        let kids = self.nodes[id].rect.split();
        debug_assert_eq!(kids.len(), 1 << self.dim);
        for rect in kids {
            self.nodes.push(Node {
                rect,
                first_child: None,
            });
        }
        self.nodes[id].first_child = Some(first);
        self.num_leaves += (1 << self.dim) - 1;
        first
    }

    /// All leaf ids, in deterministic (arena) order.
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.is_leaf(i))
            .collect()
    }

    /// Visits every leaf whose box intersects `probe`, in deterministic
    /// order. This is the prediction-time traversal: only the subtree
    /// overlapping the query is touched.
    pub fn for_each_leaf_intersecting<F: FnMut(NodeId, &Rect)>(&self, probe: &Rect, mut f: F) {
        let mut stack = vec![ROOT];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if !node.rect.intersects(probe) {
                continue;
            }
            match node.first_child {
                None => f(id, &node.rect),
                Some(first) => {
                    for k in (0..(1usize << self.dim)).rev() {
                        stack.push(first + k);
                    }
                }
            }
        }
    }

    /// Depth of a node (root = 0), computed from box widths; valid because
    /// every split exactly halves each side.
    pub fn depth(&self, id: NodeId) -> u32 {
        let ratio = self.nodes[ROOT].rect.width(0) / self.nodes[id].rect.width(0);
        ratio.log2().round() as u32
    }

    /// Reconstructs a tree from a valid quadtree leaf partition of `root`
    /// (used when loading persisted models): splits any node that strictly
    /// contains a smaller leaf box until every leaf box is realized.
    ///
    /// Returns [`SelearnError::CorruptModel`] if the boxes do not form a
    /// quadtree partition of `root` (detected as an attempt to split below
    /// the finest leaf).
    pub fn from_leaf_boxes(root: Rect, leaves: &[Rect]) -> Result<Self, SelearnError> {
        let mut tree = QuadTree::new(root);
        if leaves.len() <= 1 {
            return Ok(tree);
        }
        let min_width = leaves
            .iter()
            .map(|l| l.width(0))
            .fold(f64::INFINITY, f64::min);
        let mut stack = vec![ROOT];
        while let Some(id) = stack.pop() {
            let cell = tree.rect(id).clone();
            // a node needs splitting iff some leaf is strictly inside it
            let needs_split = leaves.iter().any(|l| {
                l.width(0) < cell.width(0) - crate::quadtree_eps()
                    && cell.contains_rect(l)
            });
            if needs_split {
                if cell.width(0) <= min_width + crate::quadtree_eps() {
                    return Err(SelearnError::CorruptModel {
                        what: "leaf boxes do not form a quadtree partition".into(),
                    });
                }
                let first = tree.split(id);
                for k in 0..(1usize << tree.dim()) {
                    stack.push(first + k);
                }
            }
        }
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tree_is_single_leaf() {
        let t = QuadTree::new(Rect::unit(2));
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_leaves(), 1);
        assert!(t.is_leaf(ROOT));
        assert_eq!(t.leaves(), vec![ROOT]);
    }

    #[test]
    fn split_2d_makes_four_children() {
        let mut t = QuadTree::new(Rect::unit(2));
        let first = t.split(ROOT);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_leaves(), 4);
        assert!(!t.is_leaf(ROOT));
        let kids: Vec<_> = t.children(ROOT).collect();
        assert_eq!(kids, vec![first, first + 1, first + 2, first + 3]);
        let total: f64 = kids.iter().map(|&k| t.rect(k).volume()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn split_3d_makes_eight_children() {
        let mut t = QuadTree::new(Rect::unit(3));
        t.split(ROOT);
        assert_eq!(t.num_leaves(), 8);
    }

    #[test]
    fn nested_splits_update_leaf_count() {
        let mut t = QuadTree::new(Rect::unit(2));
        let first = t.split(ROOT);
        t.split(first); // split one child again
        assert_eq!(t.num_leaves(), 7); // 4 − 1 + 4
        assert_eq!(t.leaves().len(), 7);
    }

    #[test]
    fn depth_tracks_splits() {
        let mut t = QuadTree::new(Rect::unit(2));
        let c1 = t.split(ROOT);
        let c2 = t.split(c1);
        assert_eq!(t.depth(ROOT), 0);
        assert_eq!(t.depth(c1), 1);
        assert_eq!(t.depth(c2), 2);
    }

    #[test]
    fn leaf_traversal_prunes() {
        let mut t = QuadTree::new(Rect::unit(2));
        let first = t.split(ROOT);
        // probe only the lower-left quadrant
        let probe = Rect::new(vec![0.1, 0.1], vec![0.2, 0.2]);
        let mut visited = Vec::new();
        t.for_each_leaf_intersecting(&probe, |id, _| visited.push(id));
        assert_eq!(visited, vec![first]);
    }

    #[test]
    fn leaf_traversal_visits_all_on_full_probe() {
        let mut t = QuadTree::new(Rect::unit(2));
        let first = t.split(ROOT);
        t.split(first + 3);
        let mut visited = Vec::new();
        t.for_each_leaf_intersecting(&Rect::unit(2), |id, _| visited.push(id));
        assert_eq!(visited.len(), t.num_leaves());
    }

    #[test]
    fn leaves_tile_the_root() {
        let mut t = QuadTree::new(Rect::unit(2));
        let c = t.split(ROOT);
        t.split(c + 1);
        t.split(c + 2);
        let total: f64 = t.leaves().iter().map(|&l| t.rect(l).volume()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "can only split leaves")]
    fn double_split_panics() {
        let mut t = QuadTree::new(Rect::unit(2));
        t.split(ROOT);
        t.split(ROOT);
    }
}
