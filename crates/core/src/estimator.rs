//! The estimator interface shared by all learned models.

use selearn_geom::Range;
use selearn_solver::SolveReport;

/// Batch size below which parallel `estimate_all` dispatch is skipped — a
/// scoped thread spawn costs more than a few hundred tree traversals.
#[cfg(feature = "parallel")]
const PAR_BATCH_THRESHOLD: usize = 256;

/// The one batch evaluation loop every path funnels through: serial
/// [`SelectivityEstimator::estimate_all`], each chunk of
/// [`SelectivityEstimator::par_estimate_all`], and the serving worker's
/// reused buffers (via `estimate_into`). Records **one**
/// `predict.latency_us` sample per chunk — the mean per-query latency —
/// instead of bracketing every query with two `Instant::now()` calls,
/// whose overhead used to rival a sub-microsecond frozen traversal.
pub(crate) fn estimate_chunk_into<F: FnMut(&Range) -> f64>(
    mut per_query: F,
    ranges: &[Range],
    out: &mut [f64],
) {
    debug_assert_eq!(ranges.len(), out.len());
    if ranges.is_empty() {
        return;
    }
    if selearn_obs::enabled() {
        let t0 = std::time::Instant::now();
        for (o, r) in out.iter_mut().zip(ranges) {
            *o = per_query(r);
        }
        let per_query_us = t0.elapsed().as_secs_f64() * 1e6 / ranges.len() as f64;
        selearn_obs::histogram_record("predict.latency_us", per_query_us);
    } else {
        for (o, r) in out.iter_mut().zip(ranges) {
            *o = per_query(r);
        }
    }
}

/// One training example `z = (R, s)`: a query range and its observed
/// selectivity. The agnostic-learning model (Section 2.1) does *not*
/// require `s = s_D(R)` for any real distribution `D` — labels may be
/// noisy; the learner just minimizes empirical loss over its family.
#[derive(Clone, Debug)]
pub struct TrainingQuery {
    /// The query range.
    pub range: Range,
    /// Observed selectivity in `[0, 1]`.
    pub selectivity: f64,
}

impl TrainingQuery {
    /// Convenience constructor.
    pub fn new(range: impl Into<Range>, selectivity: f64) -> Self {
        Self {
            range: range.into(),
            selectivity,
        }
    }
}

/// A trained selectivity estimator: a concrete distribution `D` from the
/// model family, queried through its selectivity function `s_D`.
pub trait SelectivityEstimator {
    /// Estimated selectivity `ŝ(R) ∈ [0, 1]`.
    fn estimate(&self, range: &Range) -> f64;

    /// Model complexity: the number of buckets (histogram cells or support
    /// points). This is the x-axis of Figure 9 and the y-axis of Figure 10.
    fn num_buckets(&self) -> usize;

    /// Human-readable model name for reports.
    fn name(&self) -> &'static str;

    /// The [`SolveReport`] of the weight-estimation solve this model was
    /// trained with, if an iterative solver ran and the model retained it.
    /// Default `None` (closed-form models, loaded models, baselines
    /// without an iterative phase).
    fn solve_report(&self) -> Option<SolveReport> {
        None
    }

    /// Batch estimation into a caller-provided buffer: `out[i]` receives
    /// the estimate for `ranges[i]`. The allocation-free primitive the
    /// serving hot loop reuses buffers through; `estimate_all` and
    /// `par_estimate_all` are expressed on top of it.
    ///
    /// # Panics
    /// Panics if `ranges` and `out` differ in length.
    fn estimate_into(&self, ranges: &[Range], out: &mut [f64]) {
        assert_eq!(
            ranges.len(),
            out.len(),
            "estimate_into: output buffer length mismatch"
        );
        estimate_chunk_into(|r| self.estimate(r), ranges, out);
    }

    /// Batch estimation: one estimate per input range, in input order.
    /// Always serial, so plain (non-`Sync`) estimators can batch; large
    /// batches on `Sync` estimators should prefer
    /// [`SelectivityEstimator::par_estimate_all`].
    fn estimate_all(&self, ranges: &[Range]) -> Vec<f64> {
        let mut out = vec![0.0; ranges.len()];
        self.estimate_into(ranges, &mut out);
        out
    }

    /// Batch estimation that fans out across worker threads when built with
    /// the `parallel` feature and the batch is large enough to amortize the
    /// dispatch. Work is split into contiguous chunks, each evaluated with
    /// [`SelectivityEstimator::estimate_into`] and concatenated in index
    /// order, so the result is always bitwise identical to the serial
    /// `estimate_all`. Without the feature this *is* the serial loop.
    fn par_estimate_all(&self, ranges: &[Range]) -> Vec<f64>
    where
        Self: Sync,
    {
        #[cfg(feature = "parallel")]
        if ranges.len() >= PAR_BATCH_THRESHOLD && rayon::current_num_threads() > 1 {
            use rayon::prelude::*;
            let n = ranges.len();
            // ~4 chunks per worker balances load without shrinking chunks
            // below what one latency-histogram sample can represent.
            let chunk = n
                .div_ceil(4 * rayon::current_num_threads())
                .max(1);
            let num_chunks = n.div_ceil(chunk);
            let parts: Vec<Vec<f64>> = (0..num_chunks)
                .into_par_iter()
                .map(|c| {
                    let lo = c * chunk;
                    let hi = (lo + chunk).min(n);
                    let mut buf = vec![0.0; hi - lo];
                    self.estimate_into(&ranges[lo..hi], &mut buf);
                    buf
                })
                .collect();
            let mut out = Vec::with_capacity(n);
            for p in parts {
                out.extend(p);
            }
            return out;
        }
        self.estimate_all(ranges)
    }
}

/// The boxed estimator type used wherever models are handled dynamically.
/// `Send + Sync` so batch estimation can fan out across threads.
pub type BoxedEstimator = Box<dyn SelectivityEstimator + Send + Sync>;

/// The reference-counted estimator type used where one trained model is
/// shared across threads without ownership — the serving layer clones one
/// of these per request so a background hot-swap never blocks or
/// invalidates in-flight readers.
pub type SharedEstimator = std::sync::Arc<dyn SelectivityEstimator + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;
    use selearn_geom::Rect;

    struct Constant(f64);
    impl SelectivityEstimator for Constant {
        fn estimate(&self, _r: &Range) -> f64 {
            self.0
        }
        fn num_buckets(&self) -> usize {
            1
        }
        fn name(&self) -> &'static str {
            "const"
        }
    }

    #[test]
    fn batch_default_impl() {
        let c = Constant(0.25);
        let ranges: Vec<Range> = vec![Rect::unit(2).into(), Rect::unit(2).into()];
        assert_eq!(c.estimate_all(&ranges), vec![0.25, 0.25]);
        assert_eq!(c.name(), "const");
        assert_eq!(c.num_buckets(), 1);
    }

    #[test]
    fn estimate_into_reuses_buffer() {
        let c = Constant(0.5);
        let ranges: Vec<Range> = (0..5).map(|_| Rect::unit(2).into()).collect();
        let mut out = vec![f64::NAN; 5];
        c.estimate_into(&ranges, &mut out);
        assert_eq!(out, vec![0.5; 5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn estimate_into_rejects_short_buffer() {
        let c = Constant(0.5);
        let ranges: Vec<Range> = vec![Rect::unit(2).into(), Rect::unit(2).into()];
        let mut out = vec![0.0; 1];
        c.estimate_into(&ranges, &mut out);
    }

    #[test]
    fn estimate_all_does_not_require_sync() {
        // Cell<f64> is !Sync: this only compiles because the serial batch
        // path dropped its historical `Self: Sync` bound.
        struct NotSync(std::cell::Cell<f64>);
        impl SelectivityEstimator for NotSync {
            fn estimate(&self, _r: &Range) -> f64 {
                self.0.set(self.0.get() + 1.0);
                self.0.get()
            }
            fn num_buckets(&self) -> usize {
                1
            }
            fn name(&self) -> &'static str {
                "not-sync"
            }
        }
        let e = NotSync(std::cell::Cell::new(0.0));
        let ranges: Vec<Range> = (0..3).map(|_| Rect::unit(1).into()).collect();
        assert_eq!(e.estimate_all(&ranges), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn training_query_constructor() {
        let q = TrainingQuery::new(Rect::unit(2), 0.4);
        assert_eq!(q.selectivity, 0.4);
    }
}
