//! The estimator interface shared by all learned models.

use selearn_geom::Range;
use selearn_solver::SolveReport;

/// Batch size below which parallel `estimate_all` dispatch is skipped — a
/// scoped thread spawn costs more than a few hundred tree traversals.
#[cfg(feature = "parallel")]
const PAR_BATCH_THRESHOLD: usize = 256;

/// One training example `z = (R, s)`: a query range and its observed
/// selectivity. The agnostic-learning model (Section 2.1) does *not*
/// require `s = s_D(R)` for any real distribution `D` — labels may be
/// noisy; the learner just minimizes empirical loss over its family.
#[derive(Clone, Debug)]
pub struct TrainingQuery {
    /// The query range.
    pub range: Range,
    /// Observed selectivity in `[0, 1]`.
    pub selectivity: f64,
}

impl TrainingQuery {
    /// Convenience constructor.
    pub fn new(range: impl Into<Range>, selectivity: f64) -> Self {
        Self {
            range: range.into(),
            selectivity,
        }
    }
}

/// A trained selectivity estimator: a concrete distribution `D` from the
/// model family, queried through its selectivity function `s_D`.
pub trait SelectivityEstimator {
    /// Estimated selectivity `ŝ(R) ∈ [0, 1]`.
    fn estimate(&self, range: &Range) -> f64;

    /// Model complexity: the number of buckets (histogram cells or support
    /// points). This is the x-axis of Figure 9 and the y-axis of Figure 10.
    fn num_buckets(&self) -> usize;

    /// Human-readable model name for reports.
    fn name(&self) -> &'static str;

    /// The [`SolveReport`] of the weight-estimation solve this model was
    /// trained with, if an iterative solver ran and the model retained it.
    /// Default `None` (closed-form models, loaded models, baselines
    /// without an iterative phase).
    fn solve_report(&self) -> Option<SolveReport> {
        None
    }

    /// Batch estimation: one estimate per input range, in input order.
    fn estimate_all(&self, ranges: &[Range]) -> Vec<f64>
    where
        Self: Sync,
    {
        self.par_estimate_all(ranges)
    }

    /// Batch estimation that fans out across worker threads when built with
    /// the `parallel` feature and the batch is large enough to amortize the
    /// dispatch. Each output element depends only on its own input range
    /// and evaluation is read-only, so the result is always identical to
    /// the serial `estimate_all`. Without the feature this *is* the serial
    /// loop.
    fn par_estimate_all(&self, ranges: &[Range]) -> Vec<f64>
    where
        Self: Sync,
    {
        #[cfg(feature = "parallel")]
        if ranges.len() >= PAR_BATCH_THRESHOLD && rayon::current_num_threads() > 1 {
            use rayon::prelude::*;
            // Per-query latency histogramming is thread-safe (atomic
            // buckets), so the parallel path records the same counts as the
            // serial one — only the wall-clock values differ.
            if selearn_obs::enabled() {
                return ranges
                    .par_iter()
                    .map(|r| {
                        let t0 = std::time::Instant::now();
                        let est = self.estimate(r);
                        selearn_obs::histogram_record(
                            "predict.latency_us",
                            t0.elapsed().as_secs_f64() * 1e6,
                        );
                        est
                    })
                    .collect();
            }
            return ranges.par_iter().map(|r| self.estimate(r)).collect();
        }
        if selearn_obs::enabled() {
            return ranges
                .iter()
                .map(|r| {
                    let t0 = std::time::Instant::now();
                    let est = self.estimate(r);
                    selearn_obs::histogram_record(
                        "predict.latency_us",
                        t0.elapsed().as_secs_f64() * 1e6,
                    );
                    est
                })
                .collect();
        }
        ranges.iter().map(|r| self.estimate(r)).collect()
    }
}

/// The boxed estimator type used wherever models are handled dynamically.
/// `Send + Sync` so batch estimation can fan out across threads.
pub type BoxedEstimator = Box<dyn SelectivityEstimator + Send + Sync>;

/// The reference-counted estimator type used where one trained model is
/// shared across threads without ownership — the serving layer clones one
/// of these per request so a background hot-swap never blocks or
/// invalidates in-flight readers.
pub type SharedEstimator = std::sync::Arc<dyn SelectivityEstimator + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;
    use selearn_geom::Rect;

    struct Constant(f64);
    impl SelectivityEstimator for Constant {
        fn estimate(&self, _r: &Range) -> f64 {
            self.0
        }
        fn num_buckets(&self) -> usize {
            1
        }
        fn name(&self) -> &'static str {
            "const"
        }
    }

    #[test]
    fn batch_default_impl() {
        let c = Constant(0.25);
        let ranges: Vec<Range> = vec![Rect::unit(2).into(), Rect::unit(2).into()];
        assert_eq!(c.estimate_all(&ranges), vec![0.25, 0.25]);
        assert_eq!(c.name(), "const");
        assert_eq!(c.num_buckets(), 1);
    }

    #[test]
    fn training_query_constructor() {
        let q = TrainingQuery::new(Rect::unit(2), 0.4);
        assert_eq!(q.selectivity, 0.4);
    }
}
