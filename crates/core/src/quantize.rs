//! Cache-key quantization for serving-time estimate caches.
//!
//! A selectivity estimate cache cannot key on raw `f64` coordinates —
//! floating-point queries essentially never repeat bit-for-bit. Instead,
//! the serving layer snaps each query box to a uniform grid over the data
//! space and keys on the integer grid cell indices: queries that agree to
//! within one grid cell share a cache entry.
//!
//! **Accuracy tradeoff.** Two queries with the same key differ by at most
//! `width_d / grid` per corner coordinate, so the cached estimate can be
//! off by at most the selectivity mass of a one-cell-thick shell around
//! the box — `O(2d/grid)` for near-uniform data, and bounded by the
//! model's per-region mass in general. `grid = 64` keeps that error well
//! below typical model error at a high hit rate; raise `grid` for more
//! precision (fewer hits), lower it for more hits (coarser answers).
//! DESIGN.md's "Serving" section discusses the choice.

use selearn_geom::Rect;

/// Quantized cache key of a query box inside `root`: the `2d` grid
/// indices of its clamped lower and upper corners on a `grid`-way uniform
/// grid per dimension. Returns `None` when the corner lists do not match
/// the root's dimension (such requests bypass the cache and fail model
/// lookup later with a proper error).
pub fn quantize_rect_key(root: &Rect, lo: &[f64], hi: &[f64], grid: u32) -> Option<Vec<u32>> {
    let mut key = Vec::with_capacity(2 * root.dim());
    quantize_rect_key_into(root, lo, hi, grid, &mut key).then_some(key)
}

/// Allocation-free [`quantize_rect_key`]: writes the `2d` cell indices
/// into `out` (cleared first, capacity reused) and returns `false` on a
/// dimension mismatch or a zero grid. Serving-time cache probes call this
/// with a per-worker scratch buffer so steady-state cache hits never
/// allocate.
pub fn quantize_rect_key_into(
    root: &Rect,
    lo: &[f64],
    hi: &[f64],
    grid: u32,
    out: &mut Vec<u32>,
) -> bool {
    out.clear();
    let d = root.dim();
    if lo.len() != d || hi.len() != d || grid == 0 {
        return false;
    }
    out.reserve(2 * d);
    for (corner, round_up) in [(lo, false), (hi, true)] {
        for (i, &c) in corner.iter().enumerate() {
            let w = root.width(i);
            let frac = if w > 0.0 {
                ((c - root.lo()[i]) / w).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let scaled = frac * grid as f64;
            // floor for lo, ceil for hi: snapping never flips which side
            // of a grid line a corner is on, so degenerate (zero-width)
            // queries stay degenerate and keys are monotone in the box
            let cell = if round_up { scaled.ceil() } else { scaled.floor() };
            out.push(cell as u32);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_cell_same_key_across_jitter() {
        let root = Rect::unit(2);
        let a = quantize_rect_key(&root, &[0.101, 0.201], &[0.502, 0.601], 64);
        let b = quantize_rect_key(&root, &[0.102, 0.202], &[0.503, 0.602], 64);
        assert_eq!(a, b, "sub-cell jitter must not change the key");
    }

    #[test]
    fn different_cells_different_keys() {
        let root = Rect::unit(2);
        let a = quantize_rect_key(&root, &[0.1, 0.2], &[0.5, 0.6], 64);
        let b = quantize_rect_key(&root, &[0.1, 0.2], &[0.6, 0.6], 64);
        assert_ne!(a, b);
    }

    #[test]
    fn coordinates_outside_root_clamp() {
        let root = Rect::unit(2);
        let a = quantize_rect_key(&root, &[-5.0, 0.0], &[2.0, 1.0], 16);
        let b = quantize_rect_key(&root, &[0.0, 0.0], &[1.0, 1.0], 16);
        assert_eq!(a, b);
    }

    #[test]
    fn dimension_mismatch_is_none() {
        let root = Rect::unit(2);
        assert!(quantize_rect_key(&root, &[0.1], &[0.5, 0.6], 64).is_none());
        assert!(quantize_rect_key(&root, &[0.1, 0.2, 0.3], &[0.5, 0.6, 0.7], 64).is_none());
        assert!(quantize_rect_key(&root, &[0.1, 0.2], &[0.5, 0.6], 0).is_none());
    }

    #[test]
    fn unnormalized_domain_scales() {
        let root = Rect::new(vec![0.0], vec![1e9]);
        let a = quantize_rect_key(&root, &[1.0e8], &[5.2e8], 64);
        let b = quantize_rect_key(&root, &[1.01e8], &[5.21e8], 64);
        assert_eq!(a, b);
    }
}
