//! Cache-key quantization for serving-time estimate caches.
//!
//! A selectivity estimate cache cannot key on raw `f64` coordinates —
//! floating-point queries essentially never repeat bit-for-bit. Instead,
//! the serving layer snaps each query box to a uniform grid over the data
//! space and keys on the integer grid cell indices: queries that agree to
//! within one grid cell share a cache entry.
//!
//! **Accuracy tradeoff.** Two queries with the same key differ by at most
//! `width_d / grid` per corner coordinate, so the cached estimate can be
//! off by at most the selectivity mass of a one-cell-thick shell around
//! the box — `O(2d/grid)` for near-uniform data, and bounded by the
//! model's per-region mass in general. `grid = 64` keeps that error well
//! below typical model error at a high hit rate; raise `grid` for more
//! precision (fewer hits), lower it for more hits (coarser answers).
//! DESIGN.md's "Serving" section discusses the choice.

use selearn_geom::Rect;

/// Quantized cache key of a query box inside `root`: the `2d` grid
/// indices of its clamped lower and upper corners on a `grid`-way uniform
/// grid per dimension. Returns `None` when the corner lists do not match
/// the root's dimension (such requests bypass the cache and fail model
/// lookup later with a proper error).
pub fn quantize_rect_key(root: &Rect, lo: &[f64], hi: &[f64], grid: u32) -> Option<Vec<u32>> {
    let mut key = Vec::with_capacity(2 * root.dim());
    quantize_rect_key_into(root, lo, hi, grid, &mut key).then_some(key)
}

/// Allocation-free [`quantize_rect_key`]: writes the `2d` cell indices
/// into `out` (cleared first, capacity reused) and returns `false` on a
/// dimension mismatch, a zero grid, or any non-finite coordinate (NaN
/// survives `clamp` and `NaN as u32` saturates to 0, which would silently
/// alias the key of a degenerate corner box — such requests bypass the
/// cache instead). Serving-time cache probes call this with a per-worker
/// scratch buffer so steady-state cache hits never allocate.
pub fn quantize_rect_key_into(
    root: &Rect,
    lo: &[f64],
    hi: &[f64],
    grid: u32,
    out: &mut Vec<u32>,
) -> bool {
    out.clear();
    let d = root.dim();
    if lo.len() != d || hi.len() != d || grid == 0 {
        return false;
    }
    out.reserve(2 * d);
    for (corner, round_up) in [(lo, false), (hi, true)] {
        for (i, &c) in corner.iter().enumerate() {
            if !c.is_finite() {
                return false;
            }
            let w = root.width(i);
            let frac = if w > 0.0 {
                ((c - root.lo()[i]) / w).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let scaled = frac * grid as f64;
            // floor for lo, ceil for hi: snapping never flips which side
            // of a grid line a corner is on, so degenerate (zero-width)
            // queries stay degenerate and keys are monotone in the box
            let cell = if round_up { scaled.ceil() } else { scaled.floor() };
            out.push(cell as u32);
        }
    }
    true
}

/// Quantized cache key of a halfspace query `normal · x ≥ offset` inside
/// `root`: the `d` grid cells of the L2-normalized normal direction (each
/// component mapped from `[-1, 1]`) followed by one cell for the offset,
/// positioned within the support interval of `n̂ · x` over `root`.
/// Normalizing first makes the key scale-invariant — `(2a, 2b)` and
/// `(a, b)` describe the same halfspace and share a key. Returns `None`
/// on a dimension mismatch, a zero grid, a zero-norm normal, or any
/// non-finite parameter.
pub fn quantize_halfspace_key(
    root: &Rect,
    normal: &[f64],
    offset: f64,
    grid: u32,
) -> Option<Vec<u32>> {
    let mut key = Vec::with_capacity(root.dim() + 1);
    quantize_halfspace_key_into(root, normal, offset, grid, &mut key).then_some(key)
}

/// Allocation-free [`quantize_halfspace_key`]; same scratch-buffer
/// contract as [`quantize_rect_key_into`].
pub fn quantize_halfspace_key_into(
    root: &Rect,
    normal: &[f64],
    offset: f64,
    grid: u32,
    out: &mut Vec<u32>,
) -> bool {
    out.clear();
    let d = root.dim();
    if normal.len() != d || grid == 0 || !offset.is_finite() {
        return false;
    }
    if normal.iter().any(|c| !c.is_finite()) {
        return false;
    }
    let norm = normal.iter().map(|c| c * c).sum::<f64>().sqrt();
    if !(norm > 0.0 && norm.is_finite()) {
        return false;
    }
    out.reserve(d + 1);
    // Support interval of n̂ · x over root: per-dim extremes accumulate.
    let (mut smin, mut smax) = (0.0f64, 0.0f64);
    for (i, &c) in normal.iter().enumerate() {
        let n = c / norm;
        let frac = ((n + 1.0) / 2.0).clamp(0.0, 1.0);
        out.push(grid_cell(frac, grid));
        let (a, b) = (n * root.lo()[i], n * root.hi()[i]);
        smin += a.min(b);
        smax += a.max(b);
    }
    let b = offset / norm;
    let frac = if smax > smin {
        ((b - smin) / (smax - smin)).clamp(0.0, 1.0)
    } else {
        0.0
    };
    out.push(grid_cell(frac, grid));
    true
}

/// Quantized cache key of a ball query inside `root`: the `d` grid cells
/// of the center (per-dim, like a box corner) followed by one cell for
/// the radius, scaled by `root`'s diagonal length. Returns `None` on a
/// dimension mismatch, a zero grid, or any non-finite parameter.
pub fn quantize_ball_key(
    root: &Rect,
    center: &[f64],
    radius: f64,
    grid: u32,
) -> Option<Vec<u32>> {
    let mut key = Vec::with_capacity(root.dim() + 1);
    quantize_ball_key_into(root, center, radius, grid, &mut key).then_some(key)
}

/// Allocation-free [`quantize_ball_key`]; same scratch-buffer contract as
/// [`quantize_rect_key_into`].
pub fn quantize_ball_key_into(
    root: &Rect,
    center: &[f64],
    radius: f64,
    grid: u32,
    out: &mut Vec<u32>,
) -> bool {
    out.clear();
    let d = root.dim();
    if center.len() != d || grid == 0 || !radius.is_finite() {
        return false;
    }
    if center.iter().any(|c| !c.is_finite()) {
        return false;
    }
    out.reserve(d + 1);
    let mut diag_sq = 0.0f64;
    for (i, &c) in center.iter().enumerate() {
        let w = root.width(i);
        let frac = if w > 0.0 {
            ((c - root.lo()[i]) / w).clamp(0.0, 1.0)
        } else {
            0.0
        };
        out.push(grid_cell(frac, grid));
        diag_sq += w * w;
    }
    let diag = diag_sq.sqrt();
    let frac = if diag > 0.0 {
        (radius.max(0.0) / diag).clamp(0.0, 1.0)
    } else {
        0.0
    };
    out.push(grid_cell(frac, grid));
    true
}

/// Snaps a fraction in `[0, 1]` to one of `grid + 1` cells (floor, with
/// the top edge landing in cell `grid`).
fn grid_cell(frac: f64, grid: u32) -> u32 {
    (frac * grid as f64).floor() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_cell_same_key_across_jitter() {
        let root = Rect::unit(2);
        let a = quantize_rect_key(&root, &[0.101, 0.201], &[0.502, 0.601], 64);
        let b = quantize_rect_key(&root, &[0.102, 0.202], &[0.503, 0.602], 64);
        assert_eq!(a, b, "sub-cell jitter must not change the key");
    }

    #[test]
    fn different_cells_different_keys() {
        let root = Rect::unit(2);
        let a = quantize_rect_key(&root, &[0.1, 0.2], &[0.5, 0.6], 64);
        let b = quantize_rect_key(&root, &[0.1, 0.2], &[0.6, 0.6], 64);
        assert_ne!(a, b);
    }

    #[test]
    fn coordinates_outside_root_clamp() {
        let root = Rect::unit(2);
        let a = quantize_rect_key(&root, &[-5.0, 0.0], &[2.0, 1.0], 16);
        let b = quantize_rect_key(&root, &[0.0, 0.0], &[1.0, 1.0], 16);
        assert_eq!(a, b);
    }

    #[test]
    fn dimension_mismatch_is_none() {
        let root = Rect::unit(2);
        assert!(quantize_rect_key(&root, &[0.1], &[0.5, 0.6], 64).is_none());
        assert!(quantize_rect_key(&root, &[0.1, 0.2, 0.3], &[0.5, 0.6, 0.7], 64).is_none());
        assert!(quantize_rect_key(&root, &[0.1, 0.2], &[0.5, 0.6], 0).is_none());
    }

    #[test]
    fn unnormalized_domain_scales() {
        let root = Rect::new(vec![0.0], vec![1e9]);
        let a = quantize_rect_key(&root, &[1.0e8], &[5.2e8], 64);
        let b = quantize_rect_key(&root, &[1.01e8], &[5.21e8], 64);
        assert_eq!(a, b);
    }

    #[test]
    fn non_finite_coordinates_refuse_a_key() {
        // Regression: NaN survives clamp() and `NaN as u32` saturates to
        // cell 0, which used to alias the key of a degenerate box at the
        // domain corner — non-finite input must bypass the cache instead.
        let root = Rect::unit(2);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(quantize_rect_key(&root, &[bad, 0.2], &[0.5, 0.6], 64).is_none());
            assert!(quantize_rect_key(&root, &[0.1, 0.2], &[0.5, bad], 64).is_none());
        }
        let corner = quantize_rect_key(&root, &[0.0, 0.0], &[0.0, 0.0], 64);
        assert!(corner.is_some(), "the corner box itself still keys");
    }

    #[test]
    fn halfspace_key_is_scale_invariant() {
        let root = Rect::unit(2);
        let a = quantize_halfspace_key(&root, &[1.0, 2.0], 0.5, 64);
        let b = quantize_halfspace_key(&root, &[2.0, 4.0], 1.0, 64);
        assert!(a.is_some());
        assert_eq!(a, b, "scaled (normal, offset) is the same halfspace");
        let c = quantize_halfspace_key(&root, &[1.0, 2.0], 0.9, 64);
        assert_ne!(a, c, "a different offset is a different key");
        let d = quantize_halfspace_key(&root, &[2.0, 1.0], 0.5, 64);
        assert_ne!(a, d, "a different direction is a different key");
    }

    #[test]
    fn halfspace_key_rejects_bad_input() {
        let root = Rect::unit(2);
        assert!(quantize_halfspace_key(&root, &[1.0], 0.5, 64).is_none());
        assert!(quantize_halfspace_key(&root, &[0.0, 0.0], 0.5, 64).is_none());
        assert!(quantize_halfspace_key(&root, &[f64::NAN, 1.0], 0.5, 64).is_none());
        assert!(quantize_halfspace_key(&root, &[1.0, 1.0], f64::INFINITY, 64).is_none());
        assert!(quantize_halfspace_key(&root, &[1.0, 1.0], 0.5, 0).is_none());
    }

    #[test]
    fn ball_key_snaps_jitter_and_separates_radii() {
        let root = Rect::unit(2);
        let a = quantize_ball_key(&root, &[0.301, 0.501], 0.2, 64);
        let b = quantize_ball_key(&root, &[0.302, 0.502], 0.201, 64);
        assert!(a.is_some());
        assert_eq!(a, b, "sub-cell jitter must not change the key");
        let c = quantize_ball_key(&root, &[0.301, 0.501], 0.9, 64);
        assert_ne!(a, c, "a clearly different radius is a different key");
    }

    #[test]
    fn ball_key_rejects_bad_input() {
        let root = Rect::unit(2);
        assert!(quantize_ball_key(&root, &[0.5], 0.2, 64).is_none());
        assert!(quantize_ball_key(&root, &[0.5, f64::NAN], 0.2, 64).is_none());
        assert!(quantize_ball_key(&root, &[0.5, 0.5], f64::NAN, 64).is_none());
        assert!(quantize_ball_key(&root, &[0.5, 0.5], 0.2, 0).is_none());
    }
}
