//! The arrangement-based generic procedure of Section 3.1.
//!
//! Buckets are the cells of the arrangement of the training ranges: each
//! cell lies in the same subset of ranges, so a histogram over these cells
//! can express the **loss-minimizing** distribution — Lemma 3.1 proves
//! both the histogram and the discrete variant are optimal over their
//! families. The price is a worst-case `O(n^d)` cell count, which is why
//! the paper turns to QuadHist/PtsHist for bounded complexity; this type
//! exists to realize the optimality guarantee and serves as the exactness
//! reference in tests.
//!
//! Implemented for orthogonal-range workloads, whose arrangement has the
//! canonical grid refinement; a `max_cells` guard fails fast instead of
//! exhausting memory.

use crate::error::SelearnError;
use crate::estimator::{SelectivityEstimator, TrainingQuery};
use crate::weights::{estimate_weights, Objective, WeightSolver};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selearn_geom::{grid_arrangement, sample_in_rect, Point, Range, RangeQuery, Rect, EPS};
use selearn_solver::DenseMatrix;

/// Configuration for [`ArrangementHist`].
#[derive(Clone, Debug)]
pub struct ArrangementHistConfig {
    /// Abort (with [`SelearnError::ResourceExhausted`]) if the arrangement
    /// would exceed this many cells.
    pub max_cells: usize,
    /// Build the discrete variant (one random point per cell, Equation 7)
    /// instead of the histogram variant (Equation 6).
    pub discrete: bool,
    /// Seed for the discrete variant's per-cell point choice.
    pub seed: u64,
    /// Training objective.
    pub objective: Objective,
    /// Weight solver.
    pub solver: WeightSolver,
}

impl Default for ArrangementHistConfig {
    fn default() -> Self {
        Self {
            max_cells: 200_000,
            discrete: false,
            seed: 0xa11a,
            objective: Objective::L2,
            solver: WeightSolver::Fista,
        }
    }
}

/// The exact arrangement-cell estimator (Section 3.1).
#[derive(Clone, Debug)]
pub struct ArrangementHist {
    cells: Vec<Rect>,
    /// Discrete-variant representative points (empty in histogram mode).
    points: Vec<Point>,
    weights: Vec<f64>,
    discrete: bool,
}

impl ArrangementHist {
    /// Trains over the data space `root`. Only orthogonal-range training
    /// queries are supported.
    ///
    /// Returns a typed [`SelearnError`] if a training range is not a
    /// rectangle, a label is non-finite, or the arrangement exceeds
    /// `config.max_cells` cells.
    pub fn fit(
        root: Rect,
        queries: &[TrainingQuery],
        config: &ArrangementHistConfig,
    ) -> Result<Self, SelearnError> {
        crate::error::check_labels(queries)?;
        let mut rects: Vec<Rect> = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            let Some(r) = q.range.as_rect() else {
                return Err(SelearnError::UnsupportedQuery {
                    model: "arrangement",
                    query: i,
                    what: "orthogonal ranges only",
                });
            };
            rects.push(r.clone());
        }
        let arrangement = grid_arrangement(&rects, &root);
        if arrangement.num_cells() > config.max_cells {
            return Err(SelearnError::ResourceExhausted {
                what: "arrangement cells",
                limit: config.max_cells,
                got: arrangement.num_cells(),
            });
        }
        let cells: Vec<Rect> = arrangement.to_cells();

        let mut rng = StdRng::seed_from_u64(config.seed);
        let points: Vec<Point> = if config.discrete {
            cells.iter().map(|c| sample_in_rect(c, &mut rng)).collect()
        } else {
            Vec::new()
        };

        // Design matrix: each cell is entirely in or out of each range, so
        // entries are (numerically) 0/1 in histogram mode too.
        let mut a = DenseMatrix::zeros(0, 0);
        let mut s = Vec::with_capacity(queries.len());
        for (q, rect) in queries.iter().zip(&rects) {
            let row: Vec<f64> = if config.discrete {
                points
                    .iter()
                    .map(|p| if q.range.contains(p) { 1.0 } else { 0.0 })
                    .collect()
            } else {
                cells
                    .iter()
                    .map(|c| {
                        let cv = c.volume();
                        if cv <= EPS {
                            0.0
                        } else {
                            (rect.intersection_volume(c) / cv).clamp(0.0, 1.0)
                        }
                    })
                    .collect()
            };
            a.push_row(&row);
            s.push(q.selectivity);
        }
        let weights = if a.rows() == 0 {
            vec![1.0 / cells.len() as f64; cells.len()]
        } else {
            estimate_weights(&a, &s, &config.objective, &config.solver)?
        };

        Ok(Self {
            cells,
            points,
            weights,
            discrete: config.discrete,
        })
    }

    /// Compiles the model into a pointer-free [`FrozenEstimator`] with
    /// cell boxes (or representative points) in coordinate lanes and
    /// precomputed cell volumes. Estimates are bit-identical.
    pub fn freeze(&self) -> crate::frozen::FrozenEstimator {
        crate::frozen::FrozenEstimator::Arrangement(crate::frozen::FrozenArrangement::build(
            &self.cells,
            &self.points,
            &self.weights,
            self.discrete,
        ))
    }

    /// Training loss `Σ_i (ŝ(R_i) − s_i)²` of the fitted model on a
    /// workload — Lemma 3.1 says this is minimal over all histograms
    /// (resp. discrete distributions).
    pub fn training_loss(&self, queries: &[TrainingQuery]) -> f64 {
        queries
            .iter()
            .map(|q| {
                let e = self.estimate(&q.range);
                (e - q.selectivity) * (e - q.selectivity)
            })
            .sum()
    }
}

impl SelectivityEstimator for ArrangementHist {
    fn estimate(&self, range: &Range) -> f64 {
        let total: f64 = if self.discrete {
            self.points
                .iter()
                .zip(&self.weights)
                .filter(|(p, _)| range.contains(p))
                .map(|(_, &w)| w)
                .sum()
        } else {
            self.cells
                .iter()
                .zip(&self.weights)
                .map(|(c, &w)| {
                    let cv = c.volume();
                    if cv <= EPS || w <= 0.0 {
                        return 0.0;
                    }
                    if let Range::Rect(r) = range {
                        (r.intersection_volume(c) / cv).clamp(0.0, 1.0) * w
                    } else {
                        let est = selearn_geom::VolumeEstimator::default();
                        (range.intersection_volume(c, &est) / cv).clamp(0.0, 1.0) * w
                    }
                })
                .sum()
        };
        total.clamp(0.0, 1.0)
    }

    fn num_buckets(&self) -> usize {
        self.cells.len()
    }

    fn name(&self) -> &'static str {
        if self.discrete {
            "ArrangementPts"
        } else {
            "ArrangementHist"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tq(lo: Vec<f64>, hi: Vec<f64>, s: f64) -> TrainingQuery {
        TrainingQuery::new(Rect::new(lo, hi), s)
    }

    #[test]
    fn zero_training_loss_on_consistent_workload() {
        // Labels generated by an actual distribution ⇒ the arrangement
        // model must fit them exactly (Lemma 3.1: it minimizes the loss,
        // and the true distribution achieves 0 on its own arrangement).
        let queries = vec![
            tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.4),
            tq(vec![0.5, 0.0], vec![1.0, 0.5], 0.1),
            tq(vec![0.0, 0.5], vec![0.5, 1.0], 0.3),
            tq(vec![0.25, 0.25], vec![0.75, 0.75], 0.35),
        ];
        let ah = ArrangementHist::fit(
            Rect::unit(2),
            &queries,
            &ArrangementHistConfig::default(),
        ).unwrap();
        let loss = ah.training_loss(&queries);
        assert!(loss < 1e-6, "loss = {loss}");
    }

    #[test]
    fn discrete_variant_matches_histogram_loss() {
        // Lemma 3.1's proof: per arrangement cell, a point bucket can carry
        // the same mass as the cell, so both variants reach the same loss.
        let queries = vec![
            tq(vec![0.0, 0.0], vec![0.6, 0.6], 0.5),
            tq(vec![0.4, 0.4], vec![1.0, 1.0], 0.3),
        ];
        let hist = ArrangementHist::fit(
            Rect::unit(2),
            &queries,
            &ArrangementHistConfig::default(),
        ).unwrap();
        let disc = ArrangementHist::fit(
            Rect::unit(2),
            &queries,
            &ArrangementHistConfig {
                discrete: true,
                ..Default::default()
            },
        ).unwrap();
        let lh = hist.training_loss(&queries);
        let ld = disc.training_loss(&queries);
        assert!((lh - ld).abs() < 1e-6, "hist {lh} vs discrete {ld}");
        assert_eq!(disc.name(), "ArrangementPts");
        assert_eq!(hist.name(), "ArrangementHist");
    }

    #[test]
    fn beats_or_matches_quadhist_on_training_loss() {
        use crate::quadhist::{QuadHist, QuadHistConfig};
        let queries = vec![
            tq(vec![0.1, 0.1], vec![0.45, 0.6], 0.37),
            tq(vec![0.3, 0.2], vec![0.9, 0.75], 0.52),
            tq(vec![0.05, 0.5], vec![0.5, 0.95], 0.21),
        ];
        let ah = ArrangementHist::fit(
            Rect::unit(2),
            &queries,
            &ArrangementHistConfig::default(),
        ).unwrap();
        let qh = QuadHist::fit(
            Rect::unit(2),
            &queries,
            &QuadHistConfig::with_tau(0.01),
        ).unwrap();
        let qh_loss: f64 = queries
            .iter()
            .map(|q| (qh.estimate(&q.range) - q.selectivity).powi(2))
            .sum();
        assert!(
            ah.training_loss(&queries) <= qh_loss + 1e-6,
            "arrangement {} vs quadhist {qh_loss}",
            ah.training_loss(&queries)
        );
    }

    #[test]
    fn cell_count_guard() {
        let queries: Vec<TrainingQuery> = (0..40)
            .map(|i| {
                let x = i as f64 / 50.0;
                tq(vec![x, x], vec![x + 0.1, x + 0.1], 0.01)
            })
            .collect();
        let cfg = ArrangementHistConfig {
            max_cells: 100,
            ..Default::default()
        };
        let err = ArrangementHist::fit(Rect::unit(2), &queries, &cfg).unwrap_err();
        assert!(
            matches!(err, SelearnError::ResourceExhausted { limit: 100, .. }),
            "guard should trip, got {err}"
        );
    }

    #[test]
    fn empty_workload_is_uniform() {
        let ah = ArrangementHist::fit(Rect::unit(2), &[], &ArrangementHistConfig::default()).unwrap();
        assert_eq!(ah.num_buckets(), 1);
        let r: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 1.0]).into();
        assert!((ah.estimate(&r) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn non_rect_training_query_is_typed_error() {
        use selearn_geom::{Ball, Point};
        let q = TrainingQuery::new(Ball::new(Point::splat(2, 0.5), 0.2), 0.1);
        let err =
            ArrangementHist::fit(Rect::unit(2), &[q], &ArrangementHistConfig::default())
                .unwrap_err();
        assert!(matches!(
            err,
            SelearnError::UnsupportedQuery {
                model: "arrangement",
                query: 0,
                ..
            }
        ));
    }
}
