//! QuadHist — the quadtree-partitioned histogram of Section 3.2.
//!
//! Bucket design follows Algorithms 1–2 (Appendix A.1): starting from a
//! single bucket spanning the data space, each training query `(R, s)`
//! recursively splits every node `u` whose estimated density contribution
//! `vol(u ∩ R)/vol(R) · s` exceeds a threshold `τ` — so the partition ends
//! up finer exactly where queries and data are denser. The resulting
//! partition is **order-independent** (Lemma A.4) and the node-visit cost
//! per query is `O(s(R)/τ · log(s(R)/(τ·vol(R))))` (Lemma A.2).
//!
//! Weights then come from the shared estimation phase (Equation 8), and
//! prediction applies Equation (6) via a pruned tree traversal.

use crate::assemble::assemble_design_matrix;
use crate::error::SelearnError;
use crate::estimator::{SelectivityEstimator, TrainingQuery};
use crate::quadtree::{cell_key, cells_match, CellKey, NodeId, QuadTree, ROOT};
use crate::weights::{estimate_weights_with_report, Objective, WeightSolver};
use selearn_geom::{Range, RangeQuery, Rect, VolumeEstimator, EPS};
use selearn_solver::SolveReport;

/// QuadHist configuration.
#[derive(Clone, Debug)]
pub struct QuadHistConfig {
    /// Split threshold `τ ∈ (0, 1)`: smaller values produce finer
    /// partitions (more buckets). Figure 9 sweeps this knob.
    pub tau: f64,
    /// Hard cap on the number of leaves (`0` = unlimited). The paper:
    /// "we can control the model size k by varying τ or adding a hard
    /// termination condition on the number of leaves".
    pub max_leaves: usize,
    /// Training objective (Section 4.6).
    pub objective: Objective,
    /// Weight solver.
    pub solver: WeightSolver,
    /// Volume backend for non-rectangular queries.
    pub volume: VolumeEstimator,
}

impl Default for QuadHistConfig {
    fn default() -> Self {
        Self {
            tau: 0.01,
            max_leaves: 0,
            objective: Objective::L2,
            solver: WeightSolver::Fista,
            volume: VolumeEstimator::default(),
        }
    }
}

impl QuadHistConfig {
    /// Config with a given `τ`.
    pub fn with_tau(tau: f64) -> Self {
        Self {
            tau,
            ..Default::default()
        }
    }

    /// Sets the leaf cap.
    pub fn max_leaves(mut self, cap: usize) -> Self {
        self.max_leaves = cap;
        self
    }

    /// Sets the objective.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the weight solver.
    pub fn solver(mut self, solver: WeightSolver) -> Self {
        self.solver = solver;
        self
    }
}

/// A trained QuadHist model: a quadtree partition plus a weight per leaf.
#[derive(Clone, Debug)]
pub struct QuadHist {
    tree: QuadTree,
    /// Weight per node id; nonzero only at leaves.
    node_weight: Vec<f64>,
    num_leaves: usize,
    volume: VolumeEstimator,
    /// Outcome of the weight-estimation solve (None for loaded models).
    solve_report: Option<SolveReport>,
}

impl QuadHist {
    /// Trains a QuadHist over the data space `root` from a workload.
    ///
    /// Training queries whose clipped volume is (numerically) zero cannot
    /// drive volume-based refinement and are skipped during bucket design,
    /// but still participate in weight estimation.
    ///
    /// Returns a typed [`SelearnError`] on a `τ` outside `(0, 1)` or a
    /// non-finite training label; an empty workload is fine (uniform model).
    pub fn fit(
        root: Rect,
        queries: &[TrainingQuery],
        config: &QuadHistConfig,
    ) -> Result<Self, SelearnError> {
        let _span = selearn_obs::span!("fit.quadhist");
        let tree = Self::design_buckets(&root, queries, config)?;
        Self::fit_weights(tree, queries, config)
    }

    /// Trains a QuadHist whose bucket count approaches (but never exceeds)
    /// `target` by bisecting `τ` — the paper's experiments peg the model
    /// size to `4×` the training-query count this way (Section 4.1).
    pub fn fit_with_bucket_target(
        root: Rect,
        queries: &[TrainingQuery],
        target: usize,
        config: &QuadHistConfig,
    ) -> Result<Self, SelearnError> {
        if target == 0 {
            return Err(SelearnError::InvalidConfig {
                model: "quadhist",
                what: "bucket target must be >= 1",
            });
        }
        // Validate once up front so the probe closure cannot fail.
        Self::validate(queries, config)?;
        let _span = selearn_obs::span!("fit.quadhist.calibrate");
        // Bisect log τ: leaf count is monotone nonincreasing in τ. Leaf
        // counts move in jumps (each split adds 2^d − 1 leaves at once), so
        // an exact hit may not exist; we land on the finest τ *above* the
        // target and let the hard cap trim the partition to ≤ target.
        let mut lo = 1e-7f64.ln(); // finest (most leaves)
        let mut hi = 0.5f64.ln(); // coarsest (fewest leaves)
        // "saturated" = the cap is what stopped refinement, so the count
        // sits within one split of the target.
        let saturated = target.saturating_sub((1usize << root.dim()) - 1).max(1);
        let probe = |tau: f64| {
            let mut cand = config.clone();
            cand.tau = tau;
            cand.max_leaves = target;
            Self::design_buckets_unchecked(&root, queries, &cand).num_leaves()
        };
        for _ in 0..24 {
            let mid = 0.5 * (lo + hi);
            if probe(mid.exp()) >= saturated {
                lo = mid; // still saturated → τ can be coarser
            } else {
                hi = mid; // under target → τ must get finer
            }
        }
        let mut best = config.clone();
        // lo is the finest-known saturating τ (or the fine end if the
        // workload cannot drive `target` leaves at any τ).
        best.tau = lo.exp().min(0.5);
        best.max_leaves = target;
        Self::fit(root, queries, &best)
    }

    /// Rejects the config/workload combinations `fit` cannot handle:
    /// `τ ∉ (0, 1)` (NaN included) and non-finite labels.
    fn validate(queries: &[TrainingQuery], config: &QuadHistConfig) -> Result<(), SelearnError> {
        if !(config.tau > 0.0 && config.tau < 1.0) {
            return Err(SelearnError::InvalidConfig {
                model: "quadhist",
                what: "tau must be in (0, 1)",
            });
        }
        crate::error::check_labels(queries)
    }

    /// Phase 1 only: the bucket-design pass (Algorithm 1), exposed for
    /// calibration and benchmarking.
    pub fn design_buckets(
        root: &Rect,
        queries: &[TrainingQuery],
        config: &QuadHistConfig,
    ) -> Result<QuadTree, SelearnError> {
        Self::validate(queries, config)?;
        Ok(Self::design_buckets_unchecked(root, queries, config))
    }

    /// [`QuadHist::design_buckets`] after validation has already run.
    fn design_buckets_unchecked(
        root: &Rect,
        queries: &[TrainingQuery],
        config: &QuadHistConfig,
    ) -> QuadTree {
        let _span = selearn_obs::span!("design_buckets");
        let mut tree = QuadTree::new(root.clone());
        for q in queries {
            let vol_r = q.range.volume_in(root, &config.volume);
            if vol_r <= EPS {
                continue;
            }
            update_quad(
                &mut tree,
                ROOT,
                &q.range,
                q.selectivity,
                vol_r,
                config,
            );
        }
        tree
    }

    /// Phase 2 only: weight estimation over an existing partition.
    fn fit_weights(
        tree: QuadTree,
        queries: &[TrainingQuery],
        config: &QuadHistConfig,
    ) -> Result<Self, SelearnError> {

        // Phase 2: weight estimation (Equation 8) over the leaf buckets.
        // Each design-matrix row is a pure function of one query and the
        // frozen leaf layout, so assembly parallelizes across queries.
        let leaves = tree.leaves();
        let a = assemble_design_matrix(queries, leaves.len(), |q| {
            let mut row = Vec::with_capacity(leaves.len());
            for &leaf in &leaves {
                let cell = tree.rect(leaf);
                let cv = cell.volume();
                let frac = if cv <= EPS {
                    0.0
                } else {
                    q.range.intersection_volume(cell, &config.volume) / cv
                };
                row.push(frac.clamp(0.0, 1.0));
            }
            row
        });
        let s: Vec<f64> = queries.iter().map(|q| q.selectivity).collect();
        let (w, solve_report) = if leaves.is_empty() {
            (Vec::new(), None)
        } else if a.rows() == 0 {
            (vec![1.0 / leaves.len() as f64; leaves.len()], None)
        } else {
            estimate_weights_with_report(&a, &s, &config.objective, &config.solver)?
        };

        let mut node_weight = vec![0.0; tree.num_nodes()];
        for (k, &leaf) in leaves.iter().enumerate() {
            node_weight[leaf] = w[k];
        }
        Ok(Self {
            num_leaves: leaves.len(),
            tree,
            node_weight,
            volume: config.volume.clone(),
            solve_report,
        })
    }

    /// The underlying partition tree.
    pub fn tree(&self) -> &QuadTree {
        &self.tree
    }

    /// The data-space box the model was trained over.
    pub fn root(&self) -> &Rect {
        self.tree.rect(ROOT)
    }

    /// Reconstructs a model from its bucket dump (`(leaf box, weight)`
    /// pairs as produced by [`QuadHist::buckets`]) — the inverse used when
    /// loading persisted models.
    ///
    /// Every cell of a quadtree partition is uniquely identified by its
    /// depth plus its integer lattice position within the root, so the
    /// bucket list is indexed by that key once (`O(n)`) and each
    /// reconstructed leaf is looked up in `O(1)` — restoring the
    /// 10k-bucket models of Figure 9 used to take a quadratic `find` scan
    /// per leaf. Matching tolerates coordinate error up to a small
    /// fraction of the cell width plus an absolute term scaled by the
    /// root's coordinate magnitude, so dumps written with decimal-rounded
    /// coordinates load on any domain scale (a `[0, 1e9]` CSV domain as
    /// well as sub-1e-9 cells of the unit cube).
    ///
    /// Returns [`SelearnError::CorruptModel`] if the boxes do not form a
    /// quadtree partition of `root` or carry non-finite weights.
    pub fn from_buckets(
        root: Rect,
        buckets: &[(Rect, f64)],
        volume: VolumeEstimator,
    ) -> Result<Self, SelearnError> {
        let _span = selearn_obs::span!("restore.quadhist");
        if let Some((i, (_, w))) = buckets
            .iter()
            .enumerate()
            .find(|(_, (_, w))| !w.is_finite())
        {
            return Err(SelearnError::CorruptModel {
                what: format!("bucket {i} has non-finite weight {w}"),
            });
        }
        if let Some((i, (r, _))) = buckets
            .iter()
            .enumerate()
            .find(|(_, (r, _))| r.dim() != root.dim())
        {
            return Err(SelearnError::CorruptModel {
                what: format!(
                    "bucket {i} has dimension {}, root has {}",
                    r.dim(),
                    root.dim()
                ),
            });
        }
        let leaf_boxes: Vec<Rect> = buckets.iter().map(|(r, _)| r.clone()).collect();
        let tree = QuadTree::from_leaf_boxes(root, &leaf_boxes)?;
        let mut node_weight = vec![0.0; tree.num_nodes()];
        let leaves = tree.leaves();
        if leaves.len() != buckets.len() {
            return Err(SelearnError::CorruptModel {
                what: format!(
                    "bucket list does not match the reconstructed partition \
                     ({} buckets, {} leaves)",
                    buckets.len(),
                    leaves.len()
                ),
            });
        }
        let root_rect = tree.rect(ROOT).clone();
        let mut index: std::collections::HashMap<CellKey, usize> =
            std::collections::HashMap::with_capacity(buckets.len());
        for (i, (r, _)) in buckets.iter().enumerate() {
            let Some(key) = cell_key(&root_rect, r) else {
                return Err(SelearnError::CorruptModel {
                    what: format!("bucket {i} ({r:?}) is not a quadtree cell of the root"),
                });
            };
            if index.insert(key, i).is_some() {
                return Err(SelearnError::CorruptModel {
                    what: format!("bucket {i} ({r:?}) duplicates another bucket's cell"),
                });
            }
        }
        for &leaf in &leaves {
            let cell = tree.rect(leaf);
            let matched = cell_key(&root_rect, cell)
                .and_then(|key| index.get(&key))
                .filter(|&&i| cells_match(&root_rect, &buckets[i].0, cell));
            let Some(&i) = matched else {
                return Err(SelearnError::CorruptModel {
                    what: format!("reconstructed leaf {cell:?} missing from the dump"),
                });
            };
            node_weight[leaf] = buckets[i].1;
        }
        Ok(Self {
            num_leaves: leaves.len(),
            tree,
            node_weight,
            volume,
            solve_report: None,
        })
    }

    /// Compiles the model into a pointer-free [`FrozenEstimator`]: the
    /// quadtree arena flattened into implicit-index SoA lanes with
    /// contiguous per-subtree leaf ranges (see [`crate::frozen`]).
    /// Estimates are bit-identical to this model's; only the constant
    /// factor of the traversal changes.
    pub fn freeze(&self) -> crate::frozen::FrozenEstimator {
        crate::frozen::FrozenEstimator::Quad(crate::frozen::FrozenQuad::build(
            &self.tree,
            &self.node_weight,
            self.volume.clone(),
            self.solve_report,
        ))
    }

    /// `(bucket, weight)` pairs, for introspection (Figure 7 renders these).
    pub fn buckets(&self) -> Vec<(Rect, f64)> {
        self.tree
            .leaves()
            .into_iter()
            .map(|l| (self.tree.rect(l).clone(), self.node_weight[l]))
            .collect()
    }
}

/// Algorithm 2 (UpdateQuad): recursively refine under a training query.
pub(crate) fn update_quad(
    tree: &mut QuadTree,
    node: NodeId,
    range: &Range,
    selectivity: f64,
    vol_r: f64,
    config: &QuadHistConfig,
) {
    let cell = tree.rect(node).clone();
    let p = range.intersection_volume(&cell, &config.volume) / vol_r * selectivity;
    if p <= config.tau {
        return;
    }
    if tree.is_leaf(node) {
        let fanout = 1usize << tree.dim();
        let within_cap = config.max_leaves == 0
            || tree.num_leaves() + fanout - 1 <= config.max_leaves;
        if !within_cap {
            return;
        }
        // guard against unbounded recursion on pathologically tiny cells
        if cell.volume() <= 1e-15 {
            return;
        }
        tree.split(node);
        selearn_obs::counter_add("quadtree_splits", 1);
    }
    let children: Vec<NodeId> = tree.children(node).collect();
    for c in children {
        update_quad(tree, c, range, selectivity, vol_r, config);
    }
}

impl SelectivityEstimator for QuadHist {
    fn estimate(&self, range: &Range) -> f64 {
        let root = self.tree.rect(ROOT);
        let Some(bbox) = range.bounding_box(root) else {
            return 0.0;
        };
        let mut total = 0.0;
        self.tree.for_each_leaf_intersecting(&bbox, |id, cell| {
            let w = self.node_weight[id];
            if w <= 0.0 {
                return;
            }
            let cv = cell.volume();
            if cv <= EPS {
                return;
            }
            let frac = range.intersection_volume(cell, &self.volume) / cv;
            total += frac.clamp(0.0, 1.0) * w;
        });
        total.clamp(0.0, 1.0)
    }

    fn num_buckets(&self) -> usize {
        self.num_leaves
    }

    fn name(&self) -> &'static str {
        "QuadHist"
    }

    fn solve_report(&self) -> Option<SolveReport> {
        self.solve_report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selearn_geom::{Ball, Halfspace, Point};

    fn tq(lo: Vec<f64>, hi: Vec<f64>, s: f64) -> TrainingQuery {
        TrainingQuery::new(Rect::new(lo, hi), s)
    }

    #[test]
    fn no_queries_uniform_model() {
        let qh = QuadHist::fit(Rect::unit(2), &[], &QuadHistConfig::default()).unwrap();
        assert_eq!(qh.num_buckets(), 1);
        let r: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]).into();
        // single uniform bucket: estimate = covered fraction = 0.25
        assert!((qh.estimate(&r) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn splits_dense_regions() {
        // A small, dense query forces refinement near it.
        let queries = vec![tq(vec![0.0, 0.0], vec![0.25, 0.25], 0.9)];
        let qh = QuadHist::fit(
            Rect::unit(2),
            &queries,
            &QuadHistConfig::with_tau(0.05),
        ).unwrap();
        assert!(qh.num_buckets() > 1, "expected refinement");
        // the learned model reproduces the training selectivity well
        let est = qh.estimate(&queries[0].range);
        assert!((est - 0.9).abs() < 0.05, "est = {est}");
    }

    #[test]
    fn order_independence_lemma_a4() {
        // Lemma A.4: the partition is invariant under query reordering.
        let queries = vec![
            tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.6),
            tq(vec![0.25, 0.25], vec![0.9, 0.9], 0.3),
            tq(vec![0.6, 0.1], vec![0.95, 0.45], 0.25),
            tq(vec![0.1, 0.55], vec![0.4, 0.95], 0.15),
        ];
        let cfg = QuadHistConfig::with_tau(0.02);
        let a = QuadHist::fit(Rect::unit(2), &queries, &cfg).unwrap();
        let mut rev = queries.clone();
        rev.reverse();
        let b = QuadHist::fit(Rect::unit(2), &rev, &cfg).unwrap();
        let mut ra: Vec<String> = a
            .buckets()
            .iter()
            .map(|(r, _)| format!("{:?}", r))
            .collect();
        let mut rb: Vec<String> = b
            .buckets()
            .iter()
            .map(|(r, _)| format!("{:?}", r))
            .collect();
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb, "partition depends on insertion order");
    }

    #[test]
    fn smaller_tau_more_buckets() {
        let queries = vec![
            tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.7),
            tq(vec![0.4, 0.4], vec![0.9, 0.9], 0.3),
        ];
        let coarse = QuadHist::fit(
            Rect::unit(2),
            &queries,
            &QuadHistConfig::with_tau(0.2),
        ).unwrap();
        let fine = QuadHist::fit(
            Rect::unit(2),
            &queries,
            &QuadHistConfig::with_tau(0.01),
        ).unwrap();
        assert!(fine.num_buckets() > coarse.num_buckets());
    }

    #[test]
    fn leaf_cap_respected() {
        let queries = vec![tq(vec![0.0, 0.0], vec![0.1, 0.1], 0.99)];
        let cfg = QuadHistConfig::with_tau(0.001).max_leaves(16);
        let qh = QuadHist::fit(Rect::unit(2), &queries, &cfg).unwrap();
        assert!(qh.num_buckets() <= 16, "{} leaves", qh.num_buckets());
    }

    #[test]
    fn weights_form_distribution() {
        let queries = vec![
            tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.8),
            tq(vec![0.5, 0.5], vec![1.0, 1.0], 0.1),
        ];
        let qh = QuadHist::fit(
            Rect::unit(2),
            &queries,
            &QuadHistConfig::with_tau(0.05),
        ).unwrap();
        let total: f64 = qh.buckets().iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-6, "total mass {total}");
        assert!(qh.buckets().iter().all(|(_, w)| *w >= -1e-9));
    }

    #[test]
    fn disjoint_queries_fit_exactly() {
        // Two disjoint quadrant queries with complementary mass.
        let queries = vec![
            tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.75),
            tq(vec![0.5, 0.5], vec![1.0, 1.0], 0.25),
        ];
        let qh = QuadHist::fit(
            Rect::unit(2),
            &queries,
            &QuadHistConfig::with_tau(0.05),
        ).unwrap();
        assert!((qh.estimate(&queries[0].range) - 0.75).abs() < 1e-3);
        assert!((qh.estimate(&queries[1].range) - 0.25).abs() < 1e-3);
    }

    #[test]
    fn estimate_clamped_to_unit_interval() {
        let queries = vec![tq(vec![0.0, 0.0], vec![1.0, 1.0], 1.0)];
        let qh = QuadHist::fit(Rect::unit(2), &queries, &QuadHistConfig::default()).unwrap();
        let r: Range = Rect::unit(2).into();
        let est = qh.estimate(&r);
        assert!((0.0..=1.0).contains(&est));
        assert!((est - 1.0).abs() < 1e-6);
    }

    #[test]
    fn query_outside_root_estimates_zero() {
        let queries = vec![tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.5)];
        let qh = QuadHist::fit(Rect::unit(2), &queries, &QuadHistConfig::default()).unwrap();
        let outside: Range = Ball::new(Point::new(vec![5.0, 5.0]), 0.1).into();
        assert_eq!(qh.estimate(&outside), 0.0);
    }

    #[test]
    fn works_with_halfspace_queries() {
        let h = Halfspace::new(vec![1.0, 1.0], 1.0);
        let queries = vec![TrainingQuery::new(h.clone(), 0.5)];
        let qh = QuadHist::fit(
            Rect::unit(2),
            &queries,
            &QuadHistConfig::with_tau(0.05),
        ).unwrap();
        let est = qh.estimate(&Range::Halfspace(h));
        assert!((est - 0.5).abs() < 0.05, "est = {est}");
    }

    #[test]
    fn works_with_ball_queries() {
        let b = Ball::new(Point::splat(2, 0.5), 0.3);
        let queries = vec![TrainingQuery::new(b.clone(), 0.4)];
        let qh = QuadHist::fit(
            Rect::unit(2),
            &queries,
            &QuadHistConfig::with_tau(0.05),
        ).unwrap();
        let est = qh.estimate(&Range::Ball(b));
        assert!((est - 0.4).abs() < 0.05, "est = {est}");
    }

    #[test]
    fn degenerate_volume_query_skipped_in_design() {
        // zero-volume query can't drive refinement but must not crash
        let queries = vec![TrainingQuery::new(
            Rect::new(vec![0.3, 0.0], vec![0.3, 1.0]),
            0.2,
        )];
        let qh = QuadHist::fit(Rect::unit(2), &queries, &QuadHistConfig::default()).unwrap();
        assert_eq!(qh.num_buckets(), 1);
    }

    #[test]
    fn bucket_target_calibration() {
        let queries: Vec<TrainingQuery> = (0..12)
            .map(|i| {
                let t = i as f64 / 16.0;
                tq(vec![t, t], vec![(t + 0.3).min(1.0), (t + 0.3).min(1.0)], 0.2)
            })
            .collect();
        for target in [8usize, 32, 64] {
            let qh = QuadHist::fit_with_bucket_target(
                Rect::unit(2),
                &queries,
                target,
                &QuadHistConfig::default(),
            ).unwrap();
            assert!(
                qh.num_buckets() <= target,
                "target {target}, got {}",
                qh.num_buckets()
            );
            // we should also get reasonably close to the target from below
            assert!(
                qh.num_buckets() * 6 >= target,
                "target {target}, got only {}",
                qh.num_buckets()
            );
        }
    }

    /// Builds a pure partition of `root` with `target` leaves (uniform
    /// weights) by breadth-first splitting — no training involved, so
    /// tests can produce large bucket dumps instantly.
    fn synthetic_buckets(root: &Rect, target: usize) -> Vec<(Rect, f64)> {
        let mut tree = crate::quadtree::QuadTree::new(root.clone());
        let mut frontier = std::collections::VecDeque::from([ROOT]);
        while tree.num_leaves() < target {
            let Some(id) = frontier.pop_front() else { break };
            let first = tree.split(id);
            for k in 0..(1usize << tree.dim()) {
                frontier.push_back(first + k);
            }
        }
        let n = tree.num_leaves() as f64;
        tree.leaves()
            .into_iter()
            .map(|l| (tree.rect(l).clone(), 1.0 / n))
            .collect()
    }

    #[test]
    fn restore_accepts_decimal_rounded_dump_on_large_domain() {
        // Regression: the old absolute 1e-9 match rejected valid dumps on
        // unnormalized (CSV-scale) domains, where writing coordinates in
        // decimal loses far more than 1e-9 of absolute precision.
        let root = Rect::new(vec![0.0, 0.0], vec![1e9, 1e9]);
        let buckets = synthetic_buckets(&root, 64);
        // perturb inward by 1e-5 — what a %.12g dump of 1e9-scale
        // coordinates can lose, and 10^4 times the old tolerance
        let perturbed: Vec<(Rect, f64)> = buckets
            .iter()
            .map(|(r, w)| {
                let lo: Vec<f64> = r.lo().iter().map(|&c| c + 1e-5).collect();
                let hi: Vec<f64> = r.hi().iter().map(|&c| c - 1e-5).collect();
                (Rect::new(lo, hi), *w)
            })
            .collect();
        let restored =
            QuadHist::from_buckets(root, &perturbed, VolumeEstimator::default()).unwrap();
        assert_eq!(restored.num_buckets(), buckets.len());
    }

    #[test]
    fn restore_rejects_off_lattice_buckets() {
        // A box shifted by half a cell is NOT the same cell — the relative
        // tolerance must not degenerate into "accept anything".
        let root = Rect::unit(2);
        let mut buckets = synthetic_buckets(&root, 16);
        let shift = buckets[0].0.width(0) * 0.5;
        let (r, w) = buckets[0].clone();
        let lo: Vec<f64> = r.lo().iter().map(|&c| c + shift).collect();
        let hi: Vec<f64> = r.hi().iter().map(|&c| c + shift).collect();
        buckets[0] = (Rect::new(lo, hi), w);
        let err = QuadHist::from_buckets(root, &buckets, VolumeEstimator::default());
        assert!(matches!(err, Err(SelearnError::CorruptModel { .. })));
    }

    #[test]
    fn restore_rejects_duplicate_cells() {
        let root = Rect::unit(2);
        let mut buckets = synthetic_buckets(&root, 16);
        buckets[1] = buckets[0].clone();
        let err = QuadHist::from_buckets(root, &buckets, VolumeEstimator::default());
        assert!(matches!(err, Err(SelearnError::CorruptModel { .. })));
    }

    #[test]
    fn restore_rejects_dimension_mismatch() {
        let err = QuadHist::from_buckets(
            Rect::unit(2),
            &[(Rect::unit(3), 1.0)],
            VolumeEstimator::default(),
        );
        assert!(matches!(err, Err(SelearnError::CorruptModel { .. })));
    }

    #[test]
    fn restore_round_trips_deep_unit_domain_partition() {
        // sub-cell tolerance must stay relative: a fine partition of the
        // unit cube restores exactly, cell-for-cell.
        let root = Rect::unit(2);
        let buckets = synthetic_buckets(&root, 1000);
        let restored =
            QuadHist::from_buckets(root, &buckets, VolumeEstimator::default()).unwrap();
        let mut got: Vec<String> = restored
            .buckets()
            .iter()
            .map(|(r, w)| format!("{r:?}|{w}"))
            .collect();
        let mut want: Vec<String> = buckets
            .iter()
            .map(|(r, w)| format!("{r:?}|{w}"))
            .collect();
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn figure6_style_refinement_depth() {
        // A query with selectivity 0.2 and τ = 0.026 splits until the
        // per-cell density estimate drops below τ (compare Figure 6).
        let q = tq(vec![0.1, 0.1], vec![0.6, 0.35], 0.2);
        let vol_r = 0.5 * 0.25;
        let qh = QuadHist::fit(
            Rect::unit(2),
            std::slice::from_ref(&q),
            &QuadHistConfig::with_tau(0.026),
        ).unwrap();
        // every leaf must satisfy the stopping rule of Algorithm 2
        for (cell, _) in qh.buckets() {
            let p = q.range.intersection_volume(&cell, &VolumeEstimator::default()) / vol_r * 0.2;
            assert!(p <= 0.026 + 1e-9, "leaf violates stopping rule: p = {p}");
        }
    }
}
