//! Design-matrix assembly shared by the estimators.
//!
//! Every estimator's phase 2 builds a dense design matrix with one row per
//! training query (Equations 7 and 8). Rows are mutually independent —
//! row `i` is a pure function of query `i` and the (fixed) bucket layout —
//! so with the `parallel` feature they are built concurrently and
//! concatenated in query order. The same row-builder closure runs in both
//! the serial and the parallel path, and the parallel path preserves row
//! order exactly, so the assembled matrix is bitwise identical either way.

use crate::estimator::TrainingQuery;
use selearn_solver::DenseMatrix;

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Entry count below which parallel assembly is skipped: a scoped thread
/// spawn costs more than a handful of cheap rows.
#[cfg(feature = "parallel")]
const PAR_ENTRY_THRESHOLD: usize = 2_048;

/// Builds the `queries.len() × cols` design matrix, one `build_row` call
/// per training query. `build_row` must return a row of exactly `cols`
/// entries and must be a pure function of its query (it runs concurrently
/// under the `parallel` feature).
pub(crate) fn assemble_design_matrix<F>(
    queries: &[TrainingQuery],
    cols: usize,
    build_row: F,
) -> DenseMatrix
where
    F: Fn(&TrainingQuery) -> Vec<f64> + Sync,
{
    let _span = selearn_obs::span!("assemble");
    selearn_obs::counter_add("design_matrix_entries", (queries.len() * cols) as u64);
    #[cfg(feature = "parallel")]
    if queries.len() * cols >= PAR_ENTRY_THRESHOLD && rayon::current_num_threads() > 1 {
        let rows: Vec<Vec<f64>> = queries.par_iter().map(&build_row).collect();
        let mut data = Vec::with_capacity(queries.len() * cols);
        for row in &rows {
            assert_eq!(row.len(), cols, "row length mismatch");
            data.extend_from_slice(row);
        }
        return DenseMatrix::from_vec(queries.len(), cols, data);
    }
    let mut a = DenseMatrix::zeros(0, 0);
    for q in queries {
        a.push_row(&build_row(q));
    }
    debug_assert!(queries.is_empty() || a.cols() == cols, "row length mismatch");
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use selearn_geom::Rect;

    fn queries(n: usize) -> Vec<TrainingQuery> {
        (0..n)
            .map(|i| TrainingQuery::new(Rect::unit(2), i as f64 / n as f64))
            .collect()
    }

    #[test]
    fn assembles_rows_in_query_order() {
        let qs = queries(50);
        let a = assemble_design_matrix(&qs, 3, |q| {
            vec![q.selectivity, 2.0 * q.selectivity, 1.0]
        });
        assert_eq!(a.rows(), 50);
        assert_eq!(a.cols(), 3);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(a[(i, 0)], q.selectivity);
            assert_eq!(a[(i, 1)], 2.0 * q.selectivity);
        }
    }

    #[test]
    fn empty_workload_yields_empty_matrix() {
        let a = assemble_design_matrix(&[], 4, |_| vec![0.0; 4]);
        assert_eq!(a.rows(), 0);
    }

    /// Crosses the parallel dispatch threshold and demands bitwise equality
    /// with a hand-rolled serial assembly.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_assembly_matches_serial_bitwise() {
        let qs = queries(600);
        let build = |q: &TrainingQuery| -> Vec<f64> {
            (0..8)
                .map(|j| ((q.selectivity + j as f64) * 0.37).sin())
                .collect()
        };
        let a = assemble_design_matrix(&qs, 8, build);
        let mut want = DenseMatrix::zeros(0, 0);
        for q in &qs {
            want.push_row(&build(q));
        }
        assert_eq!(a, want);
    }
}
