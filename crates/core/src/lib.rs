//! Learned selectivity estimation — the paper's core contribution.
//!
//! This crate implements Section 3 of *"Selectivity Functions of Range
//! Queries are Learnable"* (SIGMOD 2022): generic query-driven estimators
//! that see only a workload of `(range, selectivity)` pairs — never the
//! data — and learn a distribution whose selectivity function minimizes
//! the empirical loss.
//!
//! Every estimator follows the paper's two-phase recipe:
//!
//! 1. **Bucket design** — choose regions (histogram buckets) or points
//!    (discrete-distribution support):
//!    * [`QuadHist`] (Section 3.2): quadtree partitioning guided by query
//!      geometry and selectivity, for low dimensions;
//!    * [`PtsHist`] (Section 3.3): points sampled from query interiors
//!      proportionally to selectivity, for high dimensions;
//!    * [`ArrangementHist`] (Section 3.1): the exact arrangement-based
//!      procedure whose optimality Lemma 3.1 proves.
//! 2. **Weight estimation** ([`weights`]) — solve the simplex-constrained
//!    least-squares program of Equation (8) (or its `L∞` variant,
//!    Section 4.6) for bucket masses.
//!
//! All models implement [`SelectivityEstimator`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The panic-free gate: unwrap/expect are banned outside test code
// (clippy.toml exempts #[cfg(test)]); CI runs clippy with -D warnings.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arrangement_hist;
pub(crate) mod assemble;
pub mod cdf1d;
pub mod error;
pub mod estimator;
pub mod frozen;
pub mod gausshist;
pub mod online;
pub mod persist;
pub mod ptshist;
pub mod quadhist;
pub mod quadtree;
pub mod quantize;
pub mod weights;

pub use arrangement_hist::{ArrangementHist, ArrangementHistConfig};
pub use cdf1d::{Cdf1D, Cdf1DConfig};
pub use error::{check_labels, SelearnError};
pub use estimator::{BoxedEstimator, SelectivityEstimator, SharedEstimator, TrainingQuery};
pub use frozen::FrozenEstimator;
pub use gausshist::{GaussHist, GaussHistConfig};
pub use online::{OnlineQuadHist, OnlineSnapshot};
pub use persist::{
    load_frozen, load_ptshist, load_quadhist, save_ptshist, save_quadhist, PersistError,
};
pub use ptshist::{PtsHist, PtsHistConfig};
pub use quadhist::{QuadHist, QuadHistConfig};
pub use quadtree::QuadTree;
pub use quantize::{
    quantize_ball_key, quantize_ball_key_into, quantize_halfspace_key,
    quantize_halfspace_key_into, quantize_rect_key, quantize_rect_key_into,
};
pub use weights::{estimate_weights, estimate_weights_with_report, Objective, WeightSolver};
