//! The crate-spanning error type for the estimation pipeline.
//!
//! Every fallible public API in `selearn-core` (and the crates layered on
//! top of it) returns [`SelearnError`]. The lower layers keep their own
//! typed errors — [`GeomError`](selearn_geom::GeomError) for geometry,
//! [`SolverError`](selearn_solver::SolverError) for the numerical solvers,
//! [`PersistError`](crate::persist::PersistError) for model (de)serialization
//! — and `SelearnError` wraps each with a `From` impl so `?` composes
//! across the stack while `matches!` still reaches the precise cause.
//!
//! Design rules (see DESIGN.md, "Error handling"):
//!
//! * untrusted input (workload labels, persisted bytes, CSV cells, config
//!   files) → typed `Err`, never a panic;
//! * each variant carries enough context to locate the offending input —
//!   a query index, a CSV row/column, a solver name — without re-running;
//! * an empty workload is *not* an error: estimators fall back to the
//!   uniform distribution, which is the information-free answer.

use std::fmt;

use selearn_geom::GeomError;
use selearn_solver::SolverError;

use crate::persist::PersistError;

/// Errors produced by the selectivity-learning pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum SelearnError {
    /// A geometric primitive rejected its input (NaN coordinate,
    /// inverted rectangle corners, dimension mismatch, …).
    Geom(GeomError),
    /// A numerical solver rejected its input or failed to produce an
    /// optimum.
    Solver(SolverError),
    /// Loading or saving a persisted model failed.
    Persist(PersistError),
    /// An estimator configuration value is out of its documented domain
    /// (`k = 0`, `τ ∉ (0, 1)`, a non-positive bandwidth, …).
    InvalidConfig {
        /// The model or subsystem rejecting the configuration.
        model: &'static str,
        /// Which knob, and what it requires.
        what: &'static str,
    },
    /// A training label (observed selectivity) is NaN or infinite.
    InvalidLabel {
        /// Index of the offending query in the workload.
        query: usize,
        /// The offending selectivity value.
        value: f64,
    },
    /// A training query's range is unusable for this estimator (wrong
    /// dimensionality, non-rectangular where rectangles are required, …).
    UnsupportedQuery {
        /// The estimator rejecting the query.
        model: &'static str,
        /// Index of the offending query in the workload.
        query: usize,
        /// What the estimator requires.
        what: &'static str,
    },
    /// Two runtime quantities that must agree in length did not.
    LengthMismatch {
        /// What was being matched up.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// A reconstructed or deserialized model violates a structural
    /// invariant (leaves that don't tile the root, non-finite weights, …).
    CorruptModel {
        /// Description of the violated invariant.
        what: String,
    },
    /// A resource-guard ceiling was exceeded (e.g. the arrangement cell
    /// bound of `ArrangementHistConfig::max_cells`).
    ResourceExhausted {
        /// The guarded quantity.
        what: &'static str,
        /// The configured ceiling.
        limit: usize,
        /// The value that exceeded it.
        got: usize,
    },
    /// A malformed cell in tabular input (CSV ingestion).
    Csv {
        /// Zero-based data-row index (header excluded).
        row: usize,
        /// Zero-based column index.
        col: usize,
        /// What went wrong with the cell.
        message: String,
    },
    /// A dataset-level ingestion failure (unreadable file, empty input,
    /// ragged rows, header/width mismatch, …) with no single cell to blame.
    Dataset {
        /// What went wrong.
        message: String,
    },
    /// A workload file or generator produced an unusable record.
    Workload {
        /// Index of the offending record.
        record: usize,
        /// What went wrong.
        message: String,
    },
    /// A write-ahead-log segment violates the log's structural invariants
    /// at a point recovery cannot treat as a torn tail (a mid-log CRC
    /// failure is truncated, not errored; this variant is for logical
    /// corruption like an out-of-sequence LSN or a gap between segments).
    WalCorrupt {
        /// Segment file name.
        segment: String,
        /// Byte offset of the offending record within the segment.
        offset: u64,
        /// The violated invariant.
        what: String,
    },
    /// A model checkpoint failed validation (bad CRC, wrong magic,
    /// truncated state, config fingerprint mismatch).
    CheckpointCorrupt {
        /// The checkpoint's generation number.
        generation: u64,
        /// What failed.
        what: String,
    },
    /// The store manifest is unreadable or points at state that does not
    /// exist.
    ManifestCorrupt {
        /// What failed.
        what: String,
    },
    /// A rollback or checkpoint lookup named a generation the store does
    /// not retain.
    UnknownGeneration {
        /// The requested generation.
        requested: u64,
        /// Generations currently retained, ascending.
        retained: Vec<u64>,
    },
}

impl fmt::Display for SelearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelearnError::Geom(e) => write!(f, "geometry error: {e}"),
            SelearnError::Solver(e) => write!(f, "solver error: {e}"),
            SelearnError::Persist(e) => write!(f, "persistence error: {e}"),
            SelearnError::InvalidConfig { model, what } => {
                write!(f, "invalid {model} configuration: {what}")
            }
            SelearnError::InvalidLabel { query, value } => {
                write!(f, "training query {query} has non-finite selectivity {value}")
            }
            SelearnError::UnsupportedQuery { model, query, what } => {
                write!(f, "{model} cannot use training query {query}: {what}")
            }
            SelearnError::LengthMismatch {
                what,
                expected,
                got,
            } => write!(f, "length mismatch in {what}: expected {expected}, got {got}"),
            SelearnError::CorruptModel { what } => write!(f, "corrupt model: {what}"),
            SelearnError::ResourceExhausted { what, limit, got } => {
                write!(f, "{what} exceeded its limit: {got} > {limit}")
            }
            SelearnError::Csv { row, col, message } => {
                write!(f, "csv error at row {row}, column {col}: {message}")
            }
            SelearnError::Dataset { message } => write!(f, "dataset error: {message}"),
            SelearnError::Workload { record, message } => {
                write!(f, "workload record {record}: {message}")
            }
            SelearnError::WalCorrupt {
                segment,
                offset,
                what,
            } => write!(f, "wal corruption in {segment} at byte {offset}: {what}"),
            SelearnError::CheckpointCorrupt { generation, what } => {
                write!(f, "checkpoint generation {generation} is corrupt: {what}")
            }
            SelearnError::ManifestCorrupt { what } => {
                write!(f, "store manifest is corrupt: {what}")
            }
            SelearnError::UnknownGeneration { requested, retained } => write!(
                f,
                "generation {requested} is not retained (have {retained:?})"
            ),
        }
    }
}

impl std::error::Error for SelearnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SelearnError::Geom(e) => Some(e),
            SelearnError::Solver(e) => Some(e),
            SelearnError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for SelearnError {
    fn from(e: GeomError) -> Self {
        SelearnError::Geom(e)
    }
}

impl From<SolverError> for SelearnError {
    fn from(e: SolverError) -> Self {
        SelearnError::Solver(e)
    }
}

impl From<PersistError> for SelearnError {
    fn from(e: PersistError) -> Self {
        SelearnError::Persist(e)
    }
}

impl From<std::io::Error> for SelearnError {
    fn from(e: std::io::Error) -> Self {
        SelearnError::Persist(PersistError::Io(e))
    }
}

/// Rejects the first non-finite training label, with its query index.
///
/// Every estimator's `fit` runs this before touching the workload; it is
/// exported so baseline implementations can apply the same gate.
pub fn check_labels(queries: &[crate::TrainingQuery]) -> Result<(), SelearnError> {
    for (i, q) in queries.iter().enumerate() {
        if !q.selectivity.is_finite() {
            return Err(SelearnError::InvalidLabel {
                query: i,
                value: q.selectivity,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = SelearnError::InvalidLabel {
            query: 7,
            value: f64::NAN,
        };
        let msg = e.to_string();
        assert!(msg.contains('7'), "{msg}");
        assert!(msg.contains("NaN"), "{msg}");

        let e = SelearnError::Csv {
            row: 3,
            col: 1,
            message: "not a number: 'x'".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("row 3") && msg.contains("column 1"), "{msg}");
    }

    #[test]
    fn from_impls_wrap_sources() {
        let g: SelearnError = GeomError::ZeroNormal.into();
        assert!(matches!(g, SelearnError::Geom(GeomError::ZeroNormal)));
        let s: SelearnError = SolverError::EmptyProblem { solver: "fista" }.into();
        assert!(matches!(s, SelearnError::Solver(_)));
        assert!(std::error::Error::source(&s).is_some());
    }
}
