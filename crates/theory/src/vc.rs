//! VC-dimension machinery: exact shattering oracles and empirical bounds.
//!
//! A subset `P ⊆ X` is *shattered* by a range family `R` if every subset
//! `E ⊆ P` is realizable as `P ∩ R` for some `R ∈ R` (Section 2.1). The
//! oracles below decide realizability exactly for the paper's three
//! running range families:
//!
//! * rectangles: `E` is realizable iff the bounding box of `E` contains no
//!   point of `P ∖ E` — the argument behind Figure 2(ii);
//! * halfspaces: realizability is linear separability, decided by an LP
//!   feasibility problem;
//! * balls: lift `x ↦ (x, ‖x‖²)`; `‖x − a‖ ≤ r` becomes the *linear*
//!   condition `2a·x − ‖x‖² ≥ ‖a‖² − r²`, so realizability is again LP
//!   feasibility (in `d + 1` unknowns).

use rand::Rng;
use selearn_geom::Point;
use selearn_solver::{linprog, Constraint, ConstraintOp, LpStatus};

/// Can some axis-aligned rectangle contain exactly the points of `P`
/// indexed by `subset` (a bitmask)?
pub fn rects_can_realize(points: &[Point], subset: u64) -> bool {
    let d = points.first().map_or(0, Point::dim);
    let chosen: Vec<&Point> = mask_iter(points, subset).collect();
    if chosen.is_empty() {
        // an empty rectangle away from all points always works (ranges may
        // sit anywhere in R^d)
        return true;
    }
    // bounding box of the chosen points
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for p in &chosen {
        for i in 0..d {
            lo[i] = lo[i].min(p[i]);
            hi[i] = hi[i].max(p[i]);
        }
    }
    // realizable iff no excluded point falls inside the bounding box
    for (k, p) in points.iter().enumerate() {
        if subset >> k & 1 == 0 {
            let inside = (0..d).all(|i| lo[i] <= p[i] && p[i] <= hi[i]);
            if inside {
                return false;
            }
        }
    }
    true
}

/// Can some halfspace `a · x ≥ b` contain exactly the indexed subset?
/// Decided via LP feasibility with unit margin (scaling freedom makes the
/// margin lossless for strict separability).
pub fn halfspaces_can_realize(points: &[Point], subset: u64) -> bool {
    let d = points.first().map_or(0, Point::dim);
    // unknowns: a⁺, a⁻ (split signs), b⁺, b⁻  →  2d + 2 nonneg variables
    let nvars = 2 * d + 2;
    let mut cons = Vec::with_capacity(points.len());
    for (k, p) in points.iter().enumerate() {
        let mut row = Vec::with_capacity(nvars);
        for i in 0..d {
            row.push(p[i]);
            row.push(-p[i]);
        }
        row.push(-1.0); // −b⁺
        row.push(1.0); // +b⁻
        if subset >> k & 1 == 1 {
            cons.push(Constraint::new(row, ConstraintOp::Ge, 1.0));
        } else {
            cons.push(Constraint::new(row, ConstraintOp::Le, -1.0));
        }
    }
    linprog(&vec![0.0; nvars], &cons).is_ok_and(|r| r.status == LpStatus::Optimal)
}

/// Can some Euclidean ball contain exactly the indexed subset? Uses the
/// paraboloid lifting to reduce to LP feasibility.
pub fn balls_can_realize(points: &[Point], subset: u64) -> bool {
    let d = points.first().map_or(0, Point::dim);
    // Condition: 2a·p − ‖p‖² ≥ c for p ∈ E and ≤ c − margin otherwise,
    // unknowns a (split), c (split) → 2d + 2 nonneg variables.
    let nvars = 2 * d + 2;
    let mut cons = Vec::with_capacity(points.len());
    for (k, p) in points.iter().enumerate() {
        let norm_sq: f64 = p.coords().iter().map(|x| x * x).sum();
        let mut row = Vec::with_capacity(nvars);
        for i in 0..d {
            row.push(2.0 * p[i]);
            row.push(-2.0 * p[i]);
        }
        row.push(-1.0); // −c⁺
        row.push(1.0); // +c⁻
        if subset >> k & 1 == 1 {
            cons.push(Constraint::new(row, ConstraintOp::Ge, norm_sq + 1.0));
        } else {
            cons.push(Constraint::new(row, ConstraintOp::Le, norm_sq - 1.0));
        }
    }
    linprog(&vec![0.0; nvars], &cons).is_ok_and(|r| r.status == LpStatus::Optimal)
}

/// Is `points` shattered by the family whose realizability oracle is
/// `can_realize`? Checks all `2^|P|` subsets.
///
/// # Panics
/// Panics for more than 63 points (bitmask width).
pub fn is_shattered_by<F: Fn(&[Point], u64) -> bool>(points: &[Point], can_realize: F) -> bool {
    assert!(points.len() < 64, "too many points for bitmask shattering");
    let n = points.len() as u32;
    // One bump per configuration (2^n oracle calls), so the counter stays
    // off the inner subset loop.
    selearn_obs::counter_add("vc_shatter_checks", 1u64 << n);
    (0..(1u64 << n)).all(|subset| can_realize(points, subset))
}

/// Randomized empirical **lower bound** on the VC dimension: searches
/// `attempts` random point configurations per candidate size `k` (points
/// drawn from `[0,1]^d`), returning the largest `k ≤ max_k` for which a
/// shattered configuration was found.
pub fn empirical_vc_lower_bound<F, R>(
    dim: usize,
    max_k: usize,
    attempts: usize,
    can_realize: F,
    rng: &mut R,
) -> usize
where
    F: Fn(&[Point], u64) -> bool + Copy,
    R: Rng + ?Sized,
{
    let mut best = 0;
    for k in 1..=max_k {
        let mut found = false;
        for _ in 0..attempts {
            let pts: Vec<Point> = (0..k)
                .map(|_| Point::new((0..dim).map(|_| rng.gen()).collect()))
                .collect();
            if is_shattered_by(&pts, can_realize) {
                found = true;
                break;
            }
        }
        if found {
            best = k;
        } else {
            break; // monotone in practice: stop at first failing size
        }
    }
    best
}

/// `k` points in convex position (on the unit circle, scaled into
/// `[0,1]²`). Any subset of points in convex position is the vertex set of
/// a convex polygon containing exactly that subset, so convex polygons
/// shatter these points for every `k` — the `VC-dim = ∞` example of
/// Section 2.2 (cf. Figure 5).
pub fn shattered_circle_points(k: usize) -> Vec<Point> {
    (0..k)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / k as f64;
            Point::new(vec![0.5 + 0.45 * theta.cos(), 0.5 + 0.45 * theta.sin()])
        })
        .collect()
}

fn mask_iter(points: &[Point], subset: u64) -> impl Iterator<Item = &Point> {
    points
        .iter()
        .enumerate()
        .filter(move |(k, _)| subset >> k & 1 == 1)
        .map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pt(x: f64, y: f64) -> Point {
        Point::new(vec![x, y])
    }

    /// The diamond configuration of Figure 2(i): 4 points shattered by
    /// rectangles.
    fn diamond() -> Vec<Point> {
        vec![pt(0.5, 0.0), pt(1.0, 0.5), pt(0.5, 1.0), pt(0.0, 0.5)]
    }

    #[test]
    fn rects_shatter_diamond_figure2() {
        assert!(is_shattered_by(&diamond(), rects_can_realize));
    }

    #[test]
    fn rects_cannot_shatter_five_points_figure2() {
        // Figure 2(ii): any 5 points in R² have one point inside the
        // bounding box of the 4 extreme ones.
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..50 {
            let pts: Vec<Point> = (0..5)
                .map(|_| pt(rng.gen(), rng.gen()))
                .collect();
            assert!(
                !is_shattered_by(&pts, rects_can_realize),
                "5 points shattered by rectangles: {pts:?}"
            );
        }
    }

    #[test]
    fn rect_realizability_counterexample() {
        // middle point inside the bbox of the two outer ones
        let pts = vec![pt(0.0, 0.0), pt(0.5, 0.5), pt(1.0, 1.0)];
        // subset {0, 2} is NOT realizable (bbox contains index 1)
        assert!(!rects_can_realize(&pts, 0b101));
        // subset {0, 1} is realizable
        assert!(rects_can_realize(&pts, 0b011));
        assert!(rects_can_realize(&pts, 0b000));
        assert!(rects_can_realize(&pts, 0b111));
    }

    #[test]
    fn halfspaces_shatter_three_points_2d() {
        // VC-dim of halfspaces in R² is 3: a triangle is shattered.
        let pts = vec![pt(0.1, 0.1), pt(0.9, 0.1), pt(0.5, 0.9)];
        assert!(is_shattered_by(&pts, halfspaces_can_realize));
    }

    #[test]
    fn halfspaces_cannot_shatter_xor() {
        let pts = vec![pt(0.0, 0.0), pt(1.0, 1.0), pt(0.0, 1.0), pt(1.0, 0.0)];
        // the XOR split {diag} vs {anti-diag} is not linearly separable
        assert!(!halfspaces_can_realize(&pts, 0b0011));
        assert!(!is_shattered_by(&pts, halfspaces_can_realize));
    }

    #[test]
    fn halfspaces_cannot_shatter_collinear_middle() {
        let pts = vec![pt(0.0, 0.0), pt(0.5, 0.5), pt(1.0, 1.0)];
        // {ends} without the middle is not separable
        assert!(!halfspaces_can_realize(&pts, 0b101));
    }

    #[test]
    fn balls_shatter_triangle_but_not_square_2d() {
        // Discs in the plane have VC-dimension exactly 3 (the paper's
        // d + 2 = 4 is an upper bound): a triangle is shattered, but the
        // diagonal 2-2 split of 4 points in convex position never is.
        let tri = vec![pt(0.1, 0.1), pt(0.9, 0.1), pt(0.5, 0.9)];
        assert!(is_shattered_by(&tri, balls_can_realize));
        let square = vec![pt(0.2, 0.2), pt(0.8, 0.25), pt(0.75, 0.8), pt(0.3, 0.7)];
        assert!(!is_shattered_by(&square, balls_can_realize));
    }

    #[test]
    fn empirical_vc_matches_known_bounds_balls_2d() {
        let mut rng = StdRng::seed_from_u64(9);
        let vc = empirical_vc_lower_bound(2, 5, 300, balls_can_realize, &mut rng);
        assert_eq!(vc, 3, "disc VC-dim in 2D is exactly 3");
    }

    #[test]
    fn balls_realize_single_and_complement() {
        let pts = vec![pt(0.1, 0.1), pt(0.9, 0.9)];
        assert!(balls_can_realize(&pts, 0b01));
        assert!(balls_can_realize(&pts, 0b10));
        assert!(balls_can_realize(&pts, 0b11));
        assert!(balls_can_realize(&pts, 0b00));
    }

    #[test]
    fn empirical_vc_matches_known_bounds_rect_2d() {
        let mut rng = StdRng::seed_from_u64(7);
        let vc = empirical_vc_lower_bound(2, 6, 300, rects_can_realize, &mut rng);
        assert_eq!(vc, 4, "rect VC-dim in 2D is exactly 4 (Figure 2)");
    }

    #[test]
    fn empirical_vc_matches_known_bounds_halfspace_2d() {
        let mut rng = StdRng::seed_from_u64(8);
        let vc = empirical_vc_lower_bound(2, 5, 300, halfspaces_can_realize, &mut rng);
        assert_eq!(vc, 3, "halfspace VC-dim in 2D is d + 1 = 3");
    }

    #[test]
    fn circle_points_convex_position() {
        let pts = shattered_circle_points(8);
        assert_eq!(pts.len(), 8);
        // all inside the unit square
        assert!(pts.iter().all(|p| p.in_unit_cube()));
        // convex position: every point is outside the convex hull of the
        // others ⇔ every singleton is halfspace-realizable
        for k in 0..8u64 {
            assert!(halfspaces_can_realize(&pts, 1 << k));
        }
    }

    #[test]
    fn circle_points_shattered_by_convex_polygons() {
        // "Realizing" E with a convex polygon = taking the convex hull of
        // E; valid iff no excluded point is in that hull. For points in
        // convex position this always holds; verify via LP (a point is
        // outside a hull iff separable from it).
        let pts = shattered_circle_points(6);
        for subset in 0u64..(1 << 6) {
            for (k, _) in pts.iter().enumerate() {
                if subset >> k & 1 == 0 {
                    // excluded point must be separable from the chosen set
                    let mut idx: Vec<usize> =
                        (0..6).filter(|i| subset >> i & 1 == 1).collect();
                    idx.push(k);
                    let sub: Vec<Point> = idx.iter().map(|&i| pts[i].clone()).collect();
                    let mask = (1u64 << (idx.len() - 1)) - 1; // all but last
                    assert!(
                        halfspaces_can_realize(&sub, mask),
                        "point {k} inside hull of subset {subset:b}"
                    );
                }
            }
        }
    }
}
