//! Dual range spaces and low-crossing orderings (Lemma 2.4).
//!
//! The heart of the paper's upper-bound proof: order the γ-shattered
//! ranges `R_1, …, R_k` so that **every point crosses few consecutive
//! pairs** — `x` crosses `(R_i, R_{i+1})` when `x ∈ R_i ⊕ R_{i+1}`
//! (symmetric difference). Chazelle–Welzl guarantee an ordering with
//! `O(k^{1−1/λ} log k)` crossings per point when the dual range space has
//! VC-dimension `λ`. Combined with Lemma 2.3's lower bound `γ(k−1)` on the
//! *expected* crossings under a shattering distribution, this pins down
//! `|T_j|` (Lemma 2.5).
//!
//! This module provides the crossing-number accounting over a finite
//! evaluation point set and a greedy nearest-neighbor ordering heuristic
//! that empirically achieves the sublinear crossing growth (exercised by
//! the `theory_fat` experiment and the quadtree bench).

use selearn_geom::{Point, Range, RangeQuery};

/// Number of consecutive pairs `(R_i, R_{i+1})` of `ordering` crossed by
/// the point `x`.
pub fn crossing_number(ranges: &[Range], ordering: &[usize], x: &Point) -> usize {
    ordering
        .windows(2)
        .filter(|w| ranges[w[0]].contains(x) != ranges[w[1]].contains(x))
        .count()
}

/// Maximum crossing number over an evaluation point set — the quantity
/// Lemma 2.4 bounds by `O(k^{1−1/λ} log k)`.
pub fn max_point_crossings(ranges: &[Range], ordering: &[usize], points: &[Point]) -> usize {
    points
        .iter()
        .map(|x| crossing_number(ranges, ordering, x))
        .max()
        .unwrap_or(0)
}

/// Greedy low-crossing ordering: start from range 0 and repeatedly append
/// the unvisited range with the smallest estimated symmetric difference
/// from the current one, measured by membership disagreements over
/// `points`. A practical stand-in for the Chazelle–Welzl iterative
/// reweighting construction.
pub fn greedy_low_crossing_ordering(ranges: &[Range], points: &[Point]) -> Vec<usize> {
    let k = ranges.len();
    if k == 0 {
        return Vec::new();
    }
    // membership bitmaps
    let memb: Vec<Vec<bool>> = ranges
        .iter()
        .map(|r| points.iter().map(|p| r.contains(p)).collect())
        .collect();
    let dist = |a: usize, b: usize| -> usize {
        memb[a]
            .iter()
            .zip(&memb[b])
            .filter(|(x, y)| x != y)
            .count()
    };
    let mut order = Vec::with_capacity(k);
    let mut used = vec![false; k];
    let mut cur = 0usize;
    order.push(cur);
    used[cur] = true;
    for _ in 1..k {
        // one range is consumed per iteration, so an unvisited one always
        // remains; break instead of trusting that across refactors
        let Some(next) = (0..k)
            .filter(|&j| !used[j])
            .min_by_key(|&j| (dist(cur, j), j))
        else {
            break;
        };
        used[next] = true;
        order.push(next);
        cur = next;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use selearn_geom::Rect;

    fn pt(x: f64, y: f64) -> Point {
        Point::new(vec![x, y])
    }

    fn nested_rects(k: usize) -> Vec<Range> {
        // R_i = [0, (i+1)/k]² — a nested chain.
        (0..k)
            .map(|i| {
                let t = (i + 1) as f64 / k as f64;
                Rect::new(vec![0.0, 0.0], vec![t, t]).into()
            })
            .collect()
    }

    #[test]
    fn crossing_number_nested_chain() {
        let ranges = nested_rects(4);
        let order: Vec<usize> = (0..4).collect();
        // a point in the innermost ring crosses 0 pairs (in all ranges)
        assert_eq!(crossing_number(&ranges, &order, &pt(0.1, 0.1)), 0);
        // a point between R_0 and R_1 crosses exactly one pair
        assert_eq!(crossing_number(&ranges, &order, &pt(0.4, 0.4)), 1);
        // in the outermost ring only: one crossing (R_2 → R_3)
        assert_eq!(crossing_number(&ranges, &order, &pt(0.99, 0.99)), 1);
        // outside every range: 0 crossings
        assert_eq!(crossing_number(&ranges, &order, &pt(1.5, 1.5)), 0);
    }

    #[test]
    fn nested_chain_in_sorted_order_has_one_crossing_max() {
        let ranges = nested_rects(8);
        let order: Vec<usize> = (0..8).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<Point> = (0..500).map(|_| pt(rng.gen(), rng.gen())).collect();
        assert!(max_point_crossings(&ranges, &order, &pts) <= 1);
    }

    #[test]
    fn bad_ordering_has_more_crossings() {
        let ranges = nested_rects(8);
        // alternating order maximizes boundary crossings for mid points
        let bad = vec![0usize, 7, 1, 6, 2, 5, 3, 4];
        let good: Vec<usize> = (0..8).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let pts: Vec<Point> = (0..500).map(|_| pt(rng.gen(), rng.gen())).collect();
        assert!(
            max_point_crossings(&ranges, &bad, &pts)
                > max_point_crossings(&ranges, &good, &pts)
        );
    }

    #[test]
    fn greedy_recovers_nested_order() {
        let ranges = nested_rects(10);
        let mut rng = StdRng::seed_from_u64(5);
        let pts: Vec<Point> = (0..800).map(|_| pt(rng.gen(), rng.gen())).collect();
        let order = greedy_low_crossing_ordering(&ranges, &pts);
        // the greedy ordering of a nested chain must be monotone
        let m = max_point_crossings(&ranges, &order, &pts);
        assert!(m <= 1, "greedy ordering yields {m} crossings");
    }

    #[test]
    fn greedy_beats_random_on_random_rects() {
        let mut rng = StdRng::seed_from_u64(6);
        let ranges: Vec<Range> = (0..24)
            .map(|_| {
                let cx: f64 = rng.gen();
                let cy: f64 = rng.gen();
                let w: f64 = rng.gen::<f64>() * 0.5;
                Rect::new(
                    vec![(cx - w).max(0.0), (cy - w).max(0.0)],
                    vec![(cx + w).min(1.0), (cy + w).min(1.0)],
                )
                .into()
            })
            .collect();
        let pts: Vec<Point> = (0..600).map(|_| pt(rng.gen(), rng.gen())).collect();
        let greedy = greedy_low_crossing_ordering(&ranges, &pts);
        let identity: Vec<usize> = (0..ranges.len()).collect();
        let g = max_point_crossings(&ranges, &greedy, &pts);
        let r = max_point_crossings(&ranges, &identity, &pts);
        assert!(g <= r, "greedy {g} worse than identity {r}");
    }

    #[test]
    fn empty_and_singleton_orderings() {
        assert!(greedy_low_crossing_ordering(&[], &[]).is_empty());
        let one: Vec<Range> = vec![Rect::unit(2).into()];
        let order = greedy_low_crossing_ordering(&one, &[pt(0.5, 0.5)]);
        assert_eq!(order, vec![0]);
        assert_eq!(max_point_crossings(&one, &order, &[pt(0.5, 0.5)]), 0);
    }

    #[test]
    fn ordering_is_a_permutation() {
        let ranges = nested_rects(6);
        let mut rng = StdRng::seed_from_u64(8);
        let pts: Vec<Point> = (0..100).map(|_| pt(rng.gen(), rng.gen())).collect();
        let mut order = greedy_low_crossing_ordering(&ranges, &pts);
        order.sort_unstable();
        assert_eq!(order, (0..6).collect::<Vec<_>>());
    }
}
