//! γ-fat-shattering of selectivity-function families (Section 2.3).
//!
//! A set of query ranges `T` is γ-shattered by the selectivity family `S`
//! if there is a witness `σ : T → [0,1]` such that for every `E ⊆ T` some
//! `s_D ∈ S` satisfies Equation (2):
//!
//! ```text
//! s_D(R) ≥ σ(R) + γ   for R ∈ E,
//! s_D(R) ≤ σ(R) − γ   for R ∈ T ∖ E.
//! ```
//!
//! [`is_gamma_shattered`] checks this over a finite family of candidate
//! distributions; [`delta_distribution_fat_construction`] builds the
//! delta-distribution witnesses of Lemma 2.7, which show that infinite
//! VC-dimension (e.g. convex polygons, Figure 5) forces infinite
//! fat-shattering dimension — the non-learnability half of Theorem 2.1.

use selearn_geom::{Point, Range, RangeQuery};

/// A finitely supported distribution on `X` — the hypothesis family used
/// by the discrete variants in Section 3 and by Lemma 2.7's proof.
#[derive(Clone, Debug)]
pub struct DiscreteDistribution {
    atoms: Vec<(Point, f64)>,
}

impl DiscreteDistribution {
    /// Creates a distribution from weighted atoms (weights must sum to 1).
    ///
    /// # Panics
    /// Panics if weights are negative or do not sum to 1 (±1e-9).
    pub fn new(atoms: Vec<(Point, f64)>) -> Self {
        let total: f64 = atoms.iter().map(|(_, w)| *w).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "weights sum to {total}, not 1"
        );
        assert!(atoms.iter().all(|(_, w)| *w >= 0.0), "negative weight");
        Self { atoms }
    }

    /// The unit point mass at `p` (Lemma 2.7's delta function).
    pub fn delta(p: Point) -> Self {
        Self {
            atoms: vec![(p, 1.0)],
        }
    }

    /// Selectivity `s_D(R) = Pr_{x∼D}[x ∈ R]`.
    pub fn selectivity(&self, range: &Range) -> f64 {
        self.atoms
            .iter()
            .filter(|(p, _)| range.contains(p))
            .map(|(_, w)| *w)
            .sum()
    }

    /// The weighted atoms.
    pub fn atoms(&self) -> &[(Point, f64)] {
        &self.atoms
    }
}

/// Checks whether `ranges` is γ-shattered (Equation 2) with witness
/// `sigma`, where for each subset `E` a realizing distribution may be
/// chosen from `candidates`. Exhaustive over all `2^|T|` subsets.
///
/// # Panics
/// Panics for more than 63 ranges.
pub fn is_gamma_shattered(
    ranges: &[Range],
    sigma: &[f64],
    gamma: f64,
    candidates: &[DiscreteDistribution],
) -> bool {
    assert_eq!(ranges.len(), sigma.len(), "witness length mismatch");
    assert!(ranges.len() < 64, "too many ranges for bitmask enumeration");
    let n = ranges.len() as u32;
    'subsets: for subset in 0u64..(1 << n) {
        'candidates: for d in candidates {
            for (k, r) in ranges.iter().enumerate() {
                let s = d.selectivity(r);
                let ok = if subset >> k & 1 == 1 {
                    s >= sigma[k] + gamma - 1e-12
                } else {
                    s <= sigma[k] - gamma + 1e-12
                };
                if !ok {
                    continue 'candidates;
                }
            }
            continue 'subsets; // this candidate realizes the subset
        }
        return false; // no candidate realizes this subset
    }
    true
}

/// Lemma 2.7's construction, instantiated for convex polygons over points
/// in convex position: builds `k` ranges (as semi-algebraic conjunctions of
/// halfspaces forming convex polygons), the witness `σ ≡ 1/2`, and one
/// delta distribution per subset, such that the ranges are γ-shattered for
/// every `γ < 1/2`.
///
/// Returns `(ranges, sigma, candidates)` ready for [`is_gamma_shattered`].
pub fn delta_distribution_fat_construction(
    k: usize,
) -> (Vec<Range>, Vec<f64>, Vec<DiscreteDistribution>) {
    assert!((1..16).contains(&k), "construction sized for small k");
    // Points x_E indexed by subsets E ⊆ [k]: place 2^k points on a circle.
    let m = 1usize << k;
    let points: Vec<Point> = (0..m)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / m as f64;
            Point::new(vec![0.5 + 0.45 * theta.cos(), 0.5 + 0.45 * theta.sin()])
        })
        .collect();
    // Range R_j = convex hull of the points x_E with j ∈ E. Since every
    // point set on a circle is in convex position, the hull contains
    // exactly those points. Represent the hull as the intersection of the
    // supporting halfplanes of consecutive hull vertices.
    let ranges: Vec<Range> = (0..k)
        .map(|j| {
            let members: Vec<&Point> = points
                .iter()
                .enumerate()
                .filter(|(e, _)| e >> j & 1 == 1)
                .map(|(_, p)| p)
                .collect();
            convex_hull_range(&members)
        })
        .collect();
    let sigma = vec![0.5; k];
    let candidates: Vec<DiscreteDistribution> = points
        .into_iter()
        .map(DiscreteDistribution::delta)
        .collect();
    (ranges, sigma, candidates)
}

/// A convex polygon as a semi-algebraic range: the intersection of the
/// supporting halfplanes of its hull edges. Points must be in convex
/// position in the order given around a circle subset (we sort by angle
/// around the centroid to be safe).
fn convex_hull_range(members: &[&Point]) -> Range {
    use selearn_geom::{Polynomial, SemiAlgebraicSet};
    assert!(!members.is_empty(), "polygon needs at least one vertex");
    if members.len() == 1 {
        // degenerate polygon = a single point: tiny disc around it
        let p = members[0];
        return Range::SemiAlgebraic {
            set: SemiAlgebraicSet::nonneg(Polynomial::ball(p.coords(), 1e-6)),
            dim: 2,
        };
    }
    // order by angle around the centroid
    let cx = members.iter().map(|p| p[0]).sum::<f64>() / members.len() as f64;
    let cy = members.iter().map(|p| p[1]).sum::<f64>() / members.len() as f64;
    let mut ordered: Vec<&Point> = members.to_vec();
    ordered.sort_by(|a, b| {
        let ta = (a[1] - cy).atan2(a[0] - cx);
        let tb = (b[1] - cy).atan2(b[0] - cx);
        ta.total_cmp(&tb)
    });
    let mut atoms = Vec::with_capacity(ordered.len());
    let n = ordered.len();
    for i in 0..n {
        let a = ordered[i];
        let b = ordered[(i + 1) % n];
        if n == 2 && i == 1 {
            break; // a segment has a single supporting line pair handled below
        }
        // inward normal of edge a→b for counterclockwise order: (-dy, dx)
        let (dx, dy) = (b[0] - a[0], b[1] - a[1]);
        let (nx, ny) = (-dy, dx);
        let off = nx * a[0] + ny * a[1];
        // {x : n·x ≥ off − tiny} with slack so vertices stay inside
        atoms.push(SemiAlgebraicSet::nonneg(Polynomial::linear(
            &[nx, ny],
            off - 1e-9,
        )));
    }
    if n == 2 {
        // segment: intersect two opposite halfplane pairs around the line
        let (a, b) = (ordered[0], ordered[1]);
        let (dx, dy) = (b[0] - a[0], b[1] - a[1]);
        // thin band around the segment direction
        for (nx, ny) in [(-dy, dx), (dy, -dx)] {
            let off = nx * a[0] + ny * a[1];
            atoms.push(SemiAlgebraicSet::nonneg(Polynomial::linear(
                &[nx, ny],
                off - 1e-6,
            )));
        }
        // and cap the ends
        for (p, sgn) in [(a, 1.0), (b, -1.0)] {
            let off = sgn * (dx * p[0] + dy * p[1]);
            atoms.push(SemiAlgebraicSet::nonneg(Polynomial::linear(
                &[sgn * dx, sgn * dy],
                off - 1e-6,
            )));
        }
    }
    Range::SemiAlgebraic {
        set: SemiAlgebraicSet::And(atoms),
        dim: 2,
    }
}

/// Randomized **lower bound** on the γ-fat-shattering dimension of the
/// selectivity family induced by `candidates` over the range pool
/// `ranges`: searches `attempts` random size-`k` subsets per candidate
/// size `k ≤ max_k` (with per-range median witnesses) and returns the
/// largest `k` for which a γ-shattered subset was found.
///
/// This is the empirical companion of Lemma 2.6: for range classes of
/// finite VC-dimension the returned bound stays bounded as the pool
/// grows, while for convex polygons (Lemma 2.7's construction) it grows
/// with `k` without limit.
pub fn empirical_fat_lower_bound<R: rand::Rng + ?Sized>(
    ranges: &[Range],
    candidates: &[DiscreteDistribution],
    gamma: f64,
    max_k: usize,
    attempts: usize,
    rng: &mut R,
) -> usize {
    assert!(gamma > 0.0 && gamma < 0.5, "gamma must be in (0, 1/2)");
    // Witness σ(R) = midrange of the achievable selectivities: the value
    // that leaves the most room on both sides of Equation (2).
    let witness: Vec<f64> = ranges
        .iter()
        .map(|r| {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for d in candidates {
                let s = d.selectivity(r);
                lo = lo.min(s);
                hi = hi.max(s);
            }
            if lo > hi {
                0.5
            } else {
                0.5 * (lo + hi)
            }
        })
        .collect();
    let mut best = 0;
    for k in 1..=max_k.min(ranges.len()) {
        let mut found = false;
        for _ in 0..attempts {
            // random k-subset of the pool
            let mut idx: Vec<usize> = (0..ranges.len()).collect();
            for i in 0..k {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(k);
            let sub: Vec<Range> = idx.iter().map(|&i| ranges[i].clone()).collect();
            let sigma: Vec<f64> = idx.iter().map(|&i| witness[i]).collect();
            if is_gamma_shattered(&sub, &sigma, gamma, candidates) {
                found = true;
                break;
            }
        }
        if found {
            best = k;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use selearn_geom::Rect;

    #[test]
    fn discrete_distribution_selectivity() {
        let d = DiscreteDistribution::new(vec![
            (Point::new(vec![0.25, 0.25]), 0.6),
            (Point::new(vec![0.75, 0.75]), 0.4),
        ]);
        let left: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]).into();
        assert!((d.selectivity(&left) - 0.6).abs() < 1e-12);
        let all: Range = Rect::unit(2).into();
        assert!((d.selectivity(&all) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delta_distribution() {
        let d = DiscreteDistribution::delta(Point::new(vec![0.1, 0.1]));
        let r: Range = Rect::new(vec![0.0, 0.0], vec![0.2, 0.2]).into();
        assert_eq!(d.selectivity(&r), 1.0);
        let far: Range = Rect::new(vec![0.5, 0.5], vec![1.0, 1.0]).into();
        assert_eq!(d.selectivity(&far), 0.0);
    }

    #[test]
    fn two_rects_gamma_shattered_by_four_deltas() {
        // Figure 4-style example with two disjoint boxes.
        let r1: Range = Rect::new(vec![0.0, 0.0], vec![0.4, 1.0]).into();
        let r2: Range = Rect::new(vec![0.6, 0.0], vec![1.0, 1.0]).into();
        let ranges = vec![r1, r2];
        let sigma = vec![0.5, 0.5];
        // candidates: point masses covering each of the 4 subset patterns
        let candidates = vec![
            // in neither (between the boxes)
            DiscreteDistribution::delta(Point::new(vec![0.5, 0.5])),
            // in r1 only
            DiscreteDistribution::delta(Point::new(vec![0.2, 0.5])),
            // in r2 only
            DiscreteDistribution::delta(Point::new(vec![0.8, 0.5])),
            // in both: impossible for disjoint boxes — use a split mass
            DiscreteDistribution::new(vec![
                (Point::new(vec![0.2, 0.5]), 0.5),
                (Point::new(vec![0.8, 0.5]), 0.5),
            ]),
        ];
        // split-mass candidate gives s = 0.5 on both, which does NOT exceed
        // σ + γ; so for γ < 1/2 the "both" subset fails with these
        // candidates. Use a candidate with full mass inside the union via
        // overlap... disjoint boxes can't have s = 1 on both from a delta.
        // Hence shattering must FAIL at γ = 0.4:
        assert!(!is_gamma_shattered(&ranges, &sigma, 0.4, &candidates));
        // but overlapping boxes succeed:
        let r3: Range = Rect::new(vec![0.0, 0.0], vec![0.6, 1.0]).into();
        let r4: Range = Rect::new(vec![0.4, 0.0], vec![1.0, 1.0]).into();
        let ranges2 = vec![r3, r4];
        let candidates2 = vec![
            DiscreteDistribution::delta(Point::new(vec![0.5, 1.5])), // outside both
            DiscreteDistribution::delta(Point::new(vec![0.2, 0.5])), // r3 only
            DiscreteDistribution::delta(Point::new(vec![0.8, 0.5])), // r4 only
            DiscreteDistribution::delta(Point::new(vec![0.5, 0.5])), // both
        ];
        assert!(is_gamma_shattered(&ranges2, &sigma, 0.49, &candidates2));
    }

    #[test]
    fn lemma_2_7_construction_shatters() {
        // Convex polygons: the delta-distribution construction γ-shatters
        // k ranges for any γ < 1/2 — demonstrating fat dimension ≥ k for
        // every k, i.e. fat = ∞ (Lemma 2.7 / Figure 5).
        for k in 1..=3 {
            let (ranges, sigma, candidates) = delta_distribution_fat_construction(k);
            assert_eq!(ranges.len(), k);
            assert!(
                is_gamma_shattered(&ranges, &sigma, 0.49, &candidates),
                "construction failed to γ-shatter at k = {k}"
            );
        }
    }

    #[test]
    fn shattering_fails_with_insufficient_candidates() {
        let r1: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 1.0]).into();
        let ranges = vec![r1];
        let sigma = vec![0.5];
        // only one candidate: can't realize both E = {} and E = {R}
        let candidates = vec![DiscreteDistribution::delta(Point::new(vec![0.25, 0.5]))];
        assert!(!is_gamma_shattered(&ranges, &sigma, 0.3, &candidates));
    }

    #[test]
    #[should_panic(expected = "weights sum")]
    fn invalid_distribution_panics() {
        let _ = DiscreteDistribution::new(vec![(Point::new(vec![0.0]), 0.5)]);
    }

    #[test]
    fn empirical_fat_search_on_grid_rects() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // pool: the four quadrant boxes; candidates: deltas on a 4×4 grid.
        let ranges: Vec<Range> = vec![
            Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]).into(),
            Rect::new(vec![0.5, 0.0], vec![1.0, 0.5]).into(),
            Rect::new(vec![0.0, 0.5], vec![0.5, 1.0]).into(),
            Rect::new(vec![0.5, 0.5], vec![1.0, 1.0]).into(),
        ];
        let mut candidates = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                candidates.push(DiscreteDistribution::delta(Point::new(vec![
                    0.125 + 0.25 * i as f64,
                    0.125 + 0.25 * j as f64,
                ])));
            }
        }
        // also mixed-mass candidates so multi-range subsets can be realized
        for i in 0..4 {
            for j in (i + 1)..4 {
                candidates.push(DiscreteDistribution::new(vec![
                    (Point::new(vec![0.25 * i as f64 + 0.1, 0.25]), 0.5),
                    (Point::new(vec![0.25 * j as f64 + 0.1, 0.75]), 0.5),
                ]));
            }
        }
        let mut rng = StdRng::seed_from_u64(3);
        // disjoint quadrants can't be jointly pushed above σ+γ for γ near
        // 1/2 with a single delta, but singletons always can
        let k = empirical_fat_lower_bound(&ranges, &candidates, 0.45, 4, 60, &mut rng);
        assert!(k >= 1, "at least singletons are shattered, got {k}");
        assert!(k <= 2, "disjoint quadrants cannot be 0.45-shattered deeply");
    }

    #[test]
    fn empirical_fat_grows_for_polygon_construction() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Lemma 2.7: the polygon construction is γ-shattered at every k.
        for k in 1..=3usize {
            let (ranges, _, candidates) = delta_distribution_fat_construction(k);
            let mut rng = StdRng::seed_from_u64(5);
            let found =
                empirical_fat_lower_bound(&ranges, &candidates, 0.49, k, 40, &mut rng);
            assert_eq!(found, k, "construction of size {k} must fully shatter");
        }
    }
}
