//! Learning-theory toolkit for Section 2 of the paper.
//!
//! The paper's theoretical core (Theorem 2.1) relates three quantities:
//!
//! 1. the **VC-dimension** of the range space `Σ = (X, R)` — [`vc`]
//!    provides exact shattering oracles for rectangles, halfspaces and
//!    balls over finite point sets, plus an empirical VC-dimension search
//!    and the construction showing convex polygons shatter arbitrarily
//!    large sets (`VC = ∞`);
//! 2. the **γ-fat-shattering dimension** of the selectivity-function
//!    family `S_{Σ,D}` — [`fat`] implements the γ-shattering test of
//!    Equation (2) and Lemma 2.7's delta-distribution construction;
//! 3. the **sample complexity** `n₀(ε, δ)` — [`bounds`] exposes the
//!    Bartlett–Long bound and the paper's `Õ(1/ε^{λ+3})` training sizes.
//!
//! [`dual`] provides the dual-range-space machinery behind Lemma 2.4:
//! crossing numbers of query orderings, with a greedy low-crossing
//! ordering heuristic in the spirit of Chazelle–Welzl.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The panic-free gate: unwrap/expect are banned outside test code
// (clippy.toml exempts #[cfg(test)]); CI runs clippy with -D warnings.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bounds;
pub mod dual;
pub mod fat;
pub mod vc;

pub use bounds::{bartlett_long_n0, fat_shattering_upper_bound, training_set_size};
pub use dual::{crossing_number, greedy_low_crossing_ordering, max_point_crossings};
pub use fat::{
    delta_distribution_fat_construction, empirical_fat_lower_bound, is_gamma_shattered,
    DiscreteDistribution,
};
pub use vc::{
    balls_can_realize, empirical_vc_lower_bound, halfspaces_can_realize, is_shattered_by,
    rects_can_realize, shattered_circle_points,
};
