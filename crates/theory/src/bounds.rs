//! Sample-complexity calculators (Theorem 2.1 and its ingredients).
//!
//! The chain of bounds proved in Section 2.3:
//!
//! 1. Lemma 2.6: if `VC-dim(Σ) = λ`, then
//!    `fat_S(γ) = Õ(1/γ^{λ+1})` — concretely
//!    `fat ≤ ⌈1/γ⌉ · O((1/γ · log 1/γ)^λ)`;
//! 2. Bartlett–Long: `H` is ε-learnable with
//!    `n₀(ε, δ) = O((1/ε²)(fat_H(ε/9) log²(1/ε) + log(1/δ)))`;
//! 3. Theorem 2.1: combining these, a range space with VC-dimension `λ`
//!    has ε-learnable selectivity functions with `Õ(1/ε^{λ+3})` training
//!    queries.
//!
//! Constants hidden by `O(·)` are not pinned down by the paper; the
//! functions below expose them as explicit parameters with default 1, so
//! the *shape* (exponents, log factors) is exact and comparisons across
//! `ε`, `δ`, `λ` are meaningful.

use selearn_geom::RangeClass;

/// Lemma 2.6's fat-shattering upper bound
/// `fat_S(γ) ≤ c · ⌈1/γ⌉ · (1/γ · log(1/γ))^λ` with explicit constant `c`.
pub fn fat_shattering_upper_bound(gamma: f64, lambda: usize, c: f64) -> f64 {
    assert!(gamma > 0.0 && gamma < 1.0, "gamma must be in (0,1)");
    let inv = 1.0 / gamma;
    let log_term = inv.ln().max(1.0);
    c * inv.ceil() * (inv * log_term).powi(lambda as i32)
}

/// The Bartlett–Long sample-size bound
/// `n₀(ε, δ) = c/ε² (fat(ε/9) log²(1/ε) + log(1/δ))`.
pub fn bartlett_long_n0(fat_at_eps_ninth: f64, eps: f64, delta: f64, c: f64) -> f64 {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let log_eps = (1.0 / eps).ln().max(1.0);
    c / (eps * eps) * (fat_at_eps_ninth * log_eps * log_eps + (1.0 / delta).ln())
}

/// Theorem 2.1's end-to-end training-set size for a range class in
/// dimension `d`: `Õ(1/ε^{λ+3})` with `λ` the class VC-dimension
/// (orthogonal: `2d`, halfspace: `d+1`, ball: `d+2`).
pub fn training_set_size(class: RangeClass, d: usize, eps: f64, delta: f64) -> f64 {
    let lambda = class.vc_dim(d);
    let fat = fat_shattering_upper_bound(eps / 9.0, lambda, 1.0);
    bartlett_long_n0(fat, eps, delta, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_bound_monotone_decreasing_in_gamma() {
        let a = fat_shattering_upper_bound(0.1, 4, 1.0);
        let b = fat_shattering_upper_bound(0.05, 4, 1.0);
        assert!(b > a, "smaller gamma must need larger dimension bound");
    }

    #[test]
    fn fat_bound_grows_with_lambda() {
        let a = fat_shattering_upper_bound(0.1, 3, 1.0);
        let b = fat_shattering_upper_bound(0.1, 5, 1.0);
        assert!(b > a);
    }

    #[test]
    fn fat_bound_scaling_exponent() {
        // doubling 1/γ should scale the bound by ≈ 2^{λ+1} (up to logs)
        let lambda = 4;
        let a = fat_shattering_upper_bound(0.01, lambda, 1.0);
        let b = fat_shattering_upper_bound(0.005, lambda, 1.0);
        let ratio = b / a;
        let expected = 2f64.powi(lambda as i32 + 1);
        assert!(
            ratio > expected * 0.8 && ratio < expected * 2.0,
            "ratio {ratio}, expected ≈ {expected}"
        );
    }

    #[test]
    fn n0_decreasing_in_delta() {
        let n1 = bartlett_long_n0(100.0, 0.1, 0.1, 1.0);
        let n2 = bartlett_long_n0(100.0, 0.1, 0.01, 1.0);
        assert!(n2 > n1, "higher confidence needs more samples");
        // ... but only logarithmically
        let n3 = bartlett_long_n0(100.0, 0.1, 0.001, 1.0);
        assert!((n3 - n2) - (n2 - n1) < 1e-6 + (n2 - n1) * 0.01);
    }

    #[test]
    fn n0_scales_inverse_square_eps_for_fixed_fat() {
        let n1 = bartlett_long_n0(50.0, 0.1, 0.1, 1.0);
        let n2 = bartlett_long_n0(50.0, 0.05, 0.1, 1.0);
        assert!(n2 / n1 > 3.0, "ratio {} should be ≈ 4 (×log²)", n2 / n1);
    }

    #[test]
    fn theorem_exponents_order_query_classes() {
        // For the same d ≥ 2: halfspaces (λ = d+1) need fewer samples than
        // balls (d+2), which need fewer than rectangles (2d) for d ≥ 3.
        let (eps, delta, d) = (0.2, 0.1, 4);
        let rect = training_set_size(RangeClass::Rect, d, eps, delta);
        let half = training_set_size(RangeClass::Halfspace, d, eps, delta);
        let ball = training_set_size(RangeClass::Ball, d, eps, delta);
        assert!(half < ball, "halfspace {half} < ball {ball}");
        assert!(ball < rect, "ball {ball} < rect {rect}");
    }

    #[test]
    fn dimensionality_curse_is_exponential() {
        // Section 4.4: the sample complexity is exponential in d.
        let (eps, delta) = (0.2, 0.1);
        let n2 = training_set_size(RangeClass::Rect, 2, eps, delta);
        let n4 = training_set_size(RangeClass::Rect, 4, eps, delta);
        let n6 = training_set_size(RangeClass::Rect, 6, eps, delta);
        assert!(n4 / n2 > 10.0);
        assert!(n6 / n4 > 10.0);
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0,1)")]
    fn invalid_gamma_panics() {
        let _ = fat_shattering_upper_bound(0.0, 2, 1.0);
    }
}
