//! Baseline selectivity estimators compared against in Section 4.
//!
//! The paper restricts its comparison to methods that, like QuadHist and
//! PtsHist, only see the **query workload** (never the data), and that
//! correspond to valid hypotheses (no deep-learning models that can emit
//! inconsistent estimates):
//!
//! * [`Isomer`] — STHoles-style bucket drilling from query feedback with
//!   **maximum-entropy** bucket densities [Srivastava et al., ICDE 2006;
//!   Bruno et al., SIGMOD 2001]. Most accurate, but its bucket count and
//!   training time blow up with the workload (48–160× the query count in
//!   the paper's runs — it timed out beyond 200–500 queries).
//! * [`QuickSel`] — a mixture of uniform distributions whose components
//!   derive from the query ranges [Park et al., SIGMOD 2020]; trains a
//!   simplex-constrained least-squares fit like Equation (8).
//! * [`UniformBaseline`] — the textbook uniformity assumption, the
//!   zero-training floor every learned method must beat.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The panic-free gate: unwrap/expect are banned outside test code
// (clippy.toml exempts #[cfg(test)]); CI runs clippy with -D warnings.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod isomer;
pub mod quicksel;
pub mod uniform;

pub use isomer::{Isomer, IsomerConfig};
pub use quicksel::{QuickSel, QuickSelConfig};
pub use uniform::UniformBaseline;
