//! ISOMER — consistent histograms from query feedback
//! [Srivastava, Haas, Markl, Kutsch & Tran, ICDE 2006].
//!
//! ISOMER applies STHoles-style bucket creation [Bruno, Chaudhuri &
//! Gravano, SIGMOD 2001] — drilling a "hole" into every bucket a feedback
//! query partially overlaps — and then assigns bucket densities by the
//! **maximum-entropy** distribution consistent with all observed
//! selectivities.
//!
//! Our reproduction keeps the buckets as an explicit *disjoint partition*:
//! a query refines every partially-overlapped bucket into the overlap box
//! plus an axis-aligned decomposition of the remainder (≤ 2d slabs). The
//! max-entropy weights come from iterative proportional fitting
//! ([`selearn_solver::ipf_max_entropy`]). Exactly as the paper observes,
//! the bucket count grows multiplicatively with the workload — typically
//! 48–160× the query count — which is why ISOMER is accurate but slow and
//! is only run on small training sets (its training timed out beyond
//! 200–500 queries in the paper; [`IsomerConfig::max_buckets`] is the
//! corresponding safety valve here).

use selearn_core::{check_labels, SelearnError, SelectivityEstimator, TrainingQuery};
use selearn_geom::{Range, RangeQuery, Rect, VolumeEstimator, EPS};
use selearn_solver::{ipf_max_entropy, DenseMatrix, IpfOptions, SolveReport};

/// ISOMER configuration.
#[derive(Clone, Debug)]
pub struct IsomerConfig {
    /// Stop drilling once the partition reaches this many buckets.
    pub max_buckets: usize,
    /// IPF solver options.
    pub ipf: IpfOptions,
    /// Volume backend for non-rectangular feedback queries.
    pub volume: VolumeEstimator,
}

impl Default for IsomerConfig {
    fn default() -> Self {
        Self {
            max_buckets: 50_000,
            ipf: IpfOptions::default(),
            volume: VolumeEstimator::default(),
        }
    }
}

/// A trained ISOMER model: a disjoint bucket partition with max-entropy
/// densities.
#[derive(Clone, Debug)]
pub struct Isomer {
    buckets: Vec<Rect>,
    weights: Vec<f64>,
    volume: VolumeEstimator,
    solve_report: Option<SolveReport>,
}

impl Isomer {
    /// Trains ISOMER over the data space `root` from query feedback.
    ///
    /// Returns [`SelearnError::InvalidLabel`] on a non-finite selectivity
    /// and propagates IPF solver errors.
    pub fn fit(
        root: Rect,
        queries: &[TrainingQuery],
        config: &IsomerConfig,
    ) -> Result<Self, SelearnError> {
        let _span = selearn_obs::span!("fit.isomer");
        check_labels(queries)?;
        // Phase 1: STHoles-style drilling, kept as a disjoint partition.
        let mut buckets: Vec<Rect> = vec![root.clone()];
        for q in queries {
            if buckets.len() >= config.max_buckets {
                break;
            }
            let Some(qbox) = q.range.bounding_box(&root) else {
                continue;
            };
            if qbox.volume() <= EPS {
                continue;
            }
            let mut next: Vec<Rect> = Vec::with_capacity(buckets.len() + 4);
            for b in &buckets {
                if next.len() >= config.max_buckets {
                    // cap reached mid-pass: stop drilling, keep as-is
                    next.push(b.clone());
                    continue;
                }
                match b.intersect(&qbox) {
                    None => next.push(b.clone()),
                    Some(overlap) => {
                        let ov = overlap.volume();
                        if ov <= EPS || (b.volume() - ov).abs() <= EPS {
                            // disjoint-in-measure or fully covered: keep
                            next.push(b.clone());
                        } else {
                            // drill: overlap box + remainder decomposition
                            next.extend(box_difference(b, &overlap));
                            next.push(overlap);
                        }
                    }
                }
            }
            buckets = next;
        }
        buckets.retain(|b| b.volume() > EPS);
        if buckets.is_empty() {
            buckets.push(root.clone());
        }

        // Phase 2: maximum-entropy densities consistent with the feedback.
        let mut a = DenseMatrix::zeros(0, 0);
        let mut s = Vec::with_capacity(queries.len());
        for q in queries {
            let row: Vec<f64> = buckets
                .iter()
                .map(|b| {
                    (q.range.intersection_volume(b, &config.volume) / b.volume()).clamp(0.0, 1.0)
                })
                .collect();
            a.push_row(&row);
            s.push(q.selectivity);
        }
        let (weights, solve_report) = if a.rows() == 0 {
            // max-entropy with no constraints: uniform density ⇒ weight
            // proportional to bucket volume
            let total: f64 = buckets.iter().map(Rect::volume).sum();
            (buckets.iter().map(|b| b.volume() / total).collect(), None)
        } else {
            let result = ipf_max_entropy(&a, &s, &config.ipf)?;
            let report = result.report();
            (result.weights, Some(report))
        };

        Ok(Self {
            buckets,
            weights,
            volume: config.volume.clone(),
            solve_report,
        })
    }

    /// The weighted buckets, for introspection.
    pub fn buckets(&self) -> impl Iterator<Item = (&Rect, f64)> {
        self.buckets.iter().zip(self.weights.iter().copied())
    }
}

/// Axis-aligned decomposition of `b ∖ inner` into at most `2d` boxes,
/// where `inner ⊆ b`. Standard "peeling" construction: two slabs per
/// dimension, shrinking the core as we go.
fn box_difference(b: &Rect, inner: &Rect) -> Vec<Rect> {
    debug_assert!(b.contains_rect(inner), "inner must be inside b");
    let d = b.dim();
    let mut out = Vec::with_capacity(2 * d);
    let mut core_lo = b.lo().to_vec();
    let mut core_hi = b.hi().to_vec();
    for i in 0..d {
        if inner.lo()[i] > core_lo[i] + EPS {
            let mut lo = core_lo.clone();
            let mut hi = core_hi.clone();
            hi[i] = inner.lo()[i];
            let slab = Rect::new(lo.clone(), hi);
            if slab.volume() > EPS {
                out.push(slab);
            }
            lo[i] = inner.lo()[i];
            core_lo = lo;
        }
        if inner.hi()[i] < core_hi[i] - EPS {
            let mut lo = core_lo.clone();
            let mut hi = core_hi.clone();
            lo[i] = inner.hi()[i];
            let slab = Rect::new(lo, hi.clone());
            if slab.volume() > EPS {
                out.push(slab);
            }
            hi[i] = inner.hi()[i];
            core_hi = hi;
        }
        core_lo[i] = core_lo[i].max(inner.lo()[i]);
        core_hi[i] = core_hi[i].min(inner.hi()[i]);
    }
    out
}

impl SelectivityEstimator for Isomer {
    fn estimate(&self, range: &Range) -> f64 {
        let total: f64 = self
            .buckets
            .iter()
            .zip(&self.weights)
            .map(|(b, &w)| {
                if w <= 0.0 {
                    return 0.0;
                }
                (range.intersection_volume(b, &self.volume) / b.volume()).clamp(0.0, 1.0) * w
            })
            .sum();
        total.clamp(0.0, 1.0)
    }

    fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    fn name(&self) -> &'static str {
        "Isomer"
    }

    fn solve_report(&self) -> Option<SolveReport> {
        self.solve_report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tq(lo: Vec<f64>, hi: Vec<f64>, s: f64) -> TrainingQuery {
        TrainingQuery::new(Rect::new(lo, hi), s)
    }

    #[test]
    fn box_difference_tiles() {
        let outer = Rect::unit(2);
        let inner = Rect::new(vec![0.25, 0.25], vec![0.75, 0.75]);
        let parts = box_difference(&outer, &inner);
        assert_eq!(parts.len(), 4);
        let total: f64 = parts.iter().map(Rect::volume).sum::<f64>() + inner.volume();
        assert!((total - 1.0).abs() < 1e-12);
        // pairwise disjoint (in measure)
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                assert!(parts[i].intersection_volume(&parts[j]) < 1e-12);
            }
            assert!(parts[i].intersection_volume(&inner) < 1e-12);
        }
    }

    #[test]
    fn box_difference_corner_inner() {
        // Inner box sharing two faces with the outer: only 2 slabs remain.
        let outer = Rect::unit(2);
        let inner = Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]);
        let parts = box_difference(&outer, &inner);
        assert_eq!(parts.len(), 2);
        let total: f64 = parts.iter().map(Rect::volume).sum::<f64>() + inner.volume();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partition_stays_disjoint_and_complete() {
        let queries = vec![
            tq(vec![0.1, 0.2], vec![0.6, 0.7], 0.4),
            tq(vec![0.4, 0.0], vec![0.9, 0.5], 0.3),
            tq(vec![0.0, 0.5], vec![0.3, 1.0], 0.2),
        ];
        let iso = Isomer::fit(Rect::unit(2), &queries, &IsomerConfig::default()).unwrap();
        let bs: Vec<Rect> = iso.buckets().map(|(b, _)| b.clone()).collect();
        let total: f64 = bs.iter().map(Rect::volume).sum();
        assert!((total - 1.0).abs() < 1e-9, "partition volume {total}");
        for i in 0..bs.len() {
            for j in (i + 1)..bs.len() {
                assert!(
                    bs[i].intersection_volume(&bs[j]) < 1e-9,
                    "buckets {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn consistent_with_feedback() {
        let queries = vec![
            tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.7),
            tq(vec![0.5, 0.5], vec![1.0, 1.0], 0.2),
        ];
        let iso = Isomer::fit(Rect::unit(2), &queries, &IsomerConfig::default()).unwrap();
        for q in &queries {
            let est = iso.estimate(&q.range);
            assert!(
                (est - q.selectivity).abs() < 1e-3,
                "est = {est}, true = {}",
                q.selectivity
            );
        }
    }

    #[test]
    fn maxent_prefers_uniform_within_buckets() {
        // One query over the left half with s = 0.8: inside its bucket and
        // outside, max-entropy spreads uniformly, so a sub-query of half
        // the left side gets ≈ 0.4.
        let queries = vec![tq(vec![0.0, 0.0], vec![0.5, 1.0], 0.8)];
        let iso = Isomer::fit(Rect::unit(2), &queries, &IsomerConfig::default()).unwrap();
        let sub: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]).into();
        let est = iso.estimate(&sub);
        assert!((est - 0.4).abs() < 1e-3, "est = {est}");
    }

    #[test]
    fn bucket_growth_is_multiplicative() {
        // Overlapping queries should multiply bucket counts — the behavior
        // that makes ISOMER heavy (48–160× in the paper).
        let queries: Vec<TrainingQuery> = (0..8)
            .map(|i| {
                let t = i as f64 / 10.0;
                tq(vec![t, t], vec![t + 0.25, t + 0.25], 0.1)
            })
            .collect();
        let iso = Isomer::fit(Rect::unit(2), &queries, &IsomerConfig::default()).unwrap();
        assert!(
            iso.num_buckets() > 3 * queries.len(),
            "only {} buckets",
            iso.num_buckets()
        );
    }

    #[test]
    fn bucket_cap_respected() {
        let queries: Vec<TrainingQuery> = (0..30)
            .map(|i| {
                let t = i as f64 / 40.0;
                tq(vec![t, t], vec![t + 0.3, t + 0.3], 0.1)
            })
            .collect();
        let cfg = IsomerConfig {
            max_buckets: 100,
            ..Default::default()
        };
        let iso = Isomer::fit(Rect::unit(2), &queries, &cfg).unwrap();
        assert!(iso.num_buckets() <= 200, "{} buckets", iso.num_buckets());
    }

    #[test]
    fn untrained_is_uniform() {
        let iso = Isomer::fit(Rect::unit(2), &[], &IsomerConfig::default()).unwrap();
        let r: Range = Rect::new(vec![0.0, 0.0], vec![0.25, 1.0]).into();
        assert!((iso.estimate(&r) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn weights_form_distribution() {
        let queries = vec![tq(vec![0.2, 0.3], vec![0.7, 0.8], 0.5)];
        let iso = Isomer::fit(Rect::unit(2), &queries, &IsomerConfig::default()).unwrap();
        let total: f64 = iso.buckets().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-6);
    }
}
