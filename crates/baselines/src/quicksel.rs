//! QuickSel — selectivity learning with uniform mixture models
//! [Park, Zhong & Mozafari, SIGMOD 2020].
//!
//! QuickSel models the data distribution as a **mixture of uniform
//! distributions** whose supports ("kernels") are hyper-rectangles derived
//! from the query workload — conceptually overlapping histogram buckets.
//! Training solves a quadratic program making the mixture consistent with
//! the observed selectivities; we use the same simplex-constrained
//! least-squares machinery as Equation (8), which keeps the comparison
//! apples-to-apples (the paper evaluates all methods "under the same
//! framework").
//!
//! Following the paper's experimental convention (Section 4.1), the number
//! of mixture components is `4×` the number of training queries: each
//! query range contributes its own kernel, and the remaining kernels are
//! sampled sub-boxes anchored at query boxes (QuickSel's kernel-population
//! step), plus one domain-wide kernel so uncovered space can carry mass.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selearn_core::{
    check_labels, estimate_weights_with_report, Objective, SelearnError, SelectivityEstimator,
    TrainingQuery, WeightSolver,
};
use selearn_geom::{Range, RangeQuery, Rect, VolumeEstimator, EPS};
use selearn_solver::{DenseMatrix, SolveReport};

/// QuickSel configuration.
#[derive(Clone, Debug)]
pub struct QuickSelConfig {
    /// Mixture components per training query (paper convention: 4).
    pub kernels_per_query: usize,
    /// RNG seed for kernel population.
    pub seed: u64,
    /// Volume backend for non-rectangular queries.
    pub volume: VolumeEstimator,
}

impl Default for QuickSelConfig {
    fn default() -> Self {
        Self {
            kernels_per_query: 4,
            seed: 0x9c5e1,
            volume: VolumeEstimator::default(),
        }
    }
}

/// A trained QuickSel model: weighted uniform kernels.
#[derive(Clone, Debug)]
pub struct QuickSel {
    kernels: Vec<Rect>,
    weights: Vec<f64>,
    volume: VolumeEstimator,
    solve_report: Option<SolveReport>,
}

impl QuickSel {
    /// Trains QuickSel over the data space `root`.
    ///
    /// Returns [`SelearnError::InvalidLabel`] on a non-finite selectivity
    /// and propagates weight-solver errors.
    pub fn fit(
        root: Rect,
        queries: &[TrainingQuery],
        config: &QuickSelConfig,
    ) -> Result<Self, SelearnError> {
        let _span = selearn_obs::span!("fit.quicksel");
        check_labels(queries)?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut kernels: Vec<Rect> = Vec::new();
        // the domain-wide kernel catches mass outside all queries
        kernels.push(root.clone());
        for q in queries {
            // primary kernel: the query's own (clipped) bounding box
            if let Some(bb) = q.range.bounding_box(&root) {
                if bb.volume() > EPS {
                    kernels.push(bb.clone());
                    // populate additional sub-kernels inside the box
                    for _ in 1..config.kernels_per_query {
                        kernels.push(random_subbox(&bb, &mut rng));
                    }
                }
            }
        }
        // drop degenerate kernels
        kernels.retain(|k| k.volume() > EPS);

        let mut a = DenseMatrix::zeros(0, 0);
        let mut s = Vec::with_capacity(queries.len());
        for q in queries {
            let row: Vec<f64> = kernels
                .iter()
                .map(|k| {
                    (q.range.intersection_volume(k, &config.volume) / k.volume()).clamp(0.0, 1.0)
                })
                .collect();
            a.push_row(&row);
            s.push(q.selectivity);
        }
        let (weights, solve_report) = if a.rows() == 0 {
            (vec![1.0 / kernels.len() as f64; kernels.len()], None)
        } else {
            estimate_weights_with_report(&a, &s, &Objective::L2, &WeightSolver::Fista)?
        };

        Ok(Self {
            kernels,
            weights,
            volume: config.volume.clone(),
            solve_report,
        })
    }

    /// The weighted kernels, for introspection.
    pub fn kernels(&self) -> impl Iterator<Item = (&Rect, f64)> {
        self.kernels.iter().zip(self.weights.iter().copied())
    }
}

/// A random axis-aligned sub-box of `b` with side fractions in [0.3, 1.0].
fn random_subbox<R: Rng + ?Sized>(b: &Rect, rng: &mut R) -> Rect {
    let d = b.dim();
    let mut lo = Vec::with_capacity(d);
    let mut hi = Vec::with_capacity(d);
    for i in 0..d {
        let w = b.width(i);
        let frac: f64 = rng.gen_range(0.3..1.0);
        let span = w * frac;
        let start = b.lo()[i] + rng.gen_range(0.0..=(w - span).max(f64::MIN_POSITIVE));
        lo.push(start.min(b.hi()[i]));
        hi.push((start + span).min(b.hi()[i]));
    }
    Rect::new(lo, hi)
}

impl SelectivityEstimator for QuickSel {
    fn estimate(&self, range: &Range) -> f64 {
        let total: f64 = self
            .kernels
            .iter()
            .zip(&self.weights)
            .map(|(k, &w)| {
                if w <= 0.0 {
                    return 0.0;
                }
                (range.intersection_volume(k, &self.volume) / k.volume()).clamp(0.0, 1.0) * w
            })
            .sum();
        total.clamp(0.0, 1.0)
    }

    fn num_buckets(&self) -> usize {
        self.kernels.len()
    }

    fn name(&self) -> &'static str {
        "QuickSel"
    }

    fn solve_report(&self) -> Option<SolveReport> {
        self.solve_report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tq(lo: Vec<f64>, hi: Vec<f64>, s: f64) -> TrainingQuery {
        TrainingQuery::new(Rect::new(lo, hi), s)
    }

    #[test]
    fn kernel_count_convention() {
        let queries = vec![
            tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.5),
            tq(vec![0.4, 0.4], vec![0.9, 0.9], 0.3),
        ];
        let qs = QuickSel::fit(Rect::unit(2), &queries, &QuickSelConfig::default()).unwrap();
        // 4 per query + 1 domain kernel
        assert_eq!(qs.num_buckets(), 9);
    }

    #[test]
    fn consistent_on_training_queries() {
        let queries = vec![
            tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.7),
            tq(vec![0.5, 0.5], vec![1.0, 1.0], 0.2),
        ];
        let qs = QuickSel::fit(Rect::unit(2), &queries, &QuickSelConfig::default()).unwrap();
        for q in &queries {
            let est = qs.estimate(&q.range);
            assert!(
                (est - q.selectivity).abs() < 0.05,
                "est = {est}, true = {}",
                q.selectivity
            );
        }
    }

    #[test]
    fn weights_form_distribution() {
        let queries = vec![tq(vec![0.2, 0.2], vec![0.8, 0.8], 0.6)];
        let qs = QuickSel::fit(Rect::unit(2), &queries, &QuickSelConfig::default()).unwrap();
        let total: f64 = qs.kernels().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(qs.kernels().all(|(_, w)| w >= -1e-9));
    }

    #[test]
    fn untrained_model_is_uniform() {
        let qs = QuickSel::fit(Rect::unit(2), &[], &QuickSelConfig::default()).unwrap();
        assert_eq!(qs.num_buckets(), 1);
        let r: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 1.0]).into();
        assert!((qs.estimate(&r) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn handles_ball_and_halfspace_queries() {
        use selearn_geom::{Ball, Halfspace, Point};
        let queries = vec![
            TrainingQuery::new(Ball::new(Point::splat(2, 0.4), 0.3), 0.5),
            TrainingQuery::new(Halfspace::new(vec![1.0, 0.0], 0.6), 0.3),
        ];
        let qs = QuickSel::fit(Rect::unit(2), &queries, &QuickSelConfig::default()).unwrap();
        for q in &queries {
            let est = qs.estimate(&q.range);
            assert!(
                (est - q.selectivity).abs() < 0.1,
                "est = {est}, true = {}",
                q.selectivity
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let queries = vec![tq(vec![0.1, 0.1], vec![0.6, 0.6], 0.4)];
        let a = QuickSel::fit(Rect::unit(2), &queries, &QuickSelConfig::default()).unwrap();
        let b = QuickSel::fit(Rect::unit(2), &queries, &QuickSelConfig::default()).unwrap();
        let wa: Vec<f64> = a.kernels().map(|(_, w)| w).collect();
        let wb: Vec<f64> = b.kernels().map(|(_, w)| w).collect();
        assert_eq!(wa, wb);
    }

    #[test]
    fn degenerate_query_boxes_skipped() {
        let queries = vec![
            tq(vec![0.3, 0.0], vec![0.3, 1.0], 0.2), // zero-volume box
            tq(vec![0.0, 0.0], vec![0.5, 0.5], 0.5),
        ];
        let qs = QuickSel::fit(Rect::unit(2), &queries, &QuickSelConfig::default()).unwrap();
        // only the non-degenerate query contributes kernels (4) + domain
        assert_eq!(qs.num_buckets(), 5);
    }
}
