//! The uniformity-assumption baseline.
//!
//! Classic cost-based optimizers without statistics assume data is uniform
//! over the attribute domain: `ŝ(R) = vol(R ∩ domain)/vol(domain)`. Every
//! learned method must beat this floor on skewed data; it also equals what
//! QuadHist/PtsHist degrade to when trained on an empty workload.

use selearn_core::SelectivityEstimator;
use selearn_geom::{Range, RangeQuery, Rect, VolumeEstimator};

/// Uniform-data selectivity estimator over a domain box.
#[derive(Clone, Debug)]
pub struct UniformBaseline {
    domain: Rect,
    volume: VolumeEstimator,
}

impl UniformBaseline {
    /// Creates the baseline over the given domain.
    pub fn new(domain: Rect) -> Self {
        Self {
            domain,
            volume: VolumeEstimator::default(),
        }
    }
}

impl SelectivityEstimator for UniformBaseline {
    fn estimate(&self, range: &Range) -> f64 {
        let dv = self.domain.volume();
        if dv <= 0.0 {
            return 0.0;
        }
        (range.intersection_volume(&self.domain, &self.volume) / dv).clamp(0.0, 1.0)
    }

    fn num_buckets(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "Uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selearn_geom::{Ball, Halfspace, Point};

    #[test]
    fn rect_fraction() {
        let u = UniformBaseline::new(Rect::unit(2));
        let r: Range = Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]).into();
        assert!((u.estimate(&r) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn halfspace_fraction() {
        let u = UniformBaseline::new(Rect::unit(2));
        let h: Range = Halfspace::new(vec![1.0, 1.0], 1.0).into();
        assert!((u.estimate(&h) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ball_fraction() {
        let u = UniformBaseline::new(Rect::unit(2));
        let b: Range = Ball::new(Point::splat(2, 0.5), 0.25).into();
        let expected = std::f64::consts::PI * 0.0625;
        assert!((u.estimate(&b) - expected).abs() < 1e-6);
    }

    #[test]
    fn range_outside_domain_is_zero() {
        let u = UniformBaseline::new(Rect::unit(2));
        let r: Range = Ball::new(Point::new(vec![9.0, 9.0]), 0.1).into();
        assert_eq!(u.estimate(&r), 0.0);
        assert_eq!(u.num_buckets(), 1);
        assert_eq!(u.name(), "Uniform");
    }
}
