//! CSV output and plain-text table rendering for experiment results.

use std::fs;
use std::path::Path;

/// Writes rows (already stringified) as a CSV file with the given header,
/// creating parent directories as needed.
pub fn write_csv(
    path: impl AsRef<Path>,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(path, out)
}

/// Renders rows as an aligned plain-text table.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut s = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    s.push_str(&fmt_row(&header_cells, &widths));
    s.push('\n');
    s.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    s.push('\n');
    for row in rows {
        s.push_str(&fmt_row(row, &widths));
        s.push('\n');
    }
    s
}

/// Formats a float with 4 significant decimals for CSV cells.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("selearn_table_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "v"],
            &[
                vec!["x".into(), "1.5".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(0.12345), "0.1235"); // rounds half up
        assert_eq!(f(1234.5), "1234.5");
    }
}
