//! `perf-suite` — the fixed, versioned performance suite.
//!
//! Runs five measurements and writes one machine-readable JSON report
//! (default `BENCH_9.json`, the PR-10 schema):
//!
//! * **single-query p50** — per-query latency of the pointer tree vs the
//!   frozen SoA artifact on a 10k-bucket 2-D QuadHist, and their speedup
//!   ratio (the PR-6 acceptance floor is 3×);
//! * **batch throughput** — queries/second through the allocation-free
//!   `estimate_into` batch path, tree vs frozen;
//! * **restore** — wall time of `load_quadhist` (pointer layout) and of
//!   `load_frozen` (straight into the frozen layout, including the
//!   freeze compilation);
//! * **serve** — client-observed p50/p95/p99 latency through a live
//!   in-process `selearn-serve` TCP server under a closed-loop replay,
//!   plus (v8) the same closed loop while 500 idle connections sit on
//!   the poller and a mixed-tenant replay spread across 8 namespaced
//!   models, plus (new in v9) a mixed-shape replay cycling rect,
//!   halfspace, and ball requests against a mixed-trained model;
//! * **wal** — per-record `ModelStore::observe` cost with durable acks,
//!   and the cold-reopen recovery time over the resulting log.
//!
//! Usage: `perf-suite [--out FILE] [--buckets N] [--check-speedup X]
//! [--compare PREV.json] [--compare-slack F]`.
//!
//! With `--check-speedup X` the process exits non-zero when the measured
//! single-query speedup falls below `X`. With `--compare PREV.json` the
//! fresh numbers are checked against a previous report (v6 through v9): a
//! regression of more than `--compare-slack` (default 0.15 = 15%) in
//! single-query frozen p50, batch frozen qps, frozen restore time, or —
//! when the baseline carries a `serve` section — closed-loop serve
//! p50/p95 exits non-zero — how CI catches perf regressions against the
//! committed baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selearn_core::{
    load_frozen, load_quadhist, save_quadhist, QuadHist, SelectivityEstimator, TrainingQuery,
};
use selearn_geom::{Range, Rect, VolumeEstimator};
use selearn_serve::{
    json, run_load, start, synth, LoadOptions, ModelRegistry, ServerConfig, DEFAULT_MODEL,
};
use selearn_store::{ModelStore, StoreConfig};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// BFS-splits the unit square into at least `target` quadtree leaves with
/// normalized weights.
fn buckets(target: usize) -> Vec<(Rect, f64)> {
    let mut queue: VecDeque<Rect> = VecDeque::from([Rect::unit(2)]);
    while queue.len() < target {
        let cell = match queue.pop_front() {
            Some(c) => c,
            None => break,
        };
        queue.extend(cell.split());
    }
    let n = queue.len();
    queue
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, 1.0 / n as f64 * ((i % 7) + 1) as f64 / 4.0))
        .collect()
}

fn probes(n: usize, seed: u64) -> Vec<Range> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let cx: f64 = rng.gen();
            let cy: f64 = rng.gen();
            let w: f64 = rng.gen::<f64>() * 0.3 + 0.01;
            Rect::new(
                vec![(cx - w).max(0.0), (cy - w).max(0.0)],
                vec![(cx + w).min(1.0), (cy + w).min(1.0)],
            )
            .into()
        })
        .collect()
}

/// Median of per-query microseconds: each probe is timed over `repeats`
/// back-to-back evaluations (amortizing clock overhead), and the p50 is
/// taken across probes.
fn single_query_p50_us<M: SelectivityEstimator>(
    model: &M,
    queries: &[Range],
    repeats: usize,
) -> f64 {
    let mut samples: Vec<f64> = queries
        .iter()
        .map(|q| {
            let t0 = Instant::now();
            let mut acc = 0.0;
            for _ in 0..repeats {
                acc += model.estimate(q);
            }
            let us = t0.elapsed().as_secs_f64() * 1e6 / repeats as f64;
            assert!(acc.is_finite());
            us
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Batch throughput in queries/second through `estimate_into`.
fn batch_qps<M: SelectivityEstimator>(model: &M, queries: &[Range], repeats: usize) -> f64 {
    let mut out = vec![0.0; queries.len()];
    let t0 = Instant::now();
    for _ in 0..repeats {
        model.estimate_into(queries, &mut out);
    }
    (queries.len() * repeats) as f64 / t0.elapsed().as_secs_f64()
}

/// Serve-path numbers: closed-loop percentiles, the same closed loop
/// with an idle-connection herd parked on the poller, and a
/// mixed-tenant replay.
struct ServeNumbers {
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    idle_conns: usize,
    idle_p50_us: f64,
    tenants: usize,
    multi_tenant_p50_us: f64,
    mixed_shape_p50_us: f64,
}

/// One closed-loop replay (with warm-up) against `addr`; exits on any
/// protocol error or lost request.
fn replay(addr: &str, pool: &[selearn_serve::Request], total: usize) -> (f64, f64, f64) {
    let options = LoadOptions {
        connections: 2,
        total_requests: total,
        rate: None,
    };
    // Warm-up pass so connection setup and first-touch costs stay out of
    // the measured percentiles.
    let warm = LoadOptions {
        total_requests: 200,
        ..options
    };
    let report = run_load(addr, pool, &warm).and_then(|_| run_load(addr, pool, &options));
    match report {
        Ok(r) if r.errors == 0 && r.ok + r.degraded == total as u64 => (
            r.percentile_us(0.50),
            r.percentile_us(0.95),
            r.percentile_us(0.99),
        ),
        Ok(r) => {
            eprintln!(
                "serve bench lost requests: sent {} ok {} degraded {} errors {}",
                r.sent, r.ok, r.degraded, r.errors
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("serve bench replay failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Client-observed serve latency through a live in-process server over a
/// loopback TCP socket. The compared p50/p95 are best-of-`rounds`; the
/// idle-herd and multi-tenant replays run once (informational).
fn serve_numbers(rounds: usize) -> ServeNumbers {
    const IDLE_CONNS: usize = 500;
    const TENANTS: usize = 8;
    let (model, root) = match synth::synthetic_model(2, 200, 11) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot fit serve bench model: {e}");
            std::process::exit(1);
        }
    };
    let model: selearn_core::SharedEstimator = Arc::new(model);
    let registry = Arc::new(ModelRegistry::new());
    registry.register(DEFAULT_MODEL, Arc::clone(&model), root.clone());
    for i in 0..TENANTS {
        registry.register(&format!("t{i}.m"), Arc::clone(&model), root.clone());
    }
    // A model trained on the mixed-shape synthetic workload backs the
    // shape replay, so halfspace/ball answers come from real training.
    let (mixed_model, mixed_root) = match synth::synthetic_mixed_model(2, 240, 13) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot fit mixed-shape serve bench model: {e}");
            std::process::exit(1);
        }
    };
    registry.register("shapes.m", Arc::new(mixed_model), mixed_root);
    let handle = match start(ServerConfig::default(), registry) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot start serve bench server: {e}");
            std::process::exit(1);
        }
    };
    let addr = handle.addr().to_string();
    let pool = synth::synthetic_requests(2, 256, 23);

    let (mut p50, mut p95, mut p99) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        let (r50, r95, r99) = replay(&addr, &pool, 2000);
        p50 = p50.min(r50);
        p95 = p95.min(r95);
        p99 = p99.min(r99);
    }

    // The same closed loop with an idle herd parked on the poller: the
    // readiness loop should make silent sockets free for the hot path.
    let idle: Vec<std::net::TcpStream> = (0..IDLE_CONNS)
        .map(|i| match std::net::TcpStream::connect(&addr) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("idle conn {i} failed: {e}");
                std::process::exit(1);
            }
        })
        .collect();
    let (idle_p50, _, _) = replay(&addr, &pool, 2000);
    drop(idle);

    // Mixed-tenant replay: the pool cycled across the tenant namespaces,
    // exercising per-tenant admission and cache partitions.
    let mut tenant_pool = pool.clone();
    for (i, req) in tenant_pool.iter_mut().enumerate() {
        req.est = format!("t{}.m", i % TENANTS);
    }
    let (mt_p50, _, _) = replay(&addr, &tenant_pool, 2000);

    // Mixed-shape replay: rect → halfspace → ball cycled over a finite
    // pool, exercising the shape-aware cache keys and generic estimate
    // paths end-to-end over the socket.
    let mut shape_pool = synth::synthetic_mixed_requests(2, 255, 27);
    for req in shape_pool.iter_mut() {
        req.est = "shapes.m".to_string();
    }
    let (shape_p50, _, _) = replay(&addr, &shape_pool, 2000);

    handle.shutdown();
    ServeNumbers {
        p50_us: p50,
        p95_us: p95,
        p99_us: p99,
        idle_conns: IDLE_CONNS,
        idle_p50_us: idle_p50,
        tenants: TENANTS,
        multi_tenant_p50_us: mt_p50,
        mixed_shape_p50_us: shape_p50,
    }
}

/// WAL numbers with production defaults (durable acks, refit every 64):
/// `(observe_us, recovery_ms, records)` — mean per-record observe cost
/// over `records` appends, then the cold-reopen recovery time over the
/// uncheckpointed log.
fn wal_numbers(records: usize) -> (f64, f64, u64) {
    let dir = std::env::temp_dir().join(format!("selearn-perf-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = StoreConfig::new(Rect::unit(2));
    let mut store = match ModelStore::open(&dir, config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open wal bench store: {e}");
            std::process::exit(1);
        }
    };
    let t0 = Instant::now();
    for i in 0..records {
        let a = ((i % 23) as f64 + 1.0) / 25.0;
        let fb = TrainingQuery::new(Rect::new(vec![0.0, a / 2.0], vec![a, 0.9]), a * 0.5);
        if let Err(e) = store.observe(fb) {
            eprintln!("wal bench observe failed: {e}");
            std::process::exit(1);
        }
    }
    let observe_us = t0.elapsed().as_secs_f64() * 1e6 / records as f64;
    drop(store);
    let t0 = Instant::now();
    let store = match ModelStore::open(&dir, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("wal bench recovery failed: {e}");
            std::process::exit(1);
        }
    };
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    let replayed = store.recovery().replayed_records;
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    (observe_us, recovery_ms, replayed)
}

/// The compared metrics of a report. The first three exist in every
/// schema since v6; the serve pair appears from v7 on (absent in the
/// baseline means the serve gate is skipped).
struct Compared {
    frozen_p50_us: f64,
    frozen_qps: f64,
    restore_frozen_ms: f64,
    serve_p50_us: Option<f64>,
    serve_p95_us: Option<f64>,
}

/// Pulls the compared metrics out of a previous report file.
fn load_compared(path: &str) -> Result<Compared, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let root = json::parse(&raw).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let opt = |section: &str, key: &str| -> Option<f64> {
        root.get(section)
            .and_then(|s| s.get(key))
            .and_then(json::Json::as_num)
    };
    let num = |section: &str, key: &str| -> Result<f64, String> {
        opt(section, key).ok_or_else(|| format!("{path} has no numeric {section}.{key}"))
    };
    Ok(Compared {
        frozen_p50_us: num("single_query", "frozen_p50_us")?,
        frozen_qps: num("batch", "frozen_qps")?,
        restore_frozen_ms: num("restore", "frozen_ms")?,
        serve_p50_us: opt("serve", "p50_us"),
        serve_p95_us: opt("serve", "p95_us"),
    })
}

/// Checks `fresh` against `prev` with `slack` relative tolerance; returns
/// the list of human-readable regression messages (empty = pass).
fn regressions(prev: &Compared, fresh: &Compared, slack: f64) -> Vec<String> {
    let mut out = Vec::new();
    // Latencies and restore times regress upward, throughput downward.
    if fresh.frozen_p50_us > prev.frozen_p50_us * (1.0 + slack) {
        out.push(format!(
            "single-query frozen p50 regressed: {:.3}us vs baseline {:.3}us (+{:.0}% allowed)",
            fresh.frozen_p50_us,
            prev.frozen_p50_us,
            slack * 100.0
        ));
    }
    if fresh.frozen_qps < prev.frozen_qps * (1.0 - slack) {
        out.push(format!(
            "batch frozen qps regressed: {:.0} vs baseline {:.0} (-{:.0}% allowed)",
            fresh.frozen_qps,
            prev.frozen_qps,
            slack * 100.0
        ));
    }
    if fresh.restore_frozen_ms > prev.restore_frozen_ms * (1.0 + slack) {
        out.push(format!(
            "frozen restore regressed: {:.3}ms vs baseline {:.3}ms (+{:.0}% allowed)",
            fresh.restore_frozen_ms,
            prev.restore_frozen_ms,
            slack * 100.0
        ));
    }
    for (name, prev_v, fresh_v) in [
        ("serve p50", prev.serve_p50_us, fresh.serve_p50_us),
        ("serve p95", prev.serve_p95_us, fresh.serve_p95_us),
    ] {
        if let (Some(p), Some(f)) = (prev_v, fresh_v) {
            if f > p * (1.0 + slack) {
                out.push(format!(
                    "{name} regressed: {f:.1}us vs baseline {p:.1}us (+{:.0}% allowed)",
                    slack * 100.0
                ));
            }
        }
    }
    out
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = take_value(&mut args, "--out").unwrap_or_else(|| "BENCH_9.json".to_string());
    let n_buckets: usize = take_value(&mut args, "--buckets")
        .map(|v| v.parse().unwrap_or(10_000))
        .unwrap_or(10_000);
    let check_speedup: Option<f64> =
        take_value(&mut args, "--check-speedup").and_then(|v| v.parse().ok());
    let compare_path = take_value(&mut args, "--compare");
    let compare_slack: f64 = take_value(&mut args, "--compare-slack")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15);
    if !args.is_empty() {
        eprintln!("unknown arguments: {args:?}");
        std::process::exit(2);
    }

    let bs = buckets(n_buckets);
    let model = match QuadHist::from_buckets(Rect::unit(2), &bs, VolumeEstimator::default()) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot build bench model: {e}");
            std::process::exit(1);
        }
    };
    let frozen = model.freeze();
    let single = probes(128, 9);
    let batch = probes(1024, 10);

    // Warm-up so first-touch page faults don't land in the tree's numbers.
    let _ = single_query_p50_us(&model, &single[..16], 2);
    let _ = single_query_p50_us(&frozen, &single[..16], 2);

    // Every compared metric is best-of-3: the gate compares absolute
    // wall-clock numbers across runs (and in CI across machines), and
    // scheduler noise on small shared boxes easily exceeds the slack.
    // Taking the best of three is the standard microbenchmark de-noiser —
    // the fastest observation is the one closest to the code's true cost.
    const ROUNDS: usize = 3;
    let best = |f: &mut dyn FnMut() -> f64, lower_is_better: bool| -> f64 {
        (0..ROUNDS)
            .map(|_| f())
            .fold(if lower_is_better { f64::INFINITY } else { 0.0 }, |a, b| {
                if lower_is_better {
                    a.min(b)
                } else {
                    a.max(b)
                }
            })
    };
    let tree_p50 = best(&mut || single_query_p50_us(&model, &single, 24), true);
    let frozen_p50 = best(&mut || single_query_p50_us(&frozen, &single, 24), true);
    let single_speedup = tree_p50 / frozen_p50;

    let tree_qps = best(&mut || batch_qps(&model, &batch, 8), false);
    let frozen_qps = best(&mut || batch_qps(&frozen, &batch, 8), false);

    let mut dump = Vec::new();
    if let Err(e) = save_quadhist(&model, &mut dump) {
        eprintln!("cannot serialize bench model: {e}");
        std::process::exit(1);
    }
    let mut restore_tree_ms = f64::INFINITY;
    let mut restore_frozen_ms = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        let restored_tree = load_quadhist(&dump[..]);
        restore_tree_ms = restore_tree_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let restored_frozen = load_frozen(&dump[..]);
        restore_frozen_ms = restore_frozen_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        if restored_tree.is_err() || restored_frozen.is_err() {
            eprintln!("bench model failed to round-trip");
            std::process::exit(1);
        }
    }

    let serve = serve_numbers(ROUNDS);
    let wal_records = 500;
    let (wal_observe_us, wal_recovery_ms, wal_replayed) = wal_numbers(wal_records);

    let json_out = format!(
        "{{\n  \"schema\": \"selearn-bench\",\n  \"version\": 9,\n  \"suite\": \"frozen-inference\",\n  \"config\": {{\n    \"model\": \"quadhist\",\n    \"dim\": 2,\n    \"buckets\": {},\n    \"single_probes\": {},\n    \"batch_probes\": {},\n    \"serve_requests\": 2000,\n    \"wal_records\": {}\n  }},\n  \"single_query\": {{\n    \"tree_p50_us\": {:.3},\n    \"frozen_p50_us\": {:.3},\n    \"speedup\": {:.2}\n  }},\n  \"batch\": {{\n    \"tree_qps\": {:.0},\n    \"frozen_qps\": {:.0},\n    \"speedup\": {:.2}\n  }},\n  \"restore\": {{\n    \"tree_ms\": {:.3},\n    \"frozen_ms\": {:.3}\n  }},\n  \"serve\": {{\n    \"p50_us\": {:.1},\n    \"p95_us\": {:.1},\n    \"p99_us\": {:.1},\n    \"idle_conns\": {},\n    \"idle_p50_us\": {:.1},\n    \"tenants\": {},\n    \"multi_tenant_p50_us\": {:.1},\n    \"mixed_shape_p50_us\": {:.1}\n  }},\n  \"wal\": {{\n    \"observe_us\": {:.1},\n    \"recovery_ms\": {:.3},\n    \"replayed_records\": {}\n  }}\n}}\n",
        model.num_buckets(),
        single.len(),
        batch.len(),
        wal_records,
        tree_p50,
        frozen_p50,
        single_speedup,
        tree_qps,
        frozen_qps,
        frozen_qps / tree_qps,
        restore_tree_ms,
        restore_frozen_ms,
        serve.p50_us,
        serve.p95_us,
        serve.p99_us,
        serve.idle_conns,
        serve.idle_p50_us,
        serve.tenants,
        serve.multi_tenant_p50_us,
        serve.mixed_shape_p50_us,
        wal_observe_us,
        wal_recovery_ms,
        wal_replayed,
    );
    if let Err(e) = std::fs::write(&out_path, &json_out) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json_out}");

    let mut failed = false;
    if let Some(floor) = check_speedup {
        if single_speedup < floor {
            eprintln!("FAIL: single-query speedup {single_speedup:.2}x is below the {floor}x floor");
            failed = true;
        } else {
            eprintln!("OK: single-query speedup {single_speedup:.2}x >= {floor}x");
        }
    }
    if let Some(prev_path) = compare_path {
        let prev = match load_compared(&prev_path) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("FAIL: {e}");
                std::process::exit(1);
            }
        };
        let fresh = Compared {
            frozen_p50_us: frozen_p50,
            frozen_qps,
            restore_frozen_ms,
            serve_p50_us: Some(serve.p50_us),
            serve_p95_us: Some(serve.p95_us),
        };
        let found = regressions(&prev, &fresh, compare_slack);
        if found.is_empty() {
            eprintln!(
                "OK: no >{:.0}% regression vs {prev_path} (frozen p50 {:.3}us vs {:.3}us, qps {:.0} vs {:.0}, restore {:.3}ms vs {:.3}ms)",
                compare_slack * 100.0,
                fresh.frozen_p50_us,
                prev.frozen_p50_us,
                fresh.frozen_qps,
                prev.frozen_qps,
                fresh.restore_frozen_ms,
                prev.restore_frozen_ms,
            );
        } else {
            for msg in &found {
                eprintln!("FAIL: {msg}");
            }
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} requires an argument");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}
