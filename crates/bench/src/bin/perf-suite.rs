//! `perf-suite` — the fixed, versioned inference-performance suite.
//!
//! Runs three measurements on a 10k-bucket 2-D QuadHist and writes one
//! machine-readable JSON report (default `BENCH_6.json`, the PR-6 schema):
//!
//! * **single-query p50** — per-query latency of the pointer tree vs the
//!   frozen SoA artifact, and their speedup ratio (the PR-6 acceptance
//!   floor is 3×);
//! * **batch throughput** — queries/second through the allocation-free
//!   `estimate_into` batch path, tree vs frozen;
//! * **restore** — wall time of `load_quadhist` (pointer layout) and of
//!   `load_frozen` (straight into the frozen layout, including the
//!   freeze compilation).
//!
//! Usage: `perf-suite [--out FILE] [--buckets N] [--check-speedup X]`.
//! With `--check-speedup X` the process exits non-zero when the measured
//! single-query speedup falls below `X` — how CI enforces the floor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selearn_core::{load_frozen, load_quadhist, save_quadhist, QuadHist, SelectivityEstimator};
use selearn_geom::{Range, Rect, VolumeEstimator};
use std::collections::VecDeque;
use std::time::Instant;

/// BFS-splits the unit square into at least `target` quadtree leaves with
/// normalized weights.
fn buckets(target: usize) -> Vec<(Rect, f64)> {
    let mut queue: VecDeque<Rect> = VecDeque::from([Rect::unit(2)]);
    while queue.len() < target {
        let cell = match queue.pop_front() {
            Some(c) => c,
            None => break,
        };
        queue.extend(cell.split());
    }
    let n = queue.len();
    queue
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, 1.0 / n as f64 * ((i % 7) + 1) as f64 / 4.0))
        .collect()
}

fn probes(n: usize, seed: u64) -> Vec<Range> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let cx: f64 = rng.gen();
            let cy: f64 = rng.gen();
            let w: f64 = rng.gen::<f64>() * 0.3 + 0.01;
            Rect::new(
                vec![(cx - w).max(0.0), (cy - w).max(0.0)],
                vec![(cx + w).min(1.0), (cy + w).min(1.0)],
            )
            .into()
        })
        .collect()
}

/// Median of per-query microseconds: each probe is timed over `repeats`
/// back-to-back evaluations (amortizing clock overhead), and the p50 is
/// taken across probes.
fn single_query_p50_us<M: SelectivityEstimator>(
    model: &M,
    queries: &[Range],
    repeats: usize,
) -> f64 {
    let mut samples: Vec<f64> = queries
        .iter()
        .map(|q| {
            let t0 = Instant::now();
            let mut acc = 0.0;
            for _ in 0..repeats {
                acc += model.estimate(q);
            }
            let us = t0.elapsed().as_secs_f64() * 1e6 / repeats as f64;
            assert!(acc.is_finite());
            us
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Batch throughput in queries/second through `estimate_into`.
fn batch_qps<M: SelectivityEstimator>(model: &M, queries: &[Range], repeats: usize) -> f64 {
    let mut out = vec![0.0; queries.len()];
    let t0 = Instant::now();
    for _ in 0..repeats {
        model.estimate_into(queries, &mut out);
    }
    (queries.len() * repeats) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = take_value(&mut args, "--out").unwrap_or_else(|| "BENCH_6.json".to_string());
    let n_buckets: usize = take_value(&mut args, "--buckets")
        .map(|v| v.parse().unwrap_or(10_000))
        .unwrap_or(10_000);
    let check_speedup: Option<f64> =
        take_value(&mut args, "--check-speedup").and_then(|v| v.parse().ok());
    if !args.is_empty() {
        eprintln!("unknown arguments: {args:?}");
        std::process::exit(2);
    }

    let bs = buckets(n_buckets);
    let model = match QuadHist::from_buckets(Rect::unit(2), &bs, VolumeEstimator::default()) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot build bench model: {e}");
            std::process::exit(1);
        }
    };
    let frozen = model.freeze();
    let single = probes(128, 9);
    let batch = probes(1024, 10);

    // Warm-up so first-touch page faults don't land in the tree's numbers.
    let _ = single_query_p50_us(&model, &single[..16], 2);
    let _ = single_query_p50_us(&frozen, &single[..16], 2);

    let tree_p50 = single_query_p50_us(&model, &single, 24);
    let frozen_p50 = single_query_p50_us(&frozen, &single, 24);
    let single_speedup = tree_p50 / frozen_p50;

    let tree_qps = batch_qps(&model, &batch, 8);
    let frozen_qps = batch_qps(&frozen, &batch, 8);

    let mut dump = Vec::new();
    if let Err(e) = save_quadhist(&model, &mut dump) {
        eprintln!("cannot serialize bench model: {e}");
        std::process::exit(1);
    }
    let t0 = Instant::now();
    let restored_tree = load_quadhist(&dump[..]);
    let restore_tree_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let restored_frozen = load_frozen(&dump[..]);
    let restore_frozen_ms = t0.elapsed().as_secs_f64() * 1e3;
    if restored_tree.is_err() || restored_frozen.is_err() {
        eprintln!("bench model failed to round-trip");
        std::process::exit(1);
    }

    let json = format!(
        "{{\n  \"schema\": \"selearn-bench\",\n  \"version\": 6,\n  \"suite\": \"frozen-inference\",\n  \"config\": {{\n    \"model\": \"quadhist\",\n    \"dim\": 2,\n    \"buckets\": {},\n    \"single_probes\": {},\n    \"batch_probes\": {}\n  }},\n  \"single_query\": {{\n    \"tree_p50_us\": {:.3},\n    \"frozen_p50_us\": {:.3},\n    \"speedup\": {:.2}\n  }},\n  \"batch\": {{\n    \"tree_qps\": {:.0},\n    \"frozen_qps\": {:.0},\n    \"speedup\": {:.2}\n  }},\n  \"restore\": {{\n    \"tree_ms\": {:.3},\n    \"frozen_ms\": {:.3}\n  }}\n}}\n",
        model.num_buckets(),
        single.len(),
        batch.len(),
        tree_p50,
        frozen_p50,
        single_speedup,
        tree_qps,
        frozen_qps,
        frozen_qps / tree_qps,
        restore_tree_ms,
        restore_frozen_ms,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");

    if let Some(floor) = check_speedup {
        if single_speedup < floor {
            eprintln!("FAIL: single-query speedup {single_speedup:.2}x is below the {floor}x floor");
            std::process::exit(1);
        }
        eprintln!("OK: single-query speedup {single_speedup:.2}x >= {floor}x");
    }
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} requires an argument");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}
