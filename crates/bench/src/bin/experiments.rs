//! Experiment driver regenerating every table and figure of the paper's
//! evaluation (Section 4 + Appendix B) plus the theory checks of Section 2.
//!
//! Usage:
//! ```text
//! cargo run -p selearn-bench --release --bin experiments -- all [--quick]
//! cargo run -p selearn-bench --release --bin experiments -- fig9 table1 ...
//! cargo run -p selearn-bench --release --bin experiments -- accuracy --trace-out trace.jsonl
//! ```
//!
//! Each experiment writes `results/<id>.csv`, prints an aligned table,
//! and finishes with an observability report (span timing tree + counter
//! dump). `--trace-out <path>` additionally streams every structured
//! event — spans, counters, histograms, solver iterations and reports,
//! metrics summaries — as one JSON object per line. Progress logging is
//! leveled: `SELEARN_LOG=off|info|debug` (default `info`).
//! See DESIGN.md for the experiment index and EXPERIMENTS.md for the
//! paper-vs-measured record.

// The panic-free gate: unwrap/expect are banned outside test code.
#![deny(clippy::unwrap_used, clippy::expect_used)]
use rand::rngs::StdRng;
use rand::SeedableRng;
use selearn_bench::harness::{
    gen_workload, label_row, run_methods, AccuracyRow, ExperimentScale, Method,
};
use selearn_bench::table::{render_table, write_csv};
use selearn_core::{
    Objective, PtsHist, PtsHistConfig, QuadHist, QuadHistConfig, SelearnError,
    SelectivityEstimator, TrainingQuery,
};
use selearn_data::{
    census_like, dmv_like, forest_like, l_inf_error, power_like, rms_error, CenterDistribution,
    Dataset, QueryType, Workload, WorkloadSpec,
};
use selearn_geom::{Point, Range, RangeClass, Rect, VolumeEstimator};
use selearn_theory as theory;
use std::collections::BTreeSet;
use std::time::Instant;

const SEED: u64 = 0x5e1e_c7ed;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = take_flag_value(&mut args, "--trace-out");
    let rows_override = take_flag_value(&mut args, "--rows");
    let test_n_override = take_flag_value(&mut args, "--test-n");
    let train_sizes_override = take_flag_value(&mut args, "--train-sizes");
    let quick = args.iter().any(|a| a == "--quick");
    let mut scale = if quick {
        ExperimentScale::quick()
    } else {
        ExperimentScale::full()
    };
    if let Some(v) = rows_override {
        scale.rows = parse_count("--rows", &v);
    }
    if let Some(v) = test_n_override {
        scale.test_n = parse_count("--test-n", &v);
    }
    if let Some(v) = train_sizes_override {
        let sizes: Vec<usize> = v
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| parse_count("--train-sizes", s))
            .collect();
        scale.train_sizes = Box::leak(sizes.into_boxed_slice());
    }
    // Reject degenerate scales here, before any experiment starts: an
    // empty `train_sizes` used to surface as an unwrap panic deep inside
    // fig9/fig13 instead of a readable configuration error.
    if let Err(e) = scale.validate() {
        eprintln!("invalid experiment configuration: {e}");
        std::process::exit(2);
    }
    let mut wanted: BTreeSet<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if wanted.is_empty() || wanted.contains("all") {
        wanted = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }

    // Aggregation (spans/counters/histograms) is on by default in the
    // driver: it feeds the per-experiment report and costs well under the
    // 5% overhead budget (DESIGN.md). `SELEARN_OBS=off` turns it off (the
    // CI overhead check A/Bs the two modes); --trace-out adds streaming.
    let stats_off = std::env::var("SELEARN_OBS").is_ok_and(|v| v == "off" || v == "0");
    selearn_obs::enable_stats(!stats_off);
    if let Some(path) = &trace_out {
        install_trace_sink(path);
    }

    let t0 = Instant::now();
    for id in &wanted {
        let start = Instant::now();
        selearn_obs::info!("== running {id} ==");
        let result: Result<(), SelearnError> = match id.as_str() {
            "fig7" => fig7(&scale),
            "fig9" => fig9(&scale),
            "fig10_12" => workload_sweep(
                "fig10_12",
                &scale,
                power2d(&scale),
                rect_spec(CenterDistribution::DataDriven),
                true,
            ),
            "fig13_14" => fig13_14(&scale),
            "fig15" => workload_sweep(
                "fig15",
                &scale,
                power2d(&scale),
                rect_spec(CenterDistribution::default_gaussian()),
                true,
            ),
            "fig16" => fig16(&scale),
            "fig17" => fig17(&scale),
            "fig18_19" => fig18_19(&scale),
            "fig20_21" => query_type_sweep("fig20_21", &scale, QueryType::Halfspace),
            "fig22_23" => query_type_sweep("fig22_23", &scale, QueryType::Ball),
            "fig24_29" => fig24_29(&scale),
            "table1" => table_qerror("table1", &scale, power2d(&scale), true),
            "table3" => table_qerror("table3", &scale, forest2d(&scale), true),
            "table4" => table_qerror("table4", &scale, dmv_proj(&scale), false),
            "table5" => table_qerror("table5", &scale, census_proj(&scale), false),
            "appendix_b" => appendix_b(&scale),
            "theory_vc" => theory_vc(),
            "theory_fat" => theory_fat(),
            "theory_bounds" => theory_bounds(),
            "ablation_solver" => ablation_solver(&scale),
            "ablation_ptshist_split" => ablation_ptshist_split(&scale),
            "ablation_quadhist_cap" => ablation_quadhist_cap(&scale),
            "ablation_volume" => ablation_volume(),
            "extension_models" => extension_models(&scale),
            "drift_adaptation" => drift_adaptation(&scale),
            "accuracy" => accuracy(&scale),
            "serve_export" => serve_export(&scale),
            other => {
                selearn_obs::info!("unknown experiment id: {other}");
                Ok(())
            }
        };
        if let Err(e) = result {
            eprintln!("experiment {id} failed: {e}");
            std::process::exit(1);
        }
        selearn_obs::info!("== {id} done in {:.1}s ==", start.elapsed().as_secs_f64());
        finish_experiment(id);
    }
    selearn_obs::info!("total: {:.1}s", t0.elapsed().as_secs_f64());
    selearn_obs::flush_sink();
}

/// Parses a numeric CLI flag value, exiting with a usage error otherwise.
/// Range validity (non-zero, non-empty sweep) is checked separately by
/// `ExperimentScale::validate`.
fn parse_count(flag: &str, value: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("{flag} expects a non-negative integer, got {value:?}");
            std::process::exit(2);
        }
    }
}

/// Removes `flag <value>` from `args`, returning the value when present.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} requires a path argument");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

#[cfg(feature = "obs-jsonl")]
fn install_trace_sink(path: &str) {
    match selearn_obs::JsonlSink::create(std::path::Path::new(path)) {
        Ok(sink) => selearn_obs::set_sink(std::sync::Arc::new(sink)),
        Err(e) => {
            eprintln!("cannot open trace file {path}: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(not(feature = "obs-jsonl"))]
fn install_trace_sink(_path: &str) {
    eprintln!("--trace-out requires the `obs-jsonl` feature (enabled by default)");
    std::process::exit(2);
}

/// Ends one experiment's observability scope: streams the aggregate
/// registries into the trace (if any), prints the text report, and clears
/// the registries so the next experiment starts from zero.
fn finish_experiment(id: &str) {
    selearn_obs::flush_aggregates();
    let report = selearn_obs::report::render();
    if !report.is_empty() {
        println!("\n--- {id}: observability ---");
        print!("{report}");
    }
    selearn_obs::reset();
}

const ALL_IDS: &[&str] = &[
    "fig7",
    "fig9",
    "fig10_12",
    "fig13_14",
    "fig15",
    "fig16",
    "fig17",
    "fig18_19",
    "fig20_21",
    "fig22_23",
    "fig24_29",
    "table1",
    "table3",
    "table4",
    "table5",
    "appendix_b",
    "theory_vc",
    "theory_fat",
    "theory_bounds",
    "ablation_solver",
    "ablation_ptshist_split",
    "ablation_quadhist_cap",
    "ablation_volume",
    "extension_models",
    "drift_adaptation",
    "accuracy",
    "serve_export",
];

// ---------- dataset + spec helpers ----------

fn power2d(scale: &ExperimentScale) -> Dataset {
    power_like(scale.rows, SEED).project(&[0, 2])
}

fn forest2d(scale: &ExperimentScale) -> Dataset {
    forest_like(scale.rows, SEED).project(&[0, 1])
}

fn forest_d(scale: &ExperimentScale, d: usize) -> Dataset {
    forest_like(scale.rows, SEED).project(&(0..d).collect::<Vec<_>>())
}

fn dmv_proj(scale: &ExperimentScale) -> Dataset {
    // 2 categorical + 1 numeric attribute, echoing the paper's random
    // projections of DMV (10 categorical + 1 numeric)
    dmv_like(scale.rows, SEED).project(&[1, 8, 10])
}

fn census_proj(scale: &ExperimentScale) -> Dataset {
    // 1 categorical + 2 numeric
    census_like(scale.rows, SEED).project(&[0, 8, 12])
}

fn rect_spec(center: CenterDistribution) -> WorkloadSpec {
    WorkloadSpec::new(QueryType::Rect, center)
}

fn to_training(w: &Workload) -> Vec<TrainingQuery> {
    w.queries()
        .iter()
        .map(|q| TrainingQuery {
            range: q.range.clone(),
            selectivity: q.selectivity,
        })
        .collect()
}

fn emit(id: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    write_csv(format!("results/{id}.csv"), header, rows)?;
    println!("\n--- {id} ---");
    println!("{}", render_table(header, rows));
    Ok(())
}

fn emit_accuracy(id: &str, rows: &[AccuracyRow]) -> std::io::Result<()> {
    let cells: Vec<Vec<String>> = rows.iter().map(AccuracyRow::cells).collect();
    emit(id, &label_row(), &cells)
}

// ---------- Section 4.1 ----------

/// Figure 9: RMS error vs model complexity, one curve per training size.
fn fig9(scale: &ExperimentScale) -> Result<(), SelearnError> {
    let data = power2d(scale);
    let spec = rect_spec(CenterDistribution::DataDriven);
    let max_n = scale.train_sizes.iter().copied().max().unwrap_or(0);
    let all = gen_workload(&data, &spec, max_n + scale.test_n, SEED)?;
    let (pool, test) = all.split(max_n);
    let truth: Vec<f64> = test.queries().iter().map(|q| q.selectivity).collect();
    let taus = [0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001];

    let mut rows = Vec::new();
    for &n in scale.train_sizes {
        let (train_w, _) = pool.split(n);
        let train = to_training(&train_w);
        for &tau in &taus {
            let qh = QuadHist::fit(Rect::unit(2), &train, &QuadHistConfig::with_tau(tau))?;
            let est: Vec<f64> = test
                .queries()
                .iter()
                .map(|q| qh.estimate(&q.range))
                .collect();
            rows.push(vec![
                n.to_string(),
                format!("{tau}"),
                qh.num_buckets().to_string(),
                format!("{:.5}", rms_error(&est, &truth)),
            ]);
        }
    }
    emit("fig9", &["train_size", "tau", "buckets", "rms"], &rows)?;
    Ok(())
}

/// Shared driver for Figures 10–12 / 13 / 15 / 31–45: model complexity,
/// RMS error, and training time vs training size for the four methods.
fn workload_sweep(
    id: &str,
    scale: &ExperimentScale,
    data: Dataset,
    spec: WorkloadSpec,
    with_isomer: bool,
) -> Result<(), SelearnError> {
    let mut methods = vec![
        Method::QuadHist,
        Method::PtsHist,
        Method::QuickSel,
        Method::Uniform,
    ];
    if with_isomer {
        methods.push(Method::Isomer);
    }
    let rows = run_methods(&data, &spec, &methods, scale, SEED ^ hash(id))?;
    emit_accuracy(id, &rows)?;
    Ok(())
}

// ---------- Section 4.2 ----------

/// Figures 13/32 + Figure 14: Random workload, all queries and the
/// non-empty subset.
fn fig13_14(scale: &ExperimentScale) -> Result<(), SelearnError> {
    let data = power2d(scale);
    let spec = rect_spec(CenterDistribution::Random);
    workload_sweep("fig13", scale, data.clone(), spec.clone(), true)?;

    // Figure 14: evaluate on the non-empty test queries only.
    let max_n = scale.train_sizes.iter().copied().max().unwrap_or(0);
    let all = gen_workload(&data, &spec, max_n + 4 * scale.test_n, SEED ^ 0xf14)?;
    let (pool, test_all) = all.split(max_n);
    let test = test_all.filter_nonempty(0.0);
    let truth: Vec<f64> = test.queries().iter().map(|q| q.selectivity).collect();
    let mut rows = Vec::new();
    for &n in scale.train_sizes {
        let (train_w, _) = pool.split(n);
        let train = to_training(&train_w);
        for m in [
            Method::QuadHist,
            Method::PtsHist,
            Method::QuickSel,
            Method::Isomer,
        ] {
            if m == Method::Isomer && n > scale.isomer_limit {
                continue;
            }
            let (model, ms) = m.fit(&Rect::unit(2), &train)?;
            let est: Vec<f64> = test
                .queries()
                .iter()
                .map(|q| model.estimate(&q.range))
                .collect();
            let q = selearn_data::q_error_quantiles(&est, &truth);
            rows.push(vec![
                m.name().to_string(),
                n.to_string(),
                test.len().to_string(),
                format!("{:.5}", rms_error(&est, &truth)),
                format!("{:.3}", q.p50),
                format!("{:.3}", q.p95),
                format!("{:.3}", q.p99),
                format!("{:.3}", q.max),
                format!("{ms:.1}"),
            ]);
        }
    }
    emit(
        "fig14_nonempty",
        &[
            "method",
            "train_size",
            "test_n",
            "rms",
            "q50",
            "q95",
            "q99",
            "qmax",
            "train_wall_ms",
        ],
        &rows,
    )?;
    Ok(())
}

/// Figure 7: dump the learned bucket structures for visual inspection.
fn fig7(scale: &ExperimentScale) -> Result<(), SelearnError> {
    let data = power2d(scale);
    let spec = rect_spec(CenterDistribution::Random);
    let w = gen_workload(&data, &spec, 1000, SEED ^ 0x7)?;
    let train = to_training(&w);

    // data sample
    let mut rng = StdRng::seed_from_u64(SEED);
    let pts = data.sample_points(1000, &mut rng);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| vec![format!("{:.5}", p[0]), format!("{:.5}", p[1])])
        .collect();
    write_csv("results/fig7_data.csv", &["x", "y"], &rows)?;

    // QuadHist buckets (τ = 0.01 as in the figure caption)
    let qh = QuadHist::fit(Rect::unit(2), &train, &QuadHistConfig::with_tau(0.01))?;
    let rows: Vec<Vec<String>> = qh
        .buckets()
        .iter()
        .map(|(r, w)| {
            vec![
                format!("{:.5}", r.lo()[0]),
                format!("{:.5}", r.lo()[1]),
                format!("{:.5}", r.hi()[0]),
                format!("{:.5}", r.hi()[1]),
                format!("{:.6}", w),
            ]
        })
        .collect();
    write_csv(
        "results/fig7_quadhist.csv",
        &["lo_x", "lo_y", "hi_x", "hi_y", "weight"],
        &rows,
    )?;

    // PtsHist support of size 1000
    let ph = PtsHist::fit(
        Rect::unit(2),
        &train,
        &PtsHistConfig::with_model_size(1000),
    )?;
    let rows: Vec<Vec<String>> = ph
        .support()
        .map(|(p, w)| {
            vec![
                format!("{:.5}", p[0]),
                format!("{:.5}", p[1]),
                format!("{:.6}", w),
            ]
        })
        .collect();
    write_csv("results/fig7_ptshist.csv", &["x", "y", "weight"], &rows)?;

    println!("\n--- fig7 ---");
    println!(
        "wrote results/fig7_data.csv (1000 pts), fig7_quadhist.csv ({} buckets), fig7_ptshist.csv (1000 pts)",
        qh.num_buckets()
    );
    let _ = scale;
    Ok(())
}

// ---------- Section 4.3 ----------

/// Figure 16: train/test Gaussian-shift heat map for QuadHist.
fn fig16(scale: &ExperimentScale) -> Result<(), SelearnError> {
    let data = power2d(scale);
    let means = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
    let n_train = if scale.train_sizes.len() > 2 { 500 } else { 100 };
    // paper: covariance 0.033 ⇒ σ ≈ 0.18
    let sigma = 0.182;

    // pre-generate one workload per mean
    let workloads: Vec<Workload> = means
        .iter()
        .map(|&mu| {
            gen_workload(
                &data,
                &rect_spec(CenterDistribution::Gaussian {
                    mean: mu,
                    std: sigma,
                }),
                n_train + scale.test_n,
                SEED ^ ((mu * 100.0) as u64),
            )
        })
        .collect::<Result<_, _>>()?;

    let mut rows = Vec::new();
    for (i, &mu_tr) in means.iter().enumerate() {
        let (train_w, _) = workloads[i].split(n_train);
        let train = to_training(&train_w);
        let qh = QuadHist::fit_with_bucket_target(
            Rect::unit(2),
            &train,
            4 * n_train,
            &QuadHistConfig::default(),
        )?;
        for (j, &mu_te) in means.iter().enumerate() {
            let (_, test) = workloads[j].split(n_train);
            let truth: Vec<f64> = test.queries().iter().map(|q| q.selectivity).collect();
            let est: Vec<f64> = test
                .queries()
                .iter()
                .map(|q| qh.estimate(&q.range))
                .collect();
            rows.push(vec![
                format!("{mu_tr}"),
                format!("{mu_te}"),
                format!("{:.5}", rms_error(&est, &truth)),
            ]);
        }
    }
    emit("fig16", &["train_mean", "test_mean", "rms"], &rows)?;
    Ok(())
}

// ---------- Section 4.4 ----------

/// Figure 17: PtsHist RMS vs training size across dimensions (Forest).
fn fig17(scale: &ExperimentScale) -> Result<(), SelearnError> {
    let dims: &[usize] = if scale.train_sizes.len() > 2 {
        &[2, 4, 6, 8, 10]
    } else {
        &[2, 4]
    };
    let mut rows = Vec::new();
    for &d in dims {
        let data = forest_d(scale, d);
        let spec = rect_spec(CenterDistribution::DataDriven);
        let sweep = run_methods(&data, &spec, &[Method::PtsHist], scale, SEED ^ d as u64)?;
        for r in sweep {
            rows.push(vec![
                d.to_string(),
                r.train_size.to_string(),
                r.buckets.to_string(),
                format!("{:.5}", r.rms),
                format!("{:.1}", r.train_wall_ms),
            ]);
        }
    }
    emit(
        "fig17",
        &["dim", "train_size", "buckets", "rms", "train_wall_ms"],
        &rows,
    )?;
    Ok(())
}

/// Figures 18–19: RMS and training time vs dimension at n = 1000.
fn fig18_19(scale: &ExperimentScale) -> Result<(), SelearnError> {
    let dims: &[usize] = if scale.train_sizes.len() > 2 {
        &[2, 4, 6, 8, 10]
    } else {
        &[2, 3]
    };
    let n = if scale.train_sizes.len() > 2 { 1000 } else { 100 };
    let mut rows = Vec::new();
    for &d in dims {
        let data = forest_d(scale, d);
        let spec = rect_spec(CenterDistribution::DataDriven);
        let all = gen_workload(&data, &spec, n + scale.test_n, SEED ^ ((d as u64) << 8))?;
        let (train_w, test) = all.split(n);
        let train = to_training(&train_w);
        let truth: Vec<f64> = test.queries().iter().map(|q| q.selectivity).collect();
        for m in [Method::QuadHist, Method::PtsHist, Method::QuickSel] {
            // QuadHist's 2^d splitting and box intersections stop making
            // sense in high d — the paper also omits it there.
            if m == Method::QuadHist && d > 6 {
                continue;
            }
            let (model, ms) = m.fit(&Rect::unit(d), &train)?;
            let est: Vec<f64> = test
                .queries()
                .iter()
                .map(|q| model.estimate(&q.range))
                .collect();
            rows.push(vec![
                m.name().to_string(),
                d.to_string(),
                model.num_buckets().to_string(),
                format!("{:.5}", rms_error(&est, &truth)),
                format!("{ms:.1}"),
            ]);
        }
    }
    emit(
        "fig18_19",
        &["method", "dim", "buckets", "rms", "train_wall_ms"],
        &rows,
    )?;
    Ok(())
}

// ---------- Section 4.5 ----------

/// Figures 20–23: halfspace / ball queries across dimensions.
fn query_type_sweep(id: &str, scale: &ExperimentScale, qt: QueryType) -> Result<(), SelearnError> {
    let dims: &[usize] = if scale.train_sizes.len() > 2 {
        &[2, 4, 6, 8]
    } else {
        &[2, 3]
    };
    let mut rows = Vec::new();
    for &d in dims {
        let data = forest_d(scale, d);
        let spec = WorkloadSpec::new(qt, CenterDistribution::DataDriven);
        for &n in scale.train_sizes {
            let all = gen_workload(
                &data,
                &spec,
                n + scale.test_n,
                SEED ^ hash(id) ^ ((d as u64) << 4) ^ (n as u64),
            )?;
            let (train_w, test) = all.split(n);
            let train = to_training(&train_w);
            let truth: Vec<f64> = test.queries().iter().map(|q| q.selectivity).collect();
            let mut methods = vec![Method::PtsHist];
            // QuadHist only in 2D (intersection volumes get too slow
            // otherwise — exactly the paper's observation)
            if d == 2 && n <= 500 {
                methods.push(Method::QuadHist);
            }
            for m in methods {
                let (model, ms) = m.fit(&Rect::unit(d), &train)?;
                let est: Vec<f64> = test
                    .queries()
                    .iter()
                    .map(|q| model.estimate(&q.range))
                    .collect();
                rows.push(vec![
                    m.name().to_string(),
                    d.to_string(),
                    n.to_string(),
                    model.num_buckets().to_string(),
                    format!("{:.5}", rms_error(&est, &truth)),
                    format!("{ms:.1}"),
                ]);
            }
        }
    }
    emit(
        id,
        &["method", "dim", "train_size", "buckets", "rms", "train_wall_ms"],
        &rows,
    )?;
    Ok(())
}

// ---------- Section 4.6 ----------

/// Figures 24–29: L2 vs L∞ training objectives (train/test RMS and L∞
/// versus model complexity).
fn fig24_29(scale: &ExperimentScale) -> Result<(), SelearnError> {
    let data = power2d(scale);
    let spec = rect_spec(CenterDistribution::DataDriven);
    let n = if scale.train_sizes.len() > 2 { 500 } else { 100 };
    let all = gen_workload(&data, &spec, n + scale.test_n, SEED ^ 0x2429)?;
    let (train_w, test) = all.split(n);
    let train = to_training(&train_w);
    let truth_train: Vec<f64> = train.iter().map(|q| q.selectivity).collect();
    let truth_test: Vec<f64> = test.queries().iter().map(|q| q.selectivity).collect();

    let mut rows = Vec::new();
    for &target in &[100usize, 200, 400, 800, 1600] {
        for (obj_name, obj) in [("L2", Objective::L2), ("Linf", Objective::LInfSmoothed)] {
            let qh = QuadHist::fit_with_bucket_target(
                Rect::unit(2),
                &train,
                target,
                &QuadHistConfig::default().objective(obj.clone()),
            )?;
            let est_train: Vec<f64> = train.iter().map(|q| qh.estimate(&q.range)).collect();
            let est_test: Vec<f64> = test
                .queries()
                .iter()
                .map(|q| qh.estimate(&q.range))
                .collect();
            rows.push(vec![
                obj_name.to_string(),
                qh.num_buckets().to_string(),
                format!("{:.5}", rms_error(&est_train, &truth_train)),
                format!("{:.5}", rms_error(&est_test, &truth_test)),
                format!("{:.5}", l_inf_error(&est_train, &truth_train)),
                format!("{:.5}", l_inf_error(&est_test, &truth_test)),
            ]);
        }
    }
    emit(
        "fig24_29",
        &[
            "objective",
            "buckets",
            "train_rms",
            "test_rms",
            "train_linf",
            "test_linf",
        ],
        &rows,
    )?;
    Ok(())
}

// ---------- Tables 1, 3, 4, 5 ----------

/// Q-error tables over a dataset: workloads × training sizes × methods.
fn table_qerror(id: &str, scale: &ExperimentScale, data: Dataset, all_workloads: bool) -> Result<(), SelearnError> {
    let workloads: Vec<(&str, WorkloadSpec)> = if all_workloads {
        vec![
            ("Data-driven", rect_spec(CenterDistribution::DataDriven)),
            ("Random", rect_spec(CenterDistribution::Random)),
            ("Gaussian", rect_spec(CenterDistribution::default_gaussian())),
        ]
    } else {
        // Census/DMV: the paper reports Data-driven only; flag the
        // categorical dims so equality predicates are generated.
        let cat_dims: Vec<usize> = if id == "table4" { vec![0, 1] } else { vec![0] };
        vec![(
            "Data-driven",
            rect_spec(CenterDistribution::DataDriven).with_categorical(cat_dims),
        )]
    };

    let mut rows = Vec::new();
    for (wname, spec) in &workloads {
        let sweep = run_methods(
            &data,
            spec,
            &[
                Method::Isomer,
                Method::QuickSel,
                Method::QuadHist,
                Method::PtsHist,
            ],
            scale,
            SEED ^ hash(id) ^ hash(wname),
        )?;
        for r in sweep {
            rows.push(vec![
                wname.to_string(),
                r.method.to_string(),
                r.train_size.to_string(),
                format!("{:.3}", r.q[0]),
                format!("{:.3}", r.q[1]),
                format!("{:.3}", r.q[2]),
                format!("{:.3}", r.q[3]),
            ]);
        }
    }
    emit(
        id,
        &["workload", "method", "train_size", "q50", "q95", "q99", "qmax"],
        &rows,
    )?;
    Ok(())
}

// ---------- Appendix B ----------

/// Figures 31–51: the complexity/error/time sweeps for the remaining
/// dataset × workload combinations.
fn appendix_b(scale: &ExperimentScale) -> Result<(), SelearnError> {
    workload_sweep(
        "fig31_33_power_random",
        scale,
        power2d(scale),
        rect_spec(CenterDistribution::Random),
        true,
    )?;
    workload_sweep(
        "fig34_36_power_gaussian",
        scale,
        power2d(scale),
        rect_spec(CenterDistribution::default_gaussian()),
        true,
    )?;
    workload_sweep(
        "fig37_39_forest_datadriven",
        scale,
        forest2d(scale),
        rect_spec(CenterDistribution::DataDriven),
        true,
    )?;
    workload_sweep(
        "fig40_42_forest_random",
        scale,
        forest2d(scale),
        rect_spec(CenterDistribution::Random),
        true,
    )?;
    workload_sweep(
        "fig43_45_forest_gaussian",
        scale,
        forest2d(scale),
        rect_spec(CenterDistribution::default_gaussian()),
        true,
    )?;
    workload_sweep(
        "fig46_48_dmv_datadriven",
        scale,
        dmv_proj(scale),
        rect_spec(CenterDistribution::DataDriven).with_categorical(vec![0, 1]),
        true,
    )?;
    workload_sweep(
        "fig49_51_census_datadriven",
        scale,
        census_proj(scale),
        rect_spec(CenterDistribution::DataDriven).with_categorical(vec![0]),
        true,
    )?;
    Ok(())
}

// ---------- Theory experiments ----------

/// Section 2.2 claims: empirical VC lower bounds vs known values.
fn theory_vc() -> Result<(), SelearnError> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut rows = Vec::new();
    for (name, d, known, f) in [
        (
            "rect",
            2usize,
            RangeClass::Rect.vc_dim(2),
            theory::rects_can_realize as fn(&[Point], u64) -> bool,
        ),
        (
            "halfspace",
            2,
            RangeClass::Halfspace.vc_dim(2),
            theory::halfspaces_can_realize,
        ),
        ("ball", 2, 3, theory::balls_can_realize), // exact disc VC-dim is 3 (≤ d+2 bound)
        ("rect", 3, RangeClass::Rect.vc_dim(3), theory::rects_can_realize),
        (
            "halfspace",
            3,
            RangeClass::Halfspace.vc_dim(3),
            theory::halfspaces_can_realize,
        ),
    ] {
        let bound = theory::empirical_vc_lower_bound(d, known + 1, 400, f, &mut rng);
        rows.push(vec![
            name.to_string(),
            d.to_string(),
            known.to_string(),
            bound.to_string(),
        ]);
    }
    // polygons: shattering grows without bound
    for k in [4usize, 8, 12] {
        let pts = theory::shattered_circle_points(k);
        // every subset of convex-position points is polygon-realizable
        rows.push(vec![
            "convex-polygon".to_string(),
            "2".to_string(),
            "inf".to_string(),
            format!(">= {}", pts.len()),
        ]);
    }
    emit(
        "theory_vc",
        &["range_class", "dim", "known_vc", "empirical_lower_bound"],
        &rows,
    )?;
    Ok(())
}

/// Lemma 2.7 construction + Lemma 2.4 crossing-number growth.
fn theory_fat() -> Result<(), SelearnError> {
    let mut rows = Vec::new();
    for k in 1..=3usize {
        let (ranges, sigma, cands) = theory::delta_distribution_fat_construction(k);
        let shattered = theory::is_gamma_shattered(&ranges, &sigma, 0.49, &cands);
        rows.push(vec![format!("fat_construction_k{k}"), shattered.to_string()]);
    }
    emit("theory_fat", &["check", "result"], &rows)?;

    // crossing numbers: identity vs greedy orderings on random rects
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xfa7);
    let mut rows = Vec::new();
    for k in [8usize, 16, 32, 64] {
        use rand::Rng;
        let ranges: Vec<Range> = (0..k)
            .map(|_| {
                let cx: f64 = rng.gen();
                let cy: f64 = rng.gen();
                let w: f64 = rng.gen::<f64>() * 0.4;
                Rect::new(
                    vec![(cx - w).max(0.0), (cy - w).max(0.0)],
                    vec![(cx + w).min(1.0), (cy + w).min(1.0)],
                )
                .into()
            })
            .collect();
        let pts: Vec<Point> = (0..2000)
            .map(|_| Point::new(vec![rng.gen(), rng.gen()]))
            .collect();
        let identity: Vec<usize> = (0..k).collect();
        let greedy = theory::greedy_low_crossing_ordering(&ranges, &pts);
        rows.push(vec![
            k.to_string(),
            theory::max_point_crossings(&ranges, &identity, &pts).to_string(),
            theory::max_point_crossings(&ranges, &greedy, &pts).to_string(),
        ]);
    }
    emit(
        "theory_crossings",
        &["k", "identity_max_crossings", "greedy_max_crossings"],
        &rows,
    )?;
    Ok(())
}

/// Theorem 2.1 sample-size calculator across classes and dimensions.
fn theory_bounds() -> Result<(), SelearnError> {
    let mut rows = Vec::new();
    for class in [RangeClass::Rect, RangeClass::Halfspace, RangeClass::Ball] {
        for d in [2usize, 4, 6] {
            for eps in [0.2f64, 0.1, 0.05] {
                let n0 = theory::training_set_size(class, d, eps, 0.05);
                rows.push(vec![
                    format!("{class:?}"),
                    d.to_string(),
                    format!("{eps}"),
                    format!("{:.3e}", n0),
                ]);
            }
        }
    }
    emit("theory_bounds", &["class", "dim", "eps", "n0"], &rows)?;
    Ok(())
}

// ---------- Ablations ----------

/// FISTA vs NNLS weight solvers on the same buckets.
fn ablation_solver(scale: &ExperimentScale) -> Result<(), SelearnError> {
    let data = power2d(scale);
    let spec = rect_spec(CenterDistribution::DataDriven);
    let sizes: &[usize] = if scale.train_sizes.len() > 2 {
        &[50, 200, 500]
    } else {
        &[50]
    };
    let small = ExperimentScale {
        train_sizes: sizes,
        ..*scale
    };
    let rows = run_methods(
        &data,
        &spec,
        &[Method::QuadHist, Method::QuadHistNnls],
        &small,
        SEED ^ 0xab1,
    )?;
    emit_accuracy("ablation_solver", &rows)?;
    Ok(())
}

/// PtsHist interior/uniform split sweep (paper fixes 0.9/0.1).
fn ablation_ptshist_split(scale: &ExperimentScale) -> Result<(), SelearnError> {
    let data = power2d(scale);
    let spec = rect_spec(CenterDistribution::DataDriven);
    let n = 500.min(scale.train_sizes.last().copied().unwrap_or(500));
    let all = gen_workload(&data, &spec, n + scale.test_n, SEED ^ 0xab2)?;
    let (train_w, test) = all.split(n);
    let train = to_training(&train_w);
    let truth: Vec<f64> = test.queries().iter().map(|q| q.selectivity).collect();
    let mut rows = Vec::new();
    for frac in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let ph = PtsHist::fit(
            Rect::unit(2),
            &train,
            &PtsHistConfig::with_model_size(4 * n).interior_fraction(frac),
        )?;
        let est: Vec<f64> = test
            .queries()
            .iter()
            .map(|q| ph.estimate(&q.range))
            .collect();
        rows.push(vec![
            format!("{frac}"),
            format!("{:.5}", rms_error(&est, &truth)),
        ]);
    }
    emit("ablation_ptshist_split", &["interior_fraction", "rms"], &rows)?;
    Ok(())
}

/// τ-driven vs cap-driven QuadHist model-size control.
fn ablation_quadhist_cap(scale: &ExperimentScale) -> Result<(), SelearnError> {
    let data = power2d(scale);
    let spec = rect_spec(CenterDistribution::DataDriven);
    let n = 200;
    let all = gen_workload(&data, &spec, n + scale.test_n, SEED ^ 0xab3)?;
    let (train_w, test) = all.split(n);
    let train = to_training(&train_w);
    let truth: Vec<f64> = test.queries().iter().map(|q| q.selectivity).collect();
    let mut rows = Vec::new();
    for target in [100usize, 400, 800] {
        // knob A: calibrated τ with a hard cap
        let a = QuadHist::fit_with_bucket_target(
            Rect::unit(2),
            &train,
            target,
            &QuadHistConfig::default(),
        )?;
        // knob B: tiny fixed τ + hard cap only (first-come refinement)
        let mut cfg = QuadHistConfig::with_tau(1e-4);
        cfg.max_leaves = target;
        let b = QuadHist::fit(Rect::unit(2), &train, &cfg)?;
        for (knob, model) in [("calibrated_tau", &a), ("cap_only", &b)] {
            let est: Vec<f64> = test
                .queries()
                .iter()
                .map(|q| model.estimate(&q.range))
                .collect();
            rows.push(vec![
                knob.to_string(),
                target.to_string(),
                model.num_buckets().to_string(),
                format!("{:.5}", rms_error(&est, &truth)),
            ]);
        }
    }
    emit(
        "ablation_quadhist_cap",
        &["knob", "target", "buckets", "rms"],
        &rows,
    )?;
    Ok(())
}

/// Exact Irwin–Hall halfspace volumes vs quasi-Monte-Carlo.
fn ablation_volume() -> Result<(), SelearnError> {
    use selearn_geom::Halfspace;
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xab4);
    let mut rows = Vec::new();
    for d in [2usize, 4, 6, 8] {
        use rand::Rng;
        let mut max_err = 0.0f64;
        let mut t_exact = 0.0;
        let mut t_qmc = 0.0;
        let est = VolumeEstimator::qmc(4096);
        for _ in 0..50 {
            let normal: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
            if normal.iter().all(|v| v.abs() < 1e-6) {
                continue;
            }
            let off: f64 = rng.gen_range(-0.5..1.0);
            let h = Halfspace::new(normal, off);
            let cube = Rect::unit(d);
            let t0 = Instant::now();
            let exact = h.intersection_volume(&cube);
            t_exact += t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let qmc = est.volume_in_rect(&cube, |p| h.contains(p));
            t_qmc += t0.elapsed().as_secs_f64();
            max_err = max_err.max((exact - qmc).abs());
        }
        rows.push(vec![
            d.to_string(),
            format!("{:.5}", max_err),
            format!("{:.3}", t_exact * 1e3),
            format!("{:.3}", t_qmc * 1e3),
        ]);
    }
    emit(
        "ablation_volume",
        &["dim", "max_abs_diff", "exact_ms_per_50", "qmc_ms_per_50"],
        &rows,
    )?;
    Ok(())
}

/// Extensions beyond the paper: GaussHist (the conclusion's
/// Gaussian-mixture open problem) and OnlineQuadHist (streaming feedback),
/// benchmarked against the batch estimators, plus a GaussHist bandwidth
/// sweep.
fn extension_models(scale: &ExperimentScale) -> Result<(), SelearnError> {
    use selearn_core::{GaussHist, GaussHistConfig, OnlineQuadHist};
    let data = power2d(scale);
    let spec = rect_spec(CenterDistribution::DataDriven);
    let n = 500.min(scale.train_sizes.last().copied().unwrap_or(500));
    let all = gen_workload(&data, &spec, n + scale.test_n, SEED ^ 0xe7)?;
    let (train_w, test) = all.split(n);
    let train = to_training(&train_w);
    let truth: Vec<f64> = test.queries().iter().map(|q| q.selectivity).collect();
    let mut rows = Vec::new();

    // batch models + extensions
    let mut add = |name: String, model: &dyn SelectivityEstimator, ms: f64| {
        let est: Vec<f64> = test
            .queries()
            .iter()
            .map(|q| model.estimate(&q.range))
            .collect();
        rows.push(vec![
            name,
            model.num_buckets().to_string(),
            format!("{:.5}", rms_error(&est, &truth)),
            format!("{ms:.1}"),
        ]);
    };

    for m in [Method::QuadHist, Method::PtsHist] {
        let (model, ms) = m.fit(&Rect::unit(2), &train)?;
        add(m.name().to_string(), model.as_ref(), ms);
    }
    for bw in [0.01f64, 0.03, 0.05, 0.1] {
        let t0 = Instant::now();
        let gh = GaussHist::fit(
            Rect::unit(2),
            &train,
            &GaussHistConfig::with_model_size(4 * n).bandwidth(bw),
        )?;
        add(
            format!("GaussHist(bw={bw})"),
            &gh,
            t0.elapsed().as_secs_f64() * 1e3,
        );
    }
    // online variant after consuming the same stream
    let t0 = Instant::now();
    let mut online = OnlineQuadHist::new(
        Rect::unit(2),
        QuadHistConfig::with_tau(0.005),
        usize::MAX / 2, // refit once at the end
    )?;
    for q in &train {
        online.observe(q.clone())?;
    }
    online.refit()?;
    add(
        "OnlineQuadHist".to_string(),
        &online,
        t0.elapsed().as_secs_f64() * 1e3,
    );

    emit(
        "extension_models",
        &["model", "buckets", "rms", "train_wall_ms"],
        &rows,
    )?;
    Ok(())
}

/// Workload-drift adaptation suite: a query stream whose center
/// distribution *and* shape mix shift at segment boundaries, served by an
/// [`OnlineQuadHist`] that refits periodically from its feedback history.
/// Each evaluation window reports the online model's prequential q-error
/// (estimate first, observe after) next to a hindsight oracle — a QuadHist
/// refit from scratch on everything seen so far — and the regret-style gap
/// between them. Recovery shows as the regret spiking at each boundary and
/// shrinking again within a few windows.
fn drift_adaptation(scale: &ExperimentScale) -> Result<(), SelearnError> {
    use selearn_core::OnlineQuadHist;
    use selearn_data::{q_error, DriftSegment};

    let data = power2d(scale);
    let window = 64usize;
    let seg_len = 4 * window;
    let tau = 0.005;

    // Three regimes: data-driven rects, then a center shift with shapes
    // mixed in, then a shape-dominated stream on a different center.
    let segments = [
        DriftSegment::new(
            WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven),
            seg_len,
        ),
        DriftSegment::new(
            WorkloadSpec::new(
                QueryType::Mixed,
                CenterDistribution::Gaussian {
                    mean: 0.7,
                    std: 0.1,
                },
            ),
            seg_len,
        ),
        DriftSegment::new(
            WorkloadSpec::new(QueryType::Mixed, CenterDistribution::Random)
                .with_shape_mix([0.2, 0.4, 0.4]),
            seg_len,
        ),
    ];
    let mut rng = StdRng::seed_from_u64(SEED ^ hash("drift_adaptation"));
    let stream = Workload::generate_drift(&data, &segments, &mut rng)?;

    let root = Rect::unit(data.dim());
    let mut online = OnlineQuadHist::new(root.clone(), QuadHistConfig::with_tau(tau), window)?;
    let mut seen: Vec<TrainingQuery> = Vec::new();
    let mut rows = Vec::new();
    let qtile = |sorted: &[f64], p: f64| -> f64 {
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    };
    for (w, window_queries) in stream.queries().chunks(window).enumerate() {
        // Prequential pass: the online model answers each query before
        // learning from it, exactly like the serve feedback loop.
        let mut online_q = Vec::with_capacity(window_queries.len());
        for q in window_queries {
            let est = online.estimate(&q.range);
            online_q.push(q_error(est, q.selectivity));
            online.observe(TrainingQuery::new(q.range.clone(), q.selectivity))?;
            seen.push(TrainingQuery::new(q.range.clone(), q.selectivity));
        }
        // Hindsight oracle: refit from scratch on everything seen so far
        // (this window included), then score the same window.
        let oracle = QuadHist::fit(root.clone(), &seen, &QuadHistConfig::with_tau(tau))?;
        let oracle_q: Vec<f64> = window_queries
            .iter()
            .map(|q| q_error(oracle.estimate(&q.range), q.selectivity))
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let mut online_sorted = online_q.clone();
        online_sorted.sort_by(f64::total_cmp);
        let (online_mean, oracle_mean) = (mean(&online_q), mean(&oracle_q));
        let segment = (w * window) / seg_len;
        rows.push(vec![
            w.to_string(),
            (w * window).to_string(),
            match segment {
                0 => "rect/data-driven".to_string(),
                1 => "mixed/gauss-0.7".to_string(),
                _ => "shape-heavy/random".to_string(),
            },
            format!("{online_mean:.3}"),
            format!("{:.3}", qtile(&online_sorted, 0.95)),
            format!("{oracle_mean:.3}"),
            format!("{:.3}", online_mean - oracle_mean),
        ]);
    }
    emit(
        "drift_adaptation",
        &[
            "window",
            "stream_pos",
            "regime",
            "online_mean_q",
            "online_p95_q",
            "oracle_mean_q",
            "regret",
        ],
        &rows,
    )?;
    Ok(())
}

/// Compact accuracy sweep with solver-convergence columns — the canonical
/// trace-producing experiment (`accuracy --trace-out trace.jsonl`): the
/// four main methods on Power (data-driven rects), reporting
/// `solver_iters` / `solver_converged` alongside the error metrics.
fn accuracy(scale: &ExperimentScale) -> Result<(), SelearnError> {
    let data = power2d(scale);
    let spec = rect_spec(CenterDistribution::DataDriven);
    let rows = run_methods(
        &data,
        &spec,
        &[
            Method::QuadHist,
            Method::PtsHist,
            Method::QuickSel,
            Method::Uniform,
        ],
        scale,
        SEED ^ hash("accuracy"),
    )?;
    emit_accuracy("accuracy", &rows)?;
    Ok(())
}

/// Serving artifacts: trains a QuadHist on the power workload and writes
/// `results/serve_model.model` (for `selearn-serve --model`) plus
/// `results/serve_workload.jsonl` — one protocol request line per held-out
/// test query (for `selearn-load --workload`).
fn serve_export(scale: &ExperimentScale) -> Result<(), SelearnError> {
    use selearn_obs::json::fmt_f64_into;

    let data = power2d(scale);
    let spec = rect_spec(CenterDistribution::DataDriven);
    let train_n = scale.train_sizes.iter().copied().max().unwrap_or(1000);
    let train = gen_workload(&data, &spec, train_n, SEED ^ hash("serve_export"))?;
    let queries: Vec<TrainingQuery> = train
        .queries()
        .iter()
        .map(|q| TrainingQuery::new(q.range.clone(), q.selectivity))
        .collect();
    let model = QuadHist::fit(
        Rect::unit(data.dim()),
        &queries,
        &QuadHistConfig::default(),
    )?;

    std::fs::create_dir_all("results")?;
    let mut file =
        std::io::BufWriter::new(std::fs::File::create("results/serve_model.model")?);
    selearn_core::save_quadhist(&model, &mut file)?;
    std::io::Write::flush(&mut file)?;

    let test = gen_workload(&data, &spec, scale.test_n, SEED ^ hash("serve_export_test"))?;
    let mut out = String::new();
    let mut exported = 0usize;
    for q in test.queries() {
        // The serving protocol speaks boxes; non-rectangular ranges
        // cannot appear in this rect-spec workload, but skip defensively.
        let Some(rect) = q.range.as_rect() else {
            continue;
        };
        out.push_str("{\"lo\":[");
        for (i, v) in rect.lo().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            fmt_f64_into(&mut out, *v);
        }
        out.push_str("],\"hi\":[");
        for (i, v) in rect.hi().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            fmt_f64_into(&mut out, *v);
        }
        out.push_str("]}\n");
        exported += 1;
    }
    std::fs::write("results/serve_workload.jsonl", out)?;

    emit(
        "serve_export",
        &["artifact", "value"],
        &[
            vec!["model_buckets".into(), model.num_buckets().to_string()],
            vec!["train_queries".into(), queries.len().to_string()],
            vec!["workload_requests".into(), exported.to_string()],
            vec!["model_file".into(), "results/serve_model.model".into()],
            vec![
                "workload_file".into(),
                "results/serve_workload.jsonl".into(),
            ],
        ],
    )?;
    Ok(())
}

fn hash(s: &str) -> u64 {
    s.bytes().fold(1469598103934665603u64, |h, b| {
        (h ^ b as u64).wrapping_mul(1099511628211)
    })
}
