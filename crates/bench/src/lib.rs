//! Experiment harness reproducing every table and figure of Section 4.
//!
//! The binary `experiments` (`cargo run -p selearn-bench --release --bin
//! experiments -- <id>|all [--quick]`) regenerates each artifact as a CSV
//! under `results/` plus a rendered text table on stdout; EXPERIMENTS.md
//! records paper-vs-measured shapes. Criterion benches under `benches/`
//! cover the timing-sensitive micro-operations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The panic-free gate: unwrap/expect are banned outside test code
// (clippy.toml exempts #[cfg(test)]); CI runs clippy with -D warnings.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod harness;
pub mod table;

pub use harness::{
    gen_workload, label_row, run_methods, AccuracyRow, ExperimentScale, Method,
};
pub use table::{render_table, write_csv};
