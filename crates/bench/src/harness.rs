//! Shared machinery for the experiment drivers: method registry, workload
//! caching, timing, and result rows.

use rand::rngs::StdRng;
use rand::SeedableRng;
#[cfg(feature = "parallel")]
use rayon::prelude::*;
use selearn_baselines::{Isomer, IsomerConfig, QuickSel, QuickSelConfig, UniformBaseline};
use selearn_core::{
    BoxedEstimator, Objective, PtsHist, PtsHistConfig, QuadHist, QuadHistConfig, SelearnError,
    TrainingQuery, WeightSolver,
};
use selearn_data::{
    l_inf_error, q_error_quantiles, rms_error, Dataset, Workload, WorkloadSpec,
};
use selearn_geom::{Range, Rect};
use std::time::Instant;

/// Experiment scale knobs; `--quick` shrinks everything so `all` finishes
/// in about a minute for smoke-testing.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentScale {
    /// Rows per synthetic dataset.
    pub rows: usize,
    /// Training-set size sweep.
    pub train_sizes: &'static [usize],
    /// Held-out test queries per configuration.
    pub test_n: usize,
    /// Largest training size ISOMER is allowed to attempt (the paper's
    /// ISOMER could not finish 500 queries within 30 minutes).
    pub isomer_limit: usize,
}

impl ExperimentScale {
    /// Default reproduction scale. The paper sweeps up to 2000 training
    /// queries; we cap the sweep at 1000 (the trends are established well
    /// before that) so the complete `all` run finishes in tens of minutes
    /// on a laptop — see EXPERIMENTS.md. Pass `fig10_12` etc. individually
    /// with a custom scale for the n = 2000 points.
    pub fn full() -> Self {
        Self {
            rows: 40_000,
            train_sizes: &[50, 200, 500, 1000],
            test_n: 300,
            isomer_limit: 200,
        }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Self {
            rows: 8_000,
            train_sizes: &[50, 200],
            test_n: 100,
            isomer_limit: 50,
        }
    }

    /// Rejects degenerate scales before any experiment runs.
    ///
    /// An empty or zero-containing `train_sizes` (and a zero `rows` or
    /// `test_n`) would otherwise only surface as a panic deep inside a
    /// sweep; drivers call this right after parsing their configuration.
    pub fn validate(&self) -> Result<(), SelearnError> {
        if self.train_sizes.is_empty() {
            return Err(SelearnError::InvalidConfig {
                model: "experiment scale",
                what: "train_sizes must be non-empty",
            });
        }
        if self.train_sizes.contains(&0) {
            return Err(SelearnError::InvalidConfig {
                model: "experiment scale",
                what: "train_sizes entries must be positive",
            });
        }
        if self.rows == 0 {
            return Err(SelearnError::InvalidConfig {
                model: "experiment scale",
                what: "rows must be positive",
            });
        }
        if self.test_n == 0 {
            return Err(SelearnError::InvalidConfig {
                model: "experiment scale",
                what: "test_n must be positive",
            });
        }
        Ok(())
    }
}

/// Estimator registry entry used by the sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// QuadHist with its model size pegged to `4×` training queries.
    QuadHist,
    /// PtsHist with model size `4×` training queries.
    PtsHist,
    /// QuickSel with 4 kernels per query.
    QuickSel,
    /// ISOMER (self-chosen bucket count; slow).
    Isomer,
    /// The uniformity-assumption floor.
    Uniform,
    /// QuadHist trained with the smoothed `L∞` objective (Section 4.6).
    QuadHistLInf,
    /// QuadHist with the NNLS weight solver (ablation).
    QuadHistNnls,
}

impl Method {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Method::QuadHist => "QuadHist",
            Method::PtsHist => "PtsHist",
            Method::QuickSel => "QuickSel",
            Method::Isomer => "Isomer",
            Method::Uniform => "Uniform",
            Method::QuadHistLInf => "QuadHist-Linf",
            Method::QuadHistNnls => "QuadHist-NNLS",
        }
    }

    /// Trains the method, returning the model and the training wall time in
    /// milliseconds, or the typed training error.
    pub fn fit(
        self,
        root: &Rect,
        train: &[TrainingQuery],
    ) -> Result<(BoxedEstimator, f64), SelearnError> {
        let target = (4 * train.len()).max(4);
        let t0 = Instant::now();
        let model: BoxedEstimator = match self {
            Method::QuadHist => Box::new(QuadHist::fit_with_bucket_target(
                root.clone(),
                train,
                target,
                &QuadHistConfig::default(),
            )?),
            Method::QuadHistLInf => Box::new(QuadHist::fit_with_bucket_target(
                root.clone(),
                train,
                target,
                &QuadHistConfig::default().objective(Objective::LInfSmoothed),
            )?),
            Method::QuadHistNnls => Box::new(QuadHist::fit_with_bucket_target(
                root.clone(),
                train,
                target,
                &QuadHistConfig::default().solver(WeightSolver::NnlsPenalty),
            )?),
            Method::PtsHist => Box::new(PtsHist::fit(
                root.clone(),
                train,
                &PtsHistConfig::with_model_size(target),
            )?),
            Method::QuickSel => Box::new(QuickSel::fit(
                root.clone(),
                train,
                &QuickSelConfig::default(),
            )?),
            Method::Isomer => Box::new(Isomer::fit(
                root.clone(),
                train,
                &IsomerConfig::default(),
            )?),
            Method::Uniform => Box::new(UniformBaseline::new(root.clone())),
        };
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        Ok((model, ms))
    }
}

/// One result row of an accuracy sweep.
#[derive(Clone, Debug)]
pub struct AccuracyRow {
    /// Method name.
    pub method: &'static str,
    /// Training-set size.
    pub train_size: usize,
    /// Ambient dimension.
    pub dim: usize,
    /// Model complexity (bucket count).
    pub buckets: usize,
    /// RMS error on the test set.
    pub rms: f64,
    /// `L∞` error on the test set.
    pub linf: f64,
    /// Q-error quantiles on the test set: 50th, 95th, 99th, max.
    pub q: [f64; 4],
    /// Training wall time in milliseconds.
    pub train_wall_ms: f64,
    /// Batch-prediction wall time over the whole test set, milliseconds.
    pub predict_wall_ms: f64,
    /// Iterations the weight solver ran (`None` when the method has no
    /// iterative solve — e.g. Uniform, or an exact LP path).
    pub solver_iters: Option<usize>,
    /// Whether the weight solver met its tolerance within budget.
    pub solver_converged: Option<bool>,
}

impl AccuracyRow {
    /// Stringifies into CSV cells matching [`label_row`]'s header.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.method.to_string(),
            self.train_size.to_string(),
            self.dim.to_string(),
            self.buckets.to_string(),
            format!("{:.5}", self.rms),
            format!("{:.5}", self.linf),
            format!("{:.3}", self.q[0]),
            format!("{:.3}", self.q[1]),
            format!("{:.3}", self.q[2]),
            format!("{:.3}", self.q[3]),
            format!("{:.1}", self.train_wall_ms),
            format!("{:.2}", self.predict_wall_ms),
            self.solver_iters
                .map_or_else(|| "-".to_string(), |i| i.to_string()),
            self.solver_converged
                .map_or_else(|| "-".to_string(), |c| c.to_string()),
        ]
    }
}

/// CSV header for [`AccuracyRow`].
pub fn label_row() -> Vec<&'static str> {
    vec![
        "method", "train_size", "dim", "buckets", "rms", "linf", "q50", "q95", "q99", "qmax",
        "train_wall_ms", "predict_wall_ms", "solver_iters", "solver_converged",
    ]
}

/// Generates a labeled workload deterministically from `(spec, n, seed)`.
pub fn gen_workload(
    dataset: &Dataset,
    spec: &WorkloadSpec,
    n: usize,
    seed: u64,
) -> Result<Workload, SelearnError> {
    let mut rng = StdRng::seed_from_u64(seed);
    Workload::generate(dataset, spec, n, &mut rng)
}

/// Runs a full accuracy sweep: for each training size and method, train on
/// a fresh prefix workload and evaluate on a shared held-out test set.
///
/// With the `parallel` feature the methods of each training size train
/// concurrently (they are fully independent given the shared workload);
/// row order and row contents match the serial build exactly — only the
/// wall-time columns can differ.
pub fn run_methods(
    dataset: &Dataset,
    spec: &WorkloadSpec,
    methods: &[Method],
    scale: &ExperimentScale,
    seed: u64,
) -> Result<Vec<AccuracyRow>, SelearnError> {
    let root = Rect::unit(dataset.dim());
    let max_train = scale.train_sizes.iter().copied().max().unwrap_or(0);
    let all = gen_workload(dataset, spec, max_train + scale.test_n, seed)?;
    let (train_pool, test) = all.split(max_train);
    let truth: Vec<f64> = test.queries().iter().map(|q| q.selectivity).collect();
    let test_ranges: Vec<Range> = test.queries().iter().map(|q| q.range.clone()).collect();

    let mut rows = Vec::new();
    for &n in scale.train_sizes {
        let (train_w, _) = train_pool.split(n);
        let train: Vec<TrainingQuery> = train_w
            .queries()
            .iter()
            .map(|q| TrainingQuery {
                range: q.range.clone(),
                selectivity: q.selectivity,
            })
            .collect();
        let eval_method = |m: Method| -> Result<Option<AccuracyRow>, SelearnError> {
            if m == Method::Isomer && n > scale.isomer_limit {
                return Ok(None); // matches the paper: ISOMER times out beyond this
            }
            let (model, train_wall_ms) = m.fit(&root, &train)?;
            let t0 = Instant::now();
            let est = model.par_estimate_all(&test_ranges);
            let predict_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let q = q_error_quantiles(&est, &truth);
            // Trace and table share this one computation (see
            // `QErrorSummary::emit`): no second quantile code path.
            q.emit(&format!("{}.n{}", m.name(), n), truth.len());
            let report = model.solve_report();
            Ok(Some(AccuracyRow {
                method: m.name(),
                train_size: n,
                dim: dataset.dim(),
                buckets: model.num_buckets(),
                rms: rms_error(&est, &truth),
                linf: l_inf_error(&est, &truth),
                q: [q.p50, q.p95, q.p99, q.max],
                train_wall_ms,
                predict_wall_ms,
                solver_iters: report.map(|r| r.iters),
                solver_converged: report.map(|r| r.converged),
            }))
        };
        #[cfg(feature = "parallel")]
        let per_method: Vec<Result<Option<AccuracyRow>, SelearnError>> =
            if methods.len() > 1 && rayon::current_num_threads() > 1 {
                methods.par_iter().map(|&m| eval_method(m)).collect()
            } else {
                methods.iter().map(|&m| eval_method(m)).collect()
            };
        #[cfg(not(feature = "parallel"))]
        let per_method: Vec<Result<Option<AccuracyRow>, SelearnError>> =
            methods.iter().map(|&m| eval_method(m)).collect();
        for r in per_method {
            if let Some(row) = r? {
                rows.push(row);
            }
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selearn_data::{power_like, CenterDistribution, QueryType};

    #[test]
    fn sweep_produces_rows_for_all_methods_and_sizes() {
        let data = power_like(2_000, 5).project(&[0, 1]);
        let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
        let scale = ExperimentScale {
            rows: 2_000,
            train_sizes: &[20, 50],
            test_n: 40,
            isomer_limit: 20,
        };
        let rows = run_methods(
            &data,
            &spec,
            &[Method::QuadHist, Method::PtsHist, Method::Isomer],
            &scale,
            1,
        )
        .unwrap();
        // Isomer only runs at n = 20 (limit), others at both sizes → 5 rows
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.rms >= 0.0 && r.rms <= 1.0);
            assert!(r.buckets >= 1);
            assert!(r.q[0] >= 1.0);
            assert!(r.train_wall_ms >= 0.0);
            assert!(r.predict_wall_ms >= 0.0);
            assert_eq!(r.cells().len(), label_row().len());
            // every method here runs an iterative weight solve
            assert!(r.solver_iters.is_some(), "{} missing report", r.method);
            assert!(r.solver_converged.is_some());
        }
    }

    #[test]
    fn more_training_reduces_error_for_quadhist() {
        let data = power_like(5_000, 6).project(&[0, 1]);
        let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::DataDriven);
        let scale = ExperimentScale {
            rows: 5_000,
            train_sizes: &[20, 200],
            test_n: 100,
            isomer_limit: 0,
        };
        let rows = run_methods(&data, &spec, &[Method::QuadHist], &scale, 2).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].rms <= rows[0].rms * 1.2,
            "rms grew with training size: {} -> {}",
            rows[0].rms,
            rows[1].rms
        );
    }

    #[test]
    fn workload_generation_is_deterministic() {
        let data = power_like(1_000, 9).project(&[0, 1]);
        let spec = WorkloadSpec::new(QueryType::Rect, CenterDistribution::Random);
        let a = gen_workload(&data, &spec, 10, 3).unwrap();
        let b = gen_workload(&data, &spec, 10, 3).unwrap();
        for (x, y) in a.queries().iter().zip(b.queries()) {
            assert_eq!(x.selectivity, y.selectivity);
        }
    }
}
