//! Prediction-throughput benchmarks. The paper (end of Section 4.1) notes
//! prediction time is dictated by model complexity: QuadHist/QuickSel/
//! ISOMER compute box intersections per bucket, PtsHist does point
//! membership tests. These benches make that trade-off measurable.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selearn_baselines::{QuickSel, QuickSelConfig};
use selearn_core::{
    PtsHist, PtsHistConfig, QuadHist, QuadHistConfig, SelectivityEstimator, TrainingQuery,
};
use selearn_geom::{Range, Rect};

fn workload(n: usize, seed: u64) -> Vec<TrainingQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let cx: f64 = rng.gen();
            let cy: f64 = rng.gen();
            let w: f64 = rng.gen::<f64>() * 0.4;
            TrainingQuery::new(
                Rect::new(
                    vec![(cx - w).max(0.0), (cy - w).max(0.0)],
                    vec![(cx + w).min(1.0), (cy + w).min(1.0)],
                ),
                rng.gen::<f64>() * 0.4,
            )
        })
        .collect()
}

fn bench_predict(c: &mut Criterion) {
    let train = workload(200, 3);
    let probes: Vec<Range> = workload(64, 4).into_iter().map(|q| q.range).collect();

    let quad = QuadHist::fit_with_bucket_target(
        Rect::unit(2),
        &train,
        800,
        &QuadHistConfig::default(),
    )
    .expect("bench workload is valid");
    let pts = PtsHist::fit(Rect::unit(2), &train, &PtsHistConfig::with_model_size(800))
        .expect("bench workload is valid");
    let qs = QuickSel::fit(Rect::unit(2), &train, &QuickSelConfig::default())
        .expect("bench workload is valid");

    let mut g = c.benchmark_group("predict_64_queries");
    g.bench_with_input(BenchmarkId::new("quadhist", quad.num_buckets()), &quad, |b, m| {
        b.iter(|| {
            probes
                .iter()
                .map(|r| m.estimate(black_box(r)))
                .sum::<f64>()
        })
    });
    g.bench_with_input(BenchmarkId::new("ptshist", pts.num_buckets()), &pts, |b, m| {
        b.iter(|| {
            probes
                .iter()
                .map(|r| m.estimate(black_box(r)))
                .sum::<f64>()
        })
    });
    g.bench_with_input(BenchmarkId::new("quicksel", qs.num_buckets()), &qs, |b, m| {
        b.iter(|| {
            probes
                .iter()
                .map(|r| m.estimate(black_box(r)))
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_predict);
criterion_main!(benches);
