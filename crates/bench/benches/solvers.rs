//! Weight-estimation solver benchmarks: FISTA vs NNLS vs IPF on design
//! matrices shaped like Equation (6)'s (queries × buckets).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selearn_solver::{
    fista_simplex_ls, ipf_max_entropy, nnls_simplex, DenseMatrix, FistaOptions, IpfOptions,
    NnlsOptions,
};

/// Sparse-ish coverage matrix with entries in [0, 1] like Equation (6).
fn design(n: usize, m: usize, seed: u64) -> (DenseMatrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = DenseMatrix::zeros(0, 0);
    for _ in 0..n {
        let row: Vec<f64> = (0..m)
            .map(|_| {
                if rng.gen::<f64>() < 0.2 {
                    rng.gen::<f64>()
                } else {
                    0.0
                }
            })
            .collect();
        a.push_row(&row);
    }
    let s: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 0.5).collect();
    (a, s)
}

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("weight_solvers");
    g.sample_size(10);
    for (n, m) in [(50usize, 200usize), (200, 800)] {
        let (a, s) = design(n, m, 5);
        g.bench_with_input(
            BenchmarkId::new("fista", format!("{n}x{m}")),
            &(&a, &s),
            |b, (a, s)| b.iter(|| fista_simplex_ls(black_box(a), s, &FistaOptions::default())),
        );
        g.bench_with_input(
            BenchmarkId::new("nnls", format!("{n}x{m}")),
            &(&a, &s),
            |b, (a, s)| b.iter(|| nnls_simplex(black_box(a), s, &NnlsOptions::default())),
        );
        g.bench_with_input(
            BenchmarkId::new("ipf", format!("{n}x{m}")),
            &(&a, &s),
            |b, (a, s)| b.iter(|| ipf_max_entropy(black_box(a), s, &IpfOptions::default())),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
