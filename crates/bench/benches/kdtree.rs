//! k-d tree range-aggregation benchmarks: PtsHist's prediction path.
//! Demonstrates the pruned traversal beating the linear scan that
//! Equation (7) implies when implemented naively.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selearn_geom::{KdTree, Point, Rect};

fn setup(n: usize, d: usize) -> (Vec<Point>, Vec<f64>, Vec<Rect>) {
    let mut rng = StdRng::seed_from_u64(17);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new((0..d).map(|_| rng.gen()).collect()))
        .collect();
    let ws = vec![1.0 / n as f64; n];
    let queries: Vec<Rect> = (0..64)
        .map(|_| {
            let lo: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() * 0.7).collect();
            let hi: Vec<f64> = lo.iter().map(|l| (l + 0.3).min(1.0)).collect();
            Rect::new(lo, hi)
        })
        .collect();
    (pts, ws, queries)
}

fn bench_kdtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("kdtree_range_weight");
    for &(n, d) in &[(1_000usize, 2usize), (8_000, 2), (8_000, 6)] {
        let (pts, ws, queries) = setup(n, d);
        let tree = KdTree::build(pts.clone(), ws.clone());
        g.bench_with_input(
            BenchmarkId::new("kdtree", format!("{n}pts_{d}d")),
            &tree,
            |b, t| {
                b.iter(|| {
                    queries
                        .iter()
                        .map(|q| t.weight_in_rect(black_box(q)))
                        .sum::<f64>()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("linear_scan", format!("{n}pts_{d}d")),
            &(&pts, &ws),
            |b, (pts, ws)| {
                b.iter(|| {
                    queries
                        .iter()
                        .map(|q| {
                            pts.iter()
                                .zip(ws.iter())
                                .filter(|(p, _)| q.contains(p))
                                .map(|(_, &w)| w)
                                .sum::<f64>()
                        })
                        .sum::<f64>()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_kdtree);
criterion_main!(benches);
