//! Model-restore benchmarks: `QuadHist::from_buckets` rebuilds a trained
//! model from its persisted bucket list. The restore path indexes buckets
//! by their integer lattice key (depth + per-dim cell index), making the
//! rebuild O(n log n); the pre-index strategy — linear corner-matching
//! scans per leaf — is reproduced here as the baseline so the ~n²/n
//! separation stays visible in bench history.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use selearn_core::{QuadHist, SelectivityEstimator};
use selearn_geom::{Rect, VolumeEstimator};
use std::collections::VecDeque;

/// BFS-splits the unit square into at least `target` quadtree leaves and
/// assigns normalized weights.
fn buckets(target: usize) -> Vec<(Rect, f64)> {
    let mut queue: VecDeque<Rect> = VecDeque::from([Rect::unit(2)]);
    while queue.len() < target {
        let cell = match queue.pop_front() {
            Some(c) => c,
            None => break,
        };
        queue.extend(cell.split());
    }
    let n = queue.len();
    queue
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, 1.0 / n as f64 * ((i % 7) + 1) as f64 / 4.0))
        .collect()
}

fn bench_restore(c: &mut Criterion) {
    let mut g = c.benchmark_group("restore");
    for size in [1_000usize, 4_000, 10_000] {
        let bs = buckets(size);
        g.bench_with_input(BenchmarkId::new("indexed", size), &bs, |b, bs| {
            b.iter(|| {
                QuadHist::from_buckets(
                    Rect::unit(2),
                    black_box(bs),
                    VolumeEstimator::default(),
                )
                .map(|m| m.num_buckets())
            })
        });
    }
    // The linear-find baseline only at the smallest size — at 10k buckets
    // a quadratic scan per iteration would dominate the whole bench run.
    let bs = buckets(1_000);
    g.bench_with_input(BenchmarkId::new("linear_find", 1_000), &bs, |b, bs| {
        b.iter(|| {
            let mut matched = 0usize;
            for (cell, _) in bs.iter() {
                let hit = bs.iter().position(|(r, _)| {
                    r.lo()
                        .iter()
                        .zip(cell.lo())
                        .chain(r.hi().iter().zip(cell.hi()))
                        .all(|(a, b)| (a - b).abs() < 1e-9)
                });
                matched += usize::from(hit.is_some());
            }
            black_box(matched)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_restore);
criterion_main!(benches);
