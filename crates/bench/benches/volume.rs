//! Micro-benchmarks for intersection-volume computation — the inner loop
//! of Equation (6) that dominates QuadHist training and prediction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use selearn_geom::{Ball, Halfspace, Point, Rect, VolumeEstimator};

fn bench_volume(c: &mut Criterion) {
    let mut g = c.benchmark_group("volume");

    let cell = Rect::new(vec![0.2, 0.3], vec![0.7, 0.9]);
    let query = Rect::new(vec![0.1, 0.1], vec![0.6, 0.8]);
    g.bench_function("rect_rect_2d", |b| {
        b.iter(|| black_box(&query).intersection_volume(black_box(&cell)))
    });

    for d in [2usize, 5, 10] {
        let h = Halfspace::new((0..d).map(|i| 0.3 + 0.1 * i as f64).collect(), 0.8);
        let cube = Rect::unit(d);
        g.bench_function(format!("halfspace_irwin_hall_{d}d"), |b| {
            b.iter(|| black_box(&h).intersection_volume(black_box(&cube)))
        });
    }

    let ball2 = Ball::new(Point::splat(2, 0.5), 0.35);
    let cube2 = Rect::unit(2);
    let est = VolumeEstimator::default();
    g.bench_function("ball_simpson_2d", |b| {
        b.iter(|| black_box(&ball2).intersection_volume(black_box(&cube2), &est))
    });

    let ball5 = Ball::new(Point::splat(5, 0.5), 0.35);
    let cube5 = Rect::unit(5);
    for samples in [1024usize, 4096] {
        let est = VolumeEstimator::qmc(samples);
        g.bench_function(format!("ball_qmc_5d_{samples}"), |b| {
            b.iter(|| black_box(&ball5).intersection_volume(black_box(&cube5), &est))
        });
    }

    g.finish();
}

criterion_group!(benches, bench_volume);
criterion_main!(benches);
