//! Frozen-vs-pointer-tree inference A/B. The pointer walk pays an
//! allocating `Rect::intersect` (two fresh `Vec<f64>`s) per visited node
//! plus a heap traversal stack per query; the frozen artifact walks
//! implicit array-indexed nodes and multiplies clamped per-dimension
//! overlaps in flat coordinate lanes. This bench keeps the step change in
//! `predict.latency_us` visible in bench history — on a 10k-bucket
//! QuadHist the frozen path must stay a multiple faster (the PR-6
//! acceptance floor is 3×; see `BENCH_6.json`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selearn_core::{QuadHist, SelectivityEstimator};
use selearn_geom::{Range, Rect, VolumeEstimator};
use std::collections::VecDeque;

/// BFS-splits the unit square into at least `target` quadtree leaves with
/// normalized weights — a cheap way to a 10k-bucket model without running
/// the trainer inside a benchmark.
fn buckets(target: usize) -> Vec<(Rect, f64)> {
    let mut queue: VecDeque<Rect> = VecDeque::from([Rect::unit(2)]);
    while queue.len() < target {
        let cell = match queue.pop_front() {
            Some(c) => c,
            None => break,
        };
        queue.extend(cell.split());
    }
    let n = queue.len();
    queue
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, 1.0 / n as f64 * ((i % 7) + 1) as f64 / 4.0))
        .collect()
}

fn probes(n: usize, seed: u64) -> Vec<Range> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let cx: f64 = rng.gen();
            let cy: f64 = rng.gen();
            let w: f64 = rng.gen::<f64>() * 0.3 + 0.01;
            Rect::new(
                vec![(cx - w).max(0.0), (cy - w).max(0.0)],
                vec![(cx + w).min(1.0), (cy + w).min(1.0)],
            )
            .into()
        })
        .collect()
}

fn bench_frozen(c: &mut Criterion) {
    let model = QuadHist::from_buckets(Rect::unit(2), &buckets(10_000), VolumeEstimator::default())
        .expect("BFS buckets tile the unit square");
    let frozen = model.freeze();
    let queries = probes(64, 9);
    let n_buckets = model.num_buckets();

    let mut g = c.benchmark_group("frozen_vs_tree_single");
    g.bench_with_input(BenchmarkId::new("tree", n_buckets), &model, |b, m| {
        b.iter(|| {
            queries
                .iter()
                .map(|r| m.estimate(black_box(r)))
                .sum::<f64>()
        })
    });
    g.bench_with_input(BenchmarkId::new("frozen", n_buckets), &frozen, |b, m| {
        b.iter(|| {
            queries
                .iter()
                .map(|r| m.estimate(black_box(r)))
                .sum::<f64>()
        })
    });
    g.finish();

    let batch = probes(512, 10);
    let mut out = vec![0.0; batch.len()];
    let mut g = c.benchmark_group("frozen_vs_tree_batch512");
    g.bench_with_input(BenchmarkId::new("tree", n_buckets), &model, |b, m| {
        b.iter(|| {
            m.estimate_into(black_box(&batch), &mut out);
            out[0]
        })
    });
    g.bench_with_input(BenchmarkId::new("frozen", n_buckets), &frozen, |b, m| {
        b.iter(|| {
            m.estimate_into(black_box(&batch), &mut out);
            out[0]
        })
    });
    g.finish();
}

criterion_group!(benches, bench_frozen);
criterion_main!(benches);
