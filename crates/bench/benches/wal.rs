//! Durability-path benchmarks: WAL append throughput (the per-feedback
//! ack cost), full `ModelStore::observe` (append + online learning), and
//! recovery (checkpoint load + WAL tail replay) — the restart-latency
//! budget of the serving layer's `--store-dir` mode.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use selearn_core::TrainingQuery;
use selearn_geom::Rect;
use selearn_store::wal::scan_wal;
use selearn_store::{ModelStore, StdVfs, StoreConfig, WalWriter};
use std::path::PathBuf;
use std::sync::Arc;

/// A scratch dir on tmpfs when available, so the sync-on-append numbers
/// measure the log path rather than the host disk.
fn scratch(tag: &str) -> PathBuf {
    let base = if PathBuf::from("/dev/shm").is_dir() {
        PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };
    let d = base.join(format!("selearn-wal-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn config() -> StoreConfig {
    let mut c = StoreConfig::new(Rect::unit(2));
    c.refit_every = 64;
    c.history_cap = 1024;
    c.quadhist.max_leaves = 64;
    c
}

fn feedback(i: usize) -> TrainingQuery {
    let a = ((i % 97) as f64 + 1.0) / 100.0;
    TrainingQuery::new(Rect::new(vec![0.0, a / 3.0], vec![a, 0.9]), a * 0.7)
}

/// Raw WAL append: frame + CRC + write (+ fsync when `sync`), no model.
fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_append");
    for sync in [false, true] {
        let dir = scratch(if sync { "append-sync" } else { "append" });
        let vfs = Arc::new(StdVfs);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let scan = scan_wal(vfs.as_ref(), &dir).expect("scan");
        let mut writer =
            WalWriter::open(vfs, &dir, &scan, 1, 8 << 20, sync).expect("writer");
        let record = feedback(7);
        let label = if sync { "fsync" } else { "buffered" };
        g.bench_function(BenchmarkId::new(label, 1), |b| {
            b.iter(|| writer.append(black_box(&record)).expect("append"))
        });
        drop(writer);
        let _ = std::fs::remove_dir_all(&dir);
    }
    g.finish();
}

/// The full observe path a feedback ack pays: validate, append, learn.
fn bench_observe(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_observe");
    let dir = scratch("observe");
    let mut store = ModelStore::open(&dir, config()).expect("open");
    let mut i = 0usize;
    g.bench_function("append_and_learn", |b| {
        b.iter(|| {
            i += 1;
            store.observe(black_box(feedback(i))).expect("observe")
        })
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    g.finish();
}

/// Restart latency: open = checkpoint restore + tail replay. The two
/// shapes bound the practical range — everything checkpointed (replay 0)
/// vs. everything in the log (replay all).
fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_recovery");
    // Full replay at 4k records runs seconds per iteration — keep the
    // sample count low so the whole group stays under a minute.
    g.sample_size(10);
    for records in [1_000usize, 4_000] {
        for checkpointed in [false, true] {
            let tag = format!(
                "{records}-{}",
                if checkpointed { "ckpt" } else { "tail" }
            );
            let dir = scratch(&tag);
            let mut store = ModelStore::open(&dir, config()).expect("seed open");
            for i in 0..records {
                store.observe(feedback(i)).expect("seed observe");
            }
            if checkpointed {
                store.checkpoint().expect("seed checkpoint");
            }
            drop(store);
            let label = if checkpointed {
                "from_checkpoint"
            } else {
                "full_replay"
            };
            g.bench_with_input(BenchmarkId::new(label, records), &dir, |b, dir| {
                b.iter(|| {
                    let store = ModelStore::open(black_box(dir), config()).expect("recover");
                    black_box(store.last_lsn())
                })
            });
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    g.finish();
}

criterion_group!(benches, bench_append, bench_observe, bench_recovery);
criterion_main!(benches);
