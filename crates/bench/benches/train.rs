//! End-to-end training-time benchmarks backing Figures 12, 19, 21 and 23:
//! training time vs training-set size per estimator.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selearn_baselines::{Isomer, IsomerConfig, QuickSel, QuickSelConfig};
use selearn_core::{PtsHist, PtsHistConfig, QuadHist, QuadHistConfig, TrainingQuery};
use selearn_geom::Rect;

fn workload(n: usize, seed: u64) -> Vec<TrainingQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let cx: f64 = rng.gen();
            let cy: f64 = rng.gen();
            let w: f64 = rng.gen::<f64>() * 0.4;
            TrainingQuery::new(
                Rect::new(
                    vec![(cx - w).max(0.0), (cy - w).max(0.0)],
                    vec![(cx + w).min(1.0), (cy + w).min(1.0)],
                ),
                rng.gen::<f64>() * 0.4,
            )
        })
        .collect()
}

fn bench_train(c: &mut Criterion) {
    let mut g = c.benchmark_group("train_time");
    g.sample_size(10);
    for n in [50usize, 200] {
        let train = workload(n, 9);
        g.bench_with_input(BenchmarkId::new("quadhist", n), &train, |b, t| {
            b.iter(|| {
                QuadHist::fit_with_bucket_target(
                    Rect::unit(2),
                    black_box(t),
                    4 * t.len(),
                    &QuadHistConfig::default(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("ptshist", n), &train, |b, t| {
            b.iter(|| {
                PtsHist::fit(
                    Rect::unit(2),
                    black_box(t),
                    &PtsHistConfig::with_model_size(4 * t.len()),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("quicksel", n), &train, |b, t| {
            b.iter(|| QuickSel::fit(Rect::unit(2), black_box(t), &QuickSelConfig::default()))
        });
        if n <= 50 {
            g.bench_with_input(BenchmarkId::new("isomer", n), &train, |b, t| {
                b.iter(|| Isomer::fit(Rect::unit(2), black_box(t), &IsomerConfig::default()))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_train);
criterion_main!(benches);
