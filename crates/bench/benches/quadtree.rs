//! QuadHist bucket-design benchmarks: Lemma A.2 says each training query
//! visits `O(s(R)/τ · log(s(R)/(τ·vol(R))))` nodes, so construction time
//! should grow ~linearly in `1/τ` per query — exercised here.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selearn_core::{QuadHist, QuadHistConfig, TrainingQuery};
use selearn_geom::Rect;

fn random_queries(n: usize, seed: u64) -> Vec<TrainingQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let cx: f64 = rng.gen();
            let cy: f64 = rng.gen();
            let w: f64 = rng.gen::<f64>() * 0.5;
            TrainingQuery::new(
                Rect::new(
                    vec![(cx - w).max(0.0), (cy - w).max(0.0)],
                    vec![(cx + w).min(1.0), (cy + w).min(1.0)],
                ),
                rng.gen::<f64>() * 0.5,
            )
        })
        .collect()
}

fn bench_bucket_design(c: &mut Criterion) {
    let queries = random_queries(200, 11);
    let mut g = c.benchmark_group("quadtree_design");
    for tau in [0.05f64, 0.01, 0.002] {
        g.bench_with_input(BenchmarkId::new("tau", tau.to_string()), &tau, |b, &tau| {
            let cfg = QuadHistConfig::with_tau(tau);
            b.iter(|| {
                QuadHist::design_buckets(&Rect::unit(2), black_box(&queries), &cfg)
                    .map(|tree| tree.num_leaves())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bucket_design);
criterion_main!(benches);
