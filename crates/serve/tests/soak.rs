//! In-process soak and behavior tests for the serving layer: a real
//! server on a real localhost socket, driven by the crate's own client.

use selearn_core::{SelectivityEstimator, SharedEstimator};
use selearn_geom::{Range, Rect};
use selearn_serve::synth::{
    synthetic_mixed_model, synthetic_mixed_requests, synthetic_model, synthetic_requests,
    synthetic_selectivity, synthetic_shape_selectivity,
};
use selearn_serve::{
    run_load, start, start_with_feedback, Client, DegradeReason, DurableFeedback, FeedbackSink,
    LoadOptions, ModelRegistry, Request, Response, ServerConfig, ShapeKind, DEFAULT_MODEL,
};
use selearn_store::{ModelStore, StoreConfig};
use std::sync::Arc;
use std::time::Duration;

fn serve_synthetic(config: ServerConfig) -> (selearn_serve::ServerHandle, Rect) {
    let (model, root) = synthetic_model(2, 200, 11).expect("synthetic fit");
    let registry = Arc::new(ModelRegistry::new());
    registry.register(DEFAULT_MODEL, Arc::new(model), root.clone());
    let handle = start(config, registry).expect("server start");
    (handle, root)
}

#[test]
fn request_response_paths() {
    let (handle, _root) = serve_synthetic(ServerConfig::default());
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // A real estimate.
    let req = Request::rect(DEFAULT_MODEL, vec![0.1, 0.2], vec![0.6, 0.7], Some(1));
    let first = client.call(&req).expect("first call");
    let Response::Estimate {
        id,
        sel,
        degraded,
        cached,
        ..
    } = first
    else {
        panic!("expected estimate, got {first:?}");
    };
    assert_eq!(id, Some(1));
    assert!((0.0..=1.0).contains(&sel));
    assert_eq!(degraded, None);
    assert!(!cached, "first sighting cannot be a cache hit");

    // The identical query must now hit the cache with the same answer.
    let second = client.call(&req).expect("second call");
    let Response::Estimate {
        sel: sel2, cached, ..
    } = second
    else {
        panic!("expected estimate, got {second:?}");
    };
    assert!(cached, "repeat of an identical query must be cached");
    assert_eq!(sel2, sel);

    // Malformed lines answer an error and keep the connection usable.
    client.send_line("{this is not json").expect("send garbage");
    let err = client.recv().expect("error response");
    assert!(matches!(err, Response::Error { .. }), "got {err:?}");

    // Unknown model, wrong dimensionality, inverted box: typed errors.
    for (line, what) in [
        (r#"{"est":"nope","lo":[0.1,0.1],"hi":[0.2,0.2]}"#, "unknown"),
        (r#"{"lo":[0.1],"hi":[0.2]}"#, "dimension"),
        (r#"{"lo":[0.9,0.9],"hi":[0.1,0.1]}"#, "inverted"),
    ] {
        client.send_line(line).expect("send");
        let resp = client.recv().expect("recv");
        assert!(matches!(resp, Response::Error { .. }), "{what}: {resp:?}");
    }

    // The connection still serves real queries after all those errors.
    let again = client.call(&req).expect("call after errors");
    assert!(matches!(again, Response::Estimate { .. }));

    handle.shutdown();
}

#[test]
fn mixed_shape_requests_round_trip_end_to_end() {
    // The tentpole acceptance test: a model trained on a mixed-shape
    // workload serves rect, halfspace, and ball queries over a real
    // socket — correct non-degraded answers, per-shape counters, a
    // shape-aware cache, and typed errors for non-finite parameters.
    let (model, root) = synthetic_mixed_model(2, 360, 11).expect("mixed synthetic fit");
    let registry = Arc::new(ModelRegistry::new());
    registry.register(DEFAULT_MODEL, Arc::new(model), root);
    let handle = start(ServerConfig::default(), registry).expect("server start");
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

    // A small mixed pool: first sightings must be uncached, correct, and
    // non-degraded; exact repeats must hit the cache with the same answer.
    let pool = synthetic_mixed_requests(2, 12, 23);
    let mut first_answers = Vec::new();
    for req in &pool {
        let resp = client.call(req).expect("first pass call");
        let Response::Estimate {
            sel,
            degraded,
            cached,
            ..
        } = resp
        else {
            panic!("expected estimate, got {resp:?}");
        };
        assert_eq!(degraded, None, "mixed-shape answers must not degrade");
        assert!(!cached, "first sighting of a shape cannot be a cache hit");
        let truth = synthetic_shape_selectivity(&req.shape);
        assert!(
            (sel - truth).abs() < 0.3,
            "{} answer {sel} too far from truth {truth}",
            req.shape.kind().as_str()
        );
        first_answers.push(sel);
    }
    let hits_before_repeat = handle.cache().hits();
    for (req, &expected) in pool.iter().zip(&first_answers) {
        let resp = client.call(req).expect("repeat pass call");
        let Response::Estimate { sel, cached, .. } = resp else {
            panic!("expected estimate, got {resp:?}");
        };
        assert!(cached, "exact repeat of {:?} missed the cache", req.shape.kind());
        assert_eq!(sel, expected, "cached answer diverged");
    }
    assert_eq!(
        handle.cache().hits() - hits_before_repeat,
        pool.len() as u64,
        "every repeat must be a cache hit"
    );

    // Per-shape counters saw both passes (12 requests × 2 = 8 per shape).
    let stats = handle.stats();
    assert_eq!(stats.rect_requests(), 8);
    assert_eq!(stats.halfspace_requests(), 8);
    assert_eq!(stats.ball_requests(), 8);

    // Cross-shape isolation: a rect, a halfspace, and a ball engineered
    // over the same center never alias each other's cache entries — each
    // first sighting is a miss even with the others already cached.
    let probes = [
        Request::rect(DEFAULT_MODEL, vec![0.2, 0.2], vec![0.8, 0.8], None),
        Request::halfspace(DEFAULT_MODEL, vec![1.0, 0.0], 0.5, None),
        Request::ball(DEFAULT_MODEL, vec![0.5, 0.5], 0.3, None),
    ];
    for probe in &probes {
        let resp = client.call(probe).expect("probe");
        let Response::Estimate { cached, .. } = resp else {
            panic!("expected estimate, got {resp:?}");
        };
        assert!(
            !cached,
            "fresh {:?} probe aliased another shape's cache entry",
            probe.shape.kind()
        );
    }
    assert_eq!(
        [ShapeKind::Rect, ShapeKind::Halfspace, ShapeKind::Ball].len(),
        probes.len()
    );

    // Non-finite parameters answer typed errors — never a clamped or
    // poisoned estimate — and leave the connection usable.
    for line in [
        r#"{"est":"default","lo":[0.1,1e999],"hi":[0.5,0.5]}"#,
        r#"{"est":"default","shape":"halfspace","normal":[1e999,0.0],"offset":0.5}"#,
        r#"{"est":"default","shape":"ball","center":[0.5,0.5],"radius":1e999}"#,
    ] {
        client.send_line(line).expect("send non-finite");
        let resp = client.recv().expect("recv");
        assert!(
            matches!(resp, Response::Error { .. }),
            "non-finite line answered {resp:?}"
        );
    }
    let resp = client.call(&probes[1]).expect("call after errors");
    assert!(matches!(resp, Response::Estimate { cached: true, .. }));

    handle.shutdown();
}

#[test]
fn hot_swap_changes_answers_and_invalidates_cache() {
    struct Constant(f64);
    impl SelectivityEstimator for Constant {
        fn estimate(&self, _r: &Range) -> f64 {
            self.0
        }
        fn num_buckets(&self) -> usize {
            1
        }
        fn name(&self) -> &'static str {
            "const"
        }
    }

    let registry = Arc::new(ModelRegistry::new());
    registry.register(DEFAULT_MODEL, Arc::new(Constant(0.25)), Rect::unit(2));
    let handle = start(ServerConfig::default(), Arc::clone(&registry)).expect("start");
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

    let req = Request::rect(DEFAULT_MODEL, vec![0.1, 0.1], vec![0.4, 0.4], None);
    // Warm the cache with the old model's answer.
    for _ in 0..2 {
        client.call(&req).expect("warm");
    }
    assert!(handle.cache().hits() >= 1);

    assert!(registry.swap(DEFAULT_MODEL, Arc::new(Constant(0.75))));
    let resp = client.call(&req).expect("post-swap call");
    let Response::Estimate { sel, cached, .. } = resp else {
        panic!("expected estimate, got {resp:?}");
    };
    assert!(
        !cached,
        "generation bump must invalidate pre-swap cache entries"
    );
    assert_eq!(sel, 0.75, "post-swap answers come from the new model");

    handle.shutdown();
}

#[test]
fn sheds_load_with_degraded_answers_when_queue_saturated() {
    // A deliberately slow model behind a 1-deep queue and 1 worker: a
    // burst of pipelined requests must split into real answers and
    // explicit shed fallbacks, with nothing dropped.
    struct Slow;
    impl SelectivityEstimator for Slow {
        fn estimate(&self, _r: &Range) -> f64 {
            std::thread::sleep(Duration::from_millis(30));
            0.5
        }
        fn num_buckets(&self) -> usize {
            1
        }
        fn name(&self) -> &'static str {
            "slow"
        }
    }

    let registry = Arc::new(ModelRegistry::new());
    registry.register(DEFAULT_MODEL, Arc::new(Slow), Rect::unit(1));
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        cache_capacity: 0, // cache off so every request reaches the model
        deadline: Duration::ZERO,
        ..ServerConfig::default()
    };
    let handle = start(config, registry).expect("start");
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

    let burst = 12;
    for i in 0..burst {
        // Distinct boxes so answers are distinguishable from caching.
        let req = Request::rect(
            DEFAULT_MODEL,
            vec![0.01 * i as f64],
            vec![0.5 + 0.01 * i as f64],
            Some(i),
        );
        client.send_line(&req.to_json()).expect("pipeline send");
    }
    let mut real = 0;
    let mut shed = 0;
    let mut seen = std::collections::HashSet::new();
    for _ in 0..burst {
        match client.recv().expect("burst response") {
            Response::Estimate {
                id: Some(id),
                degraded,
                ..
            } => {
                assert!(seen.insert(id), "duplicate response id {id}");
                match degraded {
                    None => real += 1,
                    Some(DegradeReason::Shed) => shed += 1,
                    Some(other) => panic!("unexpected degrade reason {other:?}"),
                }
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(real + shed, burst as usize, "every request gets an answer");
    assert!(shed > 0, "a 1-deep queue under a 12-burst must shed");
    assert!(real > 0, "some requests must still reach the model");
    assert_eq!(handle.stats().shed(), shed as u64);

    handle.shutdown();
}

#[test]
fn soak_10k_requests_with_concurrent_hot_swap() {
    // The acceptance soak: 4 workers, 10k mixed requests over localhost
    // with a hot-swap happening mid-run. Zero dropped connections, every
    // response either real or explicitly degraded, repeats hit the cache.
    let config = ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    };
    let (handle, root) = serve_synthetic(config);
    let addr = handle.addr().to_string();

    // Mid-run hot-swaps: refit-quality replacement models swapped in
    // while load is flowing.
    let registry = Arc::clone(handle.registry());
    let swapper = std::thread::spawn(move || {
        for seed in [101u64, 102] {
            std::thread::sleep(Duration::from_millis(150));
            let (model, _root) = synthetic_model(2, 200, seed).expect("refit");
            let next: SharedEstimator = Arc::new(model);
            assert!(registry.swap(DEFAULT_MODEL, next));
        }
    });

    // 256-request pool cycled to 10k total: plenty of repeats for the
    // cache, mixed across 8 closed-loop connections.
    let pool = synthetic_requests(2, 256, 29);
    let options = LoadOptions {
        connections: 8,
        total_requests: 10_000,
        rate: None,
    };
    let report = run_load(&addr, &pool, &options).expect("soak run must not drop connections");
    swapper.join().expect("swapper");

    assert_eq!(report.sent, 10_000);
    assert_eq!(
        report.ok + report.degraded,
        10_000,
        "every response is real or explicitly degraded (errors: {})",
        report.errors
    );
    assert_eq!(report.errors, 0);
    assert!(
        report.cached > 0,
        "a cycled pool must produce estimate-cache hits"
    );
    assert!(report.percentile_us(0.99) > 0.0);

    let stats = handle.stats();
    assert_eq!(stats.requests(), 10_000);
    assert_eq!(stats.errors(), 0);
    assert_eq!(
        stats.model_answers() + stats.cache_answers() + stats.degraded(),
        10_000
    );
    assert!(handle.cache().hits() > 0);
    // Degraded answers stay bounded: the uniform fallback over the unit
    // root is still a probability.
    let mut probe = Client::connect(&addr).expect("probe connect");
    let resp = probe
        .call(&Request::rect(
            DEFAULT_MODEL,
            root.lo().to_vec(),
            root.hi().to_vec(),
            None,
        ))
        .expect("probe");
    match resp {
        Response::Estimate { sel, .. } => assert!((0.0..=1.0).contains(&sel)),
        other => panic!("probe got {other:?}"),
    }

    handle.shutdown();
}

#[test]
fn open_loop_load_reports_latency() {
    let (handle, _root) = serve_synthetic(ServerConfig::default());
    let pool = synthetic_requests(2, 64, 31);
    let options = LoadOptions {
        connections: 2,
        total_requests: 400,
        rate: Some(4000.0),
    };
    let report = run_load(&handle.addr().to_string(), &pool, &options).expect("open loop");
    assert_eq!(report.sent, 400);
    assert_eq!(report.errors, 0);
    assert_eq!(report.ok + report.degraded, 400);
    assert!(report.percentile_us(0.5) > 0.0);
    assert!(report.percentile_us(0.99) >= report.percentile_us(0.5));
    handle.shutdown();
}

#[test]
fn kill_and_restart_loses_no_acknowledged_feedback() {
    // The durability soak: a server with a WAL'd feedback store takes 2k
    // mixed requests, gets killed mid-stream with pipelined feedback
    // still in flight (no final checkpoint, no clean close), and is
    // restarted on the same directory. Every acknowledged record must
    // survive, and LSNs/generations must resume monotonically.
    let dir = std::env::temp_dir().join(format!("selearn-soak-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store_config = || {
        let mut c = StoreConfig::new(Rect::unit(2));
        c.refit_every = 16;
        c.history_cap = 256;
        c.quadhist.max_leaves = 24;
        c
    };
    let bx = |i: usize| -> (Vec<f64>, Vec<f64>) {
        let a = (i % 37) as f64 / 37.0;
        let b = (i % 23) as f64 / 23.0;
        let lo = vec![a * 0.55, b * 0.5];
        let hi = vec![(a * 0.55 + 0.35).min(1.0), (b * 0.5 + 0.4).min(1.0)];
        (lo, hi)
    };

    // Phase 1: serve with a durable sink under a checkpoint-every-64
    // cadence, interleaving feedback (even ids) with estimates (odd).
    let (model, root) = synthetic_model(2, 200, 11).expect("synthetic fit");
    let registry = Arc::new(ModelRegistry::new());
    registry.register(DEFAULT_MODEL, Arc::new(model), root);
    let store = ModelStore::open(&dir, store_config()).expect("open store");
    let durable = Arc::new(DurableFeedback::new(
        store,
        Arc::clone(&registry),
        DEFAULT_MODEL,
        64,
    ));
    let handle = start_with_feedback(
        ServerConfig::default(),
        Arc::clone(&registry),
        Some(Arc::clone(&durable) as Arc<dyn FeedbackSink>),
    )
    .expect("start");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let mut acked: Vec<(u64, u64)> = Vec::new(); // (lsn, generation)
    for i in 0..1200usize {
        let (lo, hi) = bx(i);
        if i % 2 == 0 {
            let sel = synthetic_selectivity(&lo, &hi);
            let fb = selearn_serve::Feedback::rect(DEFAULT_MODEL, lo, hi, sel, Some(i as u64));
            match client.feedback(&fb).expect("feedback") {
                Response::Ack {
                    lsn, generation, ..
                } => acked.push((lsn, generation)),
                other => panic!("feedback got {other:?}"),
            }
        } else {
            let resp = client
                .call(&Request::rect(DEFAULT_MODEL, lo, hi, Some(i as u64)))
                .expect("estimate");
            assert!(matches!(resp, Response::Estimate { .. }), "got {resp:?}");
        }
    }
    // The kill: pipeline the remaining 800 without waiting, and shut the
    // server down underneath them. In-flight feedback either acks (and
    // must then survive) or errors/vanishes (and owes the client nothing)
    // — what must never happen is an ack for a record that's gone.
    for i in 1200..2000usize {
        let (lo, hi) = bx(i);
        let sel = synthetic_selectivity(&lo, &hi);
        let fb = selearn_serve::Feedback::rect(DEFAULT_MODEL, lo, hi, sel, Some(i as u64));
        if client.send_line(&fb.to_json()).is_err() {
            break; // server already tore the connection down
        }
    }
    let killer = std::thread::spawn(move || handle.shutdown());
    loop {
        match client.recv() {
            Ok(Response::Ack {
                lsn, generation, ..
            }) => acked.push((lsn, generation)),
            Ok(_) => {}
            Err(_) => break, // EOF: the server is gone
        }
    }
    killer.join().expect("killer");
    drop(client);
    // Crash semantics: drop the store with the WAL tail unsnapshotted.
    assert!(
        durable.store().unflushed_records() > 0 || durable.store().generation() > 0,
        "test must exercise a non-trivial store state"
    );
    drop(durable);
    drop(registry);

    // Restart: recovery must cover every acknowledged record.
    let store = ModelStore::open(&dir, store_config()).expect("recover");
    assert!(acked.len() >= 600, "expected most feedback acked");
    let max_lsn = acked.iter().map(|a| a.0).max().expect("acks");
    let max_gen = acked.iter().map(|a| a.1).max().expect("acks");
    assert!(
        store.last_lsn() >= max_lsn,
        "lost acknowledged records: recovered to lsn {}, acked through {max_lsn}",
        store.last_lsn()
    );
    assert!(
        store.generation() >= max_gen,
        "generation went backwards across the restart"
    );
    let mut lsns: Vec<u64> = acked.iter().map(|a| a.0).collect();
    lsns.sort_unstable();
    lsns.dedup();
    assert_eq!(lsns.len(), acked.len(), "duplicate ack LSNs");

    // Phase 2: resume serving on the recovered store. LSNs continue
    // gaplessly from the recovered tail; generations only move forward.
    let recovered_lsn = store.last_lsn();
    let recovered_gen = store.generation();
    let (model, root) = synthetic_model(2, 200, 11).expect("synthetic fit");
    let registry = Arc::new(ModelRegistry::new());
    registry.register(DEFAULT_MODEL, Arc::new(model), root);
    let durable = Arc::new(DurableFeedback::new(
        store,
        Arc::clone(&registry),
        DEFAULT_MODEL,
        64,
    ));
    let handle = start_with_feedback(
        ServerConfig::default(),
        Arc::clone(&registry),
        Some(Arc::clone(&durable) as Arc<dyn FeedbackSink>),
    )
    .expect("restart");
    let mut client = Client::connect(&handle.addr().to_string()).expect("reconnect");
    for i in 0..100usize {
        let (lo, hi) = bx(i * 7);
        let sel = synthetic_selectivity(&lo, &hi);
        let fb = selearn_serve::Feedback::rect(DEFAULT_MODEL, lo, hi, sel, Some(i as u64));
        match client.feedback(&fb).expect("post-restart feedback") {
            Response::Ack {
                lsn, generation, ..
            } => {
                assert_eq!(
                    lsn,
                    recovered_lsn + i as u64 + 1,
                    "LSNs must resume gaplessly after recovery"
                );
                assert!(generation >= recovered_gen, "generation regressed");
            }
            other => panic!("post-restart feedback got {other:?}"),
        }
    }
    let final_gen = durable.checkpoint_now().expect("final checkpoint");
    assert!(final_gen > max_gen, "generations must stay monotone");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn feedback_without_a_store_answers_a_typed_error() {
    let (handle, _root) = serve_synthetic(ServerConfig::default());
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    let fb =
        selearn_serve::Feedback::rect(DEFAULT_MODEL, vec![0.1, 0.1], vec![0.4, 0.4], 0.2, Some(1));
    let resp = client.feedback(&fb).expect("feedback");
    let Response::Error { id, message } = resp else {
        panic!("expected error, got {resp:?}");
    };
    assert_eq!(id, Some(1));
    assert!(message.contains("--store-dir"), "{message}");
    // The connection still serves estimates afterwards.
    let resp = client
        .call(&Request::rect(
            DEFAULT_MODEL,
            vec![0.1, 0.1],
            vec![0.4, 0.4],
            None,
        ))
        .expect("estimate after rejected feedback");
    assert!(matches!(resp, Response::Estimate { .. }));
    handle.shutdown();
}

#[test]
fn shutdown_is_clean_and_idempotent_under_load() {
    let (handle, _root) = serve_synthetic(ServerConfig::default());
    let addr = handle.addr().to_string();
    let pool = synthetic_requests(2, 32, 37);
    let report = run_load(
        &addr,
        &pool,
        &LoadOptions {
            connections: 2,
            total_requests: 200,
            rate: None,
        },
    )
    .expect("pre-shutdown load");
    assert_eq!(report.sent, 200);
    handle.shutdown();
    // The port must actually be released/refusing after shutdown.
    assert!(Client::connect(&addr)
        .and_then(|mut c| c.call(&Request::rect(
            DEFAULT_MODEL,
            vec![0.1, 0.1],
            vec![0.2, 0.2],
            None,
        )))
        .is_err());
}
