//! Admin-plane integration tests: a real server with a real admin
//! listener, scraped over HTTP while the data port is under load.
//!
//! Obs registries are process-global, so tests in this binary serialize
//! on one lock instead of fighting over counters.

use selearn_serve::synth::{synthetic_model, synthetic_requests};
use selearn_serve::{
    run_load, start, start_admin, start_with_feedback, AdminState, Client, DriftConfig,
    DriftMonitor, DurableFeedback, FeedbackSink, LoadOptions, ModelRegistry, ServerConfig,
    DEFAULT_MODEL,
};
use selearn_store::{ModelStore, StoreConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// One HTTP GET against the admin plane: `(status, body)`.
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("admin connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Structural exposition check: every sample line is `name{labels}? value`
/// with a grammar-legal metric name; returns the value of `series` (exact
/// match on the part before the space) when present.
fn check_exposition(body: &str, series: &str) -> Option<f64> {
    assert!(!body.is_empty(), "empty exposition body");
    let mut found = None;
    for line in body.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# TYPE ") || line.starts_with("# HELP "),
                "bad comment line {line:?}"
            );
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: {line:?}");
        });
        let name_end = name_part.find('{').unwrap_or(name_part.len());
        let name = &name_part[..name_end];
        assert!(
            !name.is_empty()
                && name.chars().enumerate().all(|(i, c)| c.is_ascii_alphabetic()
                    || c == '_'
                    || c == ':'
                    || (i > 0 && c.is_ascii_digit())),
            "bad metric name in {line:?}"
        );
        assert!(
            value.parse::<f64>().is_ok() || matches!(value, "NaN" | "+Inf" | "-Inf"),
            "bad sample value in {line:?}"
        );
        if name_part == series {
            found = value.parse::<f64>().ok();
        }
    }
    found
}

#[test]
fn concurrent_scrapes_stay_valid_during_1k_request_soak() {
    let _g = OBS_LOCK.lock().unwrap();
    selearn_obs::enable_stats(true);

    let (model, root) = synthetic_model(2, 200, 11).expect("synthetic fit");
    let registry = Arc::new(ModelRegistry::new());
    registry.register(DEFAULT_MODEL, Arc::new(model), root);
    let handle = start(ServerConfig::default(), Arc::clone(&registry)).expect("server");
    let admin = start_admin(
        "127.0.0.1:0",
        AdminState {
            registry,
            stats: Arc::clone(handle.stats()),
            cache: Arc::clone(handle.cache()),
            queue_depth: handle.queue_probe(),
            drift: None,
            store_writable: None,
        },
    )
    .expect("admin");
    let admin_addr = admin.addr().to_string();

    // Scraper thread: hammer /metrics concurrently with the soak,
    // recording the requests-total counter from each valid scrape.
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        let admin_addr = admin_addr.clone();
        std::thread::spawn(move || {
            let mut totals = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let (status, body) = http_get(&admin_addr, "/metrics");
                assert_eq!(status, 200);
                if let Some(v) = check_exposition(&body, "serve_requests_total") {
                    totals.push(v);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            totals
        })
    };

    let pool = synthetic_requests(2, 128, 23);
    let report = run_load(
        &handle.addr().to_string(),
        &pool,
        &LoadOptions {
            connections: 4,
            total_requests: 1000,
            rate: None,
        },
    )
    .expect("soak");
    stop.store(true, Ordering::Relaxed);
    let totals = scraper.join().expect("scraper");

    // The data port never saw an error or a dropped request while being
    // scraped. (A strict with/without-scrape latency A/B would be flaky
    // on 1-CPU CI boxes; zero errors plus a sane p99 is the stable form
    // of "scrapes don't impact the data port".)
    assert_eq!(report.sent, 1000);
    assert_eq!(report.errors, 0);
    assert_eq!(report.ok + report.degraded, 1000);
    assert!(report.percentile_us(0.99) < 2_000_000.0, "p99 blew up");

    // Counters are monotone across concurrent scrapes.
    assert!(totals.len() >= 2, "expected several mid-soak scrapes");
    assert!(
        totals.windows(2).all(|w| w[0] <= w[1]),
        "counter went backwards across scrapes: {totals:?}"
    );

    // A final scrape exposes the serve histogram with cumulative buckets.
    let (status, body) = http_get(&admin_addr, "/metrics");
    assert_eq!(status, 200);
    check_exposition(&body, "");
    assert!(body.contains("# TYPE serve_latency_us histogram"), "{body}");
    assert!(body.contains("serve_latency_us_bucket{le=\"+Inf\"}"));
    assert!(body.contains("serve_latency_us_count"));
    assert!(body.contains("# TYPE serve_requests_total counter"));
    assert!(body.contains("process_uptime_seconds"));

    // /stats and /readyz answer sensibly alongside.
    let (status, stats_body) = http_get(&admin_addr, "/stats");
    assert_eq!(status, 200);
    assert!(stats_body.contains("\"requests\":"), "{stats_body}");
    let (status, ready_body) = http_get(&admin_addr, "/readyz");
    assert_eq!(status, 200, "{ready_body}");

    admin.shutdown();
    handle.shutdown();
    selearn_obs::enable_stats(false);
}

#[test]
fn readyz_flips_after_drift_alarm_and_recovers() {
    let _g = OBS_LOCK.lock().unwrap();
    selearn_obs::enable_stats(true);

    let dir = std::env::temp_dir().join(format!("selearn-admin-drift-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store_config = StoreConfig::new(selearn_geom::Rect::unit(2));
    store_config.refit_every = 1024; // keep the online model inert
    store_config.quadhist.max_leaves = 16;
    let store = ModelStore::open(&dir, store_config).expect("store");

    // The served model answers ~0.1 over the probe box; the drift monitor
    // scores acked labels against it.
    let (model, root) = synthetic_model(2, 200, 11).expect("synthetic fit");
    let registry = Arc::new(ModelRegistry::new());
    registry.register(DEFAULT_MODEL, Arc::new(model), root.clone());
    let slot = registry.slot(DEFAULT_MODEL).expect("slot");
    let probe: selearn_geom::Range =
        selearn_geom::Rect::new(vec![0.2, 0.2], vec![0.5, 0.5]).into();
    let (served, _) = slot.get();
    let baseline = served.estimate(&probe).clamp(1e-4, 1.0);

    let durable = Arc::new(DurableFeedback::new(
        store,
        Arc::clone(&registry),
        DEFAULT_MODEL,
        0, // no checkpoints: the served model must stay fixed for scoring
    ));
    let monitor = Arc::new(DriftMonitor::new(
        DriftConfig {
            window: 8,
            threshold: 4.0,
            consecutive: 2,
        },
        Arc::clone(&registry),
    ));
    durable.attach_drift(Arc::clone(&monitor));

    let handle = start_with_feedback(
        ServerConfig::default(),
        Arc::clone(&registry),
        Some(Arc::clone(&durable) as Arc<dyn FeedbackSink>),
    )
    .expect("server");
    let admin = start_admin(
        "127.0.0.1:0",
        AdminState {
            registry,
            stats: Arc::clone(handle.stats()),
            cache: Arc::clone(handle.cache()),
            queue_depth: handle.queue_probe(),
            drift: Some(Arc::clone(&monitor)),
            store_writable: Some(Box::new({
                let dir = dir.clone();
                move || {
                    let p = dir.join(".writable-probe");
                    let ok = std::fs::write(&p, b"x").is_ok();
                    let _ = std::fs::remove_file(&p);
                    ok
                }
            })),
        },
    )
    .expect("admin");
    let admin_addr = admin.addr().to_string();

    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    let send_feedback = |client: &mut Client, sel: f64, n: usize| {
        for i in 0..n {
            let fb = selearn_serve::Feedback::rect(
                DEFAULT_MODEL,
                vec![0.2, 0.2],
                vec![0.5, 0.5],
                sel,
                Some(i as u64),
            );
            let resp = client.feedback(&fb).expect("feedback");
            assert!(
                matches!(resp, selearn_serve::Response::Ack { .. }),
                "{resp:?}"
            );
        }
    };

    // Stationary stream: labels agree with the served model → ready.
    send_feedback(&mut client, baseline, 24);
    let (status, body) = http_get(&admin_addr, "/readyz");
    assert_eq!(status, 200, "stationary stream must stay ready: {body}");
    assert!(body.contains("\"drift_alarms\":[]"), "{body}");
    assert!(body.contains("\"store_writable\":true"), "{body}");

    // Label shift: true selectivity jumps 8x past the alarm threshold.
    // K=2 windows of 8 breach the monitor deterministically.
    let shifted = (baseline * 8.0).min(1.0);
    send_feedback(&mut client, shifted, 16);
    let (status, body) = http_get(&admin_addr, "/readyz");
    assert_eq!(status, 503, "drift alarm must flip readiness: {body}");
    assert!(body.contains("\"ready\":false"), "{body}");
    assert!(body.contains("\"drift_alarms\":[\"default\"]"), "{body}");

    // The alarm is scrapeable too.
    let (_, metrics) = http_get(&admin_addr, "/metrics");
    assert!(metrics.contains("serve_drift_alarms 1"), "{metrics}");
    assert!(
        metrics.contains("serve_qerror_p95{model=\"default\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("serve_drift_alarm{model=\"default\"} 1"),
        "{metrics}"
    );

    // Back to stationary: one healthy window clears the alarm.
    send_feedback(&mut client, baseline, 8);
    let (status, body) = http_get(&admin_addr, "/readyz");
    assert_eq!(status, 200, "healthy window must clear the alarm: {body}");

    admin.shutdown();
    handle.shutdown();
    selearn_obs::enable_stats(false);
    let _ = std::fs::remove_dir_all(&dir);
}
