//! Event-loop regression tests: thread-leak churn, idle-connection
//! scaling, slow-reader backpressure, and per-tenant quota isolation.
//!
//! These pin the properties the readiness poller was built for — a real
//! server on a real localhost socket, with assertions against
//! `/proc/self` for thread and memory accounting.

use selearn_core::SelectivityEstimator;
use selearn_geom::{Range, Rect};
use selearn_serve::synth::synthetic_model;
use selearn_serve::{
    start, Client, DegradeReason, ModelRegistry, Request, Response, ServerConfig, ServerHandle,
    DEFAULT_MODEL,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Live threads in this process, via `/proc/self/task`.
fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(0)
}

/// Resident set size in KiB, via `/proc/self/status`.
fn rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .unwrap_or_default()
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Soft limit on open files, via `/proc/self/limits`.
fn fd_soft_limit() -> u64 {
    std::fs::read_to_string("/proc/self/limits")
        .unwrap_or_default()
        .lines()
        .find(|l| l.starts_with("Max open files"))
        .and_then(|l| l.split_whitespace().nth(3))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}

fn serve_synthetic(config: ServerConfig) -> ServerHandle {
    let (model, root) = synthetic_model(2, 200, 11).expect("synthetic fit");
    let registry = Arc::new(ModelRegistry::new());
    registry.register(DEFAULT_MODEL, Arc::new(model), root);
    start(config, registry).expect("server start")
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}

/// The regression test for the reader-thread leak: the old server spawned
/// (and never joined) one reader thread per accepted connection, so 10k
/// short-lived connections left 10k parked threads. The event loop owns
/// every socket on one poller thread — churn must leave the thread count
/// where it started and drain `open_connections` back to zero.
#[test]
fn connection_churn_leaves_o1_threads() {
    let handle = serve_synthetic(ServerConfig::default());
    let addr = handle.addr().to_string();

    // Steady state: server running, one connection already seen.
    drop(TcpStream::connect(&addr).expect("prime connect"));
    let threads_before = live_threads();

    const CHURN: usize = 10_000;
    for i in 0..CHURN {
        match TcpStream::connect(&addr) {
            Ok(stream) => drop(stream),
            // Transient backlog overflow under churn: brief retry.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                drop(TcpStream::connect(&addr).unwrap_or_else(|e| {
                    panic!("connect {i} failed twice: {e}");
                }));
            }
        }
    }

    let threads_after = live_threads();
    assert!(
        threads_after <= threads_before + 4,
        "thread leak: {threads_before} threads before churn, {threads_after} after"
    );
    assert!(
        wait_until(Duration::from_secs(10), || handle.open_connections() == 0),
        "connections not reaped: {} still open",
        handle.open_connections()
    );
    // Near-total, not exact: a client that disconnects fast enough can be
    // reaped from the kernel accept queue before the server ever sees it.
    assert!(
        handle.stats().connections() >= (CHURN - CHURN / 20) as u64,
        "server accepted only {} of {CHURN} connections",
        handle.stats().connections()
    );

    // The server still answers after the churn.
    let mut client = Client::connect(&addr).expect("post-churn connect");
    let resp = client
        .call(&Request::rect(
            DEFAULT_MODEL,
            vec![0.1, 0.2],
            vec![0.6, 0.7],
            Some(1),
        ))
        .expect("post-churn call");
    assert!(matches!(resp, Response::Estimate { .. }), "got {resp:?}");

    handle.shutdown();
}

/// Idle-connection scaling: thousands of open-but-silent sockets cost the
/// server one poller thread and bounded memory, and wake no workers.
#[test]
fn idle_connections_are_cheap() {
    // Each idle connection holds 3 fds in this process (client end +
    // server read/write halves); leave generous headroom under the limit.
    let budget = (fd_soft_limit().saturating_sub(512) / 3) as usize;
    let target = budget.min(5_000);
    if target < 1_000 {
        eprintln!("skipping: fd limit {} too low for idle-scaling test", fd_soft_limit());
        return;
    }

    let handle = serve_synthetic(ServerConfig::default());
    let addr = handle.addr().to_string();
    let threads_baseline = live_threads();
    let rss_baseline = rss_kb();

    let mut idle = Vec::with_capacity(target);
    for i in 0..target {
        match TcpStream::connect(&addr) {
            Ok(stream) => idle.push(stream),
            Err(e) => panic!("idle connect {i} failed: {e}"),
        }
    }
    assert!(
        wait_until(Duration::from_secs(30), || {
            handle.open_connections() == target
        }),
        "server holds {} of {target} idle connections",
        handle.open_connections()
    );

    // Silent sockets admit nothing: no request ever reached the queue.
    assert_eq!(handle.stats().requests(), 0, "idle sockets woke a worker");
    // And they cost no threads — the poller owns them all.
    assert!(
        live_threads() <= threads_baseline + 2,
        "idle connections grew threads: {} -> {}",
        threads_baseline,
        live_threads()
    );
    // Memory stays bounded: well under 24 KiB per connection end-to-end
    // (both client and server halves live in this process).
    let rss_grown = rss_kb().saturating_sub(rss_baseline);
    assert!(
        rss_grown < 24 * target as u64,
        "idle connections cost {rss_grown} KiB RSS for {target} conns"
    );

    // A live client is still served while the idle herd is connected.
    let mut client = Client::connect(&addr).expect("live connect");
    let resp = client
        .call(&Request::rect(
            DEFAULT_MODEL,
            vec![0.2, 0.2],
            vec![0.5, 0.5],
            Some(7),
        ))
        .expect("live call");
    assert!(matches!(resp, Response::Estimate { .. }), "got {resp:?}");

    drop(idle);
    handle.shutdown();
}

/// Slow-reader backpressure: a client that writes requests but never
/// reads responses must be disconnected once its write buffer cap is
/// exceeded — with the drop counted — while other clients stay live.
/// A worker must never block on a client socket.
#[test]
fn slow_reader_is_dropped_not_blocking() {
    let config = ServerConfig {
        // Smallest allowed per-connection response buffer, so the doom
        // trips after kernel socket buffers fill.
        max_conn_write_buffer: 4096,
        ..ServerConfig::default()
    };
    let handle = serve_synthetic(config);
    let addr = handle.addr().to_string();
    let stats = Arc::clone(handle.stats());

    let mut slow = TcpStream::connect(&addr).expect("slow connect");
    slow.set_write_timeout(Some(Duration::from_millis(200)))
        .expect("write timeout");
    let line = format!(
        "{{\"est\":\"{DEFAULT_MODEL}\",\"lo\":[0.1,0.2],\"hi\":[0.6,0.7],\"id\":9}}\n"
    );
    // Pipeline requests without ever reading. Responses fill the socket
    // buffers, then the ConnWriter's pending buffer, then the cap trips.
    let mut sent = 0usize;
    while stats.slow_client_drops() == 0 && sent < 500_000 {
        match slow.write_all(line.as_bytes()) {
            Ok(()) => sent += 1,
            // Connection already doomed server-side, or momentarily full.
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    assert!(
        wait_until(Duration::from_secs(10), || stats.slow_client_drops() >= 1),
        "slow client was never dropped after {sent} pipelined requests"
    );
    assert!(
        wait_until(Duration::from_secs(10), || handle.open_connections() == 0),
        "doomed connection not reaped"
    );

    // A well-behaved client on the same server is unaffected.
    let mut client = Client::connect(&addr).expect("good connect");
    let resp = client
        .call(&Request::rect(
            DEFAULT_MODEL,
            vec![0.3, 0.3],
            vec![0.8, 0.8],
            Some(2),
        ))
        .expect("good call");
    assert!(matches!(resp, Response::Estimate { .. }), "got {resp:?}");

    drop(slow);
    handle.shutdown();
}

/// Per-tenant quota shedding: saturating tenant `a` flips its answers to
/// `degraded:"quota"` uniform fallbacks without touching tenant `b`.
#[test]
fn tenant_quota_isolation() {
    struct Constant(f64);
    impl SelectivityEstimator for Constant {
        fn estimate(&self, _r: &Range) -> f64 {
            self.0
        }
        fn num_buckets(&self) -> usize {
            1
        }
        fn name(&self) -> &'static str {
            "const"
        }
    }

    let registry = Arc::new(ModelRegistry::new());
    registry.register("a.m", Arc::new(Constant(0.25)), Rect::unit(2));
    registry.register("b.m", Arc::new(Constant(0.5)), Rect::unit(2));
    // Tenant `a` gets a tiny bucket; tenant `b` stays unlimited.
    assert!(registry.set_quota("a", Some((1.0, 4.0))));
    let handle = start(ServerConfig::default(), Arc::clone(&registry)).expect("start");
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

    let req =
        |est: &str, id: u64| Request::rect(est, vec![0.1, 0.1], vec![0.4, 0.4], Some(id));

    let mut a_quota_degraded = 0u64;
    let mut a_served = 0u64;
    for i in 0..30 {
        match client.call(&req("a.m", i)).expect("tenant a call") {
            Response::Estimate {
                degraded: Some(DegradeReason::Quota),
                sel,
                ..
            } => {
                a_quota_degraded += 1;
                // Degraded answers are the uniform fallback, not silence.
                assert!((0.0..=1.0).contains(&sel));
            }
            Response::Estimate { degraded: None, .. } => a_served += 1,
            other => panic!("tenant a: unexpected {other:?}"),
        }
    }
    assert!(a_served >= 1, "burst should admit some of tenant a");
    assert!(
        a_quota_degraded >= 20,
        "tenant a saturated its bucket but only {a_quota_degraded}/30 were shed"
    );
    assert!(handle.stats().quota_shed() >= a_quota_degraded);

    // Feedback over quota is refused loudly (an ack would lie about
    // durability), not silently dropped.
    client
        .send_line(r#"{"feedback":true,"est":"a.m","lo":[0.1,0.1],"hi":[0.4,0.4],"sel":0.2}"#)
        .expect("send feedback");
    let fb = client.recv().expect("feedback response");
    assert!(matches!(fb, Response::Error { .. }), "got {fb:?}");

    // Tenant b is untouched by a's saturation: every answer undegraded.
    for i in 0..30 {
        match client.call(&req("b.m", i)).expect("tenant b call") {
            Response::Estimate { degraded: None, .. } => {}
            other => panic!("tenant b degraded by tenant a's quota: {other:?}"),
        }
    }

    handle.shutdown();
}
