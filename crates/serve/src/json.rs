//! Minimal hand-rolled JSON parser for the wire protocol.
//!
//! The workspace is offline-vendored with no serde, so the serving layer
//! parses its one-object-per-line protocol with a small recursive-descent
//! parser over the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, keywords). Rendering reuses the escaping/formatting
//! helpers in [`selearn_obs::json`] so both directions of the wire format
//! live in audited, dependency-free code.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) if v.is_finite() => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice of array elements, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` elsewhere or when absent).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// Nesting depth bound: the protocol needs 2 levels; 32 tolerates clients
/// with wrapper layers while keeping hostile deep nesting from recursing.
const MAX_DEPTH: usize = 32;

/// Parses exactly one JSON value spanning the whole input (trailing
/// whitespace allowed). Returns a human-readable error message otherwise.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos, depth),
        Some(b'[') => parse_arr(b, pos, depth),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let tok = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad utf-8".to_string())?;
    tok.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{tok}'"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // surrogates and other invalid scalars become U+FFFD;
                        // the protocol never needs astral characters
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // copy one UTF-8 scalar (multi-byte sequences included)
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad utf-8")?;
                let c = s.chars().next().ok_or("unterminated string")?;
                if (c as u32) < 0x20 {
                    return Err("raw control character in string".into());
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err("expected ',' or ']' in array".into()),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err("expected object key".into());
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err("expected ':' after key".into());
        }
        *pos += 1;
        let value = parse_value(b, pos, depth + 1)?;
        out.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err("expected ',' or '}' in object".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_request() {
        let v = parse(r#"{"est":"quadhist","lo":[0.1,0.2],"hi":[0.5,0.6],"id":7}"#).unwrap();
        assert_eq!(v.get("est").and_then(Json::as_str), Some("quadhist"));
        let lo = v.get("lo").and_then(Json::as_arr).unwrap();
        assert_eq!(lo.len(), 2);
        assert_eq!(lo[0].as_num(), Some(0.1));
        assert_eq!(v.get("id").and_then(Json::as_num), Some(7.0));
    }

    #[test]
    fn parses_scalars_and_keywords() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse(r#""a\nbA""#).unwrap(), Json::Str("a\nbA".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", r#"{"a"}"#, r#"{"a":}"#, "nul", "1.2.3", "{} extra",
            "\"unterminated", "\"bad \\q escape\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_hostile_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"a":{"b":[1,{"c":null}]},"d":[[]]}"#).unwrap();
        assert!(matches!(v.get("a").and_then(|a| a.get("b")), Some(Json::Arr(_))));
    }
}
