//! Self-contained synthetic models and workloads for the serving tools.
//!
//! The server and load-generator binaries need something to serve without
//! dragging the data-generation crate into the serving dependency tree, so
//! this module carries a tiny analytic distribution: independent per-dim
//! density `f(x) = ½ + x` on `[0, 1]` (CDF `F(x) = x/2 + x²/2`), whose box
//! selectivity `∏_d (F(hi_d) − F(lo_d))` is exact in closed form. Training
//! a [`QuadHist`] on labels from it produces a realistic model with zero
//! external inputs; the same generator produces the replay request pool.
//!
//! Halfspace and ball selectivities under the same density have no closed
//! form, so [`synthetic_shape_selectivity`] labels them with deterministic
//! Halton quasi–Monte Carlo: since the density integrates to 1 over the
//! unit cube, the selectivity of any region `S` is the uniform expectation
//! `E[f(x)·1{x ∈ S}]`, estimated over a fixed low-discrepancy point set.

use crate::protocol::{Request, Shape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selearn_core::{QuadHist, QuadHistConfig, SelearnError, TrainingQuery};
use selearn_geom::volume::halton;
use selearn_geom::{Ball, Halfspace, Point, Range, Rect};

/// The analytic CDF of the synthetic per-dimension density `½ + x`.
fn cdf(x: f64) -> f64 {
    let x = x.clamp(0.0, 1.0);
    0.5 * x + 0.5 * x * x
}

/// Exact selectivity of a box under the synthetic distribution.
pub fn synthetic_selectivity(lo: &[f64], hi: &[f64]) -> f64 {
    lo.iter()
        .zip(hi)
        .map(|(&l, &h)| (cdf(h) - cdf(l)).max(0.0))
        .product()
}

/// Number of Halton points behind each QMC-labeled shape selectivity.
const SHAPE_QMC_SAMPLES: usize = 4096;

/// The first primes, used as per-dimension Halton bases.
const HALTON_BASES: [u64; 8] = [2, 3, 5, 7, 11, 13, 17, 19];

/// Synthetic-distribution density at a point of the unit cube.
fn density(x: &[f64]) -> f64 {
    x.iter().map(|&c| 0.5 + c).product()
}

/// Selectivity of an arbitrary protocol shape under the synthetic
/// distribution. Boxes use the exact closed form; halfspaces and balls are
/// labeled by deterministic Halton QMC over the unit cube (the density
/// integrates to 1, so selectivity is the uniform mean of
/// `density · membership`).
pub fn synthetic_shape_selectivity(shape: &Shape) -> f64 {
    match shape {
        Shape::Rect { lo, hi } => synthetic_selectivity(lo, hi),
        Shape::Halfspace { normal, offset } => qmc_selectivity(normal.len(), |x| {
            x.iter().zip(normal).map(|(&c, &n)| c * n).sum::<f64>() >= *offset
        }),
        Shape::Ball { center, radius } => qmc_selectivity(center.len(), |x| {
            x.iter()
                .zip(center)
                .map(|(&c, &m)| (c - m) * (c - m))
                .sum::<f64>()
                <= radius * radius
        }),
    }
}

/// QMC mean of `density · membership` over the unit cube.
fn qmc_selectivity(dim: usize, inside: impl Fn(&[f64]) -> bool) -> f64 {
    debug_assert!(dim <= HALTON_BASES.len(), "synthetic QMC supports d ≤ 8");
    let mut point = vec![0.0; dim];
    let mut total = 0.0;
    for k in 0..SHAPE_QMC_SAMPLES {
        for (d, coord) in point.iter_mut().enumerate() {
            *coord = halton(k as u64 + 1, HALTON_BASES[d % HALTON_BASES.len()]);
        }
        if inside(&point) {
            total += density(&point);
        }
    }
    (total / SHAPE_QMC_SAMPLES as f64).clamp(0.0, 1.0)
}

/// A deterministic random box in the unit cube (sorted corners per dim).
fn random_box(rng: &mut StdRng, dim: usize) -> (Vec<f64>, Vec<f64>) {
    let mut lo = Vec::with_capacity(dim);
    let mut hi = Vec::with_capacity(dim);
    for _ in 0..dim {
        let a: f64 = rng.gen_range(0.0..1.0);
        let b: f64 = rng.gen_range(0.0..1.0);
        lo.push(a.min(b));
        hi.push(a.max(b));
    }
    (lo, hi)
}

/// A deterministic random halfspace through a point of the unit cube.
fn random_halfspace(rng: &mut StdRng, dim: usize) -> (Vec<f64>, f64) {
    // Rejection-sample a direction from the cube; the loop terminates with
    // overwhelming probability and the bound keeps it provably finite.
    let mut normal = vec![1.0; dim];
    for _ in 0..64 {
        let cand: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let norm = cand.iter().map(|c| c * c).sum::<f64>().sqrt();
        if norm > 1e-3 {
            normal = cand.iter().map(|c| c / norm).collect();
            break;
        }
    }
    let anchor: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
    let offset = anchor.iter().zip(&normal).map(|(a, n)| a * n).sum();
    (normal, offset)
}

/// A deterministic random ball centered in the unit cube.
fn random_ball(rng: &mut StdRng, dim: usize) -> (Vec<f64>, f64) {
    let center: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
    let radius = rng.gen_range(0.05..0.6);
    (center, radius)
}

/// A deterministic shape cycling rect → halfspace → ball with the given
/// sequence index. The RNG is drawn in a fixed order per shape kind so the
/// stream is reproducible from the seed alone.
fn random_shape(rng: &mut StdRng, dim: usize, index: usize) -> Shape {
    match index % 3 {
        0 => {
            let (lo, hi) = random_box(rng, dim);
            Shape::Rect { lo, hi }
        }
        1 => {
            let (normal, offset) = random_halfspace(rng, dim);
            Shape::Halfspace { normal, offset }
        }
        _ => {
            let (center, radius) = random_ball(rng, dim);
            Shape::Ball { center, radius }
        }
    }
}

/// Converts a protocol shape into a geometry range. Synthetic shapes are
/// always finite and well-formed, so the conversion cannot fail.
fn shape_range(shape: &Shape) -> Range {
    match shape {
        Shape::Rect { lo, hi } => Range::Rect(Rect::new(lo.clone(), hi.clone())),
        Shape::Halfspace { normal, offset } => {
            Range::Halfspace(Halfspace::new(normal.clone(), *offset))
        }
        Shape::Ball { center, radius } => {
            Range::Ball(Ball::new(Point::new(center.clone()), *radius))
        }
    }
}

/// Trains a QuadHist on `queries` exact-labeled synthetic boxes over the
/// unit cube. Returns the model and its root.
pub fn synthetic_model(
    dim: usize,
    queries: usize,
    seed: u64,
) -> Result<(QuadHist, Rect), SelearnError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let root = Rect::unit(dim);
    let workload: Vec<TrainingQuery> = (0..queries)
        .map(|_| {
            let (lo, hi) = random_box(&mut rng, dim);
            let s = synthetic_selectivity(&lo, &hi);
            TrainingQuery::new(Rect::new(lo, hi), s)
        })
        .collect();
    let config = QuadHistConfig {
        max_leaves: 256,
        ..QuadHistConfig::with_tau(0.05)
    };
    let model = QuadHist::fit(root.clone(), &workload, &config)?;
    Ok((model, root))
}

/// Trains a QuadHist on a mixed-shape synthetic workload (rect, halfspace,
/// and ball queries interleaved in equal proportion, each labeled against
/// the synthetic distribution). Returns the model and its root.
pub fn synthetic_mixed_model(
    dim: usize,
    queries: usize,
    seed: u64,
) -> Result<(QuadHist, Rect), SelearnError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let root = Rect::unit(dim);
    let workload: Vec<TrainingQuery> = (0..queries)
        .map(|i| {
            let shape = random_shape(&mut rng, dim, i);
            let s = synthetic_shape_selectivity(&shape);
            TrainingQuery::new(shape_range(&shape), s)
        })
        .collect();
    let config = QuadHistConfig {
        max_leaves: 256,
        ..QuadHistConfig::with_tau(0.05)
    };
    let model = QuadHist::fit(root.clone(), &workload, &config)?;
    Ok((model, root))
}

/// A deterministic pool of protocol requests over the unit cube. Replaying
/// a finite pool (instead of fresh random boxes) is what makes estimate
/// cache hits reachable for the load generator and smoke tests.
pub fn synthetic_requests(dim: usize, pool: usize, seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..pool)
        .map(|_| {
            let (lo, hi) = random_box(&mut rng, dim);
            Request::rect(crate::protocol::DEFAULT_MODEL, lo, hi, None)
        })
        .collect()
}

/// A deterministic pool of mixed-shape protocol requests cycling rect →
/// halfspace → ball, for replaying against a mixed-shape model.
pub fn synthetic_mixed_requests(dim: usize, pool: usize, seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..pool)
        .map(|i| Request {
            est: crate::protocol::DEFAULT_MODEL.to_string(),
            shape: random_shape(&mut rng, dim, i),
            id: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_is_a_probability() {
        assert!((synthetic_selectivity(&[0.0, 0.0], &[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(synthetic_selectivity(&[0.3], &[0.3]), 0.0);
        let s = synthetic_selectivity(&[0.2, 0.1], &[0.9, 0.7]);
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn qmc_agrees_with_closed_form_on_boxes() {
        // A box is expressible as both a rect (closed form) and implicitly
        // via the QMC path; cross-check the estimator on a halfspace whose
        // selectivity is known analytically: normal e₁, offset t keeps
        // x₁ ≥ t, so selectivity = 1 − F(t).
        let t = 0.4;
        let shape = Shape::Halfspace {
            normal: vec![1.0, 0.0],
            offset: t,
        };
        let qmc = synthetic_shape_selectivity(&shape);
        let exact = 1.0 - cdf(t);
        assert!((qmc - exact).abs() < 0.01, "qmc {qmc} vs exact {exact}");
    }

    #[test]
    fn ball_selectivity_is_monotone_in_radius() {
        let small = Shape::Ball {
            center: vec![0.5, 0.5],
            radius: 0.1,
        };
        let large = Shape::Ball {
            center: vec![0.5, 0.5],
            radius: 0.4,
        };
        let s = synthetic_shape_selectivity(&small);
        let l = synthetic_shape_selectivity(&large);
        assert!(s > 0.0 && l > s && l < 1.0, "small {s}, large {l}");
    }

    #[test]
    fn model_trains_and_tracks_truth() {
        let (model, _root) = synthetic_model(2, 200, 7).unwrap();
        use selearn_core::SelectivityEstimator;
        let mut worst: f64 = 0.0;
        for req in synthetic_requests(2, 50, 8) {
            let Shape::Rect { lo, hi } = &req.shape else {
                panic!("rect pool produced a non-rect request");
            };
            let rect = Rect::new(lo.clone(), hi.clone());
            let truth = synthetic_selectivity(lo, hi);
            let est = model.estimate(&rect.into());
            worst = worst.max((est - truth).abs());
        }
        assert!(worst < 0.2, "synthetic model off by {worst}");
    }

    #[test]
    fn mixed_model_tracks_truth_across_shapes() {
        let (model, _root) = synthetic_mixed_model(2, 240, 11).unwrap();
        use selearn_core::SelectivityEstimator;
        let mut worst: f64 = 0.0;
        for req in synthetic_mixed_requests(2, 30, 12) {
            let truth = synthetic_shape_selectivity(&req.shape);
            let est = model.estimate(&shape_range(&req.shape));
            worst = worst.max((est - truth).abs());
        }
        assert!(worst < 0.25, "mixed synthetic model off by {worst}");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(synthetic_requests(3, 10, 42), synthetic_requests(3, 10, 42));
        assert_eq!(
            synthetic_mixed_requests(3, 9, 42),
            synthetic_mixed_requests(3, 9, 42)
        );
    }

    #[test]
    fn mixed_pool_cycles_all_three_shapes() {
        let pool = synthetic_mixed_requests(2, 6, 1);
        let kinds: Vec<&str> = pool.iter().map(|r| r.shape.kind().as_str()).collect();
        assert_eq!(
            kinds,
            vec!["rect", "halfspace", "ball", "rect", "halfspace", "ball"]
        );
    }
}
