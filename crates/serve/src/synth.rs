//! Self-contained synthetic models and workloads for the serving tools.
//!
//! The server and load-generator binaries need something to serve without
//! dragging the data-generation crate into the serving dependency tree, so
//! this module carries a tiny analytic distribution: independent per-dim
//! density `f(x) = ½ + x` on `[0, 1]` (CDF `F(x) = x/2 + x²/2`), whose box
//! selectivity `∏_d (F(hi_d) − F(lo_d))` is exact in closed form. Training
//! a [`QuadHist`] on labels from it produces a realistic model with zero
//! external inputs; the same generator produces the replay request pool.

use crate::protocol::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selearn_core::{QuadHist, QuadHistConfig, SelearnError, TrainingQuery};
use selearn_geom::Rect;

/// The analytic CDF of the synthetic per-dimension density `½ + x`.
fn cdf(x: f64) -> f64 {
    let x = x.clamp(0.0, 1.0);
    0.5 * x + 0.5 * x * x
}

/// Exact selectivity of a box under the synthetic distribution.
pub fn synthetic_selectivity(lo: &[f64], hi: &[f64]) -> f64 {
    lo.iter()
        .zip(hi)
        .map(|(&l, &h)| (cdf(h) - cdf(l)).max(0.0))
        .product()
}

/// A deterministic random box in the unit cube (sorted corners per dim).
fn random_box(rng: &mut StdRng, dim: usize) -> (Vec<f64>, Vec<f64>) {
    let mut lo = Vec::with_capacity(dim);
    let mut hi = Vec::with_capacity(dim);
    for _ in 0..dim {
        let a: f64 = rng.gen_range(0.0..1.0);
        let b: f64 = rng.gen_range(0.0..1.0);
        lo.push(a.min(b));
        hi.push(a.max(b));
    }
    (lo, hi)
}

/// Trains a QuadHist on `queries` exact-labeled synthetic boxes over the
/// unit cube. Returns the model and its root.
pub fn synthetic_model(
    dim: usize,
    queries: usize,
    seed: u64,
) -> Result<(QuadHist, Rect), SelearnError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let root = Rect::unit(dim);
    let workload: Vec<TrainingQuery> = (0..queries)
        .map(|_| {
            let (lo, hi) = random_box(&mut rng, dim);
            let s = synthetic_selectivity(&lo, &hi);
            TrainingQuery::new(Rect::new(lo, hi), s)
        })
        .collect();
    let config = QuadHistConfig {
        max_leaves: 256,
        ..QuadHistConfig::with_tau(0.05)
    };
    let model = QuadHist::fit(root.clone(), &workload, &config)?;
    Ok((model, root))
}

/// A deterministic pool of protocol requests over the unit cube. Replaying
/// a finite pool (instead of fresh random boxes) is what makes estimate
/// cache hits reachable for the load generator and smoke tests.
pub fn synthetic_requests(dim: usize, pool: usize, seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..pool)
        .map(|_| {
            let (lo, hi) = random_box(&mut rng, dim);
            Request {
                est: crate::protocol::DEFAULT_MODEL.to_string(),
                lo,
                hi,
                id: None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_is_a_probability() {
        assert!((synthetic_selectivity(&[0.0, 0.0], &[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(synthetic_selectivity(&[0.3], &[0.3]), 0.0);
        let s = synthetic_selectivity(&[0.2, 0.1], &[0.9, 0.7]);
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn model_trains_and_tracks_truth() {
        let (model, _root) = synthetic_model(2, 200, 7).unwrap();
        use selearn_core::SelectivityEstimator;
        let mut worst: f64 = 0.0;
        for req in synthetic_requests(2, 50, 8) {
            let rect = Rect::new(req.lo.clone(), req.hi.clone());
            let truth = synthetic_selectivity(&req.lo, &req.hi);
            let est = model.estimate(&rect.into());
            worst = worst.max((est - truth).abs());
        }
        assert!(worst < 0.2, "synthetic model off by {worst}");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(synthetic_requests(3, 10, 42), synthetic_requests(3, 10, 42));
    }
}
