//! The admin plane: a std-only HTTP/1.1 listener beside the data port.
//!
//! Serving estimates and serving *introspection* have opposite needs —
//! the data port is a custom line protocol tuned for latency, while
//! scrapers and orchestrators speak HTTP. [`start_admin`] binds a second
//! listener (`--admin-addr`) with four GET endpoints:
//!
//! | path       | body                                           | status |
//! |------------|------------------------------------------------|--------|
//! | `/metrics` | Prometheus text exposition ([`selearn_obs::expo`]) | 200 |
//! | `/healthz` | `ok` — process liveness                        | 200    |
//! | `/readyz`  | JSON readiness detail                          | 200/503 |
//! | `/stats`   | JSON serving-stats snapshot                    | 200    |
//!
//! `/readyz` answers 503 when any of these holds: the registry has no
//! model, the data-port queue is at capacity (admission control is
//! shedding), the store directory stopped being writable (when one is
//! configured), or the drift monitor has an active alarm. The JSON body
//! names the failing check either way, so "not ready" is diagnosable
//! from the probe response alone.
//!
//! The plane is deliberately minimal: GET only, `Connection: close`, one
//! short-lived thread per connection. Scrape traffic never touches the
//! data-port queue, workers, or cache.

use crate::cache::EstimateCache;
use crate::drift::DriftMonitor;
use crate::registry::ModelRegistry;
use crate::server::ServeStats;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything the admin endpoints read. All fields are shared handles
/// into the running server; the plane itself owns no serving state.
pub struct AdminState {
    /// The model registry (readiness: at least one model).
    pub registry: Arc<ModelRegistry>,
    /// Lifetime serving statistics (the `/stats` body).
    pub stats: Arc<ServeStats>,
    /// The estimate cache (hit/miss counters for `/stats`).
    pub cache: Arc<EstimateCache>,
    /// Reports `(depth, capacity)` of the data-port queue — readiness
    /// degrades when depth reaches capacity. See
    /// [`crate::server::ServerHandle::queue_probe`].
    pub queue_depth: Box<dyn Fn() -> (usize, usize) + Send + Sync>,
    /// The drift monitor, when feedback scoring is on (readiness: no
    /// active alarm).
    pub drift: Option<Arc<DriftMonitor>>,
    /// Probes whether the store directory accepts writes, when a store is
    /// configured. `None` skips the check.
    pub store_writable: Option<Box<dyn Fn() -> bool + Send + Sync>>,
}

impl AdminState {
    /// Answers one admin request: `(status, content-type, body)`. Pure —
    /// the HTTP loop and the tests both call this.
    pub fn respond(&self, path: &str) -> (u16, &'static str, String) {
        match path {
            "/metrics" => (
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                selearn_obs::expo::render(),
            ),
            "/healthz" => (200, "text/plain; charset=utf-8", "ok\n".to_string()),
            "/readyz" => self.readyz(),
            "/stats" => (200, "application/json", self.stats_json()),
            _ => (
                404,
                "text/plain; charset=utf-8",
                "not found; endpoints: /metrics /healthz /readyz /stats\n".to_string(),
            ),
        }
    }

    fn readyz(&self) -> (u16, &'static str, String) {
        let models = self.registry.names().len();
        let (depth, capacity) = (self.queue_depth)();
        let queue_ok = depth < capacity;
        let store_ok = self.store_writable.as_ref().map(|probe| probe());
        let alarms = self
            .drift
            .as_ref()
            .map(|d| d.alarmed())
            .unwrap_or_default();
        let ready = models > 0 && queue_ok && store_ok != Some(false) && alarms.is_empty();

        let mut body = String::with_capacity(256);
        body.push_str("{\"ready\":");
        body.push_str(if ready { "true" } else { "false" });
        body.push_str(&format!(
            ",\"models\":{models},\"queue\":{{\"depth\":{depth},\"capacity\":{capacity}}}"
        ));
        match store_ok {
            Some(ok) => body.push_str(&format!(",\"store_writable\":{ok}")),
            None => body.push_str(",\"store_writable\":null"),
        }
        body.push_str(",\"drift_alarms\":[");
        for (i, name) in alarms.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            selearn_obs::json::escape_into(&mut body, name);
        }
        body.push_str("]}\n");
        (if ready { 200 } else { 503 }, "application/json", body)
    }

    fn stats_json(&self) -> String {
        let s = &self.stats;
        let (depth, capacity) = (self.queue_depth)();
        let mut body = format!(
            "{{\"requests\":{},\"model\":{},\"cached\":{},\"degraded\":{},\"shed\":{},\"deadline\":{},\"swap\":{},\"errors\":{},\"connections\":{},\"feedback\":{},\"cache_hits\":{},\"cache_misses\":{},\"queue\":{{\"depth\":{depth},\"capacity\":{capacity}}},\"uptime_secs\":{:.3},\"models\":[",
            s.requests(),
            s.model_answers(),
            s.cache_answers(),
            s.degraded(),
            s.shed(),
            s.deadline_expired(),
            s.swap_degraded(),
            s.errors(),
            s.connections(),
            s.feedback_acks(),
            self.cache.hits(),
            self.cache.misses(),
            selearn_obs::expo::uptime_seconds(),
        );
        for (i, name) in self.registry.names().iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            selearn_obs::json::escape_into(&mut body, name);
        }
        body.push_str("]}\n");
        body
    }
}

/// A running admin listener. Call [`shutdown`](AdminHandle::shutdown) for
/// a clean stop; dropping without it leaves the acceptor until process
/// exit.
pub struct AdminHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl AdminHandle {
    /// The bound admin address (OS-assigned port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the acceptor and connection threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The acceptor blocks in `accept` (no sleep-polling); a throwaway
        // self-connection is the wake-up that makes it observe `stop`.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let conns = std::mem::take(
            &mut *self.conns.lock().unwrap_or_else(PoisonError::into_inner),
        );
        for c in conns {
            let _ = c.join();
        }
    }
}

/// Binds the admin listener and serves [`AdminState::respond`] over
/// minimal HTTP/1.1. Also marks the process start for
/// `process_uptime_seconds` (idempotent).
pub fn start_admin(addr: &str, state: AdminState) -> std::io::Result<AdminHandle> {
    selearn_obs::expo::mark_start();
    // The listener stays *blocking*: the acceptor sleeps in `accept`
    // instead of a 10ms sleep-poll loop, so probes are answered the
    // moment they connect and an idle admin plane burns zero wakeups.
    // Shutdown wakes it with a self-connection (see AdminHandle::shutdown).
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let state = Arc::new(state);

    let acceptor = {
        let stop = Arc::clone(&stop);
        let conns = Arc::clone(&conns);
        std::thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stop.load(Ordering::SeqCst) {
                        return; // the shutdown self-connection (or a late probe)
                    }
                    let state = Arc::clone(&state);
                    let handle = std::thread::spawn(move || serve_connection(stream, &state));
                    let mut held = conns.lock().unwrap_or_else(PoisonError::into_inner);
                    // Reap finished threads so a long-lived server's
                    // handle list doesn't grow with every scrape.
                    held.retain(|h| !h.is_finished());
                    held.push(handle);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    // Transient accept failure (fd exhaustion etc.):
                    // back off briefly instead of spinning.
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        })
    };

    Ok(AdminHandle {
        addr,
        stop,
        acceptor: Some(acceptor),
        conns,
    })
}

/// Reads one request head, answers it, closes. Anything that is not a
/// well-formed `GET <path> …` gets a 400/405 and the same close.
fn serve_connection(mut stream: TcpStream, state: &AdminState) {
    if stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .is_err()
    {
        return;
    }
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    // Read until the end of the request head; scrapers send tiny requests
    // so a hard 8 KiB cap is plenty.
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n")
                    || buf.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
                if buf.len() > 8 * 1024 {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let Some(request_line) = head.lines().next() else {
        return;
    };
    let mut parts = request_line.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        (
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        // Strip any query string; the endpoints take no parameters.
        let path = target.split('?').next().unwrap_or("");
        state.respond(path)
    };
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use selearn_core::SelectivityEstimator;
    use selearn_geom::{Range, Rect};
    use std::sync::atomic::AtomicUsize;

    struct Constant(f64);
    impl SelectivityEstimator for Constant {
        fn estimate(&self, _r: &Range) -> f64 {
            self.0
        }
        fn num_buckets(&self) -> usize {
            1
        }
        fn name(&self) -> &'static str {
            "const"
        }
    }

    fn state_with_queue(depth: Arc<AtomicUsize>, capacity: usize) -> AdminState {
        let registry = Arc::new(ModelRegistry::new());
        registry.register("default", Arc::new(Constant(0.2)), Rect::unit(2));
        AdminState {
            registry,
            stats: Arc::new(ServeStats::default()),
            cache: Arc::new(EstimateCache::new(16, 2)),
            queue_depth: Box::new(move || (depth.load(Ordering::Relaxed), capacity)),
            drift: None,
            store_writable: None,
        }
    }

    #[test]
    fn healthz_and_unknown_paths() {
        let state = state_with_queue(Arc::new(AtomicUsize::new(0)), 8);
        assert_eq!(state.respond("/healthz").0, 200);
        assert_eq!(state.respond("/nope").0, 404);
    }

    #[test]
    fn readyz_flips_under_queue_saturation() {
        let depth = Arc::new(AtomicUsize::new(0));
        let state = state_with_queue(Arc::clone(&depth), 4);
        let (status, _, body) = state.respond("/readyz");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"ready\":true"), "{body}");

        depth.store(4, Ordering::Relaxed);
        let (status, _, body) = state.respond("/readyz");
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("\"ready\":false"), "{body}");
        assert!(body.contains("\"depth\":4"), "{body}");

        depth.store(1, Ordering::Relaxed);
        assert_eq!(state.respond("/readyz").0, 200);
    }

    #[test]
    fn readyz_requires_a_model_and_a_writable_store() {
        let mut state = state_with_queue(Arc::new(AtomicUsize::new(0)), 8);
        state.registry = Arc::new(ModelRegistry::new()); // no models
        assert_eq!(state.respond("/readyz").0, 503);

        let mut state = state_with_queue(Arc::new(AtomicUsize::new(0)), 8);
        state.store_writable = Some(Box::new(|| false));
        let (status, _, body) = state.respond("/readyz");
        assert_eq!(status, 503);
        assert!(body.contains("\"store_writable\":false"), "{body}");
    }

    #[test]
    fn stats_is_valid_json_shape() {
        let state = state_with_queue(Arc::new(AtomicUsize::new(2)), 8);
        let (status, ct, body) = state.respond("/stats");
        assert_eq!(status, 200);
        assert_eq!(ct, "application/json");
        assert!(body.contains("\"requests\":0"), "{body}");
        assert!(body.contains("\"queue\":{\"depth\":2,\"capacity\":8}"), "{body}");
        assert!(body.contains("\"models\":[\"default\"]"), "{body}");
        crate::json::parse(&body).expect("stats body must parse as JSON");
    }

    #[test]
    fn http_loop_answers_over_a_real_socket() {
        let state = state_with_queue(Arc::new(AtomicUsize::new(0)), 8);
        let handle = start_admin("127.0.0.1:0", state).expect("bind");
        let addr = handle.addr();

        let fetch = |req: &str| {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(req.as_bytes()).expect("write");
            let mut out = String::new();
            s.read_to_string(&mut out).expect("read");
            out
        };
        let ok = fetch("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.ends_with("ok\n"), "{ok}");
        let post = fetch("POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");
        let missing = fetch("GET /whatever HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        handle.shutdown();
    }
}
